"""Tests for sampling policies, pipeline specs and the two pipelines."""

from __future__ import annotations

import os

import pytest

from repro.core.metrics import IN_SITU, POST_PROCESSING
from repro.errors import ConfigurationError
from repro.exec.api import RunRequest
from repro.ocean.driver import MPASOceanConfig
from repro.pipelines.base import PipelineSpec
from repro.pipelines.insitu import InSituPipeline
from repro.pipelines.platform import (
    ImageSizeModel,
    RealPlatform,
    RealScale,
)
from repro.pipelines.postprocessing import PostProcessingPipeline
from repro.pipelines.sampling import PAPER_SAMPLING_GRID, SamplingPolicy
from repro.units import MONTH
from repro.viz.render import ImageSpec


def simulate(pipeline, spec, platform=None):
    """One simulated run through the unified execute() entry point."""
    return pipeline.execute(RunRequest(spec=spec), platform=platform).measurement


def run_real(pipeline, platform):
    """One miniature real-mode run through execute()."""
    return pipeline.execute(RunRequest(mode="real"), platform=platform).measurement


class TestSamplingPolicy:
    def test_paper_grid(self):
        assert [p.interval_hours for p in PAPER_SAMPLING_GRID] == [8.0, 24.0, 72.0]

    def test_outputs_per_day(self):
        assert SamplingPolicy(8.0).outputs_per_day == 3.0
        assert SamplingPolicy(24.0).outputs_per_day == 1.0

    def test_steps_and_outputs(self):
        cfg = MPASOceanConfig()
        p = SamplingPolicy(8.0)
        assert p.steps_between_outputs(cfg) == 16
        assert p.n_outputs(cfg) == 540

    def test_rate_ratio_is_frequency_ratio(self):
        """Sampling twice as often doubles the rate (Eqs. 6-7)."""
        assert SamplingPolicy(12.0).rate_ratio(SamplingPolicy(24.0)) == 2.0
        assert SamplingPolicy(48.0).rate_ratio(SamplingPolicy(24.0)) == 0.5

    def test_str(self):
        assert str(SamplingPolicy(8.0)) == "every 8 h"
        assert str(SamplingPolicy(24.0)) == "every day"
        assert str(SamplingPolicy(192.0)) == "every 8 days"

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SamplingPolicy(0.0)


class TestPipelineSpec:
    def test_derived_counts(self):
        spec = PipelineSpec(sampling=SamplingPolicy(24.0))
        assert spec.n_outputs == 180
        assert spec.steps_between_outputs == 48

    def test_invalid_cadence_rejected_early(self):
        with pytest.raises(ConfigurationError):
            PipelineSpec(sampling=SamplingPolicy(0.4))

    def test_with_sampling(self):
        spec = PipelineSpec(sampling=SamplingPolicy(24.0))
        other = spec.with_sampling(SamplingPolicy(8.0))
        assert other.n_outputs == 540
        assert other.ocean is spec.ocean


class TestImageSizeModel:
    def test_default_1080p_under_1mb(self):
        m = ImageSizeModel()
        assert m.bytes_per_image(ImageSpec()) < 1e6

    def test_sample_scales_with_cameras(self):
        from repro.viz.render import Camera
        m = ImageSizeModel()
        two = ImageSpec(cameras=(Camera(), Camera(zoom=2.0)))
        assert m.bytes_per_sample(two) == 2 * m.bytes_per_image(two)

    def test_invalid_ratio(self):
        with pytest.raises(ConfigurationError):
            ImageSizeModel(compression_ratio=0.0)
        with pytest.raises(ConfigurationError):
            ImageSizeModel(compression_ratio=1.5)


class TestSimulatedPipelines:
    """Short (1-simulated-month) campaign-scale runs on the DES platform."""

    def test_insitu_measurement_shape(self, platform, short_spec):
        m = simulate(InSituPipeline(), short_spec, platform)
        assert m.pipeline == IN_SITU
        assert m.n_outputs == 10
        assert m.n_images == 10
        assert m.execution_time > 0
        assert m.average_power is not None and m.energy is not None
        assert m.energy == pytest.approx(m.average_power * m.execution_time, rel=1e-6)

    def test_post_measurement_shape(self, platform, short_spec):
        m = simulate(PostProcessingPipeline(), short_spec, platform)
        assert m.pipeline == POST_PROCESSING
        assert m.n_outputs == 10
        assert m.n_images == 10
        assert m.storage_bytes > 10 * 0.9 * short_spec.ocean.bytes_per_sample

    def test_insitu_faster_and_leaner(self, short_spec):
        insitu = simulate(InSituPipeline(), short_spec)
        post = simulate(PostProcessingPipeline(), short_spec)
        assert insitu.execution_time < post.execution_time
        assert insitu.storage_bytes < 0.01 * post.storage_bytes
        assert insitu.energy < post.energy

    def test_phase_breakdown_covers_run(self, platform, short_spec):
        m = simulate(InSituPipeline(), short_spec, platform)
        total_phases = sum(m.timeline.by_phase().values())
        assert total_phases == pytest.approx(m.execution_time, rel=0.01)
        assert m.simulation_time > 0 and m.viz_time > 0 and m.io_time > 0

    def test_simulation_phase_matches_cost_model(self, platform, short_spec):
        m = simulate(InSituPipeline(), short_spec, platform)
        expected = platform.ocean_cost.simulation_seconds(
            short_spec.ocean, platform.cluster.n_nodes
        )
        assert m.simulation_time == pytest.approx(expected, rel=1e-6)

    def test_post_io_dominated_by_raw_writes(self, platform, short_spec):
        m = simulate(PostProcessingPipeline(), short_spec, platform)
        raw_write_time = m.n_outputs * short_spec.ocean.bytes_per_sample / 160e6
        assert m.io_time == pytest.approx(raw_write_time, rel=0.2)

    def test_back_to_back_runs_use_deltas(self, platform, short_spec):
        a = simulate(InSituPipeline(), short_spec, platform)
        b = simulate(InSituPipeline(), short_spec, platform)
        # Same workload: the second measurement matches the first even though
        # storage and the clock accumulated.
        assert b.execution_time == pytest.approx(a.execution_time, rel=1e-6)
        assert b.storage_bytes == pytest.approx(a.storage_bytes, rel=1e-6)
        assert b.average_power == pytest.approx(a.average_power, rel=0.02)

    def test_power_report_attached(self, platform, short_spec):
        m = simulate(InSituPipeline(), short_spec, platform)
        assert m.power_report is not None
        assert m.power_report.average_storage_power == pytest.approx(2_273.0, rel=0.01)
        assert m.power_report.average_compute_power > 15_000.0

    def test_multi_camera_images_counted(self, platform):
        from repro.viz.render import Camera
        spec = PipelineSpec(
            ocean=MPASOceanConfig(duration_seconds=MONTH),
            sampling=SamplingPolicy(72.0),
            images=ImageSpec(cameras=(Camera(), Camera(zoom=2.0))),
        )
        m = simulate(InSituPipeline(), spec, platform)
        assert m.n_images == 2 * m.n_outputs


class TestRealPlatform:
    @pytest.fixture(scope="class")
    def tiny_scale(self):
        return RealScale(nx=32, ny=16, n_steps=6, steps_between_outputs=2,
                         image_width=48, image_height=24, spinup_steps=4)

    def test_real_insitu_run(self, tmp_path, tiny_scale):
        plat = RealPlatform(str(tmp_path), scale=tiny_scale)
        m = run_real(InSituPipeline(), plat)
        assert m.pipeline == IN_SITU
        assert m.n_outputs == 3
        assert m.n_images == 6  # two cameras
        assert m.storage_bytes > 0
        assert m.average_power is None  # a laptop run cannot meter power
        # Real artifacts exist on disk.
        cinema_dirs = [p for p in os.listdir(tmp_path) if p.startswith("in-situ")]
        assert cinema_dirs
        assert os.path.exists(os.path.join(tmp_path, cinema_dirs[0], "cinema", "info.json"))

    def test_real_post_run(self, tmp_path, tiny_scale):
        plat = RealPlatform(str(tmp_path), scale=tiny_scale)
        m = run_real(PostProcessingPipeline(), plat)
        assert m.pipeline == POST_PROCESSING
        assert m.n_outputs == 3
        assert m.n_images == 3
        run_dirs = [p for p in os.listdir(tmp_path) if p.startswith("post")]
        raw = os.path.join(tmp_path, run_dirs[0], "raw")
        assert len(os.listdir(raw)) == 3

    def test_real_storage_reduction(self, tmp_path, tiny_scale):
        """Even at mini scale, images are far smaller than raw fields."""
        plat = RealPlatform(str(tmp_path), scale=tiny_scale)
        insitu = run_real(InSituPipeline(), plat)
        post = run_real(PostProcessingPipeline(), plat)
        assert insitu.storage_bytes < 0.5 * post.storage_bytes

    def test_identical_initial_conditions_across_pipelines(self, tmp_path, tiny_scale):
        """Both pipelines simulate the same ocean (seeded driver)."""
        plat = RealPlatform(str(tmp_path), scale=tiny_scale)
        a = plat.new_driver()
        b = plat.new_driver()
        import numpy as np
        np.testing.assert_array_equal(a.solver.vorticity(), b.solver.vorticity())

    def test_scale_validation(self):
        with pytest.raises(ConfigurationError):
            RealScale(n_steps=7, steps_between_outputs=2)
        with pytest.raises(ConfigurationError):
            RealScale(n_steps=0)
