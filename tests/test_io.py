"""Tests for the nclite container and PIO aggregation layer."""

from __future__ import annotations

import io

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.topology import Interconnect
from repro.errors import ConfigurationError, FileFormatError
from repro.events.engine import Simulator
from repro.io.ncformat import NcliteFile, nclite_nbytes, read_nclite, write_nclite
from repro.io.pio import PIOWriter, RealIOBackend, SimulatedIOBackend
from repro.storage.lustre import LustreFileSystem


class TestNcliteFile:
    def _dataset(self):
        ds = NcliteFile(attrs={"model": "mini"})
        ds.add_dim("y", 4)
        ds.add_dim("x", 6)
        ds.add_dim("z", 2)
        ds.add_variable("temp", np.arange(24, dtype=np.float64).reshape(4, 6), ("y", "x"),
                        attrs={"units": "degC"})
        ds.add_variable("mask", np.ones((4, 6), dtype=np.uint8), ("y", "x"))
        ds.add_variable("column", np.zeros((2, 4, 6), dtype=np.float32), ("z", "y", "x"))
        return ds

    def test_round_trip_through_bytes(self):
        ds = self._dataset()
        buf = io.BytesIO()
        ds.write(buf)
        back = NcliteFile.read(buf.getvalue())
        assert back.dims == ds.dims
        assert back.attrs == {"model": "mini"}
        assert back.var_attrs["temp"] == {"units": "degC"}
        for name in ds.variables:
            np.testing.assert_array_equal(back.variables[name], ds.variables[name])
            assert back.variables[name].dtype == ds.variables[name].dtype
            assert back.var_dims[name] == ds.var_dims[name]

    def test_round_trip_through_file(self, tmp_path):
        ds = self._dataset()
        path = str(tmp_path / "data.ncl")
        n = ds.write(path)
        assert n == (tmp_path / "data.ncl").stat().st_size
        back = NcliteFile.read(path)
        np.testing.assert_array_equal(back.variables["temp"], ds.variables["temp"])

    def test_nbytes_is_exact(self, tmp_path):
        ds = self._dataset()
        path = str(tmp_path / "d.ncl")
        assert ds.write(path) == ds.nbytes()

    def test_dimension_validation(self):
        ds = NcliteFile()
        ds.add_dim("x", 4)
        with pytest.raises(ConfigurationError):
            ds.add_dim("x", 5)  # redefinition
        ds.add_dim("x", 4)  # same size is fine
        with pytest.raises(ConfigurationError):
            ds.add_dim("w", 0)
        with pytest.raises(ConfigurationError):
            ds.add_dim("", 3)

    def test_variable_validation(self):
        ds = NcliteFile()
        ds.add_dim("x", 4)
        with pytest.raises(ConfigurationError):
            ds.add_variable("v", np.zeros(4), ("nope",))
        with pytest.raises(ConfigurationError):
            ds.add_variable("v", np.zeros(5), ("x",))  # size mismatch
        with pytest.raises(ConfigurationError):
            ds.add_variable("v", np.zeros(4, dtype=np.complex128), ("x",))
        ds.add_variable("v", np.zeros(4), ("x",))
        with pytest.raises(ConfigurationError):
            ds.add_variable("v", np.zeros(4), ("x",))  # duplicate

    def test_bad_magic_rejected(self):
        with pytest.raises(FileFormatError):
            NcliteFile.read(b"XXXX" + b"\x00" * 100)

    def test_truncated_payload_rejected(self):
        ds = self._dataset()
        buf = io.BytesIO()
        ds.write(buf)
        with pytest.raises(FileFormatError):
            NcliteFile.read(buf.getvalue()[:-10])

    def test_corrupt_header_rejected(self):
        ds = NcliteFile()
        ds.add_dim("x", 2)
        ds.add_variable("v", np.zeros(2), ("x",))
        buf = io.BytesIO()
        ds.write(buf)
        data = bytearray(buf.getvalue())
        data[9] ^= 0xFF  # scramble a header byte
        with pytest.raises(FileFormatError):
            NcliteFile.read(bytes(data))


class TestConvenienceApi:
    def test_write_read_fields(self, tmp_path, mini_fields):
        path = str(tmp_path / "f.ncl")
        n = write_nclite(path, mini_fields, attrs={"time": 1.0})
        assert n == nclite_nbytes(mini_fields, {"time": 1.0})
        back = read_nclite(path)
        assert set(back) == set(mini_fields)
        for k in mini_fields:
            np.testing.assert_allclose(back[k], mini_fields[k])

    def test_empty_fields_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            write_nclite(str(tmp_path / "x"), {})

    def test_mismatched_shapes_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            write_nclite(str(tmp_path / "x"), {"a": np.zeros((4, 4)), "b": np.zeros((4, 5))})

    def test_non_2d_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            write_nclite(str(tmp_path / "x"), {"a": np.zeros(4)})

    @settings(deadline=None, max_examples=20)
    @given(
        ny=st.integers(min_value=1, max_value=16),
        nx=st.integers(min_value=1, max_value=16),
        nvars=st.integers(min_value=1, max_value=4),
        seed=st.integers(min_value=0, max_value=99),
    )
    def test_size_prediction_property(self, tmp_path_factory, ny, nx, nvars, seed):
        rng = np.random.default_rng(seed)
        fields = {f"v{i}": rng.standard_normal((ny, nx)) for i in range(nvars)}
        tmp = tmp_path_factory.mktemp("ncl")
        n = write_nclite(str(tmp / "f.ncl"), fields)
        assert n == nclite_nbytes(fields)


class TestPIOWriter:
    def test_aggregation_time_scales_with_volume(self):
        pio = PIOWriter(n_ranks=150, n_aggregators=8, interconnect=Interconnect())
        small = pio.aggregation_seconds(1e6)
        big = pio.aggregation_seconds(1e9)
        assert big > small

    def test_aggregation_cheap_relative_to_lustre(self):
        """On QDR IB, funnelling 0.47 GB costs far less than writing it."""
        pio = PIOWriter(n_ranks=150, n_aggregators=8, interconnect=Interconnect())
        agg = pio.aggregation_seconds(0.472e9)
        lustre_write = 0.472e9 / 160e6
        assert agg < 0.1 * lustre_write

    def test_validation(self):
        ic = Interconnect()
        with pytest.raises(ConfigurationError):
            PIOWriter(n_ranks=0, n_aggregators=1, interconnect=ic)
        with pytest.raises(ConfigurationError):
            PIOWriter(n_ranks=4, n_aggregators=5, interconnect=ic)
        pio = PIOWriter(n_ranks=4, n_aggregators=2, interconnect=ic)
        with pytest.raises(ConfigurationError):
            pio.aggregation_seconds(-1.0)

    def test_write_simulated_moves_bytes_through_lustre(self):
        sim = Simulator()
        fs = LustreFileSystem(sim, metadata_latency=0.0)
        backend = SimulatedIOBackend(fs)
        pio = PIOWriter(n_ranks=150, n_aggregators=8, interconnect=Interconnect())

        def proc():
            yield from pio.write_simulated(backend, "/out/s0.nc", 1.6e9)

        sim.process(proc())
        sim.run()
        assert fs.used_bytes == 1.6e9
        assert backend.files_written == 1
        assert sim.now == pytest.approx(10.0, abs=0.5)  # dominated by Lustre

    def test_read_bytes_round_trip(self):
        sim = Simulator()
        fs = LustreFileSystem(sim, metadata_latency=0.0)
        backend = SimulatedIOBackend(fs)

        def proc():
            yield from backend.write_bytes("/a", 1e9)
            yield from backend.read_bytes("/a")

        sim.process(proc())
        sim.run()
        assert fs.bytes_read == pytest.approx(1e9)

    def test_real_backend_writes_files(self, tmp_path, mini_fields):
        backend = RealIOBackend(str(tmp_path / "raw"))
        n = backend.write_fields("s0.nc", mini_fields)
        assert backend.bytes_written == n
        assert backend.files_written == 1
        back = read_nclite(backend.path_of("s0.nc"))
        np.testing.assert_allclose(back["u"], mini_fields["u"])

    def test_write_real_through_pio(self, tmp_path, mini_fields):
        backend = RealIOBackend(str(tmp_path / "raw"))
        pio = PIOWriter(n_ranks=4, n_aggregators=2, interconnect=Interconnect())
        n = pio.write_real(backend, "s1.nc", mini_fields)
        assert n > 0
        assert backend.files_written == 1
