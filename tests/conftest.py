"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.machine import caddy
from repro.events.engine import Simulator
from repro.ocean.driver import MiniOceanDriver, MPASOceanConfig
from repro.pipelines.base import PipelineSpec
from repro.pipelines.platform import SimulatedPlatform
from repro.pipelines.sampling import SamplingPolicy
from repro.storage.lustre import StorageCluster
from repro.units import MONTH


@pytest.fixture
def sim() -> Simulator:
    """A fresh discrete-event simulator."""
    return Simulator()


@pytest.fixture
def cluster(sim):
    """The 150-node Caddy model."""
    return caddy(sim)


@pytest.fixture
def storage(sim):
    """The Lustre storage cluster model."""
    return StorageCluster(sim)


@pytest.fixture
def platform() -> SimulatedPlatform:
    """A fresh simulated platform (own simulator, cluster, storage)."""
    return SimulatedPlatform()


@pytest.fixture(scope="session")
def mini_driver() -> MiniOceanDriver:
    """A spun-up mini ocean model shared across read-only tests."""
    driver = MiniOceanDriver(nx=64, ny=32, seed=7)
    driver.advance(30)
    return driver


@pytest.fixture(scope="session")
def mini_fields(mini_driver) -> dict[str, np.ndarray]:
    """Output fields of the shared mini driver (do not mutate)."""
    return mini_driver.output_fields()


@pytest.fixture
def short_spec() -> PipelineSpec:
    """A 1-simulated-month campaign (fast: 10-30 samples)."""
    return PipelineSpec(
        ocean=MPASOceanConfig(duration_seconds=1 * MONTH),
        sampling=SamplingPolicy(72.0),
    )


def paper_spec(hours: float) -> PipelineSpec:
    """The paper's full 6-month campaign at a given cadence."""
    return PipelineSpec(sampling=SamplingPolicy(hours))
