"""Tests for the campaign configuration, cost model and mini driver."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.ocean.driver import MiniOceanDriver, MPASOceanConfig, OceanCostModel
from repro.units import MONTH


class TestMPASOceanConfig:
    def test_reference_configuration(self):
        cfg = MPASOceanConfig()
        assert cfg.n_cells == 163_842
        assert cfg.n_timesteps == 8_640
        # Six 3-D vars × 60 levels + two 2-D vars, 8 B each: ≈0.47 GB/sample.
        assert cfg.bytes_per_sample / 1e9 == pytest.approx(0.472, abs=0.01)

    def test_output_counts_match_paper(self):
        cfg = MPASOceanConfig()
        assert cfg.n_outputs(8.0) == 540
        assert cfg.n_outputs(24.0) == 180
        assert cfg.n_outputs(72.0) == 60

    def test_campaign_storage_matches_paper_shape(self):
        """Raw volumes land near the paper's 230/80/27 GB (Fig. 7)."""
        cfg = MPASOceanConfig()
        for hours, paper_gb in ((8.0, 230.0), (24.0, 80.0), (72.0, 27.0)):
            ours = cfg.n_outputs(hours) * cfg.bytes_per_sample / 1e9
            assert ours == pytest.approx(paper_gb, rel=0.15)

    def test_steps_between_outputs(self):
        cfg = MPASOceanConfig()
        assert cfg.steps_between_outputs(8.0) == 16
        assert cfg.steps_between_outputs(0.5) == 1

    def test_non_integral_cadence_rejected(self):
        cfg = MPASOceanConfig()
        with pytest.raises(ConfigurationError):
            cfg.steps_between_outputs(0.4)  # 48 min is not a 30-min multiple

    def test_scaled_changes_only_duration(self):
        cfg = MPASOceanConfig()
        century = cfg.scaled(200 * cfg.duration_seconds)
        assert century.n_timesteps == 200 * cfg.n_timesteps
        assert century.n_cells == cfg.n_cells

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            MPASOceanConfig(resolution_km=0)
        with pytest.raises(ConfigurationError):
            MPASOceanConfig(timestep_seconds=0)
        with pytest.raises(ConfigurationError):
            MPASOceanConfig(bytes_per_value=3)
        with pytest.raises(ConfigurationError):
            MPASOceanConfig(n_vertical_levels=0)


class TestOceanCostModel:
    def test_reference_simulation_time_is_603s(self):
        """The paper's measured t_sim on 150 nodes."""
        cm = OceanCostModel()
        assert cm.simulation_seconds(MPASOceanConfig(), 150) == pytest.approx(603.0)

    def test_strong_scaling(self):
        cm = OceanCostModel()
        cfg = MPASOceanConfig()
        assert cm.seconds_per_step(cfg, 300) == pytest.approx(
            cm.seconds_per_step(cfg, 150) / 2
        )

    def test_work_scales_with_cells_and_levels(self):
        cm = OceanCostModel()
        small = MPASOceanConfig(resolution_km=120.0)
        big = MPASOceanConfig(resolution_km=60.0)
        assert cm.seconds_per_step(big, 150) > cm.seconds_per_step(small, 150)

    def test_invalid_nodes(self):
        with pytest.raises(ConfigurationError):
            OceanCostModel().seconds_per_step(MPASOceanConfig(), 0)


class TestMiniOceanDriver:
    def test_advance_tracks_time(self):
        d = MiniOceanDriver(nx=32, ny=16, seed=0)
        d.advance(4)
        assert d.step_count == 4
        assert d.time == pytest.approx(4 * 1_800.0)

    def test_output_fields_complete_and_well_formed(self, mini_fields, mini_driver):
        expected = {"u", "v", "vorticity", "okubo_weiss", "temperature",
                    "salinity", "layer_thickness", "ssh"}
        assert set(mini_fields) == expected
        shape = mini_driver.grid.shape
        for name, arr in mini_fields.items():
            assert arr.shape == shape, name
            assert np.isfinite(arr).all(), name
            assert arr.flags["C_CONTIGUOUS"], name

    def test_diagnostic_proxies_physical_ranges(self, mini_fields):
        assert 5.0 < mini_fields["temperature"].mean() < 25.0
        assert 34.0 < mini_fields["salinity"].mean() < 36.0
        assert (mini_fields["layer_thickness"] > 0).all()

    def test_okubo_weiss_consistent_with_fields(self, mini_driver, mini_fields):
        np.testing.assert_allclose(
            mini_driver.okubo_weiss_field(), mini_fields["okubo_weiss"], atol=1e-12
        )

    def test_cfl_guard(self):
        with pytest.raises(ConfigurationError):
            MiniOceanDriver(nx=128, ny=64, timestep_seconds=100_000.0)

    def test_seed_reproducibility(self):
        a = MiniOceanDriver(nx=32, ny=16, seed=5)
        b = MiniOceanDriver(nx=32, ny=16, seed=5)
        a.advance(3)
        b.advance(3)
        np.testing.assert_array_equal(
            a.output_fields()["vorticity"], b.output_fields()["vorticity"]
        )
