"""Tests for storage-side power management (:mod:`repro.storage.governor`)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.storage.governor import StorageDvfsGovernor, wimpy_storage_model
from repro.storage.power import StoragePowerModel


@pytest.fixture
def base() -> StoragePowerModel:
    return StoragePowerModel()


class TestStorageDvfsGovernor:
    def test_idle_power_reduced(self, base):
        gov = StorageDvfsGovernor(base)
        assert gov.power(0.0) < base.power(0.0)
        assert gov.idle_savings_watts() > 0

    def test_full_load_power_unchanged(self, base):
        """Full demand needs nominal frequency: no performance regression."""
        gov = StorageDvfsGovernor(base)
        assert gov.power(base.rated_bandwidth) == pytest.approx(base.full_load_watts)

    def test_frequency_tracks_demand(self, base):
        gov = StorageDvfsGovernor(base, f_min_ratio=0.4)
        assert gov.frequency_for(0.0) == 0.4
        assert gov.frequency_for(base.rated_bandwidth) == 1.0
        assert gov.frequency_for(0.7 * base.rated_bandwidth) == pytest.approx(0.7)
        assert gov.frequency_for(0.1 * base.rated_bandwidth) == 0.4  # floored

    def test_idle_savings_follow_f_cubed(self, base):
        gov = StorageDvfsGovernor(base, cpu_idle_share=0.4, f_min_ratio=0.5)
        cpu_idle = 0.4 * base.idle_watts
        expected = cpu_idle * (1.0 - 0.5**3)
        assert gov.idle_savings_watts() == pytest.approx(expected)

    def test_power_monotone_in_demand(self, base):
        gov = StorageDvfsGovernor(base)
        demands = [f * base.rated_bandwidth for f in (0.0, 0.2, 0.5, 0.8, 1.0)]
        powers = [gov.power(d) for d in demands]
        assert powers == sorted(powers)

    def test_governed_model_is_more_proportional(self, base):
        gov = StorageDvfsGovernor(base)
        governed = gov.governed_model()
        assert governed.proportionality() > 10 * base.proportionality()
        assert governed.full_load_watts == pytest.approx(base.full_load_watts)

    def test_negative_throughput_rejected(self, base):
        with pytest.raises(ConfigurationError):
            StorageDvfsGovernor(base).frequency_for(-1.0)

    def test_validation(self, base):
        with pytest.raises(ConfigurationError):
            StorageDvfsGovernor(base, cpu_idle_share=0.0)
        with pytest.raises(ConfigurationError):
            StorageDvfsGovernor(base, f_min_ratio=0.0)


class TestWimpyStorage:
    def test_idle_and_full_shift_equally(self, base):
        wimpy = wimpy_storage_model(base, cpu_idle_share=0.4, wimpy_ratio=0.25)
        saved = 0.4 * base.idle_watts * 0.75
        assert wimpy.idle_watts == pytest.approx(base.idle_watts - saved)
        assert wimpy.full_load_watts == pytest.approx(base.full_load_watts - saved)

    def test_bandwidth_unchanged(self, base):
        wimpy = wimpy_storage_model(base)
        assert wimpy.rated_bandwidth == base.rated_bandwidth
        assert wimpy.dynamic_watts == pytest.approx(base.dynamic_watts)

    def test_proportionality_improves(self, base):
        wimpy = wimpy_storage_model(base)
        assert wimpy.proportionality() > base.proportionality()

    def test_identity_at_ratio_one(self, base):
        same = wimpy_storage_model(base, wimpy_ratio=1.0)
        assert same.idle_watts == pytest.approx(base.idle_watts)

    def test_validation(self, base):
        with pytest.raises(ConfigurationError):
            wimpy_storage_model(base, wimpy_ratio=0.0)
        with pytest.raises(ConfigurationError):
            wimpy_storage_model(base, cpu_idle_share=1.0)

    def test_wimpy_rack_usable_in_campaign(self, base):
        """The derived model drops straight into the simulated platform."""
        from repro.events.engine import Simulator
        from repro.cluster.machine import caddy
        from repro.ocean.driver import MPASOceanConfig
        from repro.pipelines.base import PipelineSpec
        from repro.pipelines.insitu import InSituPipeline
        from repro.pipelines.platform import SimulatedPlatform
        from repro.pipelines.sampling import SamplingPolicy
        from repro.storage.lustre import StorageCluster
        from repro.units import MONTH

        sim = Simulator()
        platform = SimulatedPlatform(
            cluster=caddy(sim),
            storage=StorageCluster(sim, power_model=wimpy_storage_model(base)),
        )
        spec = PipelineSpec(
            ocean=MPASOceanConfig(duration_seconds=MONTH),
            sampling=SamplingPolicy(72.0),
        )
        from repro.exec.api import RunRequest

        m = InSituPipeline().execute(
            RunRequest(spec=spec), platform=platform
        ).measurement
        assert m.power_report.average_storage_power < base.idle_watts
