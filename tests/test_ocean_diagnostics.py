"""Tests for ocean diagnostics and the in-situ simulation monitor."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.ocean.barotropic import BarotropicSolver
from repro.ocean.diagnostics import (
    SimulationMonitor,
    energy_spectrum,
    spectral_slope,
)
from repro.ocean.grid import SpectralGrid


@pytest.fixture(scope="module")
def turbulent_solver() -> BarotropicSolver:
    solver = BarotropicSolver(SpectralGrid(128, 128), viscosity=5e7, seed=4)
    solver.run(60, 1_800.0)
    return solver


class TestEnergySpectrum:
    def test_parseval(self, turbulent_solver):
        """The spectrum integrates to the domain-mean kinetic energy."""
        _, e = energy_spectrum(turbulent_solver)
        assert e.sum() == pytest.approx(turbulent_solver.kinetic_energy(), rel=1e-6)

    def test_peak_near_injection_scale(self):
        # psi-spectrum peaks at k_peak=6; the k^3 shell factor of E(k)
        # shifts the energy peak to ~2 k_peak.
        solver = BarotropicSolver(SpectralGrid(64, 64), seed=0)
        k, e = energy_spectrum(solver)
        assert 8 <= k[np.argmax(e)] <= 16

    def test_single_mode_spectrum(self):
        """A pure sin(k x) flow concentrates all energy in one bin."""
        g = SpectralGrid(64, 64)
        solver = BarotropicSolver(g, seed=None)
        x, _ = g.coordinates()
        k0 = 2 * np.pi / g.length_m
        # ψ = cos(4 k0 x) -> ζ = -16 k0² cos(4 k0 x); flow is v-only at k=4.
        solver.set_vorticity(-((4 * k0) ** 2) * np.cos(4 * k0 * x))
        k, e = energy_spectrum(solver)
        assert k[np.argmax(e)] == pytest.approx(4.0)
        assert e[np.argmax(e)] / e.sum() > 0.99

    def test_spectrum_nonnegative(self, turbulent_solver):
        _, e = energy_spectrum(turbulent_solver)
        assert (e >= 0).all()


class TestSpectralSlope:
    def test_enstrophy_cascade_slope(self, turbulent_solver):
        """Decaying 2-D turbulence: a falling power law above the energy
        peak (the mildly dissipated mini model sits between the classic
        k^-3 cascade and a shallow enstrophy pile-up)."""
        slope = spectral_slope(turbulent_solver, k_lo=16.0, k_hi=40.0)
        assert -7.0 < slope < -1.2

    def test_fit_range_validation(self, turbulent_solver):
        with pytest.raises(ConfigurationError):
            spectral_slope(turbulent_solver, k_lo=0.0)
        with pytest.raises(ConfigurationError):
            spectral_slope(turbulent_solver, k_lo=30.0, k_hi=8.0)


class TestSimulationMonitor:
    def test_healthy_run_stays_healthy(self):
        solver = BarotropicSolver(SpectralGrid(32, 32), seed=1)
        monitor = SimulationMonitor()
        for _ in range(5):
            solver.run(5, 1_800.0)
            report = monitor.check(solver, 1_800.0)
            assert report.healthy, report.reason
        assert not monitor.ever_unhealthy
        assert len(monitor.history) == 5

    def test_cfl_violation_flagged(self):
        solver = BarotropicSolver(SpectralGrid(32, 32), seed=1)
        monitor = SimulationMonitor(max_cfl=0.5)
        report = monitor.check(solver, dt=1e6)  # absurd timestep
        assert not report.healthy
        assert "CFL" in report.reason

    def test_energy_growth_flagged(self):
        """The Section II-B use case: catch a diverging run early."""
        solver = BarotropicSolver(SpectralGrid(32, 32), seed=1)
        monitor = SimulationMonitor(max_energy_growth=2.0)
        monitor.check(solver, 1_800.0)  # baseline
        # Inject a bad state (as a wrong initial condition would produce).
        solver._zeta_hat *= 3.0
        report = monitor.check(solver, 1_800.0)
        assert not report.healthy
        assert "energy grew" in report.reason
        assert monitor.ever_unhealthy

    def test_nonfinite_state_flagged(self):
        solver = BarotropicSolver(SpectralGrid(32, 32), seed=1)
        monitor = SimulationMonitor()
        solver._zeta_hat[0, 1] = np.nan
        report = monitor.check(solver, 1_800.0)
        assert not report.healthy
        assert "non-finite" in report.reason

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SimulationMonitor(max_energy_growth=1.0)
        with pytest.raises(ConfigurationError):
            SimulationMonitor(max_cfl=0.0)
