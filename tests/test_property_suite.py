"""Cross-module property tests.

Hypothesis-driven invariants that span module boundaries: the analytical
model's algebraic identities, meter/trace consistency, eddy-detection
symmetries and the sampling calendar's arithmetic.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.model import DataModel, PerformanceModel, PipelinePredictor
from repro.ocean.driver import MPASOceanConfig
from repro.ocean.eddies import detect_eddies
from repro.ocean.okubo_weiss import okubo_weiss
from repro.pipelines.sampling import SamplingPolicy
from repro.power.signal import PowerSignal
from repro.power.trace import PowerTrace


def _predictor(alpha, beta, t_sim, power):
    model = PerformanceModel(
        t_sim_ref=t_sim, iter_ref=8_640, alpha=alpha, beta=beta, power_watts=power
    )
    data = DataModel(24.0, 80.0, 180.0, 8_640)
    return PipelinePredictor("p", model, data)


class TestModelAlgebra:
    @settings(deadline=None, max_examples=50)
    @given(
        alpha=st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
        beta=st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
        t_sim=st.floats(min_value=0.0, max_value=1e5, allow_nan=False),
        power=st.floats(min_value=1.0, max_value=1e6, allow_nan=False),
        h=st.floats(min_value=0.5, max_value=1_000.0, allow_nan=False),
    )
    def test_energy_time_ratio_is_power(self, alpha, beta, t_sim, power, h):
        """E / t = P for every query (Eq. 1)."""
        pred = _predictor(alpha, beta, t_sim, power).predict(h)
        # Subnormal execution times (e.g. t_sim = 5e-324) round E = P*t to
        # the nearest denormal and break the exact ratio; require a normal
        # float, which is all Eq. 1 claims.
        assume(pred.execution_time > 1e-300)
        assert pred.energy / pred.execution_time == pytest.approx(power, rel=1e-12)

    @settings(deadline=None, max_examples=50)
    @given(
        h=st.floats(min_value=0.5, max_value=500.0, allow_nan=False),
        factor=st.floats(min_value=1.01, max_value=50.0, allow_nan=False),
    )
    def test_storage_inverse_in_interval(self, h, factor):
        """Eq. 6: S(h) / S(f*h) = f exactly."""
        p = _predictor(6.3, 1.2, 603.0, 46_000.0)
        a = p.predict(h).s_io_gb
        b = p.predict(h * factor).s_io_gb
        assert a / b == pytest.approx(factor, rel=1e-9)

    @settings(deadline=None, max_examples=50)
    @given(
        h=st.floats(min_value=0.5, max_value=500.0, allow_nan=False),
        scale=st.floats(min_value=0.01, max_value=100.0, allow_nan=False),
    )
    def test_everything_linear_in_iterations(self, h, scale):
        """Doubling the campaign doubles time, energy, storage and images."""
        p = _predictor(6.3, 1.2, 603.0, 46_000.0)
        base = p.predict(h, 8_640.0)
        scaled = p.predict(h, 8_640.0 * scale)
        for attr in ("execution_time", "energy", "s_io_gb", "n_viz"):
            assert getattr(scaled, attr) == pytest.approx(
                getattr(base, attr) * scale, rel=1e-9
            )


class TestMeterConsistency:
    @settings(deadline=None, max_examples=40)
    @given(
        changes=st.lists(
            st.tuples(
                st.floats(min_value=1.0, max_value=300.0, allow_nan=False),
                st.floats(min_value=0.0, max_value=5e4, allow_nan=False),
            ),
            min_size=1,
            max_size=12,
        )
    )
    def test_trace_energy_equals_signal_energy(self, changes):
        """Interval-averaged sampling conserves energy exactly."""
        signal = PowerSignal(100.0)
        t = 0.0
        for dt, watts in changes:
            t += dt
            signal.set(t, watts)
        end = t + 60.0
        trace = PowerTrace.from_signal(signal, 0.0, end, 60.0)
        assert trace.energy() == pytest.approx(signal.integrate(0.0, end), rel=1e-9)

    @settings(deadline=None, max_examples=40)
    @given(
        watts=st.lists(
            st.floats(min_value=0.0, max_value=1e5, allow_nan=False),
            min_size=1,
            max_size=20,
        )
    )
    def test_average_between_min_and_max(self, watts):
        trace = PowerTrace(0.0, 60.0, watts)
        assert min(watts) - 1e-9 <= trace.average_power() <= max(watts) + 1e-9


class TestEddySymmetries:
    @settings(deadline=None, max_examples=20)
    @given(
        shift_r=st.integers(min_value=0, max_value=31),
        shift_c=st.integers(min_value=0, max_value=31),
        seed=st.integers(min_value=0, max_value=50),
    )
    def test_detection_count_invariant_under_periodic_shift(
        self, shift_r, shift_c, seed
    ):
        """Rolling the field around the torus cannot change what is found."""
        rng = np.random.default_rng(seed)
        u = rng.standard_normal((32, 32))
        v = rng.standard_normal((32, 32))
        w = okubo_weiss(u, v, 1.0, 1.0)
        base = detect_eddies(w, min_cells=2)
        rolled = detect_eddies(np.roll(np.roll(w, shift_r, 0), shift_c, 1), min_cells=2)
        assert len(rolled) == len(base)
        assert sorted(e.area_cells for e in rolled) == sorted(
            e.area_cells for e in base
        )

    @settings(deadline=None, max_examples=20)
    @given(seed=st.integers(min_value=0, max_value=50))
    def test_velocity_mirror_flips_vorticity_not_w(self, seed):
        """(u, v) -> (u, -v) with x -> -x mirrors the flow: W is preserved."""
        rng = np.random.default_rng(seed)
        u = rng.standard_normal((24, 24))
        v = rng.standard_normal((24, 24))
        w = okubo_weiss(u, v, 1.0, 1.0)
        w_mirror = okubo_weiss(u[:, ::-1], -v[:, ::-1], 1.0, 1.0)
        np.testing.assert_allclose(np.sort(w.ravel()), np.sort(w_mirror.ravel()),
                                   atol=1e-10)


class TestSamplingArithmetic:
    @settings(deadline=None, max_examples=50)
    @given(k=st.integers(min_value=1, max_value=200))
    def test_outputs_times_stride_bounded_by_steps(self, k):
        """n_outputs * steps_between <= total steps, with remainder < stride."""
        cfg = MPASOceanConfig()
        hours = k * 0.5  # every multiple of the timestep is valid
        policy = SamplingPolicy(hours)
        n = policy.n_outputs(cfg)
        stride = policy.steps_between_outputs(cfg)
        assert n * stride <= cfg.n_timesteps
        assert cfg.n_timesteps - n * stride < stride

    @settings(deadline=None, max_examples=50)
    @given(
        a=st.integers(min_value=1, max_value=100),
        b=st.integers(min_value=1, max_value=100),
    )
    def test_rate_ratio_antisymmetry(self, a, b):
        pa, pb = SamplingPolicy(a * 0.5), SamplingPolicy(b * 0.5)
        assert pa.rate_ratio(pb) == pytest.approx(1.0 / pb.rate_ratio(pa))
