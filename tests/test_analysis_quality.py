"""Tests for the sampling-quality analysis (:mod:`repro.analysis.quality`)."""

from __future__ import annotations

import pytest

from repro.analysis.quality import (
    SamplingQuality,
    evaluate_sampling_quality,
    quality_table,
)
from repro.errors import ConfigurationError
from repro.ocean.driver import MiniOceanDriver


def tiny_driver() -> MiniOceanDriver:
    driver = MiniOceanDriver(nx=48, ny=24, seed=9)
    driver.advance(15)
    return driver


@pytest.fixture(scope="module")
def sweep():
    return evaluate_sampling_quality(
        strides=(1, 2, 4, 8), n_steps=32, driver_factory=tiny_driver
    )


class TestEvaluateSamplingQuality:
    def test_one_result_per_stride(self, sweep):
        assert [q.stride for q in sweep] == [1, 2, 4, 8]

    def test_interval_hours_from_timestep(self, sweep):
        # The mini driver's 1800 s timestep -> 0.5 h per stride unit.
        assert sweep[0].interval_hours == pytest.approx(0.5)
        assert sweep[-1].interval_hours == pytest.approx(4.0)

    def test_frame_counts(self, sweep):
        assert sweep[0].n_frames == 32
        assert sweep[-1].n_frames == 4

    def test_link_rate_high_at_native_cadence(self, sweep):
        assert sweep[0].link_rate > 0.85

    def test_link_rate_degrades_with_stride(self, sweep):
        rates = [q.link_rate for q in sweep]
        assert rates[-1] <= rates[0]
        for a, b in zip(rates, rates[1:]):
            assert b <= a + 0.05  # monotone within detection noise

    def test_same_detections_across_strides(self, sweep):
        counts = [q.eddies_per_frame for q in sweep]
        assert max(counts) - min(counts) < 0.15 * max(counts)

    def test_duplicate_strides_deduplicated(self):
        out = evaluate_sampling_quality(
            strides=(2, 2, 1), n_steps=16, driver_factory=tiny_driver
        )
        assert [q.stride for q in out] == [1, 2]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            evaluate_sampling_quality(strides=(), n_steps=16)
        with pytest.raises(ConfigurationError):
            evaluate_sampling_quality(strides=(0,), n_steps=16)
        with pytest.raises(ConfigurationError):
            evaluate_sampling_quality(strides=(16,), n_steps=16)  # <2 frames


class TestSamplingQualityRecord:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SamplingQuality(stride=0, interval_hours=1.0, n_frames=2,
                            eddies_per_frame=1.0, link_rate=0.5,
                            mean_lifetime_hours=1.0, n_tracks=1)
        with pytest.raises(ConfigurationError):
            SamplingQuality(stride=1, interval_hours=1.0, n_frames=2,
                            eddies_per_frame=1.0, link_rate=1.5,
                            mean_lifetime_hours=1.0, n_tracks=1)


class TestQualityTable:
    def test_renders_all_rows(self, sweep):
        table = quality_table(sweep)
        assert table.count("\n") == len(sweep)
        assert "link rate" in table
