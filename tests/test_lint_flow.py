"""Tests for :mod:`repro.lint.flow` — the flow-sensitive dimensional and
determinism analyzer.

Covers the dimension algebra directly, the ``dim-*`` rules on synthetic
sources (including property-style random expression trees with known
dimensions), the inter-procedural call-boundary check, every ``det-*``
rule, and the acceptance meta-test that the shipped tree stays clean
under the flow rules.
"""

from __future__ import annotations

import random as random_module
from pathlib import Path

import pytest

from repro.lint import run_lint
from repro.lint.flow import (
    DIMENSIONLESS,
    PackageIndex,
    Unit,
    index_for,
    parse_unit_spec,
    scan_unit_annotations,
    unit_of_name,
)
from repro.lint.flow.dims import conversion_constant, divide, multiply

REPO_ROOT = Path(__file__).resolve().parent.parent


def lint_source(tmp_path: Path, relpath: str, source: str, select=None) -> list:
    """Write ``source`` at ``tmp_path/relpath`` and lint that one file."""
    target = tmp_path / relpath
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(source, encoding="utf-8")
    return run_lint([str(target)], select=select)


def rule_ids(findings) -> set:
    return {f.rule for f in findings}


FLOW_RULES = [
    "dim-mix", "dim-arg", "dim-return",
    "det-seed", "det-clock", "det-iter", "det-env",
]


# ---------------------------------------------------------------------------
# The dimension algebra.


class TestUnitAlgebra:
    def test_watts_times_seconds_is_joules(self):
        watts = unit_of_name("p_watts")
        seconds = unit_of_name("t_seconds")
        product = multiply(watts, seconds)
        assert product.dims == parse_unit_spec("joules").dims

    def test_joules_per_second_is_watts(self):
        joules = unit_of_name("e_joules")
        seconds = unit_of_name("t_seconds")
        ratio = divide(joules, seconds)
        assert ratio.dims == parse_unit_spec("watts").dims

    def test_scaled_units_share_dims_but_not_scale(self):
        gb = parse_unit_spec("gb")
        b = parse_unit_spec("bytes")
        assert gb.dims == b.dims
        assert gb.scale == 1e9
        assert b.scale == 1.0

    def test_per_compound_names(self):
        bw = unit_of_name("bw_bytes_per_s")
        assert bw is not None
        assert dict(bw.dims) == {"B": 1, "s": -1}

    def test_adjacent_unit_tokens_without_per_are_not_guessed(self):
        # ``bandwidth_mb_s`` usually means MB/s; without ``_per_`` the
        # analyzer must not read it as megabytes-times-seconds.
        assert unit_of_name("bandwidth_mb_s") is None

    def test_single_letter_units_need_an_underscore(self):
        assert unit_of_name("s") is None
        assert unit_of_name("t_s") is not None
        assert unit_of_name("w") is None
        assert unit_of_name("cap_w") is not None

    def test_non_unit_name_is_unknown(self):
        assert unit_of_name("total") is None
        assert unit_of_name("index") is None

    def test_conversion_constant_times_literal_is_canonical(self):
        hour = conversion_constant("s", "hours")
        lit = Unit(dims=(), scale=3.0, label="literal", literal=True)
        q = multiply(lit, hour)
        assert dict(q.dims) == {"s": 1}

    def test_dimensionless_is_not_dimensioned(self):
        assert not DIMENSIONLESS.dimensioned

    def test_annotation_scan_parses_named_and_bare_specs(self):
        source = (
            "def f(t0, payload):  # repro-unit: joules, t0=seconds\n"
            "    return payload\n"
        )
        annotations = scan_unit_annotations(source.splitlines())
        assert annotations, "annotation comment not found"
        (lineno, spec), = list(annotations.items())
        assert lineno == 1
        assert spec.get("") is not None  # bare spec: the return
        assert dict(spec[""].dims) == {"J": 1}
        assert dict(spec["t0"].dims) == {"s": 1}


# ---------------------------------------------------------------------------
# Property-style: random expression trees with known dimensions.

_VARS = {
    "t_seconds": {"s": 1},
    "dt_seconds": {"s": 1},
    "e_joules": {"J": 1},
    "q_joules": {"J": 1},
    "p_watts": {"J": 1, "s": -1},
    "cap_watts": {"J": 1, "s": -1},
    "n_bytes": {"B": 1},
    "size_bytes": {"B": 1},
}


def _dims_mul(a, b, sign=1):
    out = dict(a)
    for sym, power in b.items():
        out[sym] = out.get(sym, 0) + sign * power
        if out[sym] == 0:
            del out[sym]
    return out


def _random_tree(rng, depth):
    """Returns ``(expr_source, dims_dict)`` for a dimensionally valid tree."""
    if depth <= 0 or rng.random() < 0.3:
        name = rng.choice(sorted(_VARS))
        return name, dict(_VARS[name])
    left, ldims = _random_tree(rng, depth - 1)
    right, rdims = _random_tree(rng, depth - 1)
    op = rng.choice(["+", "*", "/"])
    if op == "+":
        if ldims != rdims:
            # Mismatched operands cannot be added; fall back to multiply,
            # which is dimensionally unrestricted.
            op = "*"
        else:
            return f"({left} + {right})", ldims
    if op == "*":
        return f"({left} * {right})", _dims_mul(ldims, rdims)
    return f"({left} / {right})", _dims_mul(ldims, rdims, sign=-1)


@pytest.mark.parametrize("seed", range(25))
def test_valid_random_trees_lint_clean(tmp_path, seed):
    rng = random_module.Random(seed)
    expr, _ = _random_tree(rng, depth=4)
    params = ", ".join(sorted(_VARS))
    source = f"def f({params}):\n    return {expr}\n"
    findings = lint_source(tmp_path, f"tree_{seed}.py", source, select=["dim-mix"])
    assert findings == [], "\n".join(str(f) for f in findings)


@pytest.mark.parametrize("seed", range(25))
def test_injected_mix_in_random_tree_is_flagged(tmp_path, seed):
    rng = random_module.Random(1000 + seed)
    expr, dims = _random_tree(rng, depth=3)
    # Pick an addend with definitely different, non-empty dimensions.
    foreign = next(
        name for name in sorted(_VARS)
        if _VARS[name] != dims
    )
    if not dims:
        pytest.skip("tree collapsed to dimensionless; addition is unchecked")
    params = ", ".join(sorted(_VARS))
    source = f"def f({params}):\n    return {expr} + {foreign}\n"
    findings = lint_source(tmp_path, f"mix_{seed}.py", source, select=["dim-mix"])
    assert "dim-mix" in rule_ids(findings), source


# ---------------------------------------------------------------------------
# dim-* rules on targeted fixtures.


class TestDimRules:
    def test_watts_plus_joules_is_flagged(self, tmp_path):
        findings = lint_source(
            tmp_path, "mod.py",
            "def f(p_watts, e_joules):\n    return p_watts + e_joules\n",
        )
        assert "dim-mix" in rule_ids(findings)

    def test_energy_identity_is_clean(self, tmp_path):
        findings = lint_source(
            tmp_path, "mod.py",
            "def f(p_watts, t_seconds, e_joules):\n"
            "    return p_watts * t_seconds + e_joules\n",
        )
        assert findings == []

    def test_power_identity_via_division_is_clean(self, tmp_path):
        findings = lint_source(
            tmp_path, "mod.py",
            "def f(e_joules, t_seconds, cap_watts):\n"
            "    return e_joules / t_seconds < cap_watts\n",
        )
        assert findings == []

    def test_comparison_across_dims_is_flagged(self, tmp_path):
        findings = lint_source(
            tmp_path, "mod.py",
            "def f(t_seconds, n_bytes):\n    return t_seconds < n_bytes\n",
        )
        assert "dim-mix" in rule_ids(findings)

    def test_annotation_overrides_name(self, tmp_path):
        source = (
            "def mean(total_joules, n):  # repro-unit: joules\n"
            "    return total_joules / n\n"
        )
        assert lint_source(tmp_path, "mod.py", source) == []

    def test_return_contradicting_annotation_is_flagged(self, tmp_path):
        source = (
            "def energy(p_watts, t_seconds):  # repro-unit: seconds\n"
            "    return p_watts * t_seconds\n"
        )
        findings = lint_source(tmp_path, "mod.py", source)
        assert "dim-return" in rule_ids(findings)

    def test_name_promises_unit_but_returns_another(self, tmp_path):
        source = (
            "def total_seconds(e_joules, p_watts):\n"
            "    return e_joules * p_watts\n"
        )
        findings = lint_source(tmp_path, "mod.py", source)
        assert "dim-return" in rule_ids(findings)

    def test_assignment_propagates_units(self, tmp_path):
        source = (
            "def f(p_watts, t_seconds):\n"
            "    energy = p_watts * t_seconds\n"
            "    return energy + t_seconds\n"
        )
        findings = lint_source(tmp_path, "mod.py", source)
        assert "dim-mix" in rule_ids(findings)

    def test_branch_conflict_degrades_to_unknown(self, tmp_path):
        source = (
            "def f(flag, t_seconds, n_bytes):\n"
            "    if flag:\n"
            "        x = t_seconds\n"
            "    else:\n"
            "        x = n_bytes\n"
            "    return x + t_seconds\n"
        )
        # After the merge ``x`` is unknown, so the add must not fire.
        assert lint_source(tmp_path, "mod.py", source) == []

    def test_intra_file_call_site_is_checked(self, tmp_path):
        source = (
            "def store(payload_bytes):\n"
            "    return payload_bytes\n"
            "\n"
            "\n"
            "def go(duration_seconds):\n"
            "    return store(duration_seconds)\n"
        )
        findings = lint_source(tmp_path, "mod.py", source)
        assert "dim-arg" in rule_ids(findings)


class TestInterProcedural:
    """A wrong-unit value crossing a module boundary must be caught."""

    def _make_package(self, tmp_path):
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "__init__.py").write_text("")
        (pkg / "storage.py").write_text(
            "def write(nbytes):  # repro-unit: nbytes=bytes\n"
            "    return nbytes\n",
            encoding="utf-8",
        )
        return pkg

    def test_seconds_into_bytes_parameter_across_modules(self, tmp_path):
        pkg = self._make_package(tmp_path)
        driver = pkg / "driver.py"
        driver.write_text(
            "from pkg.storage import write\n"
            "\n"
            "\n"
            "def go(duration_seconds):\n"
            "    return write(duration_seconds)\n",
            encoding="utf-8",
        )
        findings = run_lint([str(driver)])
        assert "dim-arg" in rule_ids(findings), findings

    def test_correct_unit_across_modules_is_clean(self, tmp_path):
        pkg = self._make_package(tmp_path)
        driver = pkg / "driver.py"
        driver.write_text(
            "from pkg.storage import write\n"
            "\n"
            "\n"
            "def go(payload_bytes):\n"
            "    return write(payload_bytes)\n",
            encoding="utf-8",
        )
        assert run_lint([str(driver)]) == []

    def test_module_alias_call_is_resolved(self, tmp_path):
        pkg = self._make_package(tmp_path)
        driver = pkg / "driver.py"
        driver.write_text(
            "from pkg import storage\n"
            "\n"
            "\n"
            "def go(duration_seconds):\n"
            "    return storage.write(duration_seconds)\n",
            encoding="utf-8",
        )
        findings = run_lint([str(driver)])
        assert "dim-arg" in rule_ids(findings)

    def test_package_index_summarizes_functions(self, tmp_path):
        pkg = self._make_package(tmp_path)
        index, module = index_for(pkg / "storage.py")
        assert isinstance(index, PackageIndex)
        summary = index.function(module, "write")
        assert summary is not None
        assert summary.param_units.get("nbytes") is not None


# ---------------------------------------------------------------------------
# det-* rules.


class TestDetRules:
    def test_module_level_unseeded_rng(self, tmp_path):
        findings = lint_source(
            tmp_path, "mod.py", "import random\n\nx = random.random()\n",
        )
        assert "det-seed" in rule_ids(findings)

    def test_seeded_instance_is_clean(self, tmp_path):
        findings = lint_source(
            tmp_path, "mod.py",
            "import random\n\nrng = random.Random(42)\nx = rng.random()\n",
        )
        assert findings == []

    def test_wall_clock_into_cache_key(self, tmp_path):
        source = (
            "import time\n"
            "\n"
            "\n"
            "def f():\n"
            "    cache_key = time.time()\n"
            "    return cache_key\n"
        )
        findings = lint_source(tmp_path, "mod.py", source)
        assert "det-clock" in rule_ids(findings)

    def test_wall_clock_into_payload(self, tmp_path):
        source = (
            "import time\n"
            "\n"
            "\n"
            "def f(request, RunResult):\n"
            "    stamp = time.time()\n"
            "    return RunResult(request=request, stamp=stamp)\n"
        )
        findings = lint_source(tmp_path, "mod.py", source)
        assert "det-clock" in rule_ids(findings)

    def test_pid_into_payload(self, tmp_path):
        source = (
            "import os\n"
            "\n"
            "\n"
            "def f(request, RunResult):\n"
            "    tag = os.getpid()\n"
            "    return RunResult(request=request, tag=tag)\n"
        )
        findings = lint_source(tmp_path, "mod.py", source)
        assert "det-env" in rule_ids(findings)

    def test_set_iteration_feeding_accumulation(self, tmp_path):
        source = (
            "def total(values):\n"
            "    acc = 0.0\n"
            "    for v in {1.0, 2.0, 3.0}:\n"
            "        acc += v\n"
            "    return acc\n"
        )
        findings = lint_source(tmp_path, "mod.py", source)
        assert "det-iter" in rule_ids(findings)

    def test_sorted_washes_the_order(self, tmp_path):
        source = (
            "def total(values):\n"
            "    acc = 0.0\n"
            "    for v in sorted({1.0, 2.0, 3.0}):\n"
            "        acc += v\n"
            "    return acc\n"
        )
        assert lint_source(tmp_path, "mod.py", source) == []

    def test_suppression_comment_silences_det_rule(self, tmp_path):
        findings = lint_source(
            tmp_path, "mod.py",
            "import random\n\n"
            "x = random.random()  # repro-lint: disable=det-seed\n",
        )
        assert findings == []


# ---------------------------------------------------------------------------
# Acceptance: the shipped tree stays clean under the flow rules.


class TestShippedTreeCleanUnderFlowRules:
    def test_src_is_clean_with_flow_rules_only(self):
        findings = run_lint([str(REPO_ROOT / "src")], select=FLOW_RULES)
        assert findings == [], "\n".join(str(f) for f in findings)

    def test_tests_and_benchmarks_are_clean_with_det_rules(self):
        paths = [str(REPO_ROOT / "tests"), str(REPO_ROOT / "benchmarks")]
        examples = REPO_ROOT / "examples"
        if examples.is_dir():
            paths.append(str(examples))
        findings = run_lint(paths, select=FLOW_RULES)
        assert findings == [], "\n".join(str(f) for f in findings)
