"""Failure propagation through the DES engine.

The fault-injection layer leans on exact engine semantics: failed events
throw into waiting generators, composite conditions fail fast, interrupts
run ``try/finally`` cleanup, and a drained queue with live waiters is a
deadlock.  These tests pin each of those behaviours down.
"""

from __future__ import annotations

import pytest

from repro.errors import DeadlockError, Interrupt, SimulationError
from repro.events.engine import Simulator


class TestFailedEventPropagation:
    def test_failed_event_throws_into_waiting_process(self, sim):
        caught = []

        def proc():
            try:
                yield ev
            except ValueError as exc:
                caught.append(str(exc))

        ev = sim.event()
        sim.process(proc())
        ev.fail(ValueError("boom"))
        sim.run()
        assert caught == ["boom"]

    def test_uncaught_throw_fails_the_process_event(self, sim):
        def child():
            yield ev

        def supervisor():
            try:
                yield proc
            except ValueError as exc:
                seen.append(str(exc))

        seen = []
        ev = sim.event()
        proc = sim.process(child())
        sim.process(supervisor())
        ev.fail(ValueError("child dies"))
        sim.run()
        assert seen == ["child dies"]
        assert proc.triggered and not proc.ok

    def test_undefused_process_failure_escapes_run(self, sim):
        def child():
            yield sim.timeout(1.0)
            raise RuntimeError("nobody watching")

        sim.process(child())
        with pytest.raises(RuntimeError, match="nobody watching"):
            sim.run()

    def test_yielding_processed_failed_event_throws_immediately(self, sim):
        caught = []

        def proc():
            yield sim.timeout(1.0)
            try:
                yield ev  # already processed and failed by now
            except KeyError:
                caught.append(sim.now)

        ev = sim.event()
        ev.fail(KeyError("gone"))
        ev.defused = True
        sim.process(proc())
        sim.run()
        assert caught == [1.0]


class TestConditionFailure:
    def test_all_of_fails_fast_on_first_failure(self, sim):
        outcomes = []

        def proc():
            try:
                yield sim.all_of([sim.timeout(10.0), ev])
            except OSError:
                outcomes.append(sim.now)

        ev = sim.event()
        sim.process(proc())
        fuse = sim.timeout(1.0)
        fuse.callbacks.append(lambda _e: ev.fail(OSError("disk")))
        sim.run()
        # Failure surfaced at t=1, without waiting for the t=10 timeout.
        assert outcomes == [1.0]

    def test_any_of_propagates_failure(self, sim):
        outcomes = []

        def proc():
            try:
                yield sim.any_of([ev, sim.timeout(10.0)])
            except OSError as exc:
                outcomes.append(str(exc))

        ev = sim.event()
        sim.process(proc())
        fuse = sim.timeout(1.0)
        fuse.callbacks.append(lambda _e: ev.fail(OSError("disk")))
        sim.run()
        assert outcomes == ["disk"]

    def test_any_of_success_defuses_late_failure(self, sim):
        results = []

        def proc():
            got = yield sim.any_of([sim.timeout(1.0, value="fast"), slow])
            results.append(list(got.values()))

        slow = sim.event()
        sim.process(proc())
        fuse = sim.timeout(2.0)
        fuse.callbacks.append(lambda _e: slow.fail(RuntimeError("late")))
        sim.run()  # the late failure must not crash the run
        assert results == [["fast"]]

    def test_all_of_collects_all_values(self, sim):
        results = []

        def proc():
            got = yield sim.all_of([sim.timeout(1.0, value="a"), sim.timeout(2.0, value="b")])
            results.append(sorted(got.values()))

        sim.process(proc())
        sim.run()
        assert results == [["a", "b"]]


class TestInterrupt:
    def test_interrupt_runs_finally_blocks(self, sim):
        cleaned = []

        def proc():
            try:
                yield sim.timeout(100.0)
            finally:
                cleaned.append(sim.now)

        p = sim.process(proc())
        fuse = sim.timeout(3.0)
        fuse.callbacks.append(lambda _e: p.interrupt())
        with pytest.raises(Interrupt):
            sim.run()
        assert cleaned == [3.0]

    def test_interrupt_carries_custom_exception(self, sim):
        caught = []

        def proc():
            try:
                yield sim.timeout(100.0)
            except ConnectionError as exc:
                caught.append(str(exc))

        p = sim.process(proc())
        fuse = sim.timeout(3.0)
        fuse.callbacks.append(lambda _e: p.interrupt(ConnectionError("cable pulled")))
        sim.run()
        assert caught == ["cable pulled"]

    def test_interrupt_detaches_from_waited_event(self, sim):
        def proc():
            try:
                yield target
            except Interrupt:
                pass
            yield sim.timeout(1.0)

        target = sim.event()
        p = sim.process(proc())
        fuse = sim.timeout(1.0)
        fuse.callbacks.append(lambda _e: p.interrupt())
        sim.run()
        # The original target later firing must not resume the process twice.
        target.succeed("late")
        sim.run()
        assert p.triggered and p.ok

    def test_interrupting_finished_process_rejected(self, sim):
        def proc():
            yield sim.timeout(1.0)

        p = sim.process(proc())
        sim.run()
        with pytest.raises(SimulationError):
            p.interrupt()

    def test_interrupt_survivor_continues(self, sim):
        trace = []

        def proc():
            try:
                yield sim.timeout(100.0)
            except Interrupt:
                trace.append(("interrupted", sim.now))
            yield sim.timeout(5.0)
            trace.append(("done", sim.now))

        p = sim.process(proc())
        fuse = sim.timeout(10.0)
        fuse.callbacks.append(lambda _e: p.interrupt())
        sim.run()
        assert trace == [("interrupted", 10.0), ("done", 15.0)]


class TestDeadlock:
    def test_drained_queue_with_waiters_is_deadlock(self, sim):
        def proc():
            yield sim.event()  # nobody will ever trigger this

        sim.process(proc())
        with pytest.raises(DeadlockError, match="1 process"):
            sim.run()

    def test_clean_completion_is_not_deadlock(self, sim):
        def proc():
            yield sim.timeout(1.0)

        sim.process(proc())
        sim.run()
        assert sim.now == 1.0
