"""Tests for the in-transit pipeline extension."""

from __future__ import annotations

import os

import pytest

from repro.errors import ConfigurationError
from repro.exec.api import RunRequest
from repro.ocean.driver import MPASOceanConfig
from repro.pipelines.base import PipelineSpec
from repro.pipelines.insitu import InSituPipeline
from repro.pipelines.intransit import IN_TRANSIT, InTransitPipeline
from repro.pipelines.platform import RealPlatform, RealScale, SimulatedPlatform
from repro.pipelines.sampling import SamplingPolicy
from repro.units import MONTH


@pytest.fixture
def spec():
    return PipelineSpec(
        ocean=MPASOceanConfig(duration_seconds=1 * MONTH),
        sampling=SamplingPolicy(24.0),
    )


class TestSimulatedInTransit:
    def test_measurement_shape(self, spec):
        m = InTransitPipeline(n_staging_nodes=15).execute(RunRequest(spec=spec)).measurement
        assert m.pipeline == IN_TRANSIT
        assert m.n_outputs == 30
        assert m.n_images == 30
        assert m.energy is not None

    def test_rendering_off_the_critical_path(self, spec):
        """With enough staging nodes, total time ≈ simulation time."""
        m = InTransitPipeline(n_staging_nodes=60).execute(RunRequest(spec=spec)).measurement
        assert m.execution_time == pytest.approx(m.simulation_time, rel=0.05)

    def test_starved_staging_causes_stalls(self, spec):
        m = InTransitPipeline(n_staging_nodes=2).execute(RunRequest(spec=spec)).measurement
        assert m.timeline.total("stall") > 0.1 * m.execution_time

    def test_simulation_slows_with_fewer_sim_nodes(self, spec):
        small = InTransitPipeline(n_staging_nodes=75).execute(RunRequest(spec=spec)).measurement
        big = InTransitPipeline(n_staging_nodes=15).execute(RunRequest(spec=spec)).measurement
        # 75 sim nodes vs 135 sim nodes: the sim phase is ~1.8x slower.
        assert small.simulation_time == pytest.approx(
            big.simulation_time * 135 / 75, rel=0.01
        )

    def test_storage_is_image_only(self, spec):
        m = InTransitPipeline(n_staging_nodes=15).execute(RunRequest(spec=spec)).measurement
        raw = spec.n_outputs * spec.ocean.bytes_per_sample
        assert m.storage_bytes < 0.02 * raw

    def test_right_sized_staging_beats_insitu(self):
        """The Rodero et al. placement question has a winning answer."""
        full = PipelineSpec(sampling=SamplingPolicy(24.0))
        insitu = InSituPipeline().execute(RunRequest(spec=full)).measurement
        intransit = InTransitPipeline(n_staging_nodes=30).execute(RunRequest(spec=full)).measurement
        assert intransit.execution_time < insitu.execution_time

    def test_all_samples_drain_before_finish(self, spec):
        m = InTransitPipeline(n_staging_nodes=10).execute(RunRequest(spec=spec)).measurement
        assert m.n_images == m.n_outputs  # staging finished every sample

    def test_staging_validation(self):
        with pytest.raises(ConfigurationError):
            InTransitPipeline(n_staging_nodes=0)

    def test_staging_larger_than_cluster_rejected(self, spec):
        platform = SimulatedPlatform()
        with pytest.raises(ConfigurationError):
            InTransitPipeline(n_staging_nodes=150).execute(
                RunRequest(spec=spec), platform=platform
            )


class TestRealInTransit:
    def test_real_run_produces_artifacts(self, tmp_path):
        scale = RealScale(nx=32, ny=16, n_steps=8, steps_between_outputs=2,
                          image_width=48, image_height=24, spinup_steps=4)
        platform = RealPlatform(str(tmp_path), scale=scale)
        m = InTransitPipeline().execute(
            RunRequest(mode="real"), platform=platform
        ).measurement
        assert m.pipeline == IN_TRANSIT
        assert m.n_outputs == 4
        assert m.n_images == 4
        run_dirs = [p for p in os.listdir(tmp_path) if p.startswith("in-transit")]
        assert run_dirs
        cinema = os.path.join(tmp_path, run_dirs[0], "cinema")
        assert os.path.exists(os.path.join(cinema, "info.json"))
        pngs = [f for f in os.listdir(cinema) if f.endswith(".png")]
        assert len(pngs) == 4

    def test_real_run_overlaps_render_with_simulation(self, tmp_path):
        """The staging worker really runs concurrently: total wall time is
        less than the serial sum of phases."""
        scale = RealScale(nx=64, ny=32, n_steps=12, steps_between_outputs=2,
                          image_width=256, image_height=128, spinup_steps=4)
        platform = RealPlatform(str(tmp_path), scale=scale)
        m = InTransitPipeline().execute(
            RunRequest(mode="real"), platform=platform
        ).measurement
        phases = m.timeline.by_phase()
        # Rendering happened inside the worker thread, concurrent with the
        # simulation: it never appears as a serial phase, and the serial
        # phases (simulation + stalls + drain) cannot exceed the wall clock.
        assert "viz" not in phases
        assert sum(phases.values()) <= m.execution_time * 1.05 + 0.05
        assert m.n_images == m.n_outputs  # the worker drained everything
