"""Tests for the execution engine: the RunRequest/RunResult API, the
content-addressed cache, parallel-vs-serial bit-identity, deprecation
shims, and the ``repro bench`` runner."""

from __future__ import annotations

import hashlib
import json
import os
import warnings

import pytest

from repro import obs, paper
from repro.core.metrics import IN_SITU, POST_PROCESSING
from repro.core.model import DataModel, PerformanceModel, PipelinePredictor
from repro.core.whatif import (
    EnergyRateRow,
    FailureSweepResult,
    RateSweepResult,
    StorageRateRow,
    SweepResult,
    WhatIfAnalyzer,
)
from repro.errors import ConfigurationError
from repro.exec.api import (
    MODE_REAL,
    RunRequest,
    RunResult,
    build_pipeline,
    pipeline_factories,
    reset_legacy_warnings,
)
from repro.exec.bench import compare_to_baseline, run_bench, write_report
from repro.exec.cache import QUARANTINE_DIRNAME, DiskCache
from repro.exec.engine import ExecutionEngine, execute_request
from repro.obs.manifest import SCHEMA_VERSION
from repro.ocean.driver import MPASOceanConfig
from repro.pipelines.base import PipelineSpec
from repro.pipelines.insitu import InSituPipeline
from repro.pipelines.intransit import InTransitPipeline
from repro.pipelines.platform import SimulatedPlatform
from repro.pipelines.postprocessing import PostProcessingPipeline
from repro.pipelines.sampling import SamplingPolicy
from repro.units import MONTH, years


def tiny_spec(hours: float = 72.0) -> PipelineSpec:
    """A 1-simulated-month campaign — fast enough to run many times."""
    return PipelineSpec(
        ocean=MPASOceanConfig(duration_seconds=MONTH),
        sampling=SamplingPolicy(hours),
    )


def tiny_requests() -> list:
    return [
        RunRequest(pipeline=name, spec=tiny_spec(hours))
        for hours in (24.0, 72.0)
        for name in (IN_SITU, POST_PROCESSING)
    ]


class TestRunRequest:
    def test_defaults(self):
        request = RunRequest()
        assert request.spec is not None
        assert request.mode == "simulated"
        assert request.cacheable

    def test_mode_validation(self):
        with pytest.raises(ConfigurationError):
            RunRequest(mode="imaginary")

    def test_real_mode_rejects_fault_features(self):
        from repro.faults.spec import FaultSpec

        with pytest.raises(ConfigurationError):
            RunRequest(mode=MODE_REAL, faults=FaultSpec(seed=0), workdir="/tmp/x")

    def test_simulated_mode_rejects_workdir(self):
        with pytest.raises(ConfigurationError):
            RunRequest(workdir="/tmp/x")

    def test_real_mode_not_cacheable(self):
        assert not RunRequest(mode=MODE_REAL, workdir="/tmp/x").cacheable

    def test_pipeline_args_normalized(self):
        a = RunRequest(pipeline_args={"b": 2, "a": 1})
        b = RunRequest(pipeline_args=[("a", 1), ("b", 2)])
        assert a.pipeline_args == b.pipeline_args == (("a", 1), ("b", 2))

    def test_bound_to_fills_identity(self):
        request = RunRequest().bound_to(InTransitPipeline(n_staging_nodes=15))
        assert request.pipeline == "in-transit"
        assert request.pipeline_args == (("n_staging_nodes", 15),)

    def test_bound_to_rejects_name_mismatch(self):
        with pytest.raises(ConfigurationError):
            RunRequest(pipeline=IN_SITU).bound_to(PostProcessingPipeline())

    def test_round_trip_preserves_cache_key(self):
        request = RunRequest(pipeline=IN_SITU, spec=tiny_spec(), seed=7)
        clone = RunRequest.from_dict(request.to_dict())
        assert clone.cache_key("v1") == request.cache_key("v1")
        assert request.to_dict()["schema_version"] == SCHEMA_VERSION

    def test_cache_key_sensitivity(self):
        base = RunRequest(pipeline=IN_SITU, spec=tiny_spec())
        assert base.cache_key("v1") != base.cache_key("v2")
        other = RunRequest(pipeline=IN_SITU, spec=tiny_spec(), seed=1)
        assert base.cache_key("v1") != other.cache_key("v1")

    def test_task_seed_deterministic(self):
        request = RunRequest(pipeline=IN_SITU, spec=tiny_spec())
        assert request.task_seed() == request.task_seed()
        assert 0 <= request.task_seed() < 2**31

    def test_registry_builds_pipelines(self):
        assert set(pipeline_factories()) == {IN_SITU, POST_PROCESSING, "in-transit"}
        pipeline = build_pipeline(
            RunRequest(pipeline="in-transit", pipeline_args={"n_staging_nodes": 5})
        )
        assert pipeline.n_staging_nodes == 5
        with pytest.raises(ConfigurationError):
            build_pipeline(RunRequest(pipeline="mystery"))


class TestDiskCache:
    def test_put_get_round_trip(self, tmp_path):
        cache = DiskCache(str(tmp_path), code_version="v1")
        cache.put("ab" + "0" * 62, {"x": 1}, meta={"request": {"seed": 0}})
        key = "ab" + "0" * 62
        assert key in cache
        assert cache.get(key) == {"x": 1}
        assert cache.meta(key)["code_version"] == "v1"
        assert cache.meta(key)["schema_version"] == SCHEMA_VERSION
        assert cache.keys() == [key]
        assert len(cache) == 1

    def test_miss_and_torn_entry(self, tmp_path):
        cache = DiskCache(str(tmp_path), code_version="v1")
        key = "cd" + "0" * 62
        assert cache.get(key) is None
        # A torn (half-written) payload is a miss, not a crash.
        shard = tmp_path / key[:2]
        shard.mkdir()
        (shard / f"{key}.pkl").write_bytes(b"\x80\x04 not a pickle")
        assert cache.get(key) is None

    def test_clear(self, tmp_path):
        cache = DiskCache(str(tmp_path), code_version="v1")
        cache.put("ef" + "0" * 62, [1, 2, 3])
        assert cache.clear() == 1
        assert len(cache) == 0

    def test_empty_directory_rejected(self):
        with pytest.raises(ConfigurationError):
            DiskCache("")

    def test_sidecar_records_payload_digest(self, tmp_path):
        cache = DiskCache(str(tmp_path), code_version="v1")
        key = "ab" + "0" * 62
        cache.put(key, {"x": 1})
        meta = cache.meta(key)
        raw = (tmp_path / key[:2] / f"{key}.pkl").read_bytes()
        assert meta["payload_sha256"] == hashlib.sha256(raw).hexdigest()
        assert meta["payload_bytes"] == len(raw)

    def test_corrupt_payload_is_quarantined(self, tmp_path):
        cache = DiskCache(str(tmp_path), code_version="v1")
        key = "ab" + "0" * 62
        cache.put(key, {"x": 1})
        payload = tmp_path / key[:2] / f"{key}.pkl"
        with open(payload, "r+b") as fh:
            fh.write(b"\xde\xad\xbe\xef")
        assert cache.get(key) is None
        assert cache.corrupt_quarantined == 1
        # The entry moved aside — gone from the key listing, present in
        # quarantine, and a later get() is a plain miss (no re-hash loop).
        assert cache.keys() == []
        qdir = tmp_path / QUARANTINE_DIRNAME
        assert sorted(p.name for p in qdir.iterdir()) == [
            f"{key}.json", f"{key}.pkl",
        ]
        assert cache.get(key) is None
        assert cache.corrupt_quarantined == 1

    def test_keys_exclude_quarantine_and_are_sorted(self, tmp_path):
        cache = DiskCache(str(tmp_path), code_version="v1")
        keys = ["ff" + "0" * 62, "aa" + "0" * 62, "0f" + "0" * 62]
        for key in keys:
            cache.put(key, {"k": key})
        corrupt = keys[0]
        with open(tmp_path / corrupt[:2] / f"{corrupt}.pkl", "r+b") as fh:
            fh.write(b"\x00\x00")
        assert cache.get(corrupt) is None
        assert cache.keys() == sorted(keys[1:])

    def test_meta_tolerates_torn_sidecar(self, tmp_path):
        cache = DiskCache(str(tmp_path), code_version="v1")
        key = "ab" + "0" * 62
        cache.put(key, {"x": 1})
        sidecar = tmp_path / key[:2] / f"{key}.json"
        sidecar.write_text('{"schema_version": 1, "trunc')
        assert cache.meta(key) is None
        sidecar.write_text('["not", "an", "object"]')
        assert cache.meta(key) is None
        # With the sidecar's digest gone the payload check is skipped — the
        # pre-digest-era entry still replays.
        assert cache.get(key) == {"x": 1}


class TestExecutionEngine:
    def test_single_run_inline(self):
        result = ExecutionEngine().run(RunRequest(pipeline=IN_SITU, spec=tiny_spec()))
        assert result.engine == "inline"
        assert not result.cache_hit
        assert result.measurement.pipeline == IN_SITU
        assert result.wall_seconds > 0

    def test_invalid_workers(self):
        with pytest.raises(ConfigurationError):
            ExecutionEngine(max_workers=0)

    def test_parallel_bit_identical_to_serial(self):
        requests = tiny_requests()
        serial = ExecutionEngine(max_workers=1).map(requests)
        parallel = ExecutionEngine(max_workers=2).map(requests)
        assert [r.engine for r in parallel] == ["pool"] * len(requests)
        for s, p in zip(serial, parallel):
            assert s.identity_dict() == p.identity_dict()

    def test_cache_replay_bit_identical(self, tmp_path):
        requests = tiny_requests()
        engine = ExecutionEngine(cache=DiskCache(str(tmp_path), code_version="v1"))
        cold = engine.map(requests)
        warm = engine.map(requests)
        assert engine.cache_misses == len(requests)
        assert engine.cache_hits == len(requests)
        assert [r.engine for r in warm] == ["cache"] * len(requests)
        assert all(r.cache_hit for r in warm)
        for c, w in zip(cold, warm):
            assert c.identity_dict() == w.identity_dict()
            assert c.cache_key == w.cache_key

    def test_code_version_invalidates_cache(self, tmp_path):
        request = RunRequest(pipeline=IN_SITU, spec=tiny_spec())
        old = ExecutionEngine(cache=DiskCache(str(tmp_path), code_version="v1"))
        old.run(request)
        new = ExecutionEngine(cache=DiskCache(str(tmp_path), code_version="v2"))
        new.run(request)
        assert new.cache_hits == 0 and new.cache_misses == 1

    def test_execute_request_is_deterministic(self):
        request = RunRequest(pipeline=POST_PROCESSING, spec=tiny_spec())
        a = execute_request(request)
        b = execute_request(request)
        assert a.identity_dict() == b.identity_dict()

    def test_session_config_records_provenance(self, tmp_path):
        engine = ExecutionEngine(
            max_workers=1, cache=DiskCache(str(tmp_path), code_version="v1")
        )
        with obs.session() as sess:
            engine.run(RunRequest(pipeline=IN_SITU, spec=tiny_spec()))
            recorded = sess.config["exec"]
        assert recorded["workers"] == 1
        assert recorded["cache"]["code_version"] == "v1"
        assert recorded["cache_misses"] == 1
        assert recorded["tasks_executed"] == 1

    def test_faulted_runs_replay_with_summary(self, tmp_path):
        from repro.faults.resilience import CheckpointPolicy
        from repro.faults.spec import FaultSpec

        request = RunRequest(
            pipeline=IN_SITU,
            spec=tiny_spec(24.0),
            faults=FaultSpec.campaign(seed=3, horizon_seconds=400.0, mtbf_hours=0.05),
            checkpoints=CheckpointPolicy(every_n_outputs=2),
        )
        engine = ExecutionEngine(cache=DiskCache(str(tmp_path), code_version="v1"))
        cold = engine.run(request)
        warm = engine.run(request)
        assert warm.cache_hit
        assert warm.fault_summary == cold.fault_summary
        assert warm.recoveries == cold.recoveries


class TestDeprecationShims:
    def test_simulated_platform_run_warns_once(self):
        reset_legacy_warnings()
        spec = tiny_spec()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            legacy = SimulatedPlatform().run(InSituPipeline(), spec)  # repro-lint: disable=api-deprecated
            SimulatedPlatform().run(InSituPipeline(), spec)  # repro-lint: disable=api-deprecated
        relevant = [w for w in caught if issubclass(w.category, DeprecationWarning)]
        assert len(relevant) == 1
        assert "docs/MIGRATION.md" in str(relevant[0].message)
        # The shim and the new path produce the identical measurement.
        modern = InSituPipeline().execute(RunRequest(spec=spec)).measurement
        assert legacy.to_dict() == modern.to_dict()

    def test_positional_sweep_warns_once_and_matches_keyword(self, analyzer):
        reset_legacy_warnings()
        century = years(paper.WHATIF_YEARS)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            legacy = analyzer.sweep([24.0], century)  # repro-lint: disable=api-deprecated
            analyzer.sweep([24.0], century)  # repro-lint: disable=api-deprecated
        relevant = [w for w in caught if issubclass(w.category, DeprecationWarning)]
        assert len(relevant) == 1
        modern = analyzer.sweep(intervals_hours=[24.0], duration_seconds=century)
        assert legacy.to_dict() == modern.to_dict()

    def test_missing_keywords_raise_type_error(self, analyzer):
        with pytest.raises(TypeError, match="intervals_hours"):
            analyzer.sweep(duration_seconds=1.0)
        with pytest.raises(TypeError, match="mtbf_hours"):
            analyzer.failure_aware_sweep(
                intervals_hours=[24.0], duration_seconds=1.0
            )


@pytest.fixture
def analyzer() -> WhatIfAnalyzer:
    model = PerformanceModel(
        t_sim_ref=paper.EQ5_T_SIM,
        iter_ref=paper.CAMPAIGN_TIMESTEPS,
        alpha=paper.EQ5_ALPHA_S_PER_GB,
        beta=paper.EQ5_BETA_S_PER_IMAGE,
        power_watts=46_300.0,
    )
    insitu = PipelinePredictor(
        IN_SITU, model, DataModel(24.0, 0.2, 180.0, paper.CAMPAIGN_TIMESTEPS)
    )
    post = PipelinePredictor(
        POST_PROCESSING, model, DataModel(24.0, 80.0, 180.0, paper.CAMPAIGN_TIMESTEPS)
    )
    return WhatIfAnalyzer(insitu, post, timestep_seconds=paper.TIMESTEP_SECONDS)


class TestTypedSweepResults:
    def test_sweep_result_schema(self, analyzer):
        century = years(paper.WHATIF_YEARS)
        result = analyzer.sweep(intervals_hours=[24.0], duration_seconds=century)
        assert isinstance(result, SweepResult)
        data = result.to_dict()
        assert data["schema_version"] == SCHEMA_VERSION
        assert data["kind"] == "sweep"
        assert len(data["rows"]) == 1

    def test_rate_rows_unpack_like_tuples(self, analyzer):
        century = years(paper.WHATIF_YEARS)
        storage = analyzer.storage_vs_rate(
            intervals_hours=[24.0], duration_seconds=century
        )
        assert isinstance(storage, RateSweepResult)
        (row,) = storage
        assert isinstance(row, StorageRateRow)
        hours, insitu_gb, post_gb = row
        assert hours == 24.0 and insitu_gb < post_gb
        energy = analyzer.energy_vs_rate(
            intervals_hours=[24.0], duration_seconds=century
        )
        assert isinstance(energy[0], EnergyRateRow)
        assert energy.to_dict()["schema_version"] == SCHEMA_VERSION

    def test_failure_sweep_result_schema(self, analyzer):
        century = years(paper.WHATIF_YEARS)
        result = analyzer.failure_aware_sweep(
            intervals_hours=[24.0], duration_seconds=century, mtbf_hours=6.0,
            checkpoint_write_seconds=60.0,
        )
        assert isinstance(result, FailureSweepResult)
        data = result.to_dict()
        assert data["kind"] == "failure-aware-sweep"
        assert data["mtbf_hours"] == 6.0


class TestBench:
    def test_quick_bench_report(self, tmp_path):
        out = str(tmp_path / "results")
        report = run_bench(quick=True, workers=1, output_dir=out)
        assert report["identical"]["parallel_vs_serial"]
        assert report["identical"]["cached_vs_serial"]
        assert report["speedup_cached"] > 1.0
        assert report["cache"]["hits"] == report["workload"]["n_tasks"]
        path = write_report(report, out)
        assert os.path.basename(path) == "BENCH_exec.json"
        with open(path, encoding="utf-8") as fh:
            assert json.load(fh)["schema_version"] == SCHEMA_VERSION
        assert os.path.exists(os.path.join(out, "BENCH_exec.txt"))

    def test_compare_to_baseline_gates(self):
        report = {
            "identical": {"parallel_vs_serial": True, "cached_vs_serial": True},
            "cpus": 8,
            "speedup_parallel": 3.0,
            "speedup_cached": 50.0,
        }
        baseline = {"min_cpus": 2, "speedup_parallel": 3.0, "speedup_cached": 40.0}
        assert compare_to_baseline(report, baseline) == []
        # A >tolerance drop in parallel speedup fails the gate.
        slow = dict(report, speedup_parallel=1.0)
        assert any("parallel" in p for p in compare_to_baseline(slow, baseline))
        # The same drop on a 1-core host is not a regression.
        laptop = dict(slow, cpus=1)
        assert compare_to_baseline(laptop, baseline) == []
        # Bit-identity violations always fail.
        broken = dict(report, identical={"parallel_vs_serial": False,
                                         "cached_vs_serial": True})
        assert any("bit-identity" in p for p in compare_to_baseline(broken, baseline))
        # Cached-speedup regressions fail regardless of core count.
        slow_cache = dict(laptop, speedup_cached=10.0)
        assert any("cached" in p for p in compare_to_baseline(slow_cache, baseline))
