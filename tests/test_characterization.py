"""End-to-end tests: the full Section V / VI / VII reproduction.

These run the complete experiment grid on the simulated platform and check
the paper's headline findings *in shape* — who wins, by roughly what factor,
where crossovers fall.
"""

from __future__ import annotations

import pytest

from repro import paper
from repro.core.characterization import (
    CharacterizationStudy,
    run_characterization,
    storage_power_sweep,
)
from repro.core.metrics import IN_SITU, POST_PROCESSING
from repro.errors import ConfigurationError
from repro.units import years


@pytest.fixture(scope="module")
def study() -> CharacterizationStudy:
    """The full 6-configuration grid (shared across tests; read-only)."""
    return run_characterization()


class TestSectionV:
    def test_grid_is_complete(self, study):
        assert len(study.metrics) == 6
        assert study.metrics.sample_intervals() == [8.0, 24.0, 72.0]
        assert study.metrics.pipelines() == [IN_SITU, POST_PROCESSING]

    def test_finding1_time_savings_shape(self, study):
        """Fig. 3: ~51 % / 38 % / 19 % faster at 8 / 24 / 72 h."""
        for hours, expected in paper.TIME_SAVINGS.items():
            got = study.metrics.time_savings(hours)
            assert got == pytest.approx(expected, abs=0.07), f"at {hours} h"

    def test_savings_diminish_with_coarser_sampling(self, study):
        s = [study.metrics.time_savings(h) for h in (8.0, 24.0, 72.0)]
        assert s == sorted(s, reverse=True)

    def test_finding3_power_practically_unchanged(self, study):
        """Fig. 5: no meaningful power difference between pipelines."""
        for hours in paper.SAMPLING_INTERVALS_HOURS:
            assert abs(study.metrics.power_change(hours)) < 0.05, f"at {hours} h"

    def test_finding4_energy_savings_shape(self, study):
        """Fig. 6: energy tracks execution time."""
        for hours, expected in paper.ENERGY_SAVINGS.items():
            got = study.metrics.energy_savings(hours)
            assert got == pytest.approx(expected, abs=0.07), f"at {hours} h"

    def test_fig7_storage_shape(self, study):
        """230 / 80 / 27 GB raw vs <1 GB of images; >=99.5 % reduction."""
        for hours, expected_gb in paper.POST_STORAGE_GB.items():
            post = study.metrics.get(POST_PROCESSING, hours)
            assert post.storage_gb == pytest.approx(expected_gb, rel=0.15), f"at {hours} h"
            insitu = study.metrics.get(IN_SITU, hours)
            assert insitu.storage_gb < paper.INSITU_STORAGE_GB_MAX
            assert study.metrics.storage_savings(hours) > paper.STORAGE_REDUCTION_MIN

    def test_fig7_output_counts(self, study):
        for hours, n in paper.N_OUTPUTS.items():
            assert study.metrics.get(IN_SITU, hours).n_outputs == n
            assert study.metrics.get(POST_PROCESSING, hours).n_outputs == n

    def test_compute_power_envelope(self, study):
        """Average power sits between idle (15 kW) and loaded (44 kW) + storage."""
        for m in study.metrics:
            assert 15_000.0 < m.average_power < 44_000.0 + 2_302.0

    def test_findings_narrative_renders(self, study):
        text = study.findings()
        assert "faster" in text and "energy" in text and "storage" in text

    def test_table_renders_all_rows(self, study):
        assert study.table().count("\n") == 5


class TestStoragePowerProportionality:
    def test_sweep_endpoints_match_paper(self):
        rows = storage_power_sweep()
        assert rows[0] == (0.0, pytest.approx(paper.STORAGE_IDLE_W))
        assert rows[-1][1] == pytest.approx(paper.STORAGE_FULL_W)

    def test_dynamic_range_is_1_3_percent(self):
        rows = storage_power_sweep()
        assert rows[-1][1] / rows[0][1] - 1.0 == pytest.approx(
            paper.STORAGE_PROPORTIONALITY, abs=0.002
        )

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ConfigurationError):
            storage_power_sweep(fractions=[1.5])


class TestSectionVI:
    def test_calibration_recovers_eq5(self, study):
        """t_sim ≈ 603, α ≈ 6.3 s/GB, β ≈ 1.2 s/image from *measured* data."""
        result = study.calibrate()
        assert result.model.t_sim_ref == pytest.approx(paper.EQ5_T_SIM, rel=0.02)
        assert result.model.alpha == pytest.approx(paper.EQ5_ALPHA_S_PER_GB, rel=0.10)
        assert result.model.beta == pytest.approx(paper.EQ5_BETA_S_PER_IMAGE, rel=0.10)

    def test_fig8_validation_error_under_half_percent(self, study):
        """Model error on held-out configurations <0.5 % (Fig. 8)."""
        rows = study.validate()
        assert len(rows) == 3
        for point, _pred, rel in rows:
            assert abs(rel) < paper.MODEL_MAX_ERROR, point.label

    def test_training_points_are_the_paper_configs(self, study):
        labels = {p.label for p in study.training_points()}
        assert labels == {"in-situ@8h", "in-situ@72h", "post-processing@24h"}

    def test_average_power_flat_across_grid(self, study):
        p = study.average_power()
        for m in study.metrics:
            assert m.average_power == pytest.approx(p, rel=0.05)


class TestSectionVII:
    def test_fig9_post_forced_to_about_8_days(self, study):
        an = study.analyzer()
        h = an.finest_interval_for_storage(
            POST_PROCESSING, paper.WHATIF_STORAGE_BUDGET_GB, years(paper.WHATIF_YEARS)
        )
        assert h / 24.0 == pytest.approx(paper.WHATIF_POST_FORCED_INTERVAL_DAYS, rel=0.25)

    def test_fig9_insitu_fine_at_daily_or_better(self, study):
        an = study.analyzer()
        h = an.finest_interval_for_storage(
            IN_SITU, paper.WHATIF_STORAGE_BUDGET_GB, years(paper.WHATIF_YEARS)
        )
        assert h <= 24.0

    def test_fig10_energy_savings_callouts(self, study):
        an = study.analyzer()
        dur = years(paper.WHATIF_YEARS)
        for hours, expected in paper.WHATIF_ENERGY_SAVINGS.items():
            got = an.energy_savings(hours, dur)
            assert got == pytest.approx(expected, abs=0.05), f"at {hours} h"


class TestRunCharacterizationApi:
    def test_empty_interval_list_rejected(self):
        with pytest.raises(ConfigurationError):
            run_characterization(intervals_hours=())

    def test_custom_intervals(self):
        from repro.ocean.driver import MPASOceanConfig
        from repro.pipelines.base import PipelineSpec
        from repro.units import MONTH
        spec = PipelineSpec(ocean=MPASOceanConfig(duration_seconds=MONTH))
        small = run_characterization(intervals_hours=(72.0,), spec=spec)
        assert len(small.metrics) == 2
        assert small.metrics.sample_intervals() == [72.0]
