"""Tests for the compute-cluster simulator (:mod:`repro.cluster`)."""

from __future__ import annotations

import math

import pytest

from repro.cluster.machine import ComputeCluster, PhaseProfile, caddy
from repro.cluster.node import Node
from repro.cluster.power import CpuPowerModel, NodePowerModel, PState, e5_2670_node
from repro.cluster.topology import Cage, Interconnect
from repro.errors import ConfigurationError
from repro.events.engine import Simulator


class TestCpuPowerModel:
    def test_idle_and_peak(self):
        cpu = CpuPowerModel(idle_watts=25.0, peak_watts=110.0)
        assert cpu.power(0.0) == 25.0
        assert cpu.power(1.0) == 110.0

    def test_linear_in_utilization_by_default(self):
        cpu = CpuPowerModel(idle_watts=20.0, peak_watts=120.0)
        assert cpu.power(0.5) == pytest.approx(70.0)

    def test_gamma_shapes_curve(self):
        cpu = CpuPowerModel(idle_watts=0.0, peak_watts=100.0, gamma=2.0)
        assert cpu.power(0.5) == pytest.approx(25.0)

    def test_dvfs_cubic_scaling(self):
        cpu = CpuPowerModel(idle_watts=0.0, peak_watts=100.0, base_frequency_ghz=2.6)
        half = cpu.power(1.0, frequency_ghz=1.3)
        assert half == pytest.approx(100.0 * 0.125)

    def test_utilization_bounds(self):
        cpu = CpuPowerModel(idle_watts=10.0, peak_watts=100.0)
        with pytest.raises(ConfigurationError):
            cpu.power(1.5)
        with pytest.raises(ConfigurationError):
            cpu.power(-0.1)

    def test_peak_below_idle_rejected(self):
        with pytest.raises(ConfigurationError):
            CpuPowerModel(idle_watts=100.0, peak_watts=50.0)

    def test_slowest_pstate(self):
        cpu = CpuPowerModel(idle_watts=10.0, peak_watts=100.0)
        assert cpu.slowest_pstate().frequency_ghz == 1.2

    def test_pstate_validation(self):
        with pytest.raises(ConfigurationError):
            PState(-1.0)


class TestNodePowerModel:
    def test_caddy_node_calibration(self):
        """The calibrated node hits the paper's 100 W / 293.3 W endpoints."""
        node = e5_2670_node()
        assert node.idle_watts == pytest.approx(100.0)
        assert node.peak_watts == pytest.approx(293.33, abs=0.01)

    def test_dynamic_range_matches_paper(self):
        """193 % idle-to-loaded increase (Section V)."""
        assert e5_2670_node().dynamic_range() == pytest.approx(1.93, abs=0.005)

    def test_monotone_in_utilization(self):
        node = e5_2670_node()
        powers = [node.power(u / 10) for u in range(11)]
        assert powers == sorted(powers)

    def test_dram_interpolation(self):
        node = NodePowerModel(
            cpu=CpuPowerModel(idle_watts=0.0, peak_watts=0.0),
            n_sockets=1, base_watts=0.0, dram_idle_watts=10.0, dram_active_watts=30.0,
        )
        assert node.power(0.5) == pytest.approx(20.0)

    def test_active_dram_below_idle_rejected(self):
        with pytest.raises(ConfigurationError):
            NodePowerModel(
                cpu=CpuPowerModel(idle_watts=1.0, peak_watts=2.0),
                dram_idle_watts=30.0, dram_active_watts=10.0,
            )


class TestNode:
    def test_utilization_drives_power_signal(self, sim):
        node = Node(sim, 0, e5_2670_node())
        assert node.power_signal.value_at(0.0) == pytest.approx(100.0)
        sim.timeout(10.0)
        sim.run()
        node.set_utilization(1.0)
        assert node.power_signal.value_at(10.0) == pytest.approx(293.33, abs=0.01)

    def test_busy_core_seconds_accounting(self, sim):
        node = Node(sim, 0, e5_2670_node())
        node.set_utilization(0.5)
        sim.timeout(10.0)
        sim.run()
        # 16 cores at 0.5 utilization for 10 s.
        assert node.busy_core_seconds() == pytest.approx(80.0)

    def test_n_cores(self, sim):
        node = Node(sim, 0, e5_2670_node(), cores_per_socket=8)
        assert node.n_cores == 16

    def test_frequency_default_and_override(self, sim):
        node = Node(sim, 0, e5_2670_node())
        assert node.frequency_ghz == 2.6
        node.set_utilization(1.0, frequency_ghz=1.3)
        assert node.frequency_ghz == 1.3
        assert node.current_power < 293.0  # DVFS'd down

    def test_invalid_construction(self, sim):
        with pytest.raises(ConfigurationError):
            Node(sim, -1, e5_2670_node())
        with pytest.raises(ConfigurationError):
            Node(sim, 0, e5_2670_node(), cores_per_socket=0)
        with pytest.raises(ConfigurationError):
            Node(sim, 0, e5_2670_node(), memory_gb=0.0)


class TestCageAndInterconnect:
    def test_cage_attaches_monitor(self, sim):
        nodes = [Node(sim, i, e5_2670_node()) for i in range(10)]
        cage = Cage(0, nodes)
        assert cage.monitor.n_signals == 10
        assert len(cage) == 10

    def test_cage_size_limit(self, sim):
        nodes = [Node(sim, i, e5_2670_node()) for i in range(11)]
        with pytest.raises(ConfigurationError):
            Cage(0, nodes)

    def test_empty_cage_rejected(self):
        with pytest.raises(ConfigurationError):
            Cage(0, [])

    def test_point_to_point_time(self):
        ic = Interconnect(latency_s=1e-6, bandwidth_bytes_per_s=1e9)
        assert ic.point_to_point_time(1e9) == pytest.approx(1.0 + 1e-6)

    def test_allreduce_log_rounds(self):
        ic = Interconnect(latency_s=1e-6, bandwidth_bytes_per_s=1e9)
        t_2 = ic.allreduce_time(1_000, 2)
        t_8 = ic.allreduce_time(1_000, 8)
        assert t_8 == pytest.approx(3 * t_2)

    def test_single_rank_collectives_free(self):
        ic = Interconnect()
        assert ic.allreduce_time(1e6, 1) == 0.0
        assert ic.gather_time(1e6, 1) == 0.0
        assert ic.binary_swap_composite_time(1e6, 1) == 0.0

    def test_composite_bounded_by_image_size(self):
        """Binary-swap traffic is ~one image regardless of rank count."""
        ic = Interconnect()
        image = 6.2e6
        t150 = ic.binary_swap_composite_time(image, 150)
        # Generous bound: a few image transfer times.
        assert t150 < 5 * (image / ic.bandwidth_bytes_per_s) + 20 * ic.latency_s

    def test_negative_message_rejected(self):
        with pytest.raises(ConfigurationError):
            Interconnect().point_to_point_time(-1.0)

    def test_invalid_rank_count(self):
        with pytest.raises(ConfigurationError):
            Interconnect().allreduce_time(10.0, 0)


class TestComputeCluster:
    def test_caddy_shape(self, cluster):
        assert cluster.n_nodes == 150
        assert cluster.n_cores == 2_400
        assert len(cluster.cages) == 15
        assert len(cluster.monitors) == 15

    def test_caddy_power_envelope(self, cluster):
        """15 kW idle and 44 kW loaded (Section V)."""
        assert cluster.idle_watts == pytest.approx(15_000.0)
        assert cluster.peak_watts == pytest.approx(44_000.0, rel=1e-4)

    def test_run_phase_sets_and_resets_utilization(self, sim, cluster):
        def proc():
            yield from cluster.run_phase(10.0, 0.95)

        sim.process(proc())
        sim.run()
        assert sim.now == 10.0
        assert all(n.utilization == 0.0 for n in cluster.nodes)

    def test_run_phase_power_during(self, sim, cluster):
        def proc():
            yield from cluster.run_phase(60.0, 1.0)
            yield sim.timeout(60.0)

        sim.process(proc())
        sim.run()
        trace = cluster.read_total(0.0, 120.0)
        assert trace.watts[0] == pytest.approx(44_000.0, rel=1e-3)
        assert trace.watts[1] == pytest.approx(15_000.0, rel=1e-3)

    def test_read_monitors_sum_equals_read_total(self, sim, cluster):
        def proc():
            yield from cluster.run_phase(120.0, 0.5)

        sim.process(proc())
        sim.run()
        per_cage = cluster.read_monitors(0.0, 120.0)
        total = cluster.read_total(0.0, 120.0)
        assert sum(t.average_power() for t in per_cage) == pytest.approx(
            total.average_power()
        )

    def test_partial_cage_for_nondivisible_counts(self, sim):
        c = ComputeCluster(sim, n_nodes=25, nodes_per_cage=10)
        assert [len(cage) for cage in c.cages] == [10, 10, 5]

    def test_negative_phase_duration_rejected(self, sim, cluster):
        with pytest.raises(ConfigurationError):
            list(cluster.run_phase(-1.0, 0.5))

    def test_phase_profile_validation(self):
        with pytest.raises(ConfigurationError):
            PhaseProfile(simulation=1.5)

    def test_io_wait_keeps_cpus_hot(self):
        """MPI busy-polling: the default I/O phase is far from idle."""
        prof = PhaseProfile()
        assert prof.io_wait >= 0.8

    def test_current_power_tracks_nodes(self, sim, cluster):
        cluster.set_utilization(1.0)
        assert cluster.current_power == pytest.approx(44_000.0, rel=1e-4)

    def test_zero_nodes_rejected(self, sim):
        with pytest.raises(ConfigurationError):
            ComputeCluster(sim, n_nodes=0)
