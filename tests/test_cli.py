"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_plan_arguments(self):
        args = build_parser().parse_args(
            ["plan", "--years", "50", "--storage-gb", "1000", "--need-hours", "12"]
        )
        assert args.years == 50.0
        assert args.storage_gb == 1_000.0
        assert args.need_hours == 12.0
        assert args.energy_kwh is None

    def test_quality_arguments(self):
        args = build_parser().parse_args(["quality", "--strides", "1", "4", "--steps", "16"])
        assert args.strides == [1, 4]
        assert args.steps == 16


class TestCommands:
    def test_proportionality(self, capsys):
        assert main(["proportionality"]) == 0
        out = capsys.readouterr().out
        assert "2273" in out and "44.0 kW" in out

    def test_quality(self, capsys):
        assert main(["quality", "--strides", "1", "4", "--steps", "12"]) == 0
        out = capsys.readouterr().out
        assert "link rate" in out

    def test_characterize_small_grid(self, capsys):
        assert main(["characterize", "--intervals", "72"]) == 0
        out = capsys.readouterr().out
        assert "in-situ" in out and "post-processing" in out
        assert "faster" in out

    def test_calibrate(self, capsys):
        assert main(["calibrate"]) == 0
        out = capsys.readouterr().out
        assert "alpha = 6." in out
        assert "beta  = 1." in out
        assert "max |error|" in out

    def test_whatif(self, capsys):
        assert main(["whatif", "--years", "10", "--intervals", "24", "192"]) == 0
        out = capsys.readouterr().out
        assert "2 TB budget" in out

    def test_plan_feasible_exit_code(self, capsys):
        code = main(
            ["plan", "--years", "100", "--storage-gb", "2000", "--need-hours", "24"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "recommended: in-situ" in out

    def test_plan_infeasible_exit_code(self, capsys):
        # 1 GB for a century of daily outputs is infeasible even in-situ.
        code = main(
            ["plan", "--years", "100", "--storage-gb", "0.2", "--need-hours", "1"]
        )
        assert code == 2
        out = capsys.readouterr().out
        assert "INFEASIBLE" in out


class TestFaultsCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["faults"])
        assert args.mtbf_hours == 6.0
        assert args.checkpoint_every == 8
        assert args.seed == 57

    def test_faults_json_round_trips(self, capsys):
        import json

        argv = [
            "faults", "--months", "0.3", "--interval", "24",
            "--mtbf-hours", "0.05", "--checkpoint-every", "2",
            "--seed", "3", "--json",
        ]
        assert main(argv) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["fault_spec"]["seed"] == 3
        assert {r["pipeline"] for r in payload["reports"]} == {
            "in-situ", "post-processing"
        }

    def test_faults_table_output(self, capsys):
        argv = [
            "faults", "--months", "0.3", "--interval", "24",
            "--mtbf-hours", "0.05", "--checkpoint-every", "2",
            "--seed", "3", "--no-unprotected",
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "fault campaign: seed=3" in out
        assert "fault-free" in out and "with faults" in out

    def test_whatif_failure_aware_flag(self, capsys):
        argv = ["whatif", "--intervals", "24", "--mtbf-hours", "6"]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "with failures (MTBF 6 h" in out
