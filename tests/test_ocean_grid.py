"""Tests for :mod:`repro.ocean.grid` and the barotropic solver."""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.ocean.barotropic import BarotropicSolver
from repro.ocean.grid import SpectralGrid, icosahedral_cell_count


class TestIcosahedralCellCount:
    def test_60km_is_the_paper_mesh(self):
        assert icosahedral_cell_count(60.0) == 163_842

    def test_refinement_series(self):
        """Halving the resolution quadruples the cell count (one level up)."""
        assert icosahedral_cell_count(30.0) == 4 * (163_842 - 2) + 2

    def test_monotone_in_resolution(self):
        counts = [icosahedral_cell_count(r) for r in (240, 120, 60, 30, 15)]
        assert counts == sorted(counts)

    def test_invalid_resolution(self):
        with pytest.raises(ConfigurationError):
            icosahedral_cell_count(0.0)


class TestSpectralGrid:
    def test_shape_and_spacing(self):
        g = SpectralGrid(64, 32, length_m=1.0e6)
        assert g.shape == (32, 64)
        assert g.n_cells == 2_048
        assert g.dx == pytest.approx(1.0e6 / 64)
        assert g.dy == pytest.approx(1.0e6 / 32)

    def test_odd_dims_rejected(self):
        with pytest.raises(ConfigurationError):
            SpectralGrid(63, 32)

    def test_tiny_grid_rejected(self):
        with pytest.raises(ConfigurationError):
            SpectralGrid(4, 4)

    def test_transform_round_trip(self):
        g = SpectralGrid(32, 16)
        rng = np.random.default_rng(0)
        field = rng.standard_normal(g.shape)
        np.testing.assert_allclose(g.to_physical(g.to_spectral(field)), field, atol=1e-12)

    def test_spectral_derivative_of_sine(self):
        g = SpectralGrid(64, 32, length_m=2 * np.pi)
        x, _ = g.coordinates()
        field = np.sin(x)
        d = g.to_physical(g.ddx(g.to_spectral(field)))
        np.testing.assert_allclose(d, np.cos(x), atol=1e-10)

    def test_laplacian_of_sine(self):
        g = SpectralGrid(64, 32, length_m=2 * np.pi)
        x, _ = g.coordinates()
        field = np.sin(2 * x)
        lap = g.to_physical(g.laplacian(g.to_spectral(field)))
        np.testing.assert_allclose(lap, -4 * np.sin(2 * x), atol=1e-9)

    def test_poisson_inversion(self):
        """inv_k2 solves ∇²ψ = ζ up to the mean mode."""
        g = SpectralGrid(32, 32, length_m=2 * np.pi)
        x, y = g.coordinates()
        psi = np.sin(3 * x) * np.cos(2 * y)
        zeta_hat = g.laplacian(g.to_spectral(psi))
        psi_back = g.to_physical(-g.inv_k2 * zeta_hat)
        np.testing.assert_allclose(psi_back, psi - psi.mean(), atol=1e-9)

    def test_dealias_mask_keeps_low_modes(self):
        g = SpectralGrid(32, 32)
        assert g.dealias_mask[0, 0]
        assert not g.dealias_mask[:, -1].any()  # highest kx removed

    def test_shape_mismatch_rejected(self):
        g = SpectralGrid(32, 16)
        with pytest.raises(ConfigurationError):
            g.to_spectral(np.zeros((16, 16)))


class TestBarotropicSolver:
    def test_initialization_is_seeded_and_reproducible(self):
        g = SpectralGrid(32, 32)
        a = BarotropicSolver(g, seed=42).vorticity()
        b = BarotropicSolver(SpectralGrid(32, 32), seed=42).vorticity()
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        g = SpectralGrid(32, 32)
        a = BarotropicSolver(g, seed=1).vorticity()
        b = BarotropicSolver(SpectralGrid(32, 32), seed=2).vorticity()
        assert not np.allclose(a, b)

    def test_initial_rms_speed_near_unity(self):
        solver = BarotropicSolver(SpectralGrid(64, 64), seed=0)
        u, v = solver.velocity()
        rms = np.sqrt(np.mean(u**2 + v**2))
        assert rms == pytest.approx(1.0, rel=1e-6)

    def test_velocity_is_divergence_free(self):
        g = SpectralGrid(64, 64)
        solver = BarotropicSolver(g, seed=3)
        u, v = solver.velocity()
        div = g.to_physical(g.ddx(g.to_spectral(u)) + g.ddy(g.to_spectral(v)))
        assert np.max(np.abs(div)) < 1e-10 * np.max(np.abs(u))

    def test_curl_of_velocity_is_vorticity(self):
        g = SpectralGrid(64, 64)
        solver = BarotropicSolver(g, seed=3)
        u, v = solver.velocity()
        curl = g.to_physical(g.ddx(g.to_spectral(v)) - g.ddy(g.to_spectral(u)))
        np.testing.assert_allclose(curl, solver.vorticity(), atol=1e-10)

    def test_step_advances_clock(self):
        solver = BarotropicSolver(SpectralGrid(32, 32), seed=0)
        solver.step(100.0)
        assert solver.time == 100.0
        assert solver.step_count == 1

    def test_energy_decays_slowly_enstrophy_faster(self):
        """2-D turbulence: enstrophy dissipates much faster than energy."""
        solver = BarotropicSolver(SpectralGrid(64, 64), viscosity=5e7, seed=0)
        e0, z0 = solver.kinetic_energy(), solver.enstrophy()
        solver.run(50, 1_800.0)
        e1, z1 = solver.kinetic_energy(), solver.enstrophy()
        energy_loss = 1 - e1 / e0
        enstrophy_loss = 1 - z1 / z0
        assert 0 <= energy_loss < 0.2
        assert enstrophy_loss > energy_loss

    def test_mean_vorticity_conserved_at_zero(self):
        solver = BarotropicSolver(SpectralGrid(32, 32), seed=0)
        solver.run(20, 1_800.0)
        assert abs(solver.vorticity().mean()) < 1e-12

    def test_blowup_detected(self):
        solver = BarotropicSolver(SpectralGrid(32, 32), viscosity=0.0, seed=0)
        with warnings.catch_warnings():
            # The blow-up must surface as SimulationError alone, not as a
            # shower of numpy overflow RuntimeWarnings along the way.
            warnings.simplefilter("error")
            with pytest.raises(SimulationError):
                solver.run(50, 300_000.0)  # wildly unstable timestep (CFL >> 1)

    def test_nonpositive_timestep_rejected(self):
        solver = BarotropicSolver(SpectralGrid(32, 32), seed=0)
        with pytest.raises(ConfigurationError):
            solver.step(0.0)

    def test_set_vorticity_round_trip(self):
        g = SpectralGrid(32, 32)
        solver = BarotropicSolver(g, seed=None)
        x, y = g.coordinates()
        k0 = 2 * np.pi / g.length_m
        zeta = np.sin(4 * k0 * x) * np.sin(4 * k0 * y)
        solver.set_vorticity(zeta)
        np.testing.assert_allclose(solver.vorticity(), zeta, atol=1e-12)

    def test_cfl_number_scales_with_dt(self):
        solver = BarotropicSolver(SpectralGrid(32, 32), seed=0)
        assert solver.cfl_number(2_000.0) == pytest.approx(2 * solver.cfl_number(1_000.0))

    def test_no_seed_starts_at_rest(self):
        solver = BarotropicSolver(SpectralGrid(32, 32), seed=None)
        assert solver.kinetic_energy() == 0.0
