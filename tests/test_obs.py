"""Tests for :mod:`repro.obs` — the unified telemetry layer."""

from __future__ import annotations

import json
import os

import pytest

from repro import obs
from repro.core.characterization import run_characterization
from repro.errors import ConfigurationError
from repro.events.engine import Simulator
from repro.obs.cli import main as obs_cli_main
from repro.obs.cli import resolve_directory, summarize
from repro.obs.registry import MetricsRegistry
from repro.ocean.driver import MPASOceanConfig
from repro.pipelines.base import PipelineSpec
from repro.units import MONTH


@pytest.fixture(autouse=True)
def _clean_registry():
    """Every test starts (and ends) with a fresh default registry."""
    obs.default_registry().reset()
    yield
    obs.default_registry().reset()
    assert obs.active() is None


@pytest.fixture
def small_spec() -> PipelineSpec:
    return PipelineSpec(ocean=MPASOceanConfig(duration_seconds=MONTH))


# ------------------------------------------------------------------ naming


class TestNaming:
    def test_valid_names_pass(self):
        for name in (
            "repro_storage_writes_total",
            "repro_pipeline_phase_seconds",
            "repro_power_meter_watts",
            "repro_io_buffer_bytes",
            "repro_model_error_ratio",
            "repro_cluster_energy_joules",
        ):
            obs.validate_metric_name(name)

    def test_invalid_names_rejected(self):
        for name in (
            "writes_total",               # missing repro_ prefix
            "repro_writes_total",         # missing <layer> segment
            "repro_storage_writes",       # missing unit suffix
            "repro_storage_writes_count", # unknown unit
            "repro_Storage_writes_total", # uppercase
            "repro_storage__writes_total",
            "",
        ):
            with pytest.raises(ConfigurationError):
                obs.validate_metric_name(name)

    def test_regexp_is_exported(self):
        assert obs.METRIC_NAME_RE.match("repro_storage_writes_total")
        assert not obs.METRIC_NAME_RE.match("repro_bad")


# ---------------------------------------------------------------- registry


class TestRegistry:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        c = reg.counter("repro_storage_writes_total")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_counter_rejects_negative(self):
        reg = MetricsRegistry()
        with pytest.raises(ConfigurationError):
            reg.counter("repro_storage_writes_total").inc(-1.0)

    def test_gauge_moves_both_ways(self):
        reg = MetricsRegistry()
        g = reg.gauge("repro_cluster_utilization_ratio")
        g.set(0.75)
        g.inc(0.1)
        g.dec(0.05)
        assert g.value == pytest.approx(0.8)

    def test_labels_create_distinct_series(self):
        reg = MetricsRegistry()
        reg.counter("repro_pipeline_runs_total", pipeline="in-situ").inc()
        reg.counter("repro_pipeline_runs_total", pipeline="post").inc(2)
        snap = reg.snapshot()
        values = {
            s["labels"]["pipeline"]: s["value"]
            for s in snap["repro_pipeline_runs_total"]["series"]
        }
        assert values == {"in-situ": 1.0, "post": 2.0}

    def test_same_labels_return_same_series(self):
        reg = MetricsRegistry()
        a = reg.counter("repro_pipeline_runs_total", pipeline="x", mode="sim")
        b = reg.counter("repro_pipeline_runs_total", mode="sim", pipeline="x")
        assert a is b

    def test_histogram_buckets_are_cumulative(self):
        reg = MetricsRegistry()
        h = reg.histogram("repro_pipeline_phase_seconds", buckets=(1.0, 10.0))
        for v in (0.5, 5.0, 50.0):
            h.observe(v)
        assert h.cumulative() == [(1.0, 1), (10.0, 2), (float("inf"), 3)]
        assert h.sum == pytest.approx(55.5)
        assert h.count == 3

    def test_histogram_bucket_mismatch_rejected(self):
        reg = MetricsRegistry()
        reg.histogram("repro_pipeline_phase_seconds", buckets=(1.0, 10.0))
        with pytest.raises(ConfigurationError):
            reg.histogram("repro_pipeline_phase_seconds", buckets=(2.0, 20.0))
        with pytest.raises(ConfigurationError):
            reg.histogram("repro_io_wait_seconds", buckets=(10.0, 1.0))

    def test_kind_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("repro_storage_writes_total")
        with pytest.raises(ConfigurationError):
            reg.gauge("repro_storage_writes_total")

    def test_invalid_name_rejected_at_creation(self):
        reg = MetricsRegistry()
        with pytest.raises(ConfigurationError):
            reg.counter("writes")

    def test_snapshot_is_json_safe(self):
        reg = MetricsRegistry()
        reg.counter("repro_storage_writes_total").inc()
        reg.histogram("repro_pipeline_phase_seconds", phase="io").observe(2.0)
        text = json.dumps(reg.snapshot())
        assert "+Inf" in text

    def test_reset_clears_everything(self):
        reg = MetricsRegistry()
        reg.counter("repro_storage_writes_total").inc()
        reg.reset()
        assert len(reg) == 0


# ------------------------------------------------------------------- spans


class TestSpans:
    def test_noop_without_session(self):
        with obs.span("quiet", answer=42):
            pass
        obs.counter("repro_storage_writes_total")
        obs.phase("simulation", 0.0, 1.0)
        obs.event("nothing")
        assert not obs.enabled()

    def test_nesting_records_parents(self):
        with obs.session() as sess:
            with obs.span("outer"):
                with obs.span("inner"):
                    pass
        records = list(sess.recent)
        inner = next(r for r in records if r["name"] == "inner")
        outer = next(r for r in records if r["name"] == "outer")
        assert inner["parent"] == outer["id"]
        assert outer["parent"] is None
        assert inner["domain"] == obs.WALL

    def test_sim_clock_domain(self):
        sim = Simulator()
        with obs.session() as sess:
            with obs.span("des", clock=sim):
                sim.timeout(5.0)
                sim.run()
        (record,) = [r for r in sess.recent if r["type"] == "span"]
        assert record["domain"] == obs.SIM
        assert record["dur"] == pytest.approx(5.0)

    def test_error_is_attributed(self):
        with obs.session() as sess:
            with pytest.raises(ValueError):
                with obs.span("doomed"):
                    raise ValueError("boom")
        (record,) = [r for r in sess.recent if r["type"] == "span"]
        assert record["attrs"]["error"] == "ValueError"

    def test_decorator_form(self):
        @obs.span("worker", flavor="decorated")
        def work(x):
            return x + 1

        with obs.session() as sess:
            assert work(1) == 2
            assert work(2) == 3
        spans = [r for r in sess.recent if r["type"] == "span"]
        assert len(spans) == 2
        assert all(s["attrs"]["flavor"] == "decorated" for s in spans)

    def test_phase_feeds_histogram_and_totals(self):
        with obs.session() as sess:
            obs.phase("simulation", 0.0, 10.0)
            obs.phase("simulation", 10.0, 15.0)
            obs.phase("viz", 15.0, 16.0)
        assert sess.phase_totals == {"simulation": 15.0, "viz": 1.0}
        snap = sess.registry.snapshot()
        series = snap[obs.PHASE_SECONDS_METRIC]["series"]
        by_phase = {s["labels"]["phase"]: s["count"] for s in series}
        assert by_phase == {"simulation": 2, "viz": 1}


# ---------------------------------------------------------------- sessions


class TestSession:
    def test_nested_sessions_rejected(self):
        with obs.session():
            with pytest.raises(ConfigurationError):
                with obs.session():
                    pass

    def test_directory_artifacts(self, tmp_path):
        d = str(tmp_path / "telemetry")
        with obs.session(d, label="unit", config={"seed": 7}):
            with obs.span("work"):
                obs.counter("repro_storage_writes_total")
            obs.event("checkpoint", step=1)
        assert sorted(os.listdir(d)) == [
            obs.EVENTS_FILENAME, obs.MANIFEST_FILENAME, obs.PROM_FILENAME,
        ]
        records = list(obs.read_jsonl(os.path.join(d, obs.EVENTS_FILENAME)))
        assert [r["type"] for r in records] == ["span", "event"]
        manifest = obs.RunManifest.load(d)
        assert manifest.label == "unit"
        assert manifest.n_events == 2
        assert manifest.provenance["seeds"] == {"seed": 7}
        prom = open(os.path.join(d, obs.PROM_FILENAME)).read()
        assert "# TYPE repro_storage_writes_total counter" in prom
        assert "repro_storage_writes_total 1" in prom

    def test_manifest_round_trip(self, tmp_path):
        with obs.session(str(tmp_path), label="rt") as sess:
            obs.phase("io", 0.0, 2.0)
            manifest = sess.manifest()
        loaded = obs.RunManifest.load(str(tmp_path))
        assert loaded.to_dict()["durations"] == manifest.to_dict()["durations"]
        assert loaded.run_id == sess.run_id
        assert loaded.schema_version == obs.manifest.SCHEMA_VERSION

    def test_malformed_manifest_rejected(self):
        with pytest.raises(ConfigurationError):
            obs.RunManifest.from_dict({"label": "x"})

    def test_session_cleared_after_exception(self):
        with pytest.raises(RuntimeError):
            with obs.session():
                raise RuntimeError("boom")
        assert not obs.enabled()


# -------------------------------------------------- pipeline instrumentation


class TestPipelineIntegration:
    def test_characterize_emits_all_phases_for_both_pipelines(
        self, tmp_path, small_spec
    ):
        d = str(tmp_path / "telemetry")
        with obs.session(d, label="characterize"):
            run_characterization(intervals_hours=(72.0,), spec=small_spec)
        manifest = obs.RunManifest.load(d)
        assert {"simulation", "viz", "io"} <= set(manifest.durations)
        records = list(obs.read_jsonl(os.path.join(d, obs.EVENTS_FILENAME)))
        runs = [r for r in records if r["name"] == "pipeline.run"]
        assert {r["attrs"]["pipeline"] for r in runs} == {
            "in-situ", "post-processing",
        }
        assert all(r["domain"] == obs.SIM for r in runs)
        # Phase records nest under their pipeline.run span.
        run_ids = {r["id"] for r in runs}
        phases = [r for r in records if r["type"] == "phase"]
        assert phases and all(p["parent"] in run_ids for p in phases)
        for family in (
            "repro_events_processed_total",
            "repro_pipeline_runs_total",
            "repro_pipeline_storage_bytes",
            "repro_storage_writes_total",
            "repro_power_meter_reads_total",
            "repro_viz_images_total",
        ):
            assert family in manifest.metrics, family

    def test_results_bit_identical_with_telemetry_off_and_on(
        self, tmp_path, small_spec
    ):
        plain = run_characterization(intervals_hours=(72.0,), spec=small_spec)
        with obs.session(str(tmp_path)):
            telemetered = run_characterization(
                intervals_hours=(72.0,), spec=small_spec
            )
        a = [m.to_dict() for m in plain.metrics]
        b = [m.to_dict() for m in telemetered.metrics]
        assert a == b

    def test_event_counter_tracks_engine_steps(self, small_spec):
        with obs.session() as sess:
            run_characterization(intervals_hours=(72.0,), spec=small_spec)
        snap = sess.registry.snapshot()
        series = snap["repro_events_processed_total"]["series"]
        assert all(s["value"] > 0 for s in series)
        assert {s["labels"]["pipeline"] for s in series} == {
            "in-situ", "post-processing",
        }


# --------------------------------------------------------------------- CLI


class TestObsCli:
    def _run_session(self, directory: str) -> None:
        with obs.session(directory, label="cli", argv=["characterize"]):
            with obs.span("work"):
                obs.phase("simulation", 0.0, 3.0)
            obs.counter("repro_storage_writes_total")

    def test_resolve_directory_variants(self, tmp_path):
        d = str(tmp_path)
        self._run_session(d)
        assert resolve_directory(d) == d
        assert resolve_directory(os.path.join(d, obs.MANIFEST_FILENAME)) == d
        assert resolve_directory(os.path.join(d, obs.EVENTS_FILENAME)) == d
        with pytest.raises(ConfigurationError):
            resolve_directory(os.path.join(d, "nope.txt"))

    def test_summarize_round_trips(self, tmp_path):
        d = str(tmp_path)
        self._run_session(d)
        text = summarize(d)
        assert "run 'cli'" in text
        assert "simulation" in text
        assert "repro_storage_writes_total" in text

    def test_cli_summarize_and_dump(self, tmp_path, capsys):
        d = str(tmp_path)
        self._run_session(d)
        assert obs_cli_main(["summarize", d]) == 0
        assert "phase totals:" in capsys.readouterr().out
        assert obs_cli_main(["dump", d, "--limit", "1"]) == 0
        out = capsys.readouterr().out.strip().splitlines()
        assert len(out) == 1
        assert json.loads(out[0])["type"] == "phase"

    def test_cli_rejects_missing_directory(self, tmp_path, capsys):
        assert obs_cli_main(["summarize", str(tmp_path / "absent")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_repro_obs_subcommand(self, tmp_path, capsys):
        from repro.cli import main as repro_main

        d = str(tmp_path)
        self._run_session(d)
        assert repro_main(["obs", "summarize", d]) == 0
        assert "run 'cli'" in capsys.readouterr().out


class TestReproCliTelemetry:
    def test_characterize_telemetry_and_json(self, tmp_path, capsys, monkeypatch):
        from repro.cli import main as repro_main
        from repro.core import characterization as char

        spec = PipelineSpec(ocean=MPASOceanConfig(duration_seconds=MONTH))
        original = char.run_characterization
        monkeypatch.setattr(
            "repro.cli.run_characterization",
            lambda intervals_hours: original(
                intervals_hours=intervals_hours, spec=spec
            ),
        )
        d = str(tmp_path / "out")
        rc = repro_main(
            ["characterize", "--intervals", "72", "--json", "--telemetry", d]
        )
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["measurements"]) == 2
        assert "72" in payload["comparisons"]
        manifest = obs.RunManifest.load(d)
        assert manifest.label == "characterize"
        assert manifest.config["intervals"] == [72.0]
        assert {"simulation", "viz", "io"} <= set(manifest.durations)
