"""Tests for resources: Resource, Store and the fair-share BandwidthPipe."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ResourceError
from repro.events.engine import Simulator
from repro.events.resources import BandwidthPipe, Resource, Store


class TestResource:
    def test_grant_within_capacity_is_immediate(self, sim):
        res = Resource(sim, capacity=2)
        r1, r2 = res.request(), res.request()
        assert r1.triggered and r2.triggered
        assert res.in_use == 2

    def test_queueing_beyond_capacity(self, sim):
        res = Resource(sim, capacity=1)
        r1 = res.request()
        r2 = res.request()
        assert r1.triggered and not r2.triggered
        assert res.queue_length == 1
        res.release(r1)
        assert r2.triggered
        assert res.queue_length == 0

    def test_fifo_grant_order(self, sim):
        res = Resource(sim, capacity=1)
        first = res.request()
        waiters = [res.request() for _ in range(3)]
        res.release(first)
        assert waiters[0].triggered and not waiters[1].triggered
        res.release(waiters[0])
        assert waiters[1].triggered

    def test_release_without_grant_raises(self, sim):
        res = Resource(sim, capacity=1)
        res.request()
        stranger = sim.event()
        with pytest.raises(ResourceError):
            res.release(stranger)

    def test_double_release_raises(self, sim):
        res = Resource(sim, capacity=1)
        r = res.request()
        res.release(r)
        with pytest.raises(ResourceError):
            res.release(r)

    def test_releasing_queued_request_cancels_it(self, sim):
        """try/finally release is interrupt-safe: a never-granted request is
        removed from the wait queue instead of corrupting the grant count."""
        res = Resource(sim, capacity=1)
        holder = res.request()
        queued = res.request()
        later = res.request()
        res.release(queued)  # cancelled, not an error
        assert res.queue_length == 1
        res.release(holder)
        assert later.triggered  # the cancelled request was skipped
        assert not queued.triggered
        assert res.in_use == 1

    def test_cancelled_request_cannot_be_released_twice(self, sim):
        res = Resource(sim, capacity=1)
        res.request()
        queued = res.request()
        res.release(queued)
        with pytest.raises(ResourceError):
            res.release(queued)

    def test_zero_capacity_rejected(self, sim):
        with pytest.raises(ResourceError):
            Resource(sim, capacity=0)

    def test_mutual_exclusion_under_processes(self, sim):
        res = Resource(sim, capacity=1)
        concurrency = {"current": 0, "max": 0}

        def worker():
            req = res.request()
            yield req
            concurrency["current"] += 1
            concurrency["max"] = max(concurrency["max"], concurrency["current"])
            yield sim.timeout(1.0)
            concurrency["current"] -= 1
            res.release(req)

        for _ in range(5):
            sim.process(worker())
        sim.run()
        assert concurrency["max"] == 1
        assert sim.now == 5.0


class TestStore:
    def test_put_then_get(self, sim):
        store = Store(sim)
        store.put("x")
        ev = store.get()
        assert ev.triggered and ev.value == "x"

    def test_get_blocks_until_put(self, sim):
        store = Store(sim)
        got = []

        def consumer():
            item = yield store.get()
            got.append((sim.now, item))

        def producer():
            yield sim.timeout(3.0)
            store.put("late")

        sim.process(consumer())
        sim.process(producer())
        sim.run()
        assert got == [(3.0, "late")]

    def test_fifo_order(self, sim):
        store = Store(sim)
        for i in range(3):
            store.put(i)
        values = [store.get().value for _ in range(3)]
        assert values == [0, 1, 2]

    def test_len(self, sim):
        store = Store(sim)
        assert len(store) == 0
        store.put(1)
        assert len(store) == 1


class TestBandwidthPipe:
    def test_single_transfer_exact_time(self, sim):
        pipe = BandwidthPipe(sim, capacity=100.0)
        t = pipe.transfer(1_000.0)
        sim.run()
        assert t.triggered
        assert sim.now == pytest.approx(10.0)

    def test_zero_byte_transfer_completes_immediately(self, sim):
        pipe = BandwidthPipe(sim, capacity=100.0)
        t = pipe.transfer(0.0)
        assert t.triggered
        assert sim.now == 0.0

    def test_two_equal_transfers_share_fairly(self, sim):
        pipe = BandwidthPipe(sim, capacity=100.0)
        pipe.transfer(1_000.0)
        pipe.transfer(1_000.0)
        sim.run()
        # Each gets 50 B/s: both finish at t=20 instead of 10.
        assert sim.now == pytest.approx(20.0)

    def test_staggered_transfers(self, sim):
        """A transfer arriving mid-flight slows the first one down."""
        pipe = BandwidthPipe(sim, capacity=100.0)
        done = {}

        def first():
            t = pipe.transfer(1_000.0)
            yield t
            done["first"] = sim.now

        def second():
            yield sim.timeout(5.0)
            t = pipe.transfer(250.0)
            yield t
            done["second"] = sim.now

        sim.process(first())
        sim.process(second())
        sim.run()
        # First runs alone 0-5 (500 B moved), then shares 50/50.
        # Second finishes at 5 + 250/50 = 10; first then has 250 B left at
        # full rate: 10 + 2.5 = 12.5.
        assert done["second"] == pytest.approx(10.0)
        assert done["first"] == pytest.approx(12.5)

    def test_per_transfer_cap(self, sim):
        pipe = BandwidthPipe(sim, capacity=100.0)
        pipe.transfer(1_000.0, cap=10.0)
        sim.run()
        assert sim.now == pytest.approx(100.0)

    def test_cap_leftover_goes_to_uncapped(self, sim):
        pipe = BandwidthPipe(sim, capacity=100.0)
        done = {}

        def go(tag, size, cap):
            t = pipe.transfer(size, cap=cap)
            yield t
            done[tag] = sim.now

        sim.process(go("capped", 100.0, 10.0))
        sim.process(go("free", 900.0, None))
        sim.run()
        # Capped gets 10 B/s, free gets the remaining 90 B/s: both take 10 s.
        assert done["capped"] == pytest.approx(10.0)
        assert done["free"] == pytest.approx(10.0)

    def test_all_capped_under_capacity(self, sim):
        pipe = BandwidthPipe(sim, capacity=1_000.0)
        pipe.transfer(100.0, cap=10.0)
        pipe.transfer(100.0, cap=10.0)
        sim.run()
        assert sim.now == pytest.approx(10.0)

    def test_negative_size_rejected(self, sim):
        pipe = BandwidthPipe(sim, capacity=100.0)
        with pytest.raises(ResourceError):
            pipe.transfer(-1.0)

    def test_nonpositive_cap_rejected(self, sim):
        pipe = BandwidthPipe(sim, capacity=100.0)
        with pytest.raises(ResourceError):
            pipe.transfer(10.0, cap=0.0)

    def test_nonpositive_capacity_rejected(self, sim):
        with pytest.raises(ResourceError):
            BandwidthPipe(sim, capacity=0.0)

    def test_bytes_moved_conservation(self, sim):
        pipe = BandwidthPipe(sim, capacity=123.0)
        sizes = [10.0, 500.0, 37.5, 1_000.0]
        for s in sizes:
            pipe.transfer(s)
        sim.run()
        assert pipe.bytes_moved == pytest.approx(sum(sizes), rel=1e-9)
        assert pipe.active_transfers == 0
        assert pipe.current_rate == 0.0

    def test_rate_change_callback_sees_aggregate(self, sim):
        rates = []
        pipe = BandwidthPipe(sim, capacity=100.0, on_rate_change=lambda t, r: rates.append((t, r)))
        pipe.transfer(100.0)
        pipe.transfer(100.0)
        sim.run()
        assert rates[0] == (0.0, 100.0)
        assert rates[-1][1] == 0.0
        assert all(r <= 100.0 + 1e-9 for _, r in rates)

    def test_late_start_no_livelock_at_large_times(self, sim):
        """Regression: transfers starting at large clock values must finish.

        With a fixed byte-epsilon, float granularity at t≈3e6 s left residual
        bytes that re-armed zero-length wake-ups forever.
        """
        done = []

        def proc():
            yield sim.timeout(2.6e6)
            for _ in range(5):
                tr = pipe.transfer(786_432.0)  # one 0.78 MB image
                yield tr
            done.append(sim.now)

        pipe = BandwidthPipe(sim, capacity=160e6)
        sim.process(proc())
        sim.run()
        assert done and done[0] > 2.6e6

    def test_aggregate_rate_never_exceeds_capacity(self, sim):
        pipe = BandwidthPipe(sim, capacity=50.0)
        for size in (100.0, 200.0, 50.0):
            pipe.transfer(size)
        assert pipe.current_rate <= 50.0 + 1e-9
        sim.run()
        assert sim.now == pytest.approx(350.0 / 50.0)


class TestBandwidthPipeProperties:
    @settings(deadline=None, max_examples=40)
    @given(
        sizes=st.lists(
            st.floats(min_value=1.0, max_value=1e7, allow_nan=False),
            min_size=1,
            max_size=8,
        ),
        capacity=st.floats(min_value=1.0, max_value=1e8, allow_nan=False),
        start=st.floats(min_value=0.0, max_value=1e7, allow_nan=False),
    )
    def test_conservation_and_lower_bound(self, sizes, capacity, start):
        """All bytes arrive; the pipe is never faster than capacity allows."""
        sim = Simulator()
        pipe = BandwidthPipe(sim, capacity=capacity)

        def proc():
            yield sim.timeout(start)
            events = [pipe.transfer(s) for s in sizes]
            yield sim.all_of(events)

        sim.process(proc())
        sim.run()
        elapsed = sim.now - start
        lower_bound = sum(sizes) / capacity
        # Allow for float-clock quantization at large absolute times.
        slack = 8 * math.ulp(max(sim.now, 1.0))
        assert elapsed >= lower_bound * (1 - 1e-6) - slack
        assert pipe.bytes_moved == pytest.approx(sum(sizes), rel=1e-6)

    @settings(deadline=None, max_examples=30)
    @given(
        n=st.integers(min_value=1, max_value=6),
        size=st.floats(min_value=10.0, max_value=1e6, allow_nan=False),
    )
    def test_equal_transfers_finish_together(self, n, size):
        """n identical transfers under fair sharing finish simultaneously."""
        sim = Simulator()
        pipe = BandwidthPipe(sim, capacity=1_000.0)
        finish = []

        def proc(t):
            yield t
            finish.append(sim.now)

        for _ in range(n):
            sim.process(proc(pipe.transfer(size)))
        sim.run()
        assert len(finish) == n
        assert max(finish) - min(finish) <= 1e-6 * max(finish + [1.0])
        assert max(finish) == pytest.approx(n * size / 1_000.0, rel=1e-6)
