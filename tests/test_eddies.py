"""Tests for eddy detection and tracking (:mod:`repro.ocean.eddies`)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.ocean.eddies import Eddy, EddyTrack, detect_eddies, track_eddies


def gaussian_well(n, center, radius, depth=1.0):
    """A synthetic negative-W blob at ``center`` (row, col), periodic-safe."""
    y, x = np.mgrid[0:n, 0:n].astype(float)
    dy = np.minimum(np.abs(y - center[0]), n - np.abs(y - center[0]))
    dx = np.minimum(np.abs(x - center[1]), n - np.abs(x - center[1]))
    return -depth * np.exp(-(dx**2 + dy**2) / (2 * radius**2))


class TestDetection:
    def test_single_well_found(self):
        w = gaussian_well(64, (20, 30), 4.0)
        eddies = detect_eddies(w, threshold=-0.5, min_cells=1)
        assert len(eddies) == 1
        e = eddies[0]
        assert e.center[0] == pytest.approx(20.0, abs=0.5)
        assert e.center[1] == pytest.approx(30.0, abs=0.5)
        assert e.min_w == pytest.approx(-1.0, abs=1e-6)

    def test_two_wells_found_sorted_by_depth(self):
        w = gaussian_well(64, (10, 10), 3.0, depth=2.0) + gaussian_well(64, (40, 40), 3.0, depth=1.0)
        eddies = detect_eddies(w, threshold=-0.5, min_cells=1)
        assert len(eddies) == 2
        assert eddies[0].min_w < eddies[1].min_w  # deepest first

    def test_min_cells_filters_specks(self):
        w = np.zeros((32, 32))
        w[5, 5] = -10.0  # single-cell speck
        assert detect_eddies(w, threshold=-1.0, min_cells=2) == []
        assert len(detect_eddies(w, threshold=-1.0, min_cells=1)) == 1

    def test_periodic_merge_across_boundary(self):
        """A well straddling the wrap-around edge is one eddy, not two."""
        w = gaussian_well(64, (0, 32), 4.0)  # centered on the row seam
        eddies = detect_eddies(w, threshold=-0.5, min_cells=1, periodic=True)
        assert len(eddies) == 1
        # Periodic centroid lands on the seam, not mid-domain.
        row = eddies[0].center[0]
        assert min(row, 64 - row) < 1.0

    def test_nonperiodic_splits_boundary_eddy(self):
        w = gaussian_well(64, (0, 32), 4.0)
        eddies = detect_eddies(w, threshold=-0.5, min_cells=1, periodic=False)
        assert len(eddies) == 2

    def test_rotation_sign_from_vorticity(self):
        w = gaussian_well(32, (16, 16), 3.0)
        zeta = np.full((32, 32), 0.7)
        eddies = detect_eddies(w, vorticity=zeta, threshold=-0.5, min_cells=1)
        assert eddies[0].rotation_sign == 1
        eddies = detect_eddies(w, vorticity=-zeta, threshold=-0.5, min_cells=1)
        assert eddies[0].rotation_sign == -1

    def test_sign_zero_without_vorticity(self):
        w = gaussian_well(32, (16, 16), 3.0)
        assert detect_eddies(w, threshold=-0.5, min_cells=1)[0].rotation_sign == 0

    def test_default_threshold_uses_std(self):
        rng = np.random.default_rng(0)
        w = rng.standard_normal((64, 64))
        eddies = detect_eddies(w, threshold_factor=0.2, min_cells=1)
        assert all(e.min_w < -0.2 * w.std() for e in eddies)

    def test_radius_matches_equal_area_disk(self):
        w = gaussian_well(64, (32, 32), 5.0)
        e = detect_eddies(w, threshold=-0.5, min_cells=1)[0]
        assert e.radius_cells == pytest.approx(np.sqrt(e.area_cells / np.pi))

    def test_non_2d_rejected(self):
        with pytest.raises(ConfigurationError):
            detect_eddies(np.zeros(10))

    def test_invalid_min_cells(self):
        with pytest.raises(ConfigurationError):
            detect_eddies(np.zeros((8, 8)), min_cells=0)

    def test_real_flow_detections(self, mini_driver):
        w = mini_driver.okubo_weiss_field()
        eddies = detect_eddies(w, vorticity=mini_driver.solver.vorticity())
        assert len(eddies) > 3
        signs = {e.rotation_sign for e in eddies}
        assert 1 in signs and -1 in signs  # cyclones and anticyclones


class TestEddyDataclasses:
    def test_eddy_validation(self):
        with pytest.raises(ConfigurationError):
            Eddy(center=(0, 0), area_cells=0, min_w=-1, rotation_sign=0, radius_cells=1)
        with pytest.raises(ConfigurationError):
            Eddy(center=(0, 0), area_cells=1, min_w=-1, rotation_sign=5, radius_cells=1)

    def test_track_lifetime_and_path(self):
        eddies = [
            Eddy(center=(10.0, 10.0), area_cells=5, min_w=-1, rotation_sign=1,
                 radius_cells=1.3, frame=2),
            Eddy(center=(13.0, 14.0), area_cells=5, min_w=-1, rotation_sign=1,
                 radius_cells=1.3, frame=3),
        ]
        track = EddyTrack(eddies=eddies)
        assert track.birth_frame == 2
        assert track.death_frame == 3
        assert track.lifetime_frames == 2
        assert track.path_length() == pytest.approx(5.0)

    def test_periodic_path_length(self):
        eddies = [
            Eddy(center=(1.0, 1.0), area_cells=1, min_w=-1, rotation_sign=0,
                 radius_cells=1, frame=0),
            Eddy(center=(63.0, 1.0), area_cells=1, min_w=-1, rotation_sign=0,
                 radius_cells=1, frame=1),
        ]
        track = EddyTrack(eddies=eddies)
        assert track.path_length(shape=(64, 64)) == pytest.approx(2.0)


class TestTracking:
    def _eddy(self, r, c, frame):
        return Eddy(center=(float(r), float(c)), area_cells=4, min_w=-1.0,
                    rotation_sign=1, radius_cells=1.1, frame=frame)

    def test_stationary_eddy_forms_one_track(self):
        frames = [[self._eddy(10, 10, f)] for f in range(5)]
        tracks = track_eddies(frames, max_distance_cells=3.0)
        assert len(tracks) == 1
        assert tracks[0].lifetime_frames == 5

    def test_moving_eddy_tracked(self):
        frames = [[self._eddy(10, 10 + 2 * f, f)] for f in range(4)]
        tracks = track_eddies(frames, max_distance_cells=3.0)
        assert len(tracks) == 1
        assert tracks[0].path_length() == pytest.approx(6.0)

    def test_jump_beyond_max_distance_splits_track(self):
        frames = [[self._eddy(10, 10, 0)], [self._eddy(10, 40, 1)]]
        tracks = track_eddies(frames, max_distance_cells=5.0)
        assert len(tracks) == 2

    def test_two_parallel_eddies_two_tracks(self):
        frames = [
            [self._eddy(10, 10, f), self._eddy(40, 40, f)] for f in range(3)
        ]
        tracks = track_eddies(frames, max_distance_cells=3.0)
        assert len(tracks) == 2
        assert all(t.lifetime_frames == 3 for t in tracks)

    def test_greedy_matching_prefers_closest(self):
        frames = [
            [self._eddy(10, 10, 0), self._eddy(10, 16, 0)],
            [self._eddy(10, 11, 1), self._eddy(10, 17, 1)],
        ]
        tracks = track_eddies(frames, max_distance_cells=8.0)
        assert len(tracks) == 2
        # Each track moved by 1 cell, not crossed over by 5/7 cells.
        assert all(t.path_length() == pytest.approx(1.0) for t in tracks)

    def test_death_and_birth(self):
        frames = [
            [self._eddy(10, 10, 0)],
            [],  # eddy disappears
            [self._eddy(10, 10, 2)],  # a new one appears at the same spot
        ]
        tracks = track_eddies(frames, max_distance_cells=3.0)
        assert len(tracks) == 2

    def test_periodic_tracking_across_seam(self):
        frames = [
            [self._eddy(1, 10, 0)],
            [self._eddy(63, 10, 1)],  # wrapped around a 64-row domain
        ]
        tracks = track_eddies(frames, max_distance_cells=3.0, shape=(64, 64))
        assert len(tracks) == 1

    def test_invalid_max_distance(self):
        with pytest.raises(ConfigurationError):
            track_eddies([], max_distance_cells=0.0)

    def test_real_flow_produces_persistent_tracks(self, mini_driver):
        """Eddies in the real mini model persist across output frames."""
        import copy
        from repro.ocean.driver import MiniOceanDriver
        driver = MiniOceanDriver(nx=64, ny=32, seed=11)
        driver.advance(20)
        frames = []
        for f in range(4):
            driver.advance(5)
            w = driver.okubo_weiss_field()
            frames.append(detect_eddies(w, vorticity=driver.solver.vorticity(), frame=f))
        tracks = track_eddies(frames, max_distance_cells=6.0, shape=(32, 64))
        assert any(t.lifetime_frames >= 3 for t in tracks)
