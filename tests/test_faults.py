"""Tests for the fault-injection and resilience subsystem (:mod:`repro.faults`).

Covers the declarative spec, the transient-error gate, retry/backoff, the
injector's capacity scaling, checkpoint/restart through the supervised
platform run, the analytic failure model, and the determinism guarantees
the chaos CI job relies on.
"""

from __future__ import annotations

import json
import random

import pytest

from repro.errors import (
    ConfigurationError,
    ModelError,
    NodeCrashError,
    OperationTimeoutError,
    RetryExhaustedError,
    TransientIOError,
)
from repro.events.engine import Simulator
from repro.exec.api import RunRequest
from repro.faults import (
    CheckpointPolicy,
    FailureModel,
    FaultEvent,
    FaultGate,
    FaultInjector,
    FaultSpec,
    ResumeState,
    RetryPolicy,
    run_fault_campaign,
)
from repro.faults.spec import IO_ERROR, NODE_CRASH, OST_DROPOUT, WRITE_BROWNOUT
from repro.ocean.driver import MPASOceanConfig
from repro.pipelines.base import PipelineSpec
from repro.pipelines.insitu import InSituPipeline
from repro.pipelines.platform import SimulatedPlatform
from repro.pipelines.postprocessing import PostProcessingPipeline
from repro.pipelines.sampling import SamplingPolicy
from repro.storage.lustre import LustreFileSystem
from repro.units import DAY, MB


def drive(sim: Simulator, gen):
    """Run a storage generator to completion, returning its value."""
    box = {}

    def wrapper():
        box["value"] = yield from gen

    sim.process(wrapper())
    sim.run()
    return box.get("value")


# --------------------------------------------------------------------- spec


class TestFaultSpec:
    def test_events_sorted_by_time(self):
        spec = FaultSpec(
            seed=1,
            events=(
                FaultEvent(at_seconds=9.0, kind=NODE_CRASH),
                FaultEvent(at_seconds=2.0, kind=NODE_CRASH),
            ),
        )
        assert [e.at_seconds for e in spec.events] == [2.0, 9.0]

    def test_round_trip(self):
        spec = FaultSpec.campaign(
            seed=11, horizon_seconds=7_200.0, mtbf_hours=0.2,
            brownout_rate_per_hour=3.0, io_error_rate_per_hour=3.0,
        )
        assert FaultSpec.from_dict(json.loads(json.dumps(spec.to_dict()))) == spec

    def test_campaign_is_deterministic(self):
        a = FaultSpec.campaign(seed=5, horizon_seconds=36_000.0, mtbf_hours=0.5)
        b = FaultSpec.campaign(seed=5, horizon_seconds=36_000.0, mtbf_hours=0.5)
        assert a == b
        c = FaultSpec.campaign(seed=6, horizon_seconds=36_000.0, mtbf_hours=0.5)
        assert a != c

    def test_campaign_respects_horizon(self):
        spec = FaultSpec.campaign(
            seed=2, horizon_seconds=1_000.0, mtbf_hours=0.01,
            brownout_rate_per_hour=50.0,
        )
        assert len(spec) > 0
        assert all(0 <= e.at_seconds < 1_000.0 for e in spec.events)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultEvent(at_seconds=0.0, kind="gamma-ray")

    def test_brownout_severity_must_be_fraction(self):
        with pytest.raises(ConfigurationError):
            FaultEvent(
                at_seconds=0.0, kind=WRITE_BROWNOUT,
                duration_seconds=5.0, severity=1.5,
            )

    def test_io_error_needs_valid_target(self):
        with pytest.raises(ConfigurationError):
            FaultEvent(at_seconds=0.0, kind=IO_ERROR, target="erase")

    def test_timed_kind_needs_duration(self):
        with pytest.raises(ConfigurationError):
            FaultEvent(at_seconds=0.0, kind=OST_DROPOUT, severity=1.0)


# --------------------------------------------------------------------- gate


class TestFaultGate:
    def test_armed_errors_trip_then_clear(self):
        gate = FaultGate()
        gate.arm("write", 2)
        for _ in range(2):
            with pytest.raises(TransientIOError):
                gate.check("write", "f")
        gate.check("write", "f")  # disarmed: no-op
        assert gate.tripped == 2

    def test_ops_are_independent(self):
        gate = FaultGate()
        gate.arm("read", 1)
        gate.check("write", "f")  # unaffected
        with pytest.raises(TransientIOError):
            gate.check("read", "f")


# -------------------------------------------------------------------- retry


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ConfigurationError):
            RetryPolicy(op_timeout_seconds=0.0)

    def test_backoff_is_deterministic_per_seed(self):
        policy = RetryPolicy(base_delay_seconds=1.0, jitter=0.25)
        a = [policy.backoff_delay(i, random.Random(9)) for i in range(3)]
        b = [policy.backoff_delay(i, random.Random(9)) for i in range(3)]
        assert a == b

    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(
            base_delay_seconds=1.0, backoff_factor=4.0,
            max_delay_seconds=8.0, jitter=0.0,
        )
        rng = random.Random(0)
        assert [policy.backoff_delay(i, rng) for i in range(4)] == [1.0, 4.0, 8.0, 8.0]

    def test_succeeds_after_transient_failures(self, sim):
        attempts = []

        def op():
            attempts.append(sim.now)
            if len(attempts) < 3:
                raise TransientIOError("flaky")
            yield sim.timeout(1.0)
            return "done"

        policy = RetryPolicy(max_attempts=4, base_delay_seconds=2.0, jitter=0.0)
        result = drive(sim, policy.run(sim, op, random.Random(0)))
        assert result == "done"
        assert len(attempts) == 3
        assert sim.now > 2.0  # backoff consumed simulated time

    def test_exhaustion_raises_chained(self, sim):
        def op():
            raise TransientIOError("always")
            yield  # pragma: no cover - makes op a generator

        policy = RetryPolicy(max_attempts=2, base_delay_seconds=0.1, jitter=0.0)
        with pytest.raises(RetryExhaustedError) as info:
            drive(sim, policy.run(sim, op, random.Random(0)))
        assert isinstance(info.value.__cause__, TransientIOError)

    def test_non_retryable_propagates_immediately(self, sim):
        calls = []

        def op():
            calls.append(1)
            raise KeyError("permanent")
            yield  # pragma: no cover

        policy = RetryPolicy(max_attempts=5)
        with pytest.raises(KeyError):
            drive(sim, policy.run(sim, op, random.Random(0)))
        assert calls == [1]

    def test_op_timeout_interrupts_slow_attempt(self, sim):
        durations = iter([100.0, 1.0])

        def op():
            yield sim.timeout(next(durations))
            return "ok"

        policy = RetryPolicy(
            max_attempts=2, base_delay_seconds=0.0, jitter=0.0,
            op_timeout_seconds=10.0,
        )
        done = []

        def runner():
            result = yield from policy.run(sim, op, random.Random(0))
            done.append((result, sim.now))

        sim.process(runner())
        sim.run()
        # Timed out at t=10, the retry finished at t=11 (the abandoned
        # attempt's stale 100 s timeout drains later, harmlessly).
        assert done == [("ok", pytest.approx(11.0))]


# ----------------------------------------------------------------- injector


def small_fs(sim: Simulator, **kwargs) -> LustreFileSystem:
    kwargs.setdefault("capacity_bytes", 1_000 * MB)
    kwargs.setdefault("write_bandwidth", 100 * MB)
    kwargs.setdefault("read_bandwidth", 100 * MB)
    return LustreFileSystem(sim, **kwargs)


class TestFaultInjector:
    def test_brownout_degrades_then_restores_exactly(self, sim):
        fs = small_fs(sim)
        nominal = fs.write_pipe.capacity
        spec = FaultSpec(seed=0, events=(
            FaultEvent(at_seconds=5.0, kind=WRITE_BROWNOUT,
                       duration_seconds=10.0, severity=0.5),
        ))
        inj = FaultInjector(sim, fs, spec)
        inj.arm()
        seen = []

        def probe():
            yield sim.timeout(7.0)
            seen.append(fs.write_pipe.capacity)

        sim.process(probe())
        sim.run()
        assert seen == [0.5 * nominal]
        assert fs.write_pipe.capacity == nominal
        assert inj.counts == {WRITE_BROWNOUT: 1}

    def test_overlapping_faults_compose_multiplicatively(self, sim):
        fs = small_fs(sim)
        nominal = fs.write_pipe.capacity
        spec = FaultSpec(seed=0, events=(
            FaultEvent(at_seconds=0.0, kind=WRITE_BROWNOUT,
                       duration_seconds=20.0, severity=0.5),
            FaultEvent(at_seconds=5.0, kind=WRITE_BROWNOUT,
                       duration_seconds=5.0, severity=0.5),
        ))
        FaultInjector(sim, fs, spec).arm()
        seen = {}

        def probe():
            yield sim.timeout(7.0)
            seen["overlap"] = fs.write_pipe.capacity
            yield sim.timeout(5.0)
            seen["single"] = fs.write_pipe.capacity

        sim.process(probe())
        sim.run()
        assert seen["overlap"] == pytest.approx(0.25 * nominal)
        assert seen["single"] == pytest.approx(0.5 * nominal)
        assert fs.write_pipe.capacity == nominal

    def test_ost_dropout_scales_both_pipes(self, sim):
        fs = small_fs(sim, n_ost=8)
        spec = FaultSpec(seed=0, events=(
            FaultEvent(at_seconds=1.0, kind=OST_DROPOUT,
                       duration_seconds=4.0, severity=2.0),
        ))
        FaultInjector(sim, fs, spec).arm()
        seen = []

        def probe():
            yield sim.timeout(2.0)
            seen.append((fs.write_pipe.capacity, fs.read_pipe.capacity))

        sim.process(probe())
        sim.run()
        assert seen[0][0] == pytest.approx(0.75 * 100 * MB)
        assert seen[0][1] == pytest.approx(0.75 * 100 * MB)

    def test_io_error_arms_gate_and_write_fails(self, sim):
        fs = small_fs(sim)
        spec = FaultSpec(seed=0, events=(
            FaultEvent(at_seconds=0.0, kind=IO_ERROR, target="write", severity=1.0),
        ))
        FaultInjector(sim, fs, spec).arm()

        def writer():
            yield sim.timeout(1.0)
            with pytest.raises(TransientIOError):
                yield from fs.write("f", 10 * MB)
            yield from fs.write("f", 10 * MB)  # gate disarmed: succeeds

        sim.process(writer())
        sim.run()
        assert fs.exists("f")
        assert fs.fault_gate.tripped == 1

    def test_node_crash_interrupts_watched_process(self, sim):
        fs = small_fs(sim)
        spec = FaultSpec(seed=0, events=(
            FaultEvent(at_seconds=3.0, kind=NODE_CRASH),
        ))
        inj = FaultInjector(sim, fs, spec)
        inj.arm()
        outcome = []

        def victim():
            try:
                yield sim.timeout(100.0)
            except NodeCrashError as exc:
                outcome.append(str(exc))

        inj.watch(sim.process(victim()))
        sim.run()
        assert outcome and "t=3.0s" in outcome[0]

    def test_crash_with_no_watched_process_is_missed(self, sim):
        fs = small_fs(sim)
        spec = FaultSpec(seed=0, events=(
            FaultEvent(at_seconds=1.0, kind=NODE_CRASH),
        ))
        inj = FaultInjector(sim, fs, spec)
        inj.arm()
        sim.run()
        assert inj.missed_crashes == 1
        assert inj.summary()["missed_crashes"] == 1

    def test_disarm_neutralizes_pending_faults(self, sim):
        fs = small_fs(sim)
        nominal = fs.write_pipe.capacity
        spec = FaultSpec(seed=0, events=(
            FaultEvent(at_seconds=5.0, kind=WRITE_BROWNOUT,
                       duration_seconds=10.0, severity=0.5),
        ))
        inj = FaultInjector(sim, fs, spec)
        inj.arm()
        inj.disarm()
        sim.run()
        assert inj.total_injected == 0
        assert fs.write_pipe.capacity == nominal


# ------------------------------------------------------ storage resilience


class TestStorageResilience:
    def test_concurrent_writes_cannot_overcommit(self, sim):
        bw = 10 * MB  # repro-unit: bytes_per_s
        fs = LustreFileSystem(
            sim, capacity_bytes=100 * MB,
            write_bandwidth=bw, read_bandwidth=bw,
        )
        results = {}

        def writer(name):
            try:
                yield from fs.write(name, 60 * MB)
                results[name] = "ok"
            except Exception as exc:
                results[name] = type(exc).__name__

        sim.process(writer("a"))
        sim.process(writer("b"))
        sim.run()
        assert sorted(results.values()) == ["StorageFullError", "ok"]
        assert fs.used_bytes <= fs.capacity_bytes
        assert fs.reserved_bytes == 0.0

    def test_overwrite_replaces_not_appends(self, sim):
        fs = small_fs(sim)
        drive(sim, fs.write("ckpt", 50 * MB))
        drive(sim, fs.write("ckpt", 50 * MB, overwrite=True))
        assert fs.stat("ckpt").size == 50 * MB

    def test_overwrite_only_reserves_the_growth(self, sim):
        bw = 10 * MB  # repro-unit: bytes_per_s
        fs = LustreFileSystem(
            sim, capacity_bytes=100 * MB,
            write_bandwidth=bw, read_bandwidth=bw,
        )
        drive(sim, fs.write("ckpt", 80 * MB))
        # An append would need 80 more MB and die; a rewrite fits.
        drive(sim, fs.write("ckpt", 80 * MB, overwrite=True))
        assert fs.stat("ckpt").size == 80 * MB

    def test_interrupted_write_rolls_back_partial_bytes(self, sim):
        fs = small_fs(sim, write_bandwidth=10 * MB)
        outcome = []

        def writer():
            try:
                yield from fs.write("big", 100 * MB)  # would take 10 s
            except NodeCrashError:
                outcome.append("crashed")

        p = sim.process(writer())
        fuse = sim.timeout(5.0)
        fuse.callbacks.append(lambda _e: p.interrupt(NodeCrashError("die")))
        sim.run()
        assert outcome == ["crashed"]
        assert not fs.exists("big")
        assert fs.bytes_written == 0.0
        assert fs.reserved_bytes == 0.0

    def test_interrupt_during_metadata_op_releases_server(self, sim):
        fs = small_fs(sim, n_mds=1, metadata_latency=10.0)

        def writer():
            yield from fs.write("f", 1 * MB)

        p = sim.process(writer())
        fuse = sim.timeout(5.0)
        fuse.callbacks.append(lambda _e: p.interrupt(NodeCrashError("die")))
        with pytest.raises(NodeCrashError):
            sim.run()
        # The MDS slot must have been released: a follow-up write completes.
        assert drive(sim, fs.write("g", 1 * MB)).path == "g"

    def test_fs_retry_policy_rides_through_armed_errors(self, sim):
        fs = small_fs(sim)
        fs.retry_policy = RetryPolicy(max_attempts=3, base_delay_seconds=0.1, jitter=0.0)
        gate = FaultGate()
        gate.arm("write", 2)
        fs.fault_gate = gate
        record = drive(sim, fs.write("f", 10 * MB))
        assert record.path == "f"
        assert gate.tripped == 2

    def test_fs_retry_exhaustion_propagates(self, sim):
        fs = small_fs(sim)
        fs.retry_policy = RetryPolicy(max_attempts=2, base_delay_seconds=0.1, jitter=0.0)
        gate = FaultGate()
        gate.arm("write", 5)
        fs.fault_gate = gate

        def writer():
            yield from fs.write("f", 10 * MB)

        sim.process(writer())
        with pytest.raises(RetryExhaustedError):
            sim.run()


# -------------------------------------------------------- failure model


class TestFailureModel:
    def test_expected_time_exceeds_base(self):
        model = FailureModel(
            mtbf_seconds=21_600.0, checkpoint_write_seconds=30.0, restart_seconds=30.0
        )
        assert model.expected_time(10_000.0, 1_000.0) > 10_000.0

    def test_no_forward_progress_rejected(self):
        model = FailureModel(
            mtbf_seconds=100.0, checkpoint_write_seconds=1.0, restart_seconds=90.0
        )
        with pytest.raises(ModelError):
            model.expected_time(1_000.0, 50.0)

    def test_optimal_interval_is_youngs_formula(self):
        model = FailureModel(
            mtbf_seconds=20_000.0, checkpoint_write_seconds=10.0, restart_seconds=30.0
        )
        assert model.optimal_interval() == pytest.approx((2 * 10.0 * 20_000.0) ** 0.5)

    def test_optimum_minimizes_expected_time(self):
        model = FailureModel(
            mtbf_seconds=20_000.0, checkpoint_write_seconds=10.0, restart_seconds=30.0
        )
        best = model.optimal_interval()
        at_best = model.expected_time(10_000.0, best)
        assert at_best <= model.expected_time(10_000.0, best / 3)
        assert at_best <= model.expected_time(10_000.0, best * 3)

    def test_energy_scales_with_inflated_time(self):
        model = FailureModel(
            mtbf_seconds=21_600.0, checkpoint_write_seconds=30.0, restart_seconds=30.0
        )
        t = model.expected_time(5_000.0, 600.0)
        assert model.expected_energy(5_000.0, 600.0, 46_300.0) == pytest.approx(46_300.0 * t)


# ------------------------------------------------- checkpoint/restart runs


def tiny_spec() -> PipelineSpec:
    return PipelineSpec(
        ocean=MPASOceanConfig(duration_seconds=10 * DAY),
        sampling=SamplingPolicy(24.0),
    )


def crash_spec(at_seconds: float) -> FaultSpec:
    return FaultSpec(seed=0, events=(
        FaultEvent(at_seconds=at_seconds, kind=NODE_CRASH),
    ))


class TestCheckpointRestart:
    @pytest.mark.parametrize("pipeline_cls", [InSituPipeline, PostProcessingPipeline])
    def test_protected_run_survives_where_unprotected_aborts(self, pipeline_cls):
        spec = tiny_spec()
        baseline = pipeline_cls().execute(RunRequest(spec=spec)).measurement
        faults = crash_spec(0.5 * baseline.execution_time)

        with pytest.raises(NodeCrashError):
            pipeline_cls().execute(RunRequest(spec=spec, faults=faults))

        policy = CheckpointPolicy(every_n_outputs=2, restart_penalty_seconds=30.0)
        run = pipeline_cls().execute(
            RunRequest(spec=spec, faults=faults, checkpoints=policy)
        )
        protected = run.measurement
        assert protected.n_outputs == baseline.n_outputs
        assert protected.n_images == baseline.n_images
        assert protected.execution_time > baseline.execution_time
        assert run.fault_summary["recoveries"] == 1
        assert "recovery" in protected.timeline.by_phase()
        assert "checkpoint" in protected.timeline.by_phase()

    def test_checkpoint_cadence_bounds_rework(self):
        """Denser checkpoints => less lost work for the same crash."""
        spec = tiny_spec()
        baseline = InSituPipeline().execute(RunRequest(spec=spec)).measurement
        faults = crash_spec(0.75 * baseline.execution_time)
        times = {}
        for every in (2, 8):
            policy = CheckpointPolicy(every_n_outputs=every,
                                      restart_penalty_seconds=30.0)
            run = InSituPipeline().execute(
                RunRequest(spec=spec, faults=faults, checkpoints=policy)
            )
            times[every] = run.measurement.execution_time
        assert times[2] < times[8]

    def test_empty_fault_spec_matches_legacy_measurement(self):
        spec = tiny_spec()
        legacy = InSituPipeline().execute(RunRequest(spec=spec)).measurement
        supervised = InSituPipeline().execute(
            RunRequest(spec=spec, faults=FaultSpec(seed=0))
        ).measurement
        assert json.dumps(legacy.to_dict(), sort_keys=True) == json.dumps(
            supervised.to_dict(), sort_keys=True
        )

    def test_resume_state_round_trip(self):
        state = ResumeState(outputs_done=4, renders_done=8)
        assert state.to_dict() == {"outputs_done": 4, "renders_done": 8}
        with pytest.raises(ConfigurationError):
            ResumeState(outputs_done=-1)

    def test_checkpoint_policy_validation(self):
        with pytest.raises(ConfigurationError):
            CheckpointPolicy(every_n_outputs=0)
        with pytest.raises(ConfigurationError):
            CheckpointPolicy(restart_penalty_seconds=-1.0)


# ---------------------------------------------------------------- campaign


class TestCampaign:
    def test_campaign_is_bit_deterministic(self):
        spec = tiny_spec()

        def go():
            result = run_fault_campaign(
                spec, SimulatedPlatform, seed=3, mtbf_hours=0.05,
                checkpoint_every=2,
            )
            return json.dumps(result.to_dict(), sort_keys=True)

        assert go() == go()

    def test_campaign_reports_both_pipelines(self):
        result = run_fault_campaign(
            tiny_spec(), SimulatedPlatform, seed=3, mtbf_hours=0.05,
            checkpoint_every=2, include_unprotected=False,
        )
        assert {r.pipeline for r in result.reports} == {"in-situ", "post-processing"}
        for report in result.reports:
            assert report.protected is not None
            assert report.unprotected_outcome == "skipped"
            assert report.overhead_ratio >= 0.0
        assert "fault campaign" in result.table()

    def test_identical_fault_load_for_every_pipeline(self):
        result = run_fault_campaign(
            tiny_spec(), SimulatedPlatform, seed=3, mtbf_hours=0.05,
            checkpoint_every=2, include_unprotected=False,
        )
        seeds = {r.fault_summary["seed"] for r in result.reports}
        scheduled = {r.fault_summary["scheduled"] for r in result.reports}
        assert seeds == {3} and len(scheduled) == 1
