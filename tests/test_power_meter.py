"""Focused coverage for :class:`PowerMeter.instantaneous` and cage limits."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, MeterError
from repro.power.meter import CageMonitor, PowerMeter
from repro.power.signal import PowerSignal


class TestInstantaneous:
    def test_sums_all_attached_signals(self):
        meter = PowerMeter("m")
        meter.attach_all([PowerSignal(100.0), PowerSignal(50.0), PowerSignal(25.0)])
        assert meter.instantaneous(0.0) == 175.0

    def test_applies_loss_factor(self):
        meter = PowerMeter("m", loss_factor=1.2)
        meter.attach(PowerSignal(100.0))
        assert meter.instantaneous(0.0) == pytest.approx(120.0)

    def test_follows_signal_steps(self):
        s = PowerSignal(100.0)
        s.set(10.0, 400.0)
        s.set(20.0, 150.0)
        meter = PowerMeter("m")
        meter.attach(s)
        assert meter.instantaneous(9.99) == 100.0
        assert meter.instantaneous(10.0) == 400.0
        assert meter.instantaneous(25.0) == 150.0

    def test_no_signals_raises(self):
        with pytest.raises(MeterError):
            PowerMeter("m").instantaneous(0.0)


class TestCageMonitorAttachAll:
    def test_attach_all_fills_one_cage(self):
        cage = CageMonitor(3)
        cage.attach_all(PowerSignal(300.0) for _ in range(CageMonitor.NODES_PER_CAGE))
        assert cage.n_signals == CageMonitor.NODES_PER_CAGE
        assert cage.instantaneous(0.0) == 300.0 * CageMonitor.NODES_PER_CAGE

    def test_attach_all_overflow_raises(self):
        cage = CageMonitor(0)
        signals = [PowerSignal(100.0) for _ in range(CageMonitor.NODES_PER_CAGE + 1)]
        with pytest.raises(ConfigurationError):
            cage.attach_all(signals)
        # The first ten were accepted before the eleventh overflowed.
        assert cage.n_signals == CageMonitor.NODES_PER_CAGE

    def test_attach_all_respects_prior_attachments(self):
        cage = CageMonitor(1)
        cage.attach(PowerSignal(100.0))
        with pytest.raises(ConfigurationError):
            cage.attach_all(
                PowerSignal(100.0) for _ in range(CageMonitor.NODES_PER_CAGE)
            )
        assert cage.n_signals == CageMonitor.NODES_PER_CAGE
