"""Tests for supervised execution: crash recovery, deadlines, retries,
resumable sweeps, structured failure records, and the crash-safe write
helpers in ``repro.atomicio``."""

from __future__ import annotations

import json
import os

import pytest

from repro import obs
from repro.atomicio import append_jsonl_line, atomic_write_json, atomic_write_text
from repro.core.metrics import IN_SITU, POST_PROCESSING
from repro.errors import ConfigurationError, SweepError, TransientIOError
from repro.exec.api import RunRequest
from repro.exec.cache import DiskCache
from repro.exec.engine import ExecutionEngine
from repro.exec.supervise import (
    CHAOS_ENV,
    SupervisedExecutor,
    SweepJournal,
    TaskPolicy,
    parse_chaos,
    supervised_task,
)
from repro.faults.retry import RetryPolicy
from repro.obs.exporters import read_jsonl
from repro.obs.watch import default_exec_rules
from repro.ocean.driver import MPASOceanConfig
from repro.pipelines.base import PipelineSpec
from repro.pipelines.insitu import InSituPipeline
from repro.pipelines.sampling import SamplingPolicy
from repro.units import MONTH


def tiny_spec(hours: float = 72.0) -> PipelineSpec:
    return PipelineSpec(
        ocean=MPASOceanConfig(duration_seconds=MONTH),
        sampling=SamplingPolicy(hours),
    )


def tiny_requests(n: int = 3) -> list:
    return [
        RunRequest(pipeline=IN_SITU, spec=tiny_spec(24.0 * (i + 1)))
        for i in range(n)
    ]


def fast_retry(attempts: int = 3) -> RetryPolicy:
    return RetryPolicy(
        max_attempts=attempts,
        base_delay_seconds=0.001,
        max_delay_seconds=0.002,
        jitter=0.0,
    )


def supervisor(**kwargs) -> SupervisedExecutor:
    kwargs.setdefault("sleeper", lambda _s: None)
    return SupervisedExecutor(**kwargs)


@pytest.fixture(scope="module")
def serial_reference():
    """The serial identity dicts the supervised runs must reproduce."""
    return [r.identity_dict() for r in ExecutionEngine().map(tiny_requests())]


class TestTaskPolicy:
    def test_defaults_are_bounded(self):
        policy = TaskPolicy()
        assert policy.retry.max_attempts == 3
        assert policy.max_worker_crashes == 3
        assert policy.fail_policy == "abort"

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TaskPolicy(deadline_seconds=0.0)
        with pytest.raises(ConfigurationError):
            TaskPolicy(max_worker_crashes=0)
        with pytest.raises(ConfigurationError):
            TaskPolicy(fail_policy="shrug")

    def test_to_dict_round_trips_json(self):
        assert json.loads(json.dumps(TaskPolicy().to_dict()))["fail_policy"] == "abort"


class TestChaosParsing:
    def test_clauses(self):
        plan = parse_chaos("exit=1,2;raise_once=3;dir=/tmp/x;hang=4;hang_seconds=9")
        assert plan["exit"] == {1, 2}
        assert plan["raise_once"] == {3}
        assert plan["hang"] == {4}
        assert plan["hang_seconds"] == 9.0
        assert plan["dir"] == "/tmp/x"

    def test_once_without_dir_rejected(self):
        with pytest.raises(ConfigurationError):
            parse_chaos("exit_once=1")

    def test_malformed_clause_rejected(self):
        with pytest.raises(ConfigurationError):
            parse_chaos("bogus")
        with pytest.raises(ConfigurationError):
            parse_chaos("frobnicate=1")

    def test_raise_injection_in_process(self, monkeypatch):
        monkeypatch.setenv(CHAOS_ENV, "raise=0")
        with pytest.raises(TransientIOError):
            supervised_task(tiny_requests(1)[0], 0)

    def test_no_chaos_for_negative_index(self, monkeypatch):
        monkeypatch.setenv(CHAOS_ENV, "raise=0")
        result = supervised_task(tiny_requests(1)[0], -1)
        assert result.measurement is not None


class TestCrashRecovery:
    def test_worker_exit_is_recovered(self, serial_reference, tmp_path, monkeypatch):
        monkeypatch.setenv(CHAOS_ENV, f"exit_once=1;dir={tmp_path / 'chaos'}")
        ex = supervisor(max_workers=2, policy=TaskPolicy(retry=fast_retry()))
        results = ex.map(tiny_requests())
        assert ex.worker_crashes >= 1
        assert ex.pool_restarts >= 1
        assert not ex.failures
        assert [r.identity_dict() for r in results] == serial_reference
        assert all(r.engine == "pool" for r in results)

    def test_transient_exception_is_retried(self, serial_reference, tmp_path, monkeypatch):
        monkeypatch.setenv(CHAOS_ENV, f"raise_once=0;dir={tmp_path / 'chaos'}")
        ex = supervisor(max_workers=2, policy=TaskPolicy(retry=fast_retry()))
        results = ex.map(tiny_requests())
        assert ex.retries >= 1
        assert not ex.failures
        assert [r.identity_dict() for r in results] == serial_reference

    def test_poison_task_is_quarantined_under_skip(self, monkeypatch):
        monkeypatch.setenv(CHAOS_ENV, "exit=1")
        policy = TaskPolicy(
            retry=fast_retry(5), max_worker_crashes=2, fail_policy="skip"
        )
        ex = supervisor(max_workers=2, policy=policy)
        results = ex.map(tiny_requests())
        assert ex.quarantined == 1
        failed = [r for r in results if r.failure is not None]
        assert len(failed) == 1
        record = failed[0].failure
        assert record["kind"] == "poison"
        assert record["quarantined"] is True
        assert len(record["attempts"]) == 2
        assert all(a["kind"] == "worker-crash" for a in record["attempts"])
        # The innocent neighbors still finished with real measurements.
        assert sum(1 for r in results if r.ok) == 2

    def test_abort_policy_raises_sweep_error(self, monkeypatch):
        monkeypatch.setenv(CHAOS_ENV, "exit=1")
        policy = TaskPolicy(retry=fast_retry(5), max_worker_crashes=2)
        ex = supervisor(max_workers=2, policy=policy)
        with pytest.raises(SweepError) as excinfo:
            ex.map(tiny_requests())
        assert excinfo.value.failures[0]["kind"] == "poison"

    def test_serial_fallback_runs_poison_inline(self, serial_reference, monkeypatch):
        monkeypatch.setenv(CHAOS_ENV, "exit=1")
        policy = TaskPolicy(
            retry=fast_retry(5), max_worker_crashes=2, fail_policy="serial-fallback"
        )
        ex = supervisor(max_workers=2, policy=policy)
        results = ex.map(tiny_requests())
        # Chaos only applies inside pool workers, so the inline fallback
        # executes the "poison" task cleanly — and identically.
        assert ex.serial_fallbacks == 1
        assert not ex.failures
        assert [r.identity_dict() for r in results] == serial_reference
        assert results[1].engine == "serial-fallback"

    def test_deadline_expiry_becomes_failure(self, monkeypatch):
        monkeypatch.setenv(CHAOS_ENV, "hang=1;hang_seconds=60")
        policy = TaskPolicy(
            deadline_seconds=1.5, retry=fast_retry(2), fail_policy="skip"
        )
        ex = supervisor(max_workers=2, policy=policy)
        results = ex.map(tiny_requests())
        assert ex.deadline_expiries == 2
        failed = [r for r in results if r.failure is not None]
        assert len(failed) == 1
        assert failed[0].failure["kind"] == "deadline"
        assert sum(1 for r in results if r.ok) == 2

    def test_inline_retries_without_pool(self, monkeypatch):
        # workers=1 routes through the supervised inline path; the chaos
        # hook never applies there, so this exercises plain retry logic via
        # a pipeline that fails deterministically... which must fail fast.
        ex = supervisor(policy=TaskPolicy(retry=fast_retry(), fail_policy="skip"))
        bad = RunRequest(pipeline="no-such-pipeline", spec=tiny_spec())
        results = ex.map([bad])
        assert results[0].failure is not None
        assert results[0].failure["kind"] == "exception"


class TestByteIdentity:
    def test_crash_free_supervised_run_matches_serial(
        self, serial_reference, monkeypatch
    ):
        monkeypatch.delenv(CHAOS_ENV, raising=False)
        ex = supervisor(max_workers=2, policy=TaskPolicy(deadline_seconds=300.0))
        results = ex.map(tiny_requests())
        assert ex.worker_crashes == 0 and ex.retries == 0
        assert [r.identity_dict() for r in results] == serial_reference

    def test_crash_free_telemetry_matches_unsupervised(self, tmp_path, monkeypatch):
        monkeypatch.delenv(CHAOS_ENV, raising=False)
        requests = tiny_requests(2)

        def run(directory, engine):
            with obs.session(str(directory), label="sweep", argv=["x"]):
                engine.map([RunRequest.from_dict(r.to_dict()) for r in requests])
            events = (directory / "events.jsonl").read_text().splitlines()
            # Drop volatile fields: timings and ids differ per process.
            scrubbed = []
            for line in events:
                rec = json.loads(line)
                for volatile in ("t_wall", "trace_id", "span_id", "parent_span_id",
                                 "duration_seconds", "pid"):
                    rec.pop(volatile, None)
                scrubbed.append(rec.get("name") or rec.get("type"))
            return scrubbed

        plain = run(tmp_path / "plain", ExecutionEngine(max_workers=2))
        supervised = run(tmp_path / "sup", supervisor(max_workers=2))
        assert supervised == plain


class TestJournalAndResume:
    def test_journal_records_every_outcome(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CHAOS_ENV, "exit=1")
        journal = tmp_path / "sweep.journal.jsonl"
        policy = TaskPolicy(
            retry=fast_retry(5), max_worker_crashes=2, fail_policy="skip"
        )
        ex = supervisor(max_workers=2, policy=policy, journal=str(journal))
        ex.map(tiny_requests())
        records = list(read_jsonl(str(journal)))
        assert records[0]["type"] == "sweep"
        assert records[0]["n_tasks"] == 3
        tasks = [r for r in records if r["type"] == "task"]
        assert sorted(r["status"] for r in tasks) == ["done", "done", "failed"]
        incidents = [r for r in records if r["type"] == "incident"]
        assert any(r["kind"] == "worker-crash" for r in incidents)
        assert any(r["kind"] == "quarantine" for r in incidents)

    def test_resume_skips_completed_work(self, serial_reference, tmp_path, monkeypatch):
        monkeypatch.delenv(CHAOS_ENV, raising=False)
        journal = str(tmp_path / "sweep.journal.jsonl")
        cache = DiskCache(str(tmp_path / "cache"), code_version="v1")
        requests = tiny_requests()
        # A half-finished sweep: only the first two tasks ever ran.
        first = supervisor(max_workers=2, cache=cache, journal=journal)
        first.map(requests[:2])
        resumed = supervisor(
            max_workers=2, cache=cache, journal=journal, resume=True
        )
        results = resumed.map(requests)
        assert resumed.resumed_skips == 2
        assert resumed.cache_hits == 2
        assert [r.identity_dict() for r in results] == serial_reference

    def test_resume_reruns_corrupted_cache_entries(
        self, serial_reference, tmp_path, monkeypatch
    ):
        monkeypatch.delenv(CHAOS_ENV, raising=False)
        journal = str(tmp_path / "sweep.journal.jsonl")
        cache = DiskCache(str(tmp_path / "cache"), code_version="v1")
        requests = tiny_requests()
        supervisor(max_workers=2, cache=cache, journal=journal).map(requests)
        key = requests[0].cache_key("v1")
        payload = tmp_path / "cache" / key[:2] / f"{key}.pkl"
        with open(payload, "r+b") as fh:
            fh.write(b"\x00\x00\x00\x00")
        resumed = supervisor(
            max_workers=2, cache=cache, journal=journal, resume=True
        )
        results = resumed.map(requests)
        assert cache.corrupt_quarantined == 1
        assert [r.identity_dict() for r in results] == serial_reference
        # The corrupted entry re-ran; the intact two replayed.
        assert resumed.cache_hits == 2

    def test_resume_requires_journal_and_cache(self, tmp_path):
        with pytest.raises(ConfigurationError):
            SupervisedExecutor(resume=True)
        with pytest.raises(ConfigurationError):
            SupervisedExecutor(resume=True, journal=str(tmp_path / "j.jsonl"))

    def test_journal_load_tolerates_torn_tail(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = SweepJournal(str(path))
        journal.begin(2, "v1")
        journal.record(index=0, digest="d0", status="done")
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"type": "task", "digest": "d1", "status"')
        with pytest.warns(RuntimeWarning):
            latest = SweepJournal.load(str(path))
        assert set(latest) == {"d0"}


class TestFailureObservability:
    def test_failure_records_flow_into_session(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CHAOS_ENV, "exit=1")
        policy = TaskPolicy(
            retry=fast_retry(5), max_worker_crashes=2, fail_policy="skip"
        )
        with obs.session(str(tmp_path), label="sweep", argv=["x"]) as session:
            ex = supervisor(max_workers=2, policy=policy)
            ex.map(tiny_requests())
            metrics = session.registry.snapshot()

        def total(name):
            family = metrics.get(name, {"series": []})
            return sum(s["value"] for s in family["series"])

        assert total("repro_exec_worker_crashes_total") >= 1
        assert total("repro_exec_quarantined_total") == 1
        assert total("repro_alert_exec_worker_crash_total") >= 1
        supervise = json.loads(
            (tmp_path / "manifest.json").read_text()
        )["config"]["exec"]["supervise"]
        assert supervise["quarantined"] == 1
        assert supervise["failures"] == 1
        # Incident samples landed on the exec timeline.
        samples = [
            rec for rec in read_jsonl(str(tmp_path / "timeline.jsonl"))
            if rec.get("label") == "exec"
        ]
        assert samples
        assert all(
            "repro_timeline_exec_worker_crashes_total" in rec["values"]
            for rec in samples
        )

    def test_default_exec_rules_fire_on_crash_series(self):
        from repro.obs.watch import Watchdog

        dog = Watchdog(default_exec_rules())
        alerts = dog.observe(1.0, {"repro_timeline_exec_worker_crashes_total": 1.0})
        assert [a.rule for a in alerts] == ["exec_worker_crash"]
        assert alerts[0].severity == "critical"


class TestAtomicIO:
    def test_atomic_write_text_and_json(self, tmp_path):
        path = tmp_path / "deep" / "out.json"
        atomic_write_json(str(path), {"b": 2, "a": 1})
        assert json.loads(path.read_text()) == {"a": 1, "b": 2}
        assert path.read_text().endswith("\n")
        atomic_write_text(str(path), "replaced")
        assert path.read_text() == "replaced"
        # No temp litter left behind.
        assert sorted(p.name for p in path.parent.iterdir()) == ["out.json"]

    def test_append_jsonl_line_appends_whole_lines(self, tmp_path):
        path = tmp_path / "log.jsonl"
        append_jsonl_line(str(path), {"n": 1})
        append_jsonl_line(str(path), {"n": 2}, fsync=True)
        assert [r["n"] for r in read_jsonl(str(path))] == [1, 2]

    def test_manifest_written_atomically(self, tmp_path):
        with obs.session(str(tmp_path), label="t", argv=["x"]):
            pass
        assert not [
            p for p in tmp_path.iterdir() if ".tmp." in p.name
        ]
        assert (tmp_path / "manifest.json").exists()


class TestCliIntegration:
    def test_engine_builder_upgrades_to_supervised(self):
        import argparse

        from repro.cli import _engine

        args = argparse.Namespace(
            workers=2, cache=None, supervise=True, deadline=10.0,
            task_retries=4, max_worker_crashes=2, fail_policy="skip",
            journal=None, resume=False,
        )
        engine = _engine(args)
        assert isinstance(engine, SupervisedExecutor)
        assert engine.policy.deadline_seconds == 10.0
        assert engine.policy.retry.max_attempts == 4
        assert engine.policy.max_worker_crashes == 2
        assert engine.policy.fail_policy == "skip"

    def test_engine_builder_plain_without_supervision(self):
        import argparse

        from repro.cli import _engine

        args = argparse.Namespace(
            workers=2, cache=None, supervise=False, deadline=None,
            task_retries=None, max_worker_crashes=None, fail_policy=None,
            journal=None, resume=False,
        )
        engine = _engine(args)
        assert isinstance(engine, ExecutionEngine)
        assert not isinstance(engine, SupervisedExecutor)

    def test_resume_flag_validation(self, capsys):
        from repro.cli import main

        code = main(["characterize", "--resume"])
        assert code == 2
        assert "--resume needs both" in capsys.readouterr().err


class TestExecuteMany:
    def test_pipeline_execute_many_binds_and_supervises(self, tmp_path):
        journal = str(tmp_path / "sweep.journal.jsonl")
        cache = DiskCache(str(tmp_path / "cache"), code_version="v1")
        pipeline = InSituPipeline()
        requests = [RunRequest(spec=tiny_spec(h)) for h in (24.0, 72.0)]
        results = pipeline.execute_many(
            requests, workers=2, cache=cache, journal=journal
        )
        assert [r.request.pipeline for r in results] == [IN_SITU, IN_SITU]
        assert all(r.ok for r in results)
        assert os.path.exists(journal)
        # Re-running with resume replays both from the cache.
        again = pipeline.execute_many(
            requests, workers=2, cache=cache, journal=journal, resume=True
        )
        assert [r.engine for r in again] == ["cache", "cache"]
