"""Tests for contouring, rendering, Catalyst and Cinema."""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro.cluster.topology import Interconnect
from repro.errors import ConfigurationError, PipelineError
from repro.viz.catalyst import CatalystAdaptor
from repro.viz.cinema import CinemaDatabase
from repro.viz.colormap import grayscale_colormap
from repro.viz.contour import marching_squares
from repro.viz.image import Image
from repro.viz.render import (
    Camera,
    ImageSpec,
    RenderCostModel,
    render_field,
    render_okubo_weiss,
)


class TestMarchingSquares:
    def test_circle_contour(self):
        y, x = np.mgrid[0:40, 0:40].astype(float)
        field = (x - 20) ** 2 + (y - 20) ** 2
        lines = marching_squares(field, level=100.0)  # radius-10 circle
        assert lines
        pts = np.vstack(lines)
        radii = np.hypot(pts[:, 0] - 20, pts[:, 1] - 20)
        np.testing.assert_allclose(radii, 10.0, atol=0.6)

    def test_closed_contour_chains_into_one_polyline(self):
        y, x = np.mgrid[0:30, 0:30].astype(float)
        field = (x - 15) ** 2 + (y - 15) ** 2
        # 25.3 avoids passing exactly through grid vertices (3-4-5 triples at
        # 25.0 create genuine 4-way junctions that fragment the chain).
        lines = marching_squares(field, level=25.3)
        assert len(lines) == 1
        # Closed loop: endpoints coincide.
        np.testing.assert_allclose(lines[0][0], lines[0][-1], atol=1e-9)

    def test_vertex_degenerate_level_still_covers_contour(self):
        """A level hitting grid vertices exactly yields closed fragments."""
        y, x = np.mgrid[0:30, 0:30].astype(float)
        field = (x - 15) ** 2 + (y - 15) ** 2
        lines = marching_squares(field, level=25.0)
        assert lines
        pts = np.vstack(lines)
        radii = np.hypot(pts[:, 0] - 15, pts[:, 1] - 15)
        np.testing.assert_allclose(radii, 5.0, atol=0.6)

    def test_no_crossing_no_lines(self):
        assert marching_squares(np.zeros((5, 5)), level=1.0) == []

    def test_plane_gives_straight_line(self):
        y, _ = np.mgrid[0:10, 0:10].astype(float)
        lines = marching_squares(y, level=4.5)
        pts = np.vstack(lines)
        np.testing.assert_allclose(pts[:, 0], 4.5, atol=1e-9)

    def test_exact_level_hit_does_not_crash(self):
        field = np.array([[0.0, 1.0], [1.0, 2.0]])
        lines = marching_squares(field, level=1.0)
        assert isinstance(lines, list)

    def test_saddle_produces_two_segments(self):
        field = np.array([[1.0, 0.0], [0.0, 1.0]])
        lines = marching_squares(field, level=0.5)
        assert sum(len(line) - 1 for line in lines) == 2

    def test_too_small_field_rejected(self):
        with pytest.raises(ConfigurationError):
            marching_squares(np.zeros((1, 5)), 0.0)

    def test_interpolation_position(self):
        field = np.array([[0.0, 1.0], [0.0, 1.0]])
        lines = marching_squares(field, level=0.25)
        pts = np.vstack(lines)
        np.testing.assert_allclose(pts[:, 1], 0.25, atol=1e-9)


class TestCamera:
    def test_default_covers_whole_field(self):
        cam = Camera()
        rows, cols = cam.sample_coordinates((10, 20), width=20, height=10)
        assert rows.min() == pytest.approx(0.0, abs=0.01)
        assert rows.max() == pytest.approx(9.0, abs=0.01)
        assert cols.max() == pytest.approx(19.0, abs=0.01)

    def test_zoom_halves_coverage(self):
        cam = Camera(zoom=2.0)
        rows, _ = cam.sample_coordinates((100, 100), width=10, height=10)
        assert rows.max() - rows.min() < 51

    def test_invalid_camera(self):
        with pytest.raises(ConfigurationError):
            Camera(zoom=0.0)
        with pytest.raises(ConfigurationError):
            Camera(center=(1.5, 0.5))


class TestRenderField:
    def test_output_dimensions(self, mini_fields):
        img = render_field(mini_fields["okubo_weiss"], grayscale_colormap(), 64, 48)
        assert img.width == 64 and img.height == 48

    def test_constant_field_uniform_image(self):
        img = render_field(np.full((16, 16), 5.0), grayscale_colormap(), 32, 32)
        assert (img.pixels == img.pixels[0, 0]).all()

    def test_gradient_direction(self):
        """Rising x-values render brighter to the right in grayscale."""
        field = np.tile(np.linspace(0, 1, 32), (16, 1))
        img = render_field(field, grayscale_colormap(), 64, 32, periodic=False)
        assert img.pixels[:, -1].mean() > img.pixels[:, 0].mean()

    def test_contour_overlay_draws_pixels(self):
        y, x = np.mgrid[0:32, 0:32].astype(float)
        field = (x - 16.0) ** 2 + (y - 16.0) ** 2
        with_c = render_field(field, grayscale_colormap(), 64, 64,
                              contour_levels=(64.0,), contour_color=(255, 0, 0),
                              periodic=False)
        red = (with_c.pixels[:, :, 0] == 255) & (with_c.pixels[:, :, 1] == 0)
        assert red.any()

    def test_non_2d_rejected(self):
        with pytest.raises(ConfigurationError):
            render_field(np.zeros(5), grayscale_colormap())

    def test_render_okubo_weiss_green_and_blue(self, mini_fields):
        img = render_okubo_weiss(mini_fields["okubo_weiss"], width=96, height=48)
        px = img.pixels.astype(int)
        greenish = (px[:, :, 1] > px[:, :, 0] + 20) & (px[:, :, 1] > px[:, :, 2] + 20)
        blueish = (px[:, :, 2] > px[:, :, 0] + 20) & (px[:, :, 2] > px[:, :, 1] + 20)
        assert greenish.any(), "no rotation-dominated (green) regions rendered"
        assert blueish.any(), "no shear-dominated (blue) regions rendered"


class TestImageSpec:
    def test_defaults(self):
        spec = ImageSpec()
        assert spec.pixels == 1920 * 1080
        assert spec.images_per_sample == 1

    def test_multi_camera(self):
        spec = ImageSpec(cameras=(Camera(), Camera(zoom=2.0)))
        assert spec.images_per_sample == 2

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ImageSpec(width=4)
        with pytest.raises(ConfigurationError):
            ImageSpec(cameras=())


class TestRenderCostModel:
    def test_calibrated_beta(self):
        """One 1080p frame of the 60 km mesh on Caddy costs ≈1.2 s (β)."""
        t = RenderCostModel().seconds_per_image(163_842, ImageSpec(), 150, Interconnect())
        assert t == pytest.approx(1.2, abs=0.05)

    def test_scales_with_cameras(self):
        rcm = RenderCostModel()
        ic = Interconnect()
        two = ImageSpec(cameras=(Camera(), Camera(zoom=2.0)))
        assert rcm.seconds_per_sample(1000, two, 10, ic) == pytest.approx(
            2 * rcm.seconds_per_image(1000, two, 10, ic)
        )

    def test_more_nodes_faster_raster(self):
        rcm = RenderCostModel()
        ic = Interconnect()
        t150 = rcm.seconds_per_image(163_842, ImageSpec(), 150, ic)
        t300 = rcm.seconds_per_image(163_842, ImageSpec(), 300, ic)
        assert t300 < t150

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RenderCostModel(raster_ns_per_cell=-1.0)
        with pytest.raises(ConfigurationError):
            RenderCostModel().seconds_per_image(0, ImageSpec(), 1, Interconnect())


class TestCatalystAdaptor:
    def test_coprocess_runs_registered_hooks(self):
        ad = CatalystAdaptor()
        ad.register_pipeline("count", lambda s, t, f: len(f))
        out = ad.coprocess(0, 0.0, {"a": np.zeros(4), "b": np.ones(4)})
        assert out == {"count": 2}

    def test_deep_copy_isolates_simulation_arrays(self):
        """Mutating the sim array after coprocess must not affect the copy."""
        ad = CatalystAdaptor()
        seen = {}
        ad.register_pipeline("keep", lambda s, t, f: seen.update(f))
        live = np.zeros(8)
        ad.coprocess(0, 0.0, {"x": live})
        live[:] = 99.0
        assert (seen["x"] == 0.0).all()

    def test_bytes_copied_accounting(self):
        ad = CatalystAdaptor()
        ad.register_pipeline("noop", lambda s, t, f: None)
        fields = {"a": np.zeros((10, 10)), "b": np.zeros((5, 5), dtype=np.float32)}
        ad.coprocess(0, 0.0, fields)
        assert ad.bytes_copied == 10 * 10 * 8 + 5 * 5 * 4
        assert ad.coprocess_count == 1

    def test_no_pipelines_rejected(self):
        with pytest.raises(PipelineError):
            CatalystAdaptor().coprocess(0, 0.0, {"a": np.zeros(1)})

    def test_duplicate_registration_rejected(self):
        ad = CatalystAdaptor()
        ad.register_pipeline("p", lambda s, t, f: None)
        with pytest.raises(ConfigurationError):
            ad.register_pipeline("p", lambda s, t, f: None)

    def test_unregister(self):
        ad = CatalystAdaptor()
        ad.register_pipeline("p", lambda s, t, f: None)
        ad.unregister_pipeline("p")
        assert ad.pipeline_names == []
        with pytest.raises(ConfigurationError):
            ad.unregister_pipeline("p")

    def test_finalize_blocks_further_coprocessing(self):
        ad = CatalystAdaptor()
        ad.register_pipeline("p", lambda s, t, f: None)
        ad.finalize()
        with pytest.raises(PipelineError):
            ad.coprocess(0, 0.0, {"a": np.zeros(1)})


class TestCinemaDatabase:
    def _image(self):
        return Image.blank(16, 8, (10, 20, 30))

    def test_add_and_total_bytes(self, tmp_path):
        db = CinemaDatabase(str(tmp_path / "db"))
        e = db.add_image({"time": 0}, self._image())
        assert e.nbytes > 0
        assert db.total_bytes == e.nbytes
        assert len(db) == 1

    def test_index_written_on_close(self, tmp_path):
        db = CinemaDatabase(str(tmp_path / "db"), name="test")
        db.add_image({"time": 0, "camera": 1}, self._image())
        db.close()
        index = json.load(open(tmp_path / "db" / "info.json"))
        assert index["type"] == "cinema-database"
        assert index["entries"][0]["parameters"] == {"camera": 1, "time": 0}

    def test_open_round_trip(self, tmp_path):
        db = CinemaDatabase(str(tmp_path / "db"))
        db.add_image({"time": 0}, self._image())
        db.add_image({"time": 1}, self._image())
        db.close()
        back = CinemaDatabase.open(str(tmp_path / "db"))
        assert len(back) == 2
        assert back.total_bytes == db.total_bytes
        assert back.load_image({"time": 1}) == self._image()

    def test_open_missing_index_rejected(self, tmp_path):
        with pytest.raises(PipelineError):
            CinemaDatabase.open(str(tmp_path))

    def test_duplicate_parameters_rejected(self, tmp_path):
        db = CinemaDatabase(str(tmp_path / "db"))
        db.add_image({"time": 0}, self._image())
        with pytest.raises(ConfigurationError):
            db.add_image({"time": 0}, self._image())

    def test_unbacked_accounting_mode(self):
        db = CinemaDatabase()  # no directory
        db.add_accounted({"time": 0}, 1_000)
        db.add_accounted({"time": 1}, 2_000)
        assert db.total_bytes == 3_000
        with pytest.raises(PipelineError):
            db.load_image({"time": 0})

    def test_negative_accounted_size_rejected(self):
        with pytest.raises(ConfigurationError):
            CinemaDatabase().add_accounted({"t": 0}, -1)

    def test_empty_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            CinemaDatabase().add_accounted({}, 10)

    def test_select_and_parameter_values(self):
        db = CinemaDatabase()
        for t in range(3):
            for cam in range(2):
                db.add_accounted({"time": t, "camera": cam}, 10)
        assert len(db.select(camera=1)) == 3
        assert len(db.select(time=2, camera=0)) == 1
        assert db.parameter_values("time") == [0, 1, 2]

    def test_closed_database_rejects_writes(self):
        db = CinemaDatabase()
        db.add_accounted({"t": 0}, 1)
        db.close()
        with pytest.raises(PipelineError):
            db.add_accounted({"t": 1}, 1)
