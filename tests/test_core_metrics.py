"""Tests for :mod:`repro.core.metrics`."""

from __future__ import annotations

import pytest

from repro.core.metrics import (
    IN_SITU,
    POST_PROCESSING,
    Measurement,
    MetricSet,
    PhaseTimeline,
)
from repro.errors import ConfigurationError


def make_measurement(pipeline, hours, time, storage_gb, power=44_000.0, outputs=10):
    return Measurement(
        pipeline=pipeline,
        sample_interval_hours=hours,
        execution_time=time,
        n_timesteps=8_640,
        storage_bytes=storage_gb * 1e9,
        n_outputs=outputs,
        n_images=outputs,
        average_power=power,
        energy=power * time,
    )


class TestPhaseTimeline:
    def test_totals_by_phase(self):
        tl = PhaseTimeline()
        tl.add("simulation", 0.0, 10.0)
        tl.add("io", 10.0, 13.0)
        tl.add("simulation", 13.0, 20.0)
        assert tl.total("simulation") == 17.0
        assert tl.total("io") == 3.0
        assert tl.total("viz") == 0.0
        assert tl.phases() == ["simulation", "io"]
        assert tl.by_phase() == {"simulation": 17.0, "io": 3.0}

    def test_reversed_interval_rejected(self):
        with pytest.raises(ConfigurationError):
            PhaseTimeline().add("x", 5.0, 4.0)


class TestMeasurement:
    def test_phase_properties(self):
        m = make_measurement(IN_SITU, 24.0, 820.0, 0.2)
        m.timeline.add("simulation", 0.0, 603.0)
        m.timeline.add("viz", 603.0, 819.0)
        m.timeline.add("io", 819.0, 820.0)
        assert m.simulation_time == 603.0
        assert m.viz_time == 216.0
        assert m.io_time == 1.0

    def test_storage_gb(self):
        assert make_measurement(IN_SITU, 24.0, 1.0, 80.0).storage_gb == 80.0

    def test_summary_renders_without_power(self):
        m = Measurement(
            pipeline=IN_SITU, sample_interval_hours=4.0, execution_time=1.0,
            n_timesteps=10, storage_bytes=0, n_outputs=1,
        )
        assert "n/a" in m.summary()

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            make_measurement(IN_SITU, 24.0, -1.0, 1.0)
        with pytest.raises(ConfigurationError):
            make_measurement(IN_SITU, 0.0, 1.0, 1.0)
        with pytest.raises(ConfigurationError):
            make_measurement(IN_SITU, 24.0, 1.0, -1.0)


class TestMetricSet:
    def _grid(self) -> MetricSet:
        ms = MetricSet()
        # The paper's Fig. 3/6/7 shape at 8 h sampling.
        ms.add(make_measurement(IN_SITU, 8.0, 1_261.0, 0.6, outputs=540))
        ms.add(make_measurement(POST_PROCESSING, 8.0, 2_573.0, 230.0, outputs=540))
        ms.add(make_measurement(IN_SITU, 24.0, 820.0, 0.2, outputs=180))
        ms.add(make_measurement(POST_PROCESSING, 24.0, 1_322.0, 80.0, outputs=180))
        return ms

    def test_get(self):
        ms = self._grid()
        assert ms.get(IN_SITU, 8.0).execution_time == 1_261.0

    def test_get_missing_raises(self):
        with pytest.raises(ConfigurationError):
            self._grid().get(IN_SITU, 72.0)

    def test_get_duplicate_raises(self):
        ms = self._grid()
        ms.add(make_measurement(IN_SITU, 8.0, 1.0, 1.0))
        with pytest.raises(ConfigurationError):
            ms.get(IN_SITU, 8.0)

    def test_pipelines_and_intervals(self):
        ms = self._grid()
        assert ms.pipelines() == [IN_SITU, POST_PROCESSING]
        assert ms.sample_intervals() == [8.0, 24.0]

    def test_time_savings_matches_paper_at_8h(self):
        assert self._grid().time_savings(8.0) == pytest.approx(0.51, abs=0.01)

    def test_energy_savings_track_time_when_power_flat(self):
        ms = self._grid()
        assert ms.energy_savings(8.0) == pytest.approx(ms.time_savings(8.0))

    def test_storage_savings_over_99_percent(self):
        assert self._grid().storage_savings(8.0) > 0.995

    def test_power_change_zero_for_equal_power(self):
        assert self._grid().power_change(8.0) == pytest.approx(0.0)

    def test_savings_need_both_pipelines(self):
        ms = MetricSet([make_measurement(IN_SITU, 8.0, 1.0, 1.0)])
        with pytest.raises(ConfigurationError):
            ms.time_savings(8.0)

    def test_table_lists_all_cells(self):
        table = self._grid().table()
        assert table.count("in-situ") == 2
        assert table.count("post-processing") == 2

    def test_iteration_and_len(self):
        ms = self._grid()
        assert len(ms) == 4
        assert len(list(ms)) == 4
