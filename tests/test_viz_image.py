"""Tests for the image buffer, PNG codec and colormaps."""

from __future__ import annotations

import zlib

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, FileFormatError
from repro.viz.colormap import (
    Colormap,
    grayscale_colormap,
    ocean_speed_colormap,
    okubo_weiss_colormap,
)
from repro.viz.image import Image, png_decode, png_encode


class TestColormap:
    def test_lut_endpoints(self):
        cm = grayscale_colormap()
        assert cm.color_at(0.0) == (0, 0, 0)
        assert cm.color_at(1.0) == (255, 255, 255)

    def test_midpoint_interpolation(self):
        cm = grayscale_colormap()
        assert cm.color_at(0.5) == (128, 128, 128)

    def test_apply_shape_and_dtype(self):
        cm = grayscale_colormap()
        rgb = cm.apply(np.linspace(0, 1, 12).reshape(3, 4))
        assert rgb.shape == (3, 4, 3)
        assert rgb.dtype == np.uint8

    def test_apply_respects_vmin_vmax(self):
        cm = grayscale_colormap()
        field = np.array([[-1.0, 0.0, 1.0]])
        rgb = cm.apply(field, vmin=-1.0, vmax=1.0)
        assert tuple(rgb[0, 0]) == (0, 0, 0)
        assert tuple(rgb[0, 2]) == (255, 255, 255)
        assert tuple(rgb[0, 1]) in ((127, 127, 127), (128, 128, 128))

    def test_apply_clips_out_of_range(self):
        cm = grayscale_colormap()
        rgb = cm.apply(np.array([[-100.0, 100.0]]), vmin=0.0, vmax=1.0)
        assert tuple(rgb[0, 0]) == (0, 0, 0)
        assert tuple(rgb[0, 1]) == (255, 255, 255)

    def test_constant_field_does_not_crash(self):
        cm = grayscale_colormap()
        rgb = cm.apply(np.full((4, 4), 3.0))
        assert (rgb == rgb[0, 0]).all()

    def test_okubo_weiss_palette_direction(self):
        """Negative W (rotation) is green; positive W (shear) is blue."""
        cm = okubo_weiss_colormap()
        r, g, b = cm.color_at(0.05)   # strongly negative end
        assert g > r and g > b
        r, g, b = cm.color_at(0.95)   # strongly positive end
        assert b > r and b > g

    def test_ocean_speed_is_monotone_brightness(self):
        cm = ocean_speed_colormap()
        lum = cm.lut.astype(float).sum(axis=1)
        assert (np.diff(lum) >= -1e-9).all()

    def test_control_point_validation(self):
        with pytest.raises(ConfigurationError):
            Colormap([(0.0, (0, 0, 0))])  # one point
        with pytest.raises(ConfigurationError):
            Colormap([(0.1, (0, 0, 0)), (1.0, (1, 1, 1))])  # no 0.0 anchor
        with pytest.raises(ConfigurationError):
            Colormap([(0.0, (0, 0, 0)), (1.0, (256, 0, 0))])  # bad channel
        with pytest.raises(ConfigurationError):
            Colormap([(0.5, (0, 0, 0)), (0.2, (0, 0, 0))])  # unsorted

    def test_color_at_out_of_range(self):
        with pytest.raises(ConfigurationError):
            grayscale_colormap().color_at(1.5)


class TestPngCodec:
    def _random_image(self, w, h, seed=0):
        rng = np.random.default_rng(seed)
        return rng.integers(0, 256, size=(h, w, 3), dtype=np.uint8)

    def test_round_trip_random(self):
        px = self._random_image(37, 23)
        np.testing.assert_array_equal(png_decode(png_encode(px)), px)

    def test_round_trip_smooth(self):
        """Smooth gradients exercise the Up filter path."""
        y, x = np.mgrid[0:50, 0:80]
        px = np.stack([x % 256, y % 256, (x + y) % 256], axis=2).astype(np.uint8)
        np.testing.assert_array_equal(png_decode(png_encode(px)), px)

    def test_signature_present(self):
        data = png_encode(self._random_image(8, 8))
        assert data.startswith(b"\x89PNG\r\n\x1a\n")
        assert b"IHDR" in data and b"IDAT" in data and b"IEND" in data

    def test_smooth_compresses_better_than_noise(self):
        noise = png_encode(self._random_image(64, 64))
        smooth = png_encode(np.full((64, 64, 3), 37, dtype=np.uint8))
        assert len(smooth) < len(noise) / 4

    def test_1x1_image(self):
        px = np.array([[[1, 2, 3]]], dtype=np.uint8)
        np.testing.assert_array_equal(png_decode(png_encode(px)), px)

    def test_bad_dtype_rejected(self):
        with pytest.raises(ConfigurationError):
            png_encode(np.zeros((4, 4, 3), dtype=np.float64))

    def test_bad_shape_rejected(self):
        with pytest.raises(ConfigurationError):
            png_encode(np.zeros((4, 4), dtype=np.uint8))

    def test_decode_garbage_rejected(self):
        with pytest.raises(FileFormatError):
            png_decode(b"not a png at all")

    def test_decode_corrupt_crc_rejected(self):
        data = bytearray(png_encode(self._random_image(8, 8)))
        data[-10] ^= 0xFF  # flip a byte inside IEND/IDAT region
        with pytest.raises(FileFormatError):
            png_decode(bytes(data))

    def test_decode_truncated_rejected(self):
        data = png_encode(self._random_image(8, 8))
        with pytest.raises(FileFormatError):
            png_decode(data[: len(data) // 2])

    def test_decode_all_filter_types(self):
        """Decoder handles Sub/Average/Paeth rows from external writers."""
        h, w = 4, 5
        rng = np.random.default_rng(1)
        px = rng.integers(0, 256, size=(h, w, 3), dtype=np.uint8)
        # Hand-roll an encoding using filter types 1, 3, 4, 0 per row.
        import struct

        def chunk(tag, payload):
            return (
                struct.pack(">I", len(payload)) + tag + payload
                + struct.pack(">I", zlib.crc32(tag + payload) & 0xFFFFFFFF)
            )

        rows = bytearray()
        prev = np.zeros(w * 3, dtype=np.int32)
        filters = [1, 3, 4, 0]
        for y in range(h):
            raw = px[y].reshape(-1).astype(np.int32)
            f = filters[y]
            rows.append(f)
            cur = np.zeros(w * 3, dtype=np.int32)
            for i in range(w * 3):
                a = raw[i - 3] if i >= 3 else 0
                b = prev[i]
                c = prev[i - 3] if i >= 3 else 0
                if f == 0:
                    pred = 0
                elif f == 1:
                    pred = a
                elif f == 3:
                    pred = (a + b) // 2
                else:
                    p = a + b - c
                    pa, pb, pc = abs(p - a), abs(p - b), abs(p - c)
                    pred = a if pa <= pb and pa <= pc else (b if pb <= pc else c)
                cur[i] = (raw[i] - pred) % 256
            rows.extend(cur.astype(np.uint8).tobytes())
            prev = raw
        ihdr = struct.pack(">IIBBBBB", w, h, 8, 2, 0, 0, 0)
        data = (
            b"\x89PNG\r\n\x1a\n"
            + chunk(b"IHDR", ihdr)
            + chunk(b"IDAT", zlib.compress(bytes(rows)))
            + chunk(b"IEND", b"")
        )
        np.testing.assert_array_equal(png_decode(data), px)

    @settings(deadline=None, max_examples=20)
    @given(
        w=st.integers(min_value=1, max_value=40),
        h=st.integers(min_value=1, max_value=40),
        seed=st.integers(min_value=0, max_value=100),
    )
    def test_round_trip_property(self, w, h, seed):
        rng = np.random.default_rng(seed)
        px = rng.integers(0, 256, size=(h, w, 3), dtype=np.uint8)
        np.testing.assert_array_equal(png_decode(png_encode(px)), px)


class TestImage:
    def test_blank(self):
        img = Image.blank(10, 5, color=(1, 2, 3))
        assert img.width == 10 and img.height == 5
        assert tuple(img.pixels[0, 0]) == (1, 2, 3)

    def test_degenerate_blank_rejected(self):
        with pytest.raises(ConfigurationError):
            Image.blank(0, 5)

    def test_equality(self):
        a = Image.blank(4, 4, (9, 9, 9))
        b = Image.blank(4, 4, (9, 9, 9))
        c = Image.blank(4, 4, (0, 0, 0))
        assert a == b
        assert a != c

    def test_draw_polyline(self):
        img = Image.blank(20, 20)
        img.draw_polyline(np.array([[0.0, 0.0], [19.0, 19.0]]), color=(255, 0, 0))
        assert tuple(img.pixels[0, 0]) == (255, 0, 0)
        assert tuple(img.pixels[19, 19]) == (255, 0, 0)
        assert tuple(img.pixels[10, 10]) == (255, 0, 0)

    def test_draw_polyline_clips_outside(self):
        img = Image.blank(10, 10)
        img.draw_polyline(np.array([[-5.0, 5.0], [30.0, 5.0]]), color=(255, 0, 0))
        # Must not raise; some in-bounds pixels are set.
        assert (img.pixels != 0).any()

    def test_draw_degenerate_polyline_noop(self):
        img = Image.blank(10, 10)
        img.draw_polyline(np.zeros((1, 2)))
        assert (img.pixels == 0).all()

    def test_save_load_round_trip(self, tmp_path):
        rng = np.random.default_rng(0)
        img = Image(rng.integers(0, 256, size=(12, 9, 3), dtype=np.uint8))
        path = str(tmp_path / "img.png")
        nbytes = img.save(path)
        assert nbytes == (tmp_path / "img.png").stat().st_size
        assert Image.load(path) == img
