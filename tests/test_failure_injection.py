"""Failure-injection tests: the system fails loudly and precisely.

The paper's premise is that post-processing *physically cannot* sustain fine
sampling on a bounded filesystem — so the simulator must reproduce the
failure mode, not just the happy path.
"""

from __future__ import annotations

import pytest

from repro.cluster.machine import caddy
from repro.errors import (
    ConfigurationError,
    DeadlockError,
    PipelineError,
    StorageFullError,
)
from repro.events.engine import Simulator
from repro.exec.api import RunRequest
from repro.ocean.driver import MPASOceanConfig
from repro.pipelines.base import PipelineSpec
from repro.pipelines.insitu import InSituPipeline
from repro.pipelines.platform import SimulatedPlatform
from repro.pipelines.postprocessing import PostProcessingPipeline
from repro.pipelines.sampling import SamplingPolicy
from repro.storage.lustre import LustreFileSystem, StorageCluster
from repro.units import GB, MONTH


def small_rack_platform(capacity_gb: float) -> SimulatedPlatform:
    sim = Simulator()
    fs = LustreFileSystem(sim, capacity_bytes=capacity_gb * GB)
    return SimulatedPlatform(cluster=caddy(sim), storage=StorageCluster(sim, filesystem=fs))


class TestStorageWall:
    def test_post_processing_hits_the_storage_wall(self):
        """A post-processing campaign too big for the rack dies with
        StorageFullError — the physical mechanism behind Fig. 9."""
        platform = small_rack_platform(capacity_gb=5.0)
        spec = PipelineSpec(sampling=SamplingPolicy(8.0))
        with pytest.raises(StorageFullError):
            PostProcessingPipeline().execute(RunRequest(spec=spec), platform=platform)

    def test_failure_happens_at_the_predicted_sample(self):
        platform = small_rack_platform(capacity_gb=5.0)
        spec = PipelineSpec(sampling=SamplingPolicy(8.0))
        expected_failures = int(5.0e9 / spec.ocean.bytes_per_sample)
        with pytest.raises(StorageFullError):
            PostProcessingPipeline().execute(RunRequest(spec=spec), platform=platform)
        assert platform.storage.fs.n_files == expected_failures

    def test_insitu_fits_where_post_cannot(self):
        """The same tiny rack comfortably holds the image database."""
        platform = small_rack_platform(capacity_gb=5.0)
        spec = PipelineSpec(sampling=SamplingPolicy(8.0))
        m = InSituPipeline().execute(
            RunRequest(spec=spec), platform=platform
        ).measurement
        assert m.storage_bytes < 1.0 * GB

    def test_no_partial_write_on_failure(self):
        """The failing write moves no bytes (capacity checked up front)."""
        platform = small_rack_platform(capacity_gb=1.0)
        spec = PipelineSpec(
            ocean=MPASOceanConfig(duration_seconds=MONTH),
            sampling=SamplingPolicy(8.0),
        )
        used_before_failure = None
        try:
            PostProcessingPipeline().execute(RunRequest(spec=spec), platform=platform)
        except StorageFullError:
            used_before_failure = platform.storage.fs.used_bytes
        assert used_before_failure is not None
        assert used_before_failure <= 1.0 * GB


class TestEngineFailures:
    def test_process_exception_propagates(self, sim):
        def bad():
            yield sim.timeout(1.0)
            raise RuntimeError("solver diverged")

        sim.process(bad())
        with pytest.raises(RuntimeError, match="solver diverged"):
            sim.run()

    def test_orphaned_waiter_is_a_deadlock(self, sim):
        def waiter():
            yield sim.event()

        sim.process(waiter())
        with pytest.raises(DeadlockError):
            sim.run()

    def test_exception_inside_pipeline_surfaces_from_platform(self):
        """Errors in DES pipeline code surface from Pipeline.execute()."""

        class ExplodingPipeline(InSituPipeline):
            def simulated_process(self, platform, spec, timeline, artifacts):
                yield platform.sim.timeout(1.0)
                raise PipelineError("catalyst adaptor crashed")

        platform = SimulatedPlatform()
        spec = PipelineSpec(
            ocean=MPASOceanConfig(duration_seconds=MONTH),
            sampling=SamplingPolicy(72.0),
        )
        with pytest.raises(PipelineError, match="catalyst adaptor"):
            ExplodingPipeline().execute(RunRequest(spec=spec), platform=platform)


class TestDegenerateRuns:
    def test_zero_duration_pipeline_rejected(self):
        class NullPipeline(InSituPipeline):
            def simulated_process(self, platform, spec, timeline, artifacts):
                return
                yield  # pragma: no cover - makes this a generator

        platform = SimulatedPlatform()
        spec = PipelineSpec(
            ocean=MPASOceanConfig(duration_seconds=MONTH),
            sampling=SamplingPolicy(72.0),
        )
        with pytest.raises(ConfigurationError, match="no simulated time"):
            NullPipeline().execute(RunRequest(spec=spec), platform=platform)

    def test_mismatched_simulators_rejected_at_construction(self):
        cluster = caddy(Simulator())
        storage = StorageCluster(Simulator())
        with pytest.raises(ConfigurationError):
            SimulatedPlatform(cluster=cluster, storage=storage)
