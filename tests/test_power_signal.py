"""Tests for :mod:`repro.power.signal`."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, MeterError
from repro.power.signal import PowerSignal


class TestRecording:
    def test_initial_value(self):
        s = PowerSignal(100.0)
        assert s.value_at(0.0) == 100.0
        assert s.value_at(1e9) == 100.0  # holds forever

    def test_set_creates_breakpoint(self):
        s = PowerSignal(100.0)
        s.set(10.0, 250.0)
        assert s.value_at(9.999) == 100.0
        assert s.value_at(10.0) == 250.0  # right-continuous

    def test_set_same_value_is_noop(self):
        s = PowerSignal(100.0)
        s.set(10.0, 100.0)
        assert len(s.breakpoints) == 1

    def test_set_in_past_rejected(self):
        s = PowerSignal(100.0)
        s.set(10.0, 250.0)
        with pytest.raises(MeterError):
            s.set(5.0, 300.0)

    def test_overwrite_at_same_time(self):
        s = PowerSignal(100.0)
        s.set(10.0, 250.0)
        s.set(10.0, 300.0)
        assert s.value_at(10.0) == 300.0
        assert len(s.breakpoints) == 2

    def test_overwrite_collapses_redundant_segment(self):
        s = PowerSignal(100.0)
        s.set(10.0, 250.0)
        s.set(10.0, 100.0)  # back to the previous value
        assert len(s.breakpoints) == 1

    def test_negative_power_rejected(self):
        with pytest.raises(ConfigurationError):
            PowerSignal(-1.0)
        s = PowerSignal(0.0)
        with pytest.raises(ConfigurationError):
            s.set(1.0, -5.0)

    def test_query_before_start_rejected(self):
        s = PowerSignal(100.0, start_time=50.0)
        with pytest.raises(MeterError):
            s.value_at(49.0)


class TestIntegration:
    def test_constant_signal_energy(self):
        s = PowerSignal(100.0)
        assert s.integrate(0.0, 60.0) == pytest.approx(6_000.0)

    def test_step_signal_energy(self):
        s = PowerSignal(100.0)
        s.set(10.0, 200.0)
        # 10 s at 100 W + 20 s at 200 W
        assert s.integrate(0.0, 30.0) == pytest.approx(1_000 + 4_000)

    def test_window_clipping(self):
        s = PowerSignal(100.0)
        s.set(10.0, 200.0)
        assert s.integrate(5.0, 15.0) == pytest.approx(500 + 1_000)

    def test_empty_window(self):
        s = PowerSignal(100.0)
        assert s.integrate(5.0, 5.0) == 0.0

    def test_reversed_window_rejected(self):
        s = PowerSignal(100.0)
        with pytest.raises(MeterError):
            s.integrate(10.0, 5.0)

    def test_window_before_start_rejected(self):
        s = PowerSignal(100.0, start_time=10.0)
        with pytest.raises(MeterError):
            s.integrate(0.0, 5.0)

    def test_mean(self):
        s = PowerSignal(100.0)
        s.set(10.0, 300.0)
        assert s.mean(0.0, 20.0) == pytest.approx(200.0)

    def test_mean_degenerate_window(self):
        s = PowerSignal(100.0)
        with pytest.raises(MeterError):
            s.mean(5.0, 5.0)

    def test_max_over(self):
        s = PowerSignal(100.0)
        s.set(10.0, 300.0)
        s.set(20.0, 50.0)
        assert s.max_over(0.0, 30.0) == 300.0
        assert s.max_over(20.0, 30.0) == 50.0

    @settings(deadline=None, max_examples=40)
    @given(
        changes=st.lists(
            st.tuples(
                st.floats(min_value=0.01, max_value=100.0, allow_nan=False),
                st.floats(min_value=0.0, max_value=1e5, allow_nan=False),
            ),
            min_size=0,
            max_size=20,
        ),
        initial=st.floats(min_value=0.0, max_value=1e5, allow_nan=False),
    )
    def test_integral_additivity(self, changes, initial):
        """∫[a,c] = ∫[a,b] + ∫[b,c] for any split point."""
        s = PowerSignal(initial)
        t = 0.0
        for dt, watts in changes:
            t += dt
            s.set(t, watts)
        end = t + 10.0
        mid = end / 3.0
        total = s.integrate(0.0, end)
        split = s.integrate(0.0, mid) + s.integrate(mid, end)
        assert total == pytest.approx(split, rel=1e-9, abs=1e-6)
        assert total >= 0.0


class TestTotal:
    def test_sum_of_constants(self):
        a = PowerSignal(100.0)
        b = PowerSignal(50.0)
        total = PowerSignal.total([a, b])
        assert total.value_at(0.0) == 150.0

    def test_sum_tracks_changes_in_either(self):
        a = PowerSignal(100.0)
        b = PowerSignal(50.0)
        a.set(5.0, 200.0)
        b.set(7.0, 100.0)
        total = PowerSignal.total([a, b])
        assert total.value_at(4.0) == 150.0
        assert total.value_at(5.0) == 250.0
        assert total.value_at(7.0) == 300.0

    def test_sum_energy_equals_energy_sum(self):
        a = PowerSignal(100.0)
        b = PowerSignal(50.0)
        a.set(3.0, 120.0)
        b.set(4.0, 80.0)
        total = PowerSignal.total([a, b])
        assert total.integrate(0.0, 10.0) == pytest.approx(
            a.integrate(0.0, 10.0) + b.integrate(0.0, 10.0)
        )

    def test_total_starts_at_latest_start(self):
        a = PowerSignal(100.0, start_time=0.0)
        b = PowerSignal(50.0, start_time=5.0)
        total = PowerSignal.total([a, b])
        assert total.start_time == 5.0

    def test_total_of_nothing_rejected(self):
        with pytest.raises(ConfigurationError):
            PowerSignal.total([])


class TestSamples:
    def test_vectorized_matches_scalar(self):
        s = PowerSignal(10.0)
        s.set(1.0, 20.0)
        s.set(2.5, 5.0)
        times = np.array([0.0, 0.5, 1.0, 2.0, 2.5, 4.0])
        np.testing.assert_allclose(s.samples(times), [s.value_at(t) for t in times])

    def test_samples_before_start_rejected(self):
        s = PowerSignal(10.0, start_time=1.0)
        with pytest.raises(MeterError):
            s.samples([0.0])
