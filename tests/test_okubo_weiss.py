"""Tests for the Okubo-Weiss metric and its classification."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.ocean.okubo_weiss import (
    okubo_weiss,
    okubo_weiss_classification,
    okubo_weiss_threshold,
    velocity_gradients,
)


def solid_body_rotation(n=32, omega=1.0):
    """u = -ω y, v = ω x around the grid center (non-periodic analytics)."""
    y, x = np.mgrid[0:n, 0:n].astype(float)
    x -= n / 2
    y -= n / 2
    return -omega * y, omega * x


def pure_shear(n=32, s=1.0):
    """u = s y, v = 0: strain/shear-dominated everywhere."""
    y, _ = np.mgrid[0:n, 0:n].astype(float)
    return s * y, np.zeros((n, n))


class TestVelocityGradients:
    def test_linear_field_gradients_exact(self):
        u, v = solid_body_rotation(16, omega=2.0)
        u_x, u_y, v_x, v_y = velocity_gradients(u, v, 1.0, 1.0, periodic=False)
        # Interior of a linear field: exact derivatives.
        np.testing.assert_allclose(u_y[2:-2, 2:-2], -2.0)
        np.testing.assert_allclose(v_x[2:-2, 2:-2], 2.0)
        np.testing.assert_allclose(u_x[2:-2, 2:-2], 0.0, atol=1e-12)
        np.testing.assert_allclose(v_y[2:-2, 2:-2], 0.0, atol=1e-12)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            velocity_gradients(np.zeros((4, 4)), np.zeros((4, 5)), 1.0, 1.0)

    def test_nonpositive_spacing_rejected(self):
        u = np.zeros((8, 8))
        with pytest.raises(ConfigurationError):
            velocity_gradients(u, u, 0.0, 1.0)

    def test_periodic_derivative_of_sine(self):
        n = 64
        x = np.linspace(0, 2 * np.pi, n, endpoint=False)
        u = np.tile(np.sin(x), (n, 1))
        v = np.zeros_like(u)
        dx = 2 * np.pi / n
        u_x, _, _, _ = velocity_gradients(u, v, dx, dx, periodic=True)
        np.testing.assert_allclose(u_x, np.tile(np.cos(x), (n, 1)), atol=1e-2)


class TestOkuboWeiss:
    def test_rotation_gives_negative_w(self):
        u, v = solid_body_rotation(32, omega=1.5)
        w = okubo_weiss(u, v, 1.0, 1.0, periodic=False)
        interior = w[4:-4, 4:-4]
        # Pure rotation: sn = ss = 0, ω = 2×1.5 -> W = -9.
        np.testing.assert_allclose(interior, -9.0)

    def test_shear_gives_positive_w(self):
        u, v = pure_shear(32, s=2.0)
        w = okubo_weiss(u, v, 1.0, 1.0, periodic=False)
        interior = w[4:-4, 4:-4]
        # Pure shear: ss = 2, ω = -2 -> W = 4 - 4 = 0; combine with strain:
        # actually u = s·y has ss = s and ω = -s, so W = s² - s² = 0.
        np.testing.assert_allclose(interior, 0.0, atol=1e-10)

    def test_pure_strain_gives_positive_w(self):
        n = 32
        y, x = np.mgrid[0:n, 0:n].astype(float)
        u, v = x - n / 2, -(y - n / 2)  # sn = 2, ω = 0
        w = okubo_weiss(u, v, 1.0, 1.0, periodic=False)
        np.testing.assert_allclose(w[4:-4, 4:-4], 4.0)

    def test_zero_flow_gives_zero_w(self):
        z = np.zeros((16, 16))
        np.testing.assert_array_equal(okubo_weiss(z, z, 1.0, 1.0), 0.0)

    def test_threshold_sign_and_magnitude(self):
        rng = np.random.default_rng(0)
        w = rng.standard_normal((32, 32))
        cut = okubo_weiss_threshold(w, factor=0.2)
        assert cut < 0
        assert cut == pytest.approx(-0.2 * w.std())

    def test_negative_factor_rejected(self):
        with pytest.raises(ConfigurationError):
            okubo_weiss_threshold(np.zeros((4, 4)), factor=-0.1)

    @settings(deadline=None, max_examples=20)
    @given(
        scale=st.floats(min_value=0.1, max_value=100.0, allow_nan=False),
        seed=st.integers(min_value=0, max_value=1_000),
    )
    def test_w_scales_quadratically_with_velocity(self, scale, seed):
        """W(k·u, k·v) = k² W(u, v) — a dimensional-consistency invariant."""
        rng = np.random.default_rng(seed)
        u = rng.standard_normal((16, 16))
        v = rng.standard_normal((16, 16))
        w1 = okubo_weiss(u, v, 1.0, 1.0)
        w2 = okubo_weiss(scale * u, scale * v, 1.0, 1.0)
        np.testing.assert_allclose(w2, scale**2 * w1, rtol=1e-9, atol=1e-12)

    def test_w_invariant_under_uniform_translation(self):
        """Adding a constant background current leaves W unchanged."""
        rng = np.random.default_rng(1)
        u = rng.standard_normal((16, 16))
        v = rng.standard_normal((16, 16))
        w1 = okubo_weiss(u, v, 1.0, 1.0)
        w2 = okubo_weiss(u + 5.0, v - 3.0, 1.0, 1.0)
        np.testing.assert_allclose(w1, w2, atol=1e-12)


class TestClassification:
    def test_three_way_split(self):
        rng = np.random.default_rng(2)
        w = rng.standard_normal((64, 64))
        cls = okubo_weiss_classification(w, factor=0.2)
        assert set(np.unique(cls)) <= {-1, 0, 1}
        assert (cls == -1).any() and (cls == 1).any() and (cls == 0).any()

    def test_matches_threshold(self):
        w = np.array([[-10.0, 0.0], [10.0, 0.1]])
        cls = okubo_weiss_classification(w, factor=0.2)
        assert cls[0, 0] == -1
        assert cls[1, 0] == 1
        assert cls[0, 1] == 0

    def test_real_flow_has_rotation_cores(self, mini_driver):
        w = mini_driver.okubo_weiss_field()
        cls = okubo_weiss_classification(w)
        frac_rotation = (cls == -1).mean()
        # Turbulent 2-D flow: a small but present fraction of vortex cores.
        assert 0.005 < frac_rotation < 0.5
