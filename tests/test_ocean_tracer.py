"""Tests for passive tracer advection (:mod:`repro.ocean.tracer`)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.ocean.barotropic import BarotropicSolver
from repro.ocean.grid import SpectralGrid
from repro.ocean.tracer import TracerField


@pytest.fixture
def flow() -> BarotropicSolver:
    return BarotropicSolver(SpectralGrid(64, 64), viscosity=5e7, seed=2)


class TestSetup:
    def test_default_gradient_range(self, flow):
        tracer = TracerField(flow)
        c = tracer.concentration()
        # Cell-centered sampling never hits the cosine extrema exactly.
        assert c.min() == pytest.approx(0.0, abs=0.01)
        assert c.max() == pytest.approx(1.0, abs=0.01)

    def test_meridional_gradient_is_periodic_smooth(self, flow):
        tracer = TracerField(flow)
        c = tracer.concentration()
        # North and south edges meet smoothly (single cosine mode).
        assert abs(c[0, 0] - c[-1, 0]) < 0.01

    def test_custom_initial_field(self, flow):
        # A smooth (low-wavenumber) field passes through dealiasing intact.
        x, y = flow.grid.coordinates()
        k0 = 2 * np.pi / flow.grid.length_m
        init = 0.5 + 0.3 * np.sin(3 * k0 * x) * np.cos(2 * k0 * y)
        tracer = TracerField(flow, initial=init)
        np.testing.assert_allclose(tracer.concentration(), init, atol=1e-10)

    def test_shape_mismatch_rejected(self, flow):
        with pytest.raises(ConfigurationError):
            TracerField(flow, initial=np.zeros((8, 8)))

    def test_invalid_gradient(self, flow):
        tracer = TracerField(flow)
        with pytest.raises(ConfigurationError):
            tracer.set_meridional_gradient(low=1.0, high=0.0)

    def test_negative_diffusivity_rejected(self, flow):
        with pytest.raises(ConfigurationError):
            TracerField(flow, diffusivity=-1.0)


class TestConservation:
    def test_mean_conserved(self, flow):
        tracer = TracerField(flow, diffusivity=10.0)
        mean0 = tracer.mean()
        tracer.run_with_flow(30, 1_800.0)
        assert tracer.mean() == pytest.approx(mean0, abs=1e-12)

    def test_variance_never_created(self, flow):
        """Advection-diffusion cannot increase tracer variance."""
        tracer = TracerField(flow, diffusivity=10.0)
        var0 = tracer.variance()
        tracer.run_with_flow(30, 1_800.0)
        assert tracer.variance() <= var0 * (1 + 1e-9)

    def test_pure_diffusion_decays_variance(self):
        still = BarotropicSolver(SpectralGrid(32, 32), seed=None)  # no flow
        tracer = TracerField(still, diffusivity=1e4)
        var0 = tracer.variance()
        tracer.run_with_flow(20, 1_800.0)
        assert tracer.variance() < var0

    def test_no_flow_no_diffusion_is_static(self):
        still = BarotropicSolver(SpectralGrid(32, 32), seed=None)
        tracer = TracerField(still, diffusivity=0.0)
        before = tracer.concentration()
        tracer.run_with_flow(10, 1_800.0)
        np.testing.assert_allclose(tracer.concentration(), before, atol=1e-12)


class TestStirring:
    def test_eddies_sharpen_gradients(self, flow):
        """Stirring steepens fronts: mean |∇c| grows before diffusion wins."""
        tracer = TracerField(flow, diffusivity=1.0)
        g0 = tracer.gradient_magnitude().mean()
        tracer.run_with_flow(40, 1_800.0)
        assert tracer.gradient_magnitude().mean() > 1.5 * g0

    def test_concentration_stays_bounded(self, flow):
        """A passive scalar obeys the maximum principle (approximately:
        spectral ringing may overshoot slightly)."""
        tracer = TracerField(flow, diffusivity=10.0)
        tracer.run_with_flow(40, 1_800.0)
        c = tracer.concentration()
        assert c.min() > -0.2 and c.max() < 1.2

    def test_invalid_step(self, flow):
        tracer = TracerField(flow)
        with pytest.raises(ConfigurationError):
            tracer.step(0.0)
        with pytest.raises(ConfigurationError):
            tracer.run_with_flow(-1, 1_800.0)
