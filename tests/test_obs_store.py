"""Tests for :mod:`repro.obs.store` — the run registry and its analytics.

Covers the PR's acceptance criteria end to end: content-addressed ingest
(idempotent for re-ingests *and* seeded identical runs), byte-identical
query output across invocations, quarantine of damaged segments, the
histogram quantile estimator against known distributions, MAD-gated
trends (exit 2 on an injected regression, 0 clean), the machine-readable
``summarize --json`` mirror, and the lint rule that polices metric-name
literals at the store/query APIs.
"""

from __future__ import annotations

import json
import math
import os

import pytest

from repro import obs
from repro.errors import ConfigurationError
from repro.lint import run_lint
from repro.obs.cli import build_summary, main as obs_cli_main, summarize
from repro.obs.drift import check_value, mad_band
from repro.obs.registry import Histogram, MetricsRegistry, bucket_quantile
from repro.obs.store import RunStore
from repro.obs.store.core import QUARANTINE_DIRNAME, normalize_run
from repro.obs.store.query import (
    parse_since,
    parse_where,
    render_records,
    render_records_json,
    run_query,
    select_runs,
)
from repro.obs.store.report import render_store_html
from repro.obs.store.trend import compute_trend, run_metric_value


@pytest.fixture(autouse=True)
def _clean_registry():
    """Every test starts (and ends) with a fresh default registry."""
    obs.default_registry().reset()
    yield
    obs.default_registry().reset()
    assert obs.active() is None


def make_run(root, name, steps=100.0, label="demo", phase_seconds=10.0):
    """One recorded telemetry run with a controllable metric value."""
    directory = os.path.join(str(root), name)
    with obs.session(
        directory,
        label=label,
        registry=MetricsRegistry(),
        argv=["test"],
        config={"scenario": {"name": "unit", "digest": "f" * 64}},
    ):
        obs.phase("simulation", 0.0, phase_seconds)
        obs.counter("repro_engine_steps_total", steps)
        obs.observe("repro_pipeline_phase_seconds", phase_seconds, phase="sim")
    return directory


# ------------------------------------------------------------- quantiles


class TestBucketQuantile:
    def test_uniform_distribution_interpolates_exactly(self):
        # 10 observations uniform over unit buckets (0,1], (1,2], ... (9,10]:
        # the estimator must reproduce the exact uniform quantiles.
        hist = Histogram({}, bounds=[float(b) for b in range(1, 11)])
        for i in range(10):
            hist.observe(i + 0.5)
        assert hist.quantile(0.5) == pytest.approx(5.0)
        assert hist.quantile(0.95) == pytest.approx(9.5)
        assert hist.quantile(0.1) == pytest.approx(1.0)
        assert hist.quantile(1.0) == pytest.approx(10.0)

    def test_single_observation(self):
        hist = Histogram({}, bounds=[1.0, 2.0, 4.0])
        hist.observe(1.5)
        # The lone observation sits in (1, 2]; every quantile interpolates
        # inside that bucket.
        assert 1.0 < hist.quantile(0.5) <= 2.0

    def test_overflow_bucket_returns_last_finite_bound(self):
        hist = Histogram({}, bounds=[1.0, 2.0])
        hist.observe(100.0)
        assert hist.quantile(0.99) == pytest.approx(2.0)

    def test_empty_histogram_is_nan(self):
        hist = Histogram({}, bounds=[1.0])
        assert math.isnan(hist.quantile(0.5))

    def test_out_of_range_q_raises(self):
        with pytest.raises(ConfigurationError):
            bucket_quantile([(1.0, 1)], 1.5)

    def test_skewed_distribution(self):
        # 90 observations in (0,1], 10 in (9,10]: p50 inside the first
        # bucket, p99 inside the last.
        pairs = [(1.0, 90), (9.0, 90), (10.0, 100), (float("inf"), 100)]
        assert bucket_quantile(pairs, 0.5) == pytest.approx(50.0 / 90.0)
        assert bucket_quantile(pairs, 0.99) == pytest.approx(9.9)


# ---------------------------------------------------------------- ingest


class TestIngest:
    def test_ingest_same_run_twice_is_noop(self, tmp_path):
        run = make_run(tmp_path, "r1")
        store = RunStore(str(tmp_path / "store"))
        first = store.ingest(run)
        again = store.ingest(run)
        assert first.created and not again.created
        assert first.run_key == again.run_key
        assert len(store.runs()) == 1

    def test_seeded_identical_runs_collapse_to_one_key(self, tmp_path):
        # Two separate sessions with byte-identical telemetry content must
        # hash to the same run key: the digest excludes created_unix,
        # run_id and argv.
        a = make_run(tmp_path, "a")
        b = make_run(tmp_path, "b")
        store = RunStore(str(tmp_path / "store"))
        first = store.ingest(a)
        second = store.ingest(b)
        assert first.run_key == second.run_key
        assert first.created and not second.created
        assert len(store.runs()) == 1

    def test_distinct_runs_get_distinct_keys(self, tmp_path):
        store = RunStore(str(tmp_path / "store"))
        k1 = store.ingest(make_run(tmp_path, "r1", steps=100.0)).run_key
        k2 = store.ingest(make_run(tmp_path, "r2", steps=200.0)).run_key
        assert k1 != k2
        assert len(store.runs()) == 2

    def test_counts_and_manifest_stamp(self, tmp_path):
        run = make_run(tmp_path, "r1")
        store = RunStore(str(tmp_path / "store"))
        result = store.ingest(run)
        assert result.counts["span"] == 1
        # steps counter + one phase-seconds series per phase label.
        assert result.counts["metric"] == 3
        assert result.n_rows == sum(result.counts.values())
        with open(os.path.join(run, "manifest.json")) as fh:
            manifest = json.load(fh)
        stamp = manifest["config"]["store"]
        assert stamp["run_key"] == result.run_key
        assert stamp["n_rows"] == result.n_rows
        assert stamp["counts"] == result.counts

    def test_stamp_does_not_change_the_run_key(self, tmp_path):
        # The stamp rewrites the manifest; a later re-ingest must still
        # dedupe (the key derives from records, not config).
        run = make_run(tmp_path, "r1")
        store = RunStore(str(tmp_path / "store"))
        first = store.ingest(run)
        again = store.ingest(run)
        assert first.run_key == again.run_key and not again.created

    def test_index_row_round_trip(self, tmp_path):
        run = make_run(tmp_path, "r1")
        store = RunStore(str(tmp_path / "store"))
        store.ingest(run)
        (row,) = store.runs()
        assert row.label == "demo"
        assert row.scenario_name == "unit"
        assert row.scenario_digest == "f" * 64
        assert row.trace_id
        assert row.segment.endswith(f"{row.run_key}.jsonl")

    def test_bench_report_ingests_as_run(self, tmp_path):
        path = tmp_path / "BENCH_exec.json"
        path.write_text(json.dumps({
            "serial_seconds": 4.0, "parallel_seconds": 2.0,
            "speedup_parallel": 2.0, "cache": {"hits": 3, "misses": 1},
        }))
        store = RunStore(str(tmp_path / "store"))
        result = store.ingest(str(path))
        assert result.created and result.counts == {"bench": 5}
        (row,) = store.runs()
        assert row.label == "bench"
        assert run_metric_value(store.records(row), "serial_seconds") == 4.0

    def test_nonexistent_path_raises(self, tmp_path):
        with pytest.raises(ConfigurationError):
            RunStore(str(tmp_path / "store")).ingest(str(tmp_path / "nope"))

    def test_normalize_flattens_timeline_and_alerts(self, tmp_path):
        directory = tmp_path / "run"
        with obs.session(
            str(directory), label="demo", registry=MetricsRegistry()
        ) as sess:
            sess.event(
                "obs.alert",
                rule="power_cap_exceeded", severity="critical",
                series="repro_timeline_power_compute_watts",
                t=3.0, value=999.0, threshold=500.0,
            )
        with open(directory / "timeline.jsonl", "w") as fh:
            fh.write(json.dumps({
                "type": "sample", "t": 1.0,
                "values": {"repro_timeline_power_compute_watts": 410.0},
            }) + "\n")
        meta, rows = normalize_run(str(directory))
        kinds = sorted(r["kind"] for r in rows)
        assert kinds == ["alert", "sample"]
        alert = next(r for r in rows if r["kind"] == "alert")
        assert alert["rule"] == "power_cap_exceeded"
        assert alert["severity"] == "critical"
        sample = next(r for r in rows if r["kind"] == "sample")
        assert sample["series"] == "repro_timeline_power_compute_watts"
        assert sample["value"] == 410.0


# ------------------------------------------------------------ quarantine


class TestQuarantine:
    def test_corrupt_segment_quarantines_cleanly(self, tmp_path):
        store = RunStore(str(tmp_path / "store"))
        store.ingest(make_run(tmp_path, "r1"))
        (row,) = store.runs()
        segment = store.segment_path(row)
        lines = open(segment).read().splitlines()
        # Damage a MIDDLE line: that is corruption, not truncation.
        lines[1] = '{"kind": "met'
        with open(segment, "w") as fh:
            fh.write("\n".join(lines) + "\n")
        with pytest.warns(RuntimeWarning, match="quarantined"):
            records = store.records(row)
        assert records == []
        assert not os.path.exists(segment)
        quarantined = os.path.join(
            store.root, QUARANTINE_DIRNAME, os.path.basename(segment)
        )
        assert os.path.exists(quarantined)
        # Queries over the store survive, minus the damaged run.
        with pytest.warns(RuntimeWarning, match="missing"):
            assert run_query(store) == []

    def test_torn_final_segment_line_is_tolerated(self, tmp_path):
        store = RunStore(str(tmp_path / "store"))
        store.ingest(make_run(tmp_path, "r1"))
        (row,) = store.runs()
        segment = store.segment_path(row)
        with open(segment, "a") as fh:
            fh.write('{"kind": "torn mid-wri')
        with pytest.warns(RuntimeWarning, match="dropping"):
            records = store.records(row)
        # All the intact rows survive; the torn tail is dropped.
        assert len(records) == row.n_rows
        assert os.path.exists(segment)

    def test_torn_final_index_line_is_tolerated(self, tmp_path):
        store = RunStore(str(tmp_path / "store"))
        store.ingest(make_run(tmp_path, "r1", steps=1.0))
        store.ingest(make_run(tmp_path, "r2", steps=2.0))
        with open(store.index_path, "a") as fh:
            fh.write('{"run_key": "torn')
        with pytest.warns(RuntimeWarning, match="dropping"):
            rows = store.runs()
        assert len(rows) == 2


# ----------------------------------------------------------------- query


class TestQuery:
    def make_store(self, tmp_path, n=3):
        store = RunStore(str(tmp_path / "store"))
        for i in range(n):
            store.ingest(
                make_run(tmp_path, f"r{i}", steps=100.0 + i,
                         phase_seconds=10.0 + i)
            )
        return store

    def test_query_output_is_byte_identical_across_invocations(self, tmp_path):
        store = self.make_store(tmp_path)
        where = parse_where(["kind=metric,name=repro_*"])
        first = render_records(run_query(store, where=where))
        second = render_records(run_query(store, where=where))
        assert first == second
        assert render_records_json(run_query(store, where=where)) == \
            render_records_json(run_query(store, where=where))

    def test_cli_query_json_is_byte_identical(self, tmp_path, capsys):
        store = self.make_store(tmp_path)
        argv = ["query", "--store", store.root,
                "--where", "kind=metric", "--json"]
        assert obs_cli_main(argv) == 0
        first = capsys.readouterr().out
        assert obs_cli_main(argv) == 0
        assert capsys.readouterr().out == first
        assert len(first.splitlines()) == 9  # 3 runs x 3 metric series

    def test_where_filters(self, tmp_path):
        store = self.make_store(tmp_path)
        spans = run_query(store, where=parse_where(["kind=span"]))
        assert {r["name"] for _, r in spans} == {"simulation"}
        labelled = run_query(
            store, where=parse_where(["label.phase=sim"])
        )
        assert {r["name"] for _, r in labelled} == {
            "repro_pipeline_phase_seconds"
        }
        assert run_query(store, where=parse_where(["kind=alert"])) == []

    def test_prefix_wildcard_and_name_aliasing(self, tmp_path):
        store = self.make_store(tmp_path)
        prefixed = run_query(store, where=parse_where(["name=repro_engine_*"]))
        assert len(prefixed) == 3
        assert all(
            r["name"] == "repro_engine_steps_total" for _, r in prefixed
        )

    def test_run_level_filters(self, tmp_path):
        store = self.make_store(tmp_path)
        rows = store.runs()
        assert select_runs(store, scenario_digest="ff") == rows
        assert select_runs(store, scenario_digest="00") == []
        assert select_runs(store, label="demo") == rows
        assert select_runs(store, label="other") == []
        assert select_runs(store, run_key=rows[0].run_key[:10]) == [rows[0]]

    def test_limit_and_bad_where(self, tmp_path):
        store = self.make_store(tmp_path)
        assert len(run_query(store, limit=2)) == 2
        with pytest.raises(ConfigurationError):
            parse_where(["nonsense"])
        with pytest.raises(ConfigurationError):
            parse_where(["bogus_key=1"])
        with pytest.raises(ConfigurationError):
            run_query(store, limit=0)

    def test_parse_since_forms(self):
        assert parse_since("1700000000") == 1700000000.0
        assert parse_since("1970-01-01") == 0.0
        assert parse_since("1970-01-01T00:01:00") == 60.0
        with pytest.raises(ConfigurationError):
            parse_since("yesterday")

    def test_histogram_records_carry_quantile_columns(self, tmp_path):
        store = self.make_store(tmp_path, n=1)
        (pair,) = run_query(
            store,
            where=parse_where(
                ["name=repro_pipeline_phase_seconds,label.phase=sim"]
            ),
        )
        record = pair[1]
        assert record["metric_type"] == "histogram"
        assert record["count"] == 1
        for column in ("p50", "p95", "p99"):
            assert column in record


# ----------------------------------------------------------------- trend


class TestTrend:
    def build_store(self, tmp_path, values):
        store = RunStore(str(tmp_path / "store"))
        for i, value in enumerate(values):
            # Distinct phase times keep equal-valued runs from collapsing
            # into one content-addressed key.
            store.ingest(
                make_run(tmp_path, f"r{i}", steps=value,
                         phase_seconds=10.0 + i)
            )
        return store

    def test_clean_trajectory_passes(self, tmp_path):
        store = self.build_store(tmp_path, [100.0, 101.0, 99.0, 100.0, 100.5])
        trend = compute_trend(store, "repro_engine_steps_total")
        assert len(trend.points) == 5
        assert trend.check is not None and not trend.failed

    def test_injected_regression_fails(self, tmp_path):
        store = self.build_store(tmp_path, [100.0, 101.0, 99.0, 100.0, 300.0])
        trend = compute_trend(store, "repro_engine_steps_total")
        assert trend.failed
        assert trend.check.direction == "above"

    def test_direction_below(self, tmp_path):
        store = self.build_store(tmp_path, [100.0, 101.0, 99.0, 100.0, 10.0])
        above = compute_trend(store, "repro_engine_steps_total")
        below = compute_trend(
            store, "repro_engine_steps_total", direction="below"
        )
        assert not above.failed
        assert below.failed

    def test_short_history_is_informational(self, tmp_path):
        store = self.build_store(tmp_path, [100.0, 200.0])
        trend = compute_trend(store, "repro_engine_steps_total")
        assert trend.check is None and not trend.failed

    def test_absent_metric_has_no_points(self, tmp_path):
        store = self.build_store(tmp_path, [100.0])
        trend = compute_trend(store, "repro_storage_writes_total")
        assert trend.points == ()

    def test_cli_trend_check_exit_codes(self, tmp_path, capsys):
        clean = self.build_store(
            tmp_path / "clean", [100.0, 101.0, 99.0, 100.0, 100.5]
        )
        assert obs_cli_main(
            ["trend", "--store", clean.root, "--check",
             "repro_engine_steps_total"]
        ) == 0
        capsys.readouterr()
        bad = self.build_store(
            tmp_path / "bad", [100.0, 101.0, 99.0, 100.0, 300.0]
        )
        assert obs_cli_main(
            ["trend", "--store", bad.root, "--check",
             "repro_engine_steps_total"]
        ) == 2
        out = capsys.readouterr()
        assert "DRIFT" in out.out
        # Without --check the same regression only reports.
        assert obs_cli_main(
            ["trend", "--store", bad.root, "repro_engine_steps_total"]
        ) == 0

    def test_cli_trend_json(self, tmp_path, capsys):
        store = self.build_store(tmp_path, [100.0, 100.0, 100.0, 250.0])
        assert obs_cli_main(
            ["trend", "--store", store.root, "--json",
             "repro_engine_steps_total"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["failed"] == ["repro_engine_steps_total"]
        (trend,) = payload["trends"]
        assert [p["value"] for p in trend["points"]] == [
            100.0, 100.0, 100.0, 250.0,
        ]

    def test_histogram_and_span_stats(self, tmp_path):
        store = RunStore(str(tmp_path / "store"))
        for i in range(3):
            store.ingest(
                make_run(tmp_path, f"r{i}", phase_seconds=10.0 + i)
            )
        by_sum = compute_trend(
            store, "repro_pipeline_phase_seconds", stat="sum"
        )
        # The sum aggregates across both phase label series (phase=sim
        # observe + phase=simulation from obs.phase), each phase_seconds.
        assert [p.value for p in by_sum.points] == [20.0, 22.0, 24.0]
        spans = compute_trend(store, "simulation")
        assert [p.value for p in spans.points] == [10.0, 11.0, 12.0]
        with pytest.raises(ConfigurationError):
            compute_trend(store, "repro_pipeline_phase_seconds", stat="mean")

    def test_drift_primitives_shared_with_bench_ledger(self):
        median, halfwidth = mad_band([10.0, 10.0, 10.0, 10.0])
        assert median == 10.0
        assert halfwidth == pytest.approx(2.5)  # rel_floor * |median|
        check = check_value("m", 13.0, [10.0, 10.0, 10.0, 10.0])
        assert check is not None and check.failed


# ---------------------------------------------------------------- report


class TestStoreReport:
    def test_dashboard_renders_runs_and_regressions(self, tmp_path):
        store = RunStore(str(tmp_path / "store"))
        for i, value in enumerate([100.0, 101.0, 99.0, 100.0, 300.0]):
            store.ingest(
                make_run(tmp_path, f"r{i}", steps=value,
                         phase_seconds=10.0 + i)
            )
        html = render_store_html(store)
        assert "repro run registry" in html
        assert "repro_engine_steps_total" in html
        assert "DRIFT" in html
        assert html.count("<circle") >= 5

    def test_empty_store_raises(self, tmp_path):
        with pytest.raises(ConfigurationError):
            render_store_html(RunStore(str(tmp_path / "store")))

    def test_cli_report_store_mode(self, tmp_path, capsys):
        store = RunStore(str(tmp_path / "store"))
        for i in range(2):
            store.ingest(make_run(tmp_path, f"r{i}", steps=100.0 + i))
        assert obs_cli_main(["report", "--store", store.root]) == 0
        assert os.path.exists(os.path.join(store.root, "trends.html"))
        # A run path and --store together are ambiguous.
        assert obs_cli_main(
            ["report", str(tmp_path / "r0"), "--store", store.root]
        ) == 2
        # Neither is unusable.
        assert obs_cli_main(["report"]) == 2


# ------------------------------------------------------- summarize --json


class TestSummarizeJson:
    def test_json_mirrors_text_facts(self, tmp_path, capsys):
        run = make_run(tmp_path, "r1")
        assert obs_cli_main(["summarize", run, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["label"] == "demo"
        assert payload["scenario"]["name"] == "unit"
        assert payload["spans"] == {
            "simulation": {"count": 1, "seconds": 10.0}
        }
        assert payload["alerts"] == {"total": 0, "by_severity": {}}
        assert "repro_engine_steps_total" in payload["metrics"]
        assert payload["durations"]["simulation"] == 10.0

    def test_to_dict_and_render_agree(self, tmp_path):
        run = make_run(tmp_path, "r1")
        summary = build_summary(run)
        # The text path is unchanged: summarize() is render().
        assert summarize(run) == summary.render()
        data = summary.to_dict()
        assert data["n_events"] == summary.manifest.n_events
        assert f"run 'demo'" in summary.render()
        assert data["timeline"] is None


# ------------------------------------------------------------------ lint


class TestStoreLintRule:
    def lint(self, tmp_path, source):
        target = tmp_path / "snippet.py"
        target.write_text(source, encoding="utf-8")
        return [f for f in run_lint([str(target)]) if f.rule == "obs-naming"]

    def test_bad_trend_literal_is_flagged(self, tmp_path):
        findings = self.lint(
            tmp_path,
            "compute_trend(store, 'repro_bogus')\n",
        )
        assert len(findings) == 1
        assert "repro_bogus" in findings[0].message

    def test_good_trend_literals_pass(self, tmp_path):
        assert self.lint(
            tmp_path,
            "compute_trend(store, 'repro_engine_steps_total')\n"
            "compute_trends(store, ['repro_pipeline_phase_seconds',\n"
            "                       'repro_timeline_power_compute_watts'])\n"
            "run_metric_value(records, 'simulation')\n",
        ) == []

    def test_bad_name_in_trends_list_is_flagged(self, tmp_path):
        findings = self.lint(
            tmp_path,
            "compute_trends(store, ['repro_engine_steps_total',"
            " 'repro_typo'])\n",
        )
        assert len(findings) == 1
        assert "repro_typo" in findings[0].message

    def test_where_clause_names_are_checked(self, tmp_path):
        findings = self.lint(
            tmp_path,
            "parse_where(['kind=metric,name=repro_nope'])\n",
        )
        assert len(findings) == 1
        # The wildcard form is the documented prefix grammar, not a typo.
        assert self.lint(
            tmp_path, "parse_where(['name=repro_engine_*'])\n"
        ) == []
        # Non-name keys and non-repro values are out of scope.
        assert self.lint(
            tmp_path, "parse_where(['kind=metric,severity=critical'])\n"
        ) == []


# -------------------------------------------------------- scenario/CLI glue


class TestScenarioPlumbing:
    def test_store_requires_directory(self):
        from repro.scenario.schema import TelemetryConfig

        with pytest.raises(Exception, match="telemetry.store"):
            TelemetryConfig(store=".repro/store")
        config = TelemetryConfig(directory="out/t", store=".repro/store")
        assert config.to_dict()["store"] == ".repro/store"

    def test_to_dict_omits_store_when_unset(self):
        from repro.scenario.schema import TelemetryConfig

        # Byte-identity of pre-registry scenarios and manifests depends on
        # the key being absent, not null.
        assert "store" not in TelemetryConfig(directory="out/t").to_dict()

    def test_loader_accepts_store_key(self, tmp_path):
        from repro.scenario.loader import load_scenario

        path = tmp_path / "s.json"
        path.write_text(json.dumps({
            "schema_version": 1,
            "name": "s",
            "experiment": {"kind": "characterize"},
            "telemetry": {"directory": "out/t", "store": ".repro/store"},
        }))
        scenario = load_scenario(str(path))
        assert scenario.telemetry.store == ".repro/store"
        # Transport sections stay out of the identity digest.
        bare = tmp_path / "bare.json"
        bare.write_text(json.dumps({
            "schema_version": 1,
            "name": "s",
            "experiment": {"kind": "characterize"},
        }))
        assert (
            scenario.content_digest() == load_scenario(str(bare)).content_digest()
        )

    def test_cli_store_without_telemetry_is_an_error(self, capsys):
        from repro.cli import main as repro_main

        assert repro_main(["characterize", "--store", "x"]) == 2
        assert "--store needs --telemetry" in capsys.readouterr().err

    def test_cli_ingest_command(self, tmp_path, capsys):
        run = make_run(tmp_path, "r1")
        store_dir = str(tmp_path / "store")
        assert obs_cli_main(["ingest", "--store", store_dir, run]) == 0
        first = capsys.readouterr().out
        assert "ingested" in first
        assert obs_cli_main(["ingest", "--store", store_dir, run]) == 0
        assert "already present" in capsys.readouterr().out
