"""Tests for the event tracer (:mod:`repro.events.tracing`)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.events.engine import Simulator
from repro.events.tracing import EventTracer


def two_process_workload(sim):
    def worker(name, delay):
        yield sim.timeout(delay)
        yield sim.timeout(delay)

    sim.process(worker("a", 1.0), name="worker-a")
    sim.process(worker("b", 2.0), name="worker-b")


class TestEventTracer:
    def test_records_every_event(self, sim):
        tracer = EventTracer(sim)
        two_process_workload(sim)
        sim.run()
        # 2 bootstrap events + 4 timeouts + 2 process-end events.
        assert tracer.n_processed == 8
        assert len(tracer.records) == 8

    def test_times_monotone(self, sim):
        tracer = EventTracer(sim)
        two_process_workload(sim)
        sim.run()
        times = [r.time for r in tracer.records]
        assert times == sorted(times)

    def test_kind_histogram(self, sim):
        tracer = EventTracer(sim)
        two_process_workload(sim)
        sim.run()
        kinds = tracer.by_kind()
        assert kinds["timeout"] == 4
        assert kinds["process-end"] == 2

    def test_process_names_recorded(self, sim):
        tracer = EventTracer(sim)
        two_process_workload(sim)
        sim.run()
        names = {r.name for r in tracer.records if r.kind == "process-end"}
        assert names == {"worker-a", "worker-b"}

    def test_tracing_does_not_change_timing(self):
        plain, traced = Simulator(), Simulator()
        EventTracer(traced)
        for sim in (plain, traced):
            two_process_workload(sim)
            sim.run()
        assert plain.now == traced.now

    def test_capacity_ring(self, sim):
        tracer = EventTracer(sim, capacity=3)
        two_process_workload(sim)
        sim.run()
        assert len(tracer.records) == 3
        assert tracer.n_dropped == 5
        # The ring keeps the newest records.
        assert tracer.records[-1].index == tracer.n_processed - 1

    def test_predicate_filter(self, sim):
        tracer = EventTracer(sim, predicate=lambda r: r.kind == "process-end")
        two_process_workload(sim)
        sim.run()
        assert all(r.kind == "process-end" for r in tracer.records)
        assert len(tracer.records) == 2

    def test_between(self, sim):
        tracer = EventTracer(sim)
        two_process_workload(sim)
        sim.run()
        early = tracer.between(0.0, 1.5)
        assert all(r.time <= 1.5 for r in early)
        assert early

    def test_summary_renders(self, sim):
        tracer = EventTracer(sim)
        two_process_workload(sim)
        sim.run()
        text = tracer.summary(last=3)
        assert "events processed" in text
        assert text.count("\n") == 3

    def test_detach_stops_recording(self, sim):
        tracer = EventTracer(sim)
        sim.timeout(1.0)
        sim.run()
        count = tracer.n_processed
        tracer.detach()
        sim.timeout(1.0)
        sim.run()
        assert tracer.n_processed == count

    def test_invalid_capacity(self, sim):
        with pytest.raises(ConfigurationError):
            EventTracer(sim, capacity=0)

    def test_traces_a_full_pipeline_run(self):
        """The tracer survives a real campaign-scale workload."""
        from repro.ocean.driver import MPASOceanConfig
        from repro.pipelines.base import PipelineSpec
        from repro.pipelines.insitu import InSituPipeline
        from repro.pipelines.platform import SimulatedPlatform
        from repro.pipelines.sampling import SamplingPolicy
        from repro.units import MONTH

        platform = SimulatedPlatform()
        tracer = EventTracer(platform.sim, capacity=100)
        spec = PipelineSpec(
            ocean=MPASOceanConfig(duration_seconds=MONTH),
            sampling=SamplingPolicy(72.0),
        )
        from repro.exec.api import RunRequest

        m = InSituPipeline().execute(
            RunRequest(spec=spec), platform=platform
        ).measurement
        assert tracer.n_processed > 50
        assert m.n_outputs == 10
