"""Tests for the compression codecs (:mod:`repro.io.compression`)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, FileFormatError
from repro.io.compression import (
    CompressedFieldWriter,
    compress_field,
    compression_ratio,
    decompress_field,
)


class TestLossless:
    def test_round_trip_exact(self, mini_fields):
        for name, field in mini_fields.items():
            back = decompress_field(compress_field(field))
            np.testing.assert_array_equal(back, field, err_msg=name)
            assert back.dtype == field.dtype

    def test_float32_supported(self):
        field = np.random.default_rng(0).standard_normal((16, 16)).astype(np.float32)
        back = decompress_field(compress_field(field))
        np.testing.assert_array_equal(back, field)

    def test_lossless_shrinks_but_modestly(self, mini_fields):
        """Full-precision turbulence has high mantissa entropy: lossless
        shuffle+zlib only trims the smooth byte planes."""
        ratio = compression_ratio({"t": mini_fields["temperature"]})
        assert 0.5 < ratio < 0.95

    def test_quantization_is_where_the_savings_are(self, mini_fields):
        """At a physically sensible precision the fields compress hard."""
        import numpy as np
        field = mini_fields["temperature"]
        ratio = compression_ratio(
            {"t": field}, precision=1e-4 * float(np.std(field))
        )
        assert ratio < 0.4

    def test_integer_dtype_rejected(self):
        with pytest.raises(ConfigurationError):
            compress_field(np.zeros((4, 4), dtype=np.int32))

    def test_garbage_rejected(self):
        with pytest.raises(FileFormatError):
            decompress_field(b"definitely not compressed")

    @settings(deadline=None, max_examples=25)
    @given(
        ny=st.integers(min_value=1, max_value=16),
        nx=st.integers(min_value=1, max_value=16),
        seed=st.integers(min_value=0, max_value=500),
    )
    def test_round_trip_property(self, ny, nx, seed):
        field = np.random.default_rng(seed).standard_normal((ny, nx))
        np.testing.assert_array_equal(decompress_field(compress_field(field)), field)


class TestQuantized:
    def test_error_bounded_by_half_precision(self, mini_fields):
        field = mini_fields["temperature"]
        for precision in (0.1, 0.01, 1e-4):
            back = decompress_field(compress_field(field, precision=precision))
            assert np.max(np.abs(back - field)) <= precision / 2 + 1e-12

    def test_coarser_precision_compresses_better(self, mini_fields):
        field = mini_fields["okubo_weiss"]
        scale = float(np.std(field))
        sizes = [
            len(compress_field(field, precision=p * scale))
            for p in (1e-6, 1e-3, 1e-1)
        ]
        assert sizes == sorted(sizes, reverse=True)

    def test_quantized_beats_lossless(self, mini_fields):
        field = mini_fields["u"]
        lossless = len(compress_field(field))
        lossy = len(compress_field(field, precision=1e-3 * float(np.std(field))))
        assert lossy < lossless

    def test_invalid_precision(self):
        with pytest.raises(ConfigurationError):
            compress_field(np.zeros((4, 4)), precision=0.0)


class TestCompressedFieldWriter:
    def test_container_round_trip(self, mini_fields):
        writer = CompressedFieldWriter()
        blob = writer.serialize(mini_fields)
        back = CompressedFieldWriter.deserialize(blob)
        assert set(back) == set(mini_fields)
        for name in mini_fields:
            np.testing.assert_array_equal(back[name], np.asarray(mini_fields[name], float))

    def test_write_to_disk(self, tmp_path, mini_fields):
        writer = CompressedFieldWriter(precision=1e-6)
        path = str(tmp_path / "fields.nclz")
        n = writer.write(path, mini_fields)
        assert n == (tmp_path / "fields.nclz").stat().st_size

    def test_overall_ratio_tracks_writes(self, mini_fields):
        writer = CompressedFieldWriter()
        writer.serialize(mini_fields)
        assert 0.0 < writer.overall_ratio < 1.0

    def test_ratio_before_writes_rejected(self):
        with pytest.raises(ConfigurationError):
            CompressedFieldWriter().overall_ratio

    def test_empty_fields_rejected(self):
        with pytest.raises(ConfigurationError):
            CompressedFieldWriter().serialize({})

    def test_trailing_garbage_rejected(self, mini_fields):
        blob = CompressedFieldWriter().serialize(mini_fields)
        with pytest.raises(FileFormatError):
            CompressedFieldWriter.deserialize(blob + b"xx")

    def test_invalid_level(self):
        with pytest.raises(ConfigurationError):
            CompressedFieldWriter(level=10)

    def test_compression_ratio_of_nothing_rejected(self):
        with pytest.raises(ConfigurationError):
            compression_ratio({})
