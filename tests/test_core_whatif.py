"""Tests for the what-if analyzer and the pipeline advisor."""

from __future__ import annotations

import pytest

from repro import paper
from repro.core.advisor import Constraints, PipelineAdvisor, Recommendation
from repro.core.metrics import IN_SITU, POST_PROCESSING
from repro.core.model import DataModel, PerformanceModel, PipelinePredictor
from repro.core.whatif import WhatIfAnalyzer
from repro.errors import ConfigurationError, ModelError
from repro.units import years


@pytest.fixture
def analyzer() -> WhatIfAnalyzer:
    """An analyzer built directly from the paper's published numbers."""
    model = PerformanceModel(
        t_sim_ref=paper.EQ5_T_SIM,
        iter_ref=paper.CAMPAIGN_TIMESTEPS,
        alpha=paper.EQ5_ALPHA_S_PER_GB,
        beta=paper.EQ5_BETA_S_PER_IMAGE,
        power_watts=46_300.0,
    )
    insitu = PipelinePredictor(
        IN_SITU, model, DataModel(24.0, 0.2, 180.0, paper.CAMPAIGN_TIMESTEPS)
    )
    post = PipelinePredictor(
        POST_PROCESSING, model, DataModel(24.0, 80.0, 180.0, paper.CAMPAIGN_TIMESTEPS)
    )
    return WhatIfAnalyzer(insitu, post, timestep_seconds=paper.TIMESTEP_SECONDS)


CENTURY = years(paper.WHATIF_YEARS)


class TestSweeps:
    def test_storage_vs_rate_fig9_shape(self, analyzer):
        rows = analyzer.storage_vs_rate(
            intervals_hours=[24.0, 192.0], duration_seconds=CENTURY
        )
        # Post-processing at daily cadence for 100 years: 80 GB x ~203
        # (100 calendar years / 6 30-day months) ≈ 16.2 TB.
        (_, insitu_daily, post_daily), (_, _, post_8days) = rows
        assert post_daily == pytest.approx(16_000.0, rel=0.03)
        # At once-per-8-days it drops to the 2 TB budget of Fig. 9.
        assert post_8days == pytest.approx(2_000.0, rel=0.03)
        # In-situ stays tiny.
        assert insitu_daily < 50.0

    def test_energy_vs_rate_fig10_callouts(self, analyzer):
        """67.2 % / 49 % / 38 % savings at 1 h / 12 h / 24 h cadences."""
        for hours, expected in paper.WHATIF_ENERGY_SAVINGS.items():
            got = analyzer.energy_savings(hours, CENTURY)
            assert got == pytest.approx(expected, abs=0.02), f"at {hours} h"

    def test_savings_shrink_with_coarser_sampling(self, analyzer):
        s = [analyzer.energy_savings(h, CENTURY) for h in (1.0, 12.0, 24.0, 72.0)]
        assert s == sorted(s, reverse=True)

    def test_sweep_rows_expose_predictions(self, analyzer):
        rows = analyzer.sweep(intervals_hours=[24.0], duration_seconds=CENTURY)
        assert len(rows) == 1
        row = rows[0]
        assert row.insitu.pipeline == IN_SITU
        assert row.post.pipeline == POST_PROCESSING
        assert row.storage_savings() > 0.99
        assert 0 < row.time_savings() < 1
        assert row.energy_savings() == pytest.approx(row.time_savings(), rel=0.01)

    def test_iterations_for(self, analyzer):
        assert analyzer.iterations_for(CENTURY) == pytest.approx(200 * 8_640, rel=0.02)
        with pytest.raises(ModelError):
            analyzer.iterations_for(0.0)


class TestInversions:
    def test_post_forced_to_8_days_by_2tb_budget(self, analyzer):
        """The headline Fig. 9 result."""
        h = analyzer.finest_interval_for_storage(
            POST_PROCESSING, paper.WHATIF_STORAGE_BUDGET_GB, CENTURY
        )
        assert h / 24.0 == pytest.approx(paper.WHATIF_POST_FORCED_INTERVAL_DAYS, rel=0.02)

    def test_insitu_unconstrained_by_2tb_budget(self, analyzer):
        h = analyzer.finest_interval_for_storage(IN_SITU, 2_000.0, CENTURY)
        assert h <= 1.0  # can sample hourly or finer

    def test_storage_inversion_is_consistent(self, analyzer):
        """Predicted storage at the returned cadence equals the budget."""
        h = analyzer.finest_interval_for_storage(POST_PROCESSING, 5_000.0, CENTURY)
        pred = analyzer.post.predict(h, analyzer.iterations_for(CENTURY))
        assert pred.s_io_gb == pytest.approx(5_000.0, rel=1e-6)

    def test_energy_inversion_consistent(self, analyzer):
        # Budget set to the exact energy of a 48-hour cadence: inverting it
        # must return 48 hours.
        iters = analyzer.iterations_for(CENTURY)
        budget = analyzer.post.predict(48.0, iters).energy
        h = analyzer.finest_interval_for_energy(POST_PROCESSING, budget, CENTURY)
        assert h == pytest.approx(48.0, rel=1e-9)
        pred = analyzer.post.predict(h, iters)
        assert pred.energy == pytest.approx(budget, rel=1e-9)

    def test_energy_budget_below_floor_rejected(self, analyzer):
        with pytest.raises(ModelError):
            analyzer.finest_interval_for_energy(POST_PROCESSING, 1.0, CENTURY)

    def test_interval_floor_is_the_timestep(self, analyzer):
        h = analyzer.finest_interval_for_storage(POST_PROCESSING, 1e12, CENTURY)
        assert h >= paper.TIMESTEP_SECONDS / 3_600.0

    def test_invalid_budgets(self, analyzer):
        with pytest.raises(ModelError):
            analyzer.finest_interval_for_storage(POST_PROCESSING, 0.0, CENTURY)
        with pytest.raises(ModelError):
            analyzer.finest_interval_for_energy(POST_PROCESSING, -1.0, CENTURY)

    def test_unknown_pipeline_rejected(self, analyzer):
        with pytest.raises(ConfigurationError):
            analyzer.finest_interval_for_storage("mystery", 1.0, CENTURY)


class TestAdvisor:
    def test_recommends_insitu_for_daily_eddy_tracking(self, analyzer):
        """The paper's scenario: 2 TB budget, once-per-day science need."""
        advisor = PipelineAdvisor(analyzer)
        rec = advisor.recommend(
            Constraints(
                duration_seconds=CENTURY,
                storage_budget_gb=2_000.0,
                required_interval_hours=24.0,
            )
        )
        assert rec.pipeline == IN_SITU
        assert rec.feasible
        assert rec.interval_hours == 24.0

    def test_post_infeasible_for_daily_tracking_under_2tb(self, analyzer):
        advisor = PipelineAdvisor(analyzer)
        rec = advisor.evaluate(
            POST_PROCESSING,
            Constraints(
                duration_seconds=CENTURY,
                storage_budget_gb=2_000.0,
                required_interval_hours=24.0,
            ),
        )
        assert not rec.feasible
        assert "INFEASIBLE" in rec.summary()

    def test_no_requirement_returns_finest_cadence(self, analyzer):
        advisor = PipelineAdvisor(analyzer)
        rec = advisor.evaluate(
            POST_PROCESSING,
            Constraints(duration_seconds=CENTURY, storage_budget_gb=2_000.0),
        )
        assert rec.feasible
        assert rec.interval_hours == pytest.approx(192.0, rel=0.02)

    def test_time_budget_constrains_cadence(self, analyzer):
        advisor = PipelineAdvisor(analyzer)
        iters = analyzer.iterations_for(CENTURY)
        floor = analyzer.post.model.simulation_time(iters)
        rec = advisor.evaluate(
            POST_PROCESSING,
            Constraints(duration_seconds=CENTURY, time_budget_seconds=floor * 1.5),
        )
        assert rec.prediction.execution_time <= floor * 1.5 * (1 + 1e-6)

    def test_time_budget_below_floor_rejected(self, analyzer):
        advisor = PipelineAdvisor(analyzer)
        with pytest.raises(ModelError):
            advisor.evaluate(
                POST_PROCESSING,
                Constraints(duration_seconds=CENTURY, time_budget_seconds=1.0),
            )

    def test_constraints_validation(self):
        with pytest.raises(ConfigurationError):
            Constraints(duration_seconds=0.0)
        with pytest.raises(ConfigurationError):
            Constraints(duration_seconds=1.0, storage_budget_gb=-5.0)

    def test_recommendation_summary(self, analyzer):
        advisor = PipelineAdvisor(analyzer)
        rec = advisor.recommend(Constraints(duration_seconds=CENTURY,
                                            storage_budget_gb=100.0))
        assert isinstance(rec, Recommendation)
        assert rec.pipeline in (IN_SITU, POST_PROCESSING)
        assert "every" in rec.summary()


class TestFailureAwareSweep:
    def test_expected_times_exceed_fault_free(self, analyzer):
        (row,) = analyzer.failure_aware_sweep(
            intervals_hours=[24.0], duration_seconds=CENTURY, mtbf_hours=6.0,
            checkpoint_write_seconds=60.0, restart_seconds=30.0,
        )
        assert row.insitu_expected_seconds > row.insitu.execution_time
        assert row.post_expected_seconds > row.post.execution_time
        assert row.insitu_overhead_ratio() > 0
        assert row.post_overhead_ratio() > 0

    def test_daly_inflation_is_pipeline_independent(self, analyzer):
        """Eq. 4's Daly factor multiplies T0, so both pipelines inflate
        by the same ratio — and the energy-savings verdict is unchanged."""
        (row,) = analyzer.failure_aware_sweep(
            intervals_hours=[24.0], duration_seconds=CENTURY, mtbf_hours=6.0,
            checkpoint_write_seconds=60.0, restart_seconds=30.0,
        )
        assert row.insitu_overhead_ratio() == pytest.approx(row.post_overhead_ratio())
        (base,) = analyzer.sweep(intervals_hours=[24.0], duration_seconds=CENTURY)
        assert row.energy_savings() == pytest.approx(base.energy_savings())

    def test_defaults_to_youngs_optimal_interval(self, analyzer):
        (row,) = analyzer.failure_aware_sweep(
            intervals_hours=[24.0], duration_seconds=CENTURY, mtbf_hours=6.0,
            checkpoint_write_seconds=60.0, restart_seconds=30.0,
        )
        assert row.checkpoint_interval_seconds == pytest.approx(
            (2 * 60.0 * 6.0 * 3_600.0) ** 0.5
        )

    def test_explicit_interval_honoured(self, analyzer):
        (row,) = analyzer.failure_aware_sweep(
            intervals_hours=[24.0], duration_seconds=CENTURY, mtbf_hours=6.0,
            checkpoint_write_seconds=60.0, restart_seconds=30.0,
            checkpoint_interval_seconds=1_800.0,
        )
        assert row.checkpoint_interval_seconds == 1_800.0

    def test_tight_mtbf_rejected(self, analyzer):
        with pytest.raises(ModelError):
            analyzer.failure_aware_sweep(
                intervals_hours=[24.0], duration_seconds=CENTURY,
                mtbf_hours=0.01,
                checkpoint_write_seconds=60.0, restart_seconds=30.0,
                checkpoint_interval_seconds=100.0,
            )
