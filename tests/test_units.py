"""Tests for :mod:`repro.units`."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import units


class TestDataSizes:
    def test_decimal_prefixes(self):
        assert units.KB == 1_000
        assert units.MB == 1_000_000
        assert units.GB == 1_000_000_000
        assert units.TB == 1_000_000_000_000

    def test_gb_round_trip(self):
        assert units.bytes_to_gb(units.gb_to_bytes(230.0)) == pytest.approx(230.0)

    def test_tb_round_trip(self):
        assert units.bytes_to_tb(units.tb_to_bytes(7.7)) == pytest.approx(7.7)

    def test_kb_mb(self):
        assert units.kb_to_bytes(2) == 2_000
        assert units.mb_to_bytes(160) == 160e6

    @given(st.floats(min_value=0, max_value=1e15, allow_nan=False))
    def test_gb_conversion_is_inverse(self, n):
        assert units.gb_to_bytes(units.bytes_to_gb(n)) == pytest.approx(n, rel=1e-12)


class TestTime:
    def test_calendar_constants(self):
        assert units.HOUR == 3_600
        assert units.DAY == 24 * 3_600
        assert units.MONTH == 30 * units.DAY  # the paper's 6-month = 8640-step convention
        assert units.YEAR == 365 * units.DAY

    def test_six_months_is_8640_steps(self):
        assert units.months(6) / 1_800 == 8_640

    def test_helpers(self):
        assert units.minutes(2) == 120
        assert units.hours(8) == 28_800
        assert units.days(3) == 259_200
        assert units.years(100) == 100 * 365 * 86_400
        assert units.seconds(5.5) == 5.5


class TestEnergy:
    def test_kwh_round_trip(self):
        assert units.joules_to_kwh(units.kwh_to_joules(16.2)) == pytest.approx(16.2)

    def test_one_kwh(self):
        assert units.kwh_to_joules(1.0) == 3.6e6

    def test_mwh(self):
        assert units.joules_to_mwh(3.6e9) == pytest.approx(1.0)

    def test_kw(self):
        assert units.watts_to_kw(44_000) == 44.0
        assert units.kw_to_watts(15.0) == 15_000


class TestFormatting:
    def test_format_bytes(self):
        assert units.format_bytes(230e9) == "230.0 GB"
        assert units.format_bytes(7.7e12) == "7.7 TB"
        assert units.format_bytes(1_500) == "1.5 kB"
        assert units.format_bytes(12) == "12 B"

    def test_format_bytes_negative(self):
        assert units.format_bytes(-2e9) == "-2.0 GB"

    def test_format_bytes_nan(self):
        assert units.format_bytes(float("nan")) == "nan"

    def test_format_seconds(self):
        assert units.format_seconds(30.0) == "30.0s"
        assert units.format_seconds(676.0) == "11m 16.0s"
        assert units.format_seconds(7_322.0).startswith("2h 2m")

    def test_format_seconds_inf(self):
        assert units.format_seconds(math.inf) == "inf"

    def test_format_power(self):
        assert units.format_power(44_000) == "44.0 kW"
        assert units.format_power(2_273) == "2.3 kW"
        assert units.format_power(250) == "250 W"
        assert units.format_power(20e6) == "20.00 MW"

    def test_format_energy(self):
        assert units.format_energy(units.kwh_to_joules(16.2)) == "16.2 kWh"
        assert units.format_energy(units.kwh_to_joules(2_500)) == "2.50 MWh"
        assert units.format_energy(500.0) == "500 J"
        assert units.format_energy(5_000.0) == "5.0 kJ"
