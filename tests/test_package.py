"""Package-level tests: public API surface, version, example scripts."""

from __future__ import annotations

import os
import py_compile
import subprocess
import sys

import pytest

import repro

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), os.pardir, "examples")
SRC_DIR = os.path.abspath(os.path.join(os.path.dirname(__file__), os.pardir, "src"))


def _example_env() -> dict:
    """Environment for example subprocesses with ``src/`` importable."""
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = SRC_DIR + (os.pathsep + existing if existing else "")
    return env


class TestPublicApi:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_top_level_exports_exist(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_headline_entry_point(self):
        from repro import run_characterization

        assert callable(run_characterization)

    @pytest.mark.parametrize(
        "module",
        [
            "repro.analysis",
            "repro.cli",
            "repro.cluster",
            "repro.cluster.allocation",
            "repro.core",
            "repro.core.report",
            "repro.events",
            "repro.events.tracing",
            "repro.io",
            "repro.io.compression",
            "repro.ocean",
            "repro.paper",
            "repro.pipelines",
            "repro.power",
            "repro.power.capping",
            "repro.power.green500",
            "repro.storage",
            "repro.viz",
            "repro.viz.annotate",
        ],
    )
    def test_submodules_importable(self, module):
        __import__(module)

    def test_every_public_callable_has_a_docstring(self):
        """The deliverable requires doc comments on every public item."""
        import importlib
        import inspect

        missing = []
        for module_name in (
            "repro.core.model", "repro.core.calibration", "repro.core.whatif",
            "repro.core.advisor", "repro.core.metrics", "repro.pipelines.platform",
            "repro.cluster.machine", "repro.storage.lustre", "repro.power.trace",
            "repro.ocean.driver", "repro.viz.render", "repro.io.ncformat",
        ):
            module = importlib.import_module(module_name)
            for name in getattr(module, "__all__", []):
                obj = getattr(module, name)
                if not inspect.isclass(obj) and not callable(obj):
                    continue
                if not (obj.__doc__ or "").strip():
                    missing.append(f"{module_name}.{name}")
                if inspect.isclass(obj):
                    for attr_name, attr in vars(obj).items():
                        if attr_name.startswith("_"):
                            continue
                        if callable(attr) and not (attr.__doc__ or "").strip():
                            missing.append(f"{module_name}.{name}.{attr_name}")
        assert not missing, f"undocumented public items: {missing}"


class TestExamples:
    def test_all_examples_compile(self):
        scripts = [f for f in os.listdir(EXAMPLES_DIR) if f.endswith(".py")]
        assert len(scripts) >= 5
        for script in scripts:
            py_compile.compile(os.path.join(EXAMPLES_DIR, script), doraise=True)

    def test_quickstart_runs_end_to_end(self, tmp_path):
        out = subprocess.run(
            [sys.executable, os.path.join(EXAMPLES_DIR, "quickstart.py")],
            capture_output=True,
            text=True,
            timeout=300,
            cwd=str(tmp_path),
            env=_example_env(),
        )
        assert out.returncode == 0, out.stderr[-2000:]
        assert "Section VII" in out.stdout
        assert "alpha = 6." in out.stdout

    def test_real_pipeline_comparison_runs(self, tmp_path):
        out = subprocess.run(
            [
                sys.executable,
                os.path.join(EXAMPLES_DIR, "real_pipeline_comparison.py"),
                str(tmp_path / "work"),
            ],
            capture_output=True,
            text=True,
            timeout=300,
            env=_example_env(),
        )
        assert out.returncode == 0, out.stderr[-2000:]
        assert "storage reduction" in out.stdout
