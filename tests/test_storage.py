"""Tests for the Lustre-like storage simulator (:mod:`repro.storage`)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, StorageError, StorageFullError
from repro.events.engine import Simulator
from repro.storage.devices import OstDevice
from repro.storage.lustre import LustreFileSystem, StorageCluster
from repro.storage.power import StoragePowerModel
from repro.units import GB, MB, TB


def run_process(sim, gen):
    """Drive one generator process to completion, returning its value."""
    proc = sim.process(gen)
    sim.run()
    return proc.value


class TestOstDevice:
    def test_stripe_cap_scales_with_count(self):
        ost = OstDevice(0, capacity_bytes=1 * TB, write_bandwidth=20 * MB, read_bandwidth=125 * MB)
        assert ost.stripe_cap(1, write=True) == 20 * MB
        assert ost.stripe_cap(8, write=True) == 160 * MB
        assert ost.stripe_cap(2, write=False) == 250 * MB

    def test_invalid_stripe_count(self):
        ost = OstDevice(0, 1 * TB, 1.0, 1.0)
        with pytest.raises(ConfigurationError):
            ost.stripe_cap(0, write=True)

    def test_invalid_construction(self):
        with pytest.raises(ConfigurationError):
            OstDevice(-1, 1.0, 1.0, 1.0)
        with pytest.raises(ConfigurationError):
            OstDevice(0, 0.0, 1.0, 1.0)
        with pytest.raises(ConfigurationError):
            OstDevice(0, 1.0, 0.0, 1.0)


class TestStoragePowerModel:
    def test_paper_endpoints(self):
        m = StoragePowerModel()
        assert m.power(0.0) == 2_273.0
        rated = 160 * MB  # repro-unit: bytes_per_s
        assert m.power(rated) == 2_302.0

    def test_proportionality_is_1_3_percent(self):
        assert StoragePowerModel().proportionality() == pytest.approx(0.0128, abs=0.001)

    def test_linear_interpolation(self):
        m = StoragePowerModel()
        half_rated = 80 * MB  # repro-unit: bytes_per_s
        assert m.power(half_rated) == pytest.approx(2_287.5)

    def test_saturates_above_rated(self):
        m = StoragePowerModel()
        assert m.power(1e12) == m.full_load_watts

    def test_negative_throughput_rejected(self):
        with pytest.raises(ConfigurationError):
            StoragePowerModel().power(-1.0)

    def test_five_nodes(self):
        m = StoragePowerModel()
        assert m.n_nodes == 5
        split = m.per_node_idle()
        assert sum(split.values()) == pytest.approx(m.idle_watts)

    def test_full_below_idle_rejected(self):
        with pytest.raises(ConfigurationError):
            StoragePowerModel(idle_watts=100.0, full_load_watts=50.0)


class TestLustreFileSystem:
    def test_write_takes_bandwidth_time(self, sim):
        fs = LustreFileSystem(sim, metadata_latency=0.0)
        run_process(sim, fs.write("/a", 1.6e9))
        assert sim.now == pytest.approx(10.0)  # 1.6 GB at 160 MB/s

    def test_metadata_latency_added(self, sim):
        fs = LustreFileSystem(sim, metadata_latency=0.5)
        run_process(sim, fs.write("/a", 0.0))
        assert sim.now == pytest.approx(0.5)

    def test_write_records_file(self, sim):
        fs = LustreFileSystem(sim)
        rec = run_process(sim, fs.write("/out/a.nc", 5 * GB))
        assert rec.size == 5 * GB
        assert fs.exists("/out/a.nc")
        assert fs.used_bytes == 5 * GB
        assert fs.n_files == 1

    def test_append_extends_file(self, sim):
        fs = LustreFileSystem(sim)
        run_process(sim, fs.write("/a", 1 * GB))
        rec = run_process(sim, fs.write("/a", 1 * GB))
        assert rec.size == 2 * GB
        assert rec.n_writes == 2
        assert fs.n_files == 1

    def test_capacity_enforced_before_moving_data(self, sim):
        fs = LustreFileSystem(sim, capacity_bytes=1 * GB)
        with pytest.raises(StorageFullError):
            run_process(sim, fs.write("/a", 2 * GB))
        assert fs.used_bytes == 0
        assert fs.bytes_written == 0

    def test_read_whole_file(self, sim):
        fs = LustreFileSystem(sim, metadata_latency=0.0)
        run_process(sim, fs.write("/a", 1e9))
        t0 = sim.now
        n = run_process(sim, fs.read("/a"))
        assert n == 1e9
        assert sim.now - t0 == pytest.approx(1.0)  # 1 GB at 1 GB/s read path

    def test_read_beyond_eof_rejected(self, sim):
        fs = LustreFileSystem(sim)
        run_process(sim, fs.write("/a", 100.0))
        with pytest.raises(StorageError):
            run_process(sim, fs.read("/a", 200.0))

    def test_read_missing_file_rejected(self, sim):
        fs = LustreFileSystem(sim)
        with pytest.raises(StorageError):
            run_process(sim, fs.read("/nope"))

    def test_delete(self, sim):
        fs = LustreFileSystem(sim)
        run_process(sim, fs.write("/a", 100.0))
        run_process(sim, fs.delete("/a"))
        assert not fs.exists("/a")
        assert fs.used_bytes == 0

    def test_delete_missing_rejected(self, sim):
        fs = LustreFileSystem(sim)
        with pytest.raises(StorageError):
            run_process(sim, fs.delete("/nope"))

    def test_listdir_prefix(self, sim):
        fs = LustreFileSystem(sim)
        for p in ("/run/a", "/run/b", "/other/c"):
            run_process(sim, fs.write(p, 1.0))
        assert fs.listdir("/run/") == ["/run/a", "/run/b"]

    def test_concurrent_writers_share_bandwidth(self, sim):
        fs = LustreFileSystem(sim, metadata_latency=0.0)
        done = []

        def writer(path):
            yield from fs.write(path, 0.8e9)
            done.append(sim.now)

        sim.process(writer("/a"))
        sim.process(writer("/b"))
        sim.run()
        # Two 0.8 GB writes sharing 160 MB/s finish together at 10 s.
        assert done == pytest.approx([10.0, 10.0])

    def test_stripe_count_caps_single_stream(self, sim):
        fs = LustreFileSystem(sim, n_ost=8, metadata_latency=0.0)
        run_process(sim, fs.write("/narrow", 0.16e9, stripe_count=1))
        # One stripe = 1/8 of the aggregate: 20 MB/s -> 8 s.
        assert sim.now == pytest.approx(8.0)

    def test_invalid_stripe_count_rejected(self, sim):
        fs = LustreFileSystem(sim, n_ost=8)
        with pytest.raises(StorageError):
            run_process(sim, fs.write("/a", 1.0, stripe_count=9))

    def test_negative_write_rejected(self, sim):
        fs = LustreFileSystem(sim)
        with pytest.raises(StorageError):
            run_process(sim, fs.write("/a", -1.0))

    def test_metadata_ops_counted(self, sim):
        fs = LustreFileSystem(sim)
        run_process(sim, fs.write("/a", 1.0))
        run_process(sim, fs.read("/a"))
        run_process(sim, fs.delete("/a"))
        assert fs.metadata_ops == 3

    def test_mds_concurrency_limit(self, sim):
        """Metadata ops queue on the two MDS servers."""
        fs = LustreFileSystem(sim, n_mds=2, metadata_latency=1.0)

        def op(i):
            yield from fs.write(f"/f{i}", 0.0)

        for i in range(4):
            sim.process(op(i))
        sim.run()
        # 4 ops, 2 servers, 1 s each -> 2 s total.
        assert sim.now == pytest.approx(2.0)

    @settings(deadline=None, max_examples=25)
    @given(
        sizes=st.lists(
            st.floats(min_value=0.0, max_value=5e9, allow_nan=False),
            min_size=1,
            max_size=6,
        )
    )
    def test_used_bytes_equals_sum_of_writes(self, sizes):
        sim = Simulator()
        fs = LustreFileSystem(sim)

        def writer():
            for i, s in enumerate(sizes):
                yield from fs.write(f"/f{i}", s)

        sim.process(writer())
        sim.run()
        assert fs.used_bytes == pytest.approx(sum(sizes))
        assert fs.bytes_written == pytest.approx(sum(sizes), rel=1e-9, abs=1e-3)


class TestStorageCluster:
    def test_power_signal_follows_load(self, sim):
        sc = StorageCluster(sim)

        def proc():
            yield from sc.fs.write("/a", 1.6e9)

        sim.process(proc())
        assert sc.current_power == pytest.approx(2_273.0)
        sim.run()
        trace = sc.read_pdu(0.0, 60.0)
        # 10 s of full-rate writing inside one 60 s window:
        expected = 2_273.0 + (2_302.0 - 2_273.0) * (10.0 / 60.0)
        assert trace.average_power() == pytest.approx(expected, rel=1e-2)

    def test_idle_cluster_power(self, sim):
        sc = StorageCluster(sim)
        sim.timeout(120.0)
        sim.run()
        trace = sc.read_pdu(0.0, 120.0)
        assert trace.average_power() == pytest.approx(2_273.0)

    def test_mismatched_simulators_rejected(self):
        from repro.pipelines.platform import SimulatedPlatform
        sim_a, sim_b = Simulator(), Simulator()
        from repro.cluster.machine import caddy
        cluster = caddy(sim_a)
        storage = StorageCluster(sim_b)
        with pytest.raises(ConfigurationError):
            SimulatedPlatform(cluster=cluster, storage=storage)

    def test_default_capacity_and_bandwidth_match_paper(self, sim):
        sc = StorageCluster(sim)
        assert sc.fs.capacity_bytes == pytest.approx(7.7 * TB)
        assert sc.fs.write_pipe.capacity == pytest.approx(160 * MB)
