"""Tests for :mod:`repro.lint` — engine, every rule, reporters, CLI.

Each rule gets (at least) one positive fixture that must trigger it and
one fixture with a suppression comment that must not.  A meta-test at the
bottom asserts the shipped tree itself lints clean.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.lint import run_lint
from repro.lint.cli import main as lint_main
from repro.lint.engine import (
    FileContext,
    Finding,
    LintRunner,
    iter_python_files,
    registered_rules,
)
from repro.lint.reporters import render_json, render_text

REPO_ROOT = Path(__file__).resolve().parent.parent


def lint_source(tmp_path: Path, relpath: str, source: str) -> list:
    """Write ``source`` at ``tmp_path/relpath`` and lint that one file."""
    target = tmp_path / relpath
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(source, encoding="utf-8")
    return run_lint([str(target)])


def rule_ids(findings) -> set:
    """The set of rule ids present in a findings list."""
    return {f.rule for f in findings}


class TestEngine:
    def test_registry_has_the_required_rule_count(self):
        assert len(registered_rules()) >= 8

    def test_rule_catalog_entries_have_summaries(self):
        for rule_id, rule in registered_rules().items():
            assert rule_id == rule.id
            assert rule.summary

    def test_syntax_error_becomes_parse_error_finding(self, tmp_path):
        findings = lint_source(tmp_path, "bad.py", "def broken(:\n")
        assert rule_ids(findings) == {"parse-error"}

    def test_iter_python_files_skips_pycache(self, tmp_path):
        (tmp_path / "pkg" / "__pycache__").mkdir(parents=True)
        (tmp_path / "pkg" / "__pycache__" / "x.py").write_text("")
        (tmp_path / "pkg" / "real.py").write_text("")
        files = list(iter_python_files([str(tmp_path)]))
        assert [f.name for f in files] == ["real.py"]

    def test_unknown_select_id_rejected(self):
        with pytest.raises(ValueError):
            LintRunner(select=["no-such-rule"])

    def test_findings_sort_by_location(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "mod.py",
            "def f(a=[], b={}):\n    return a, b\n",
        )
        assert findings == sorted(findings)

    def test_file_level_suppression_covers_whole_file(self, tmp_path):
        source = (
            "# repro-lint: disable=mutable-default\n"
            "def f(a=[]):\n    return a\n"
            "def g(b={}):\n    return b\n"
        )
        assert lint_source(tmp_path, "mod.py", source) == []

    def test_disable_all_suppresses_everything(self, tmp_path):
        source = (
            "# repro-lint: disable=all\n"
            "def f(a=[]):\n"
            "    try:\n        return a\n    except:\n        pass\n"
        )
        assert lint_source(tmp_path, "mod.py", source) == []

    def test_line_suppression_is_line_scoped(self, tmp_path):
        source = (
            "def f(a=[]):  # repro-lint: disable=mutable-default\n"
            "    return a\n"
            "def g(b=[]):\n"
            "    return b\n"
        )
        findings = lint_source(tmp_path, "mod.py", source)
        assert [f.line for f in findings if f.rule == "mutable-default"] == [3]


class TestUnitMixRule:
    def test_addition_across_families_is_flagged(self, tmp_path):
        findings = lint_source(
            tmp_path, "mod.py", "def f(t_seconds, n_bytes):\n    return t_seconds + n_bytes\n"
        )
        assert "unit-mix" in rule_ids(findings)

    def test_same_family_different_unit_is_flagged(self, tmp_path):
        findings = lint_source(
            tmp_path, "mod.py", "def f(size_gb, size_bytes):\n    return size_gb - size_bytes\n"
        )
        assert "unit-mix" in rule_ids(findings)

    def test_comparison_is_flagged(self, tmp_path):
        findings = lint_source(
            tmp_path, "mod.py", "def f(t_hours, t_seconds):\n    return t_hours < t_seconds\n"
        )
        assert "unit-mix" in rule_ids(findings)

    def test_same_unit_is_fine(self, tmp_path):
        findings = lint_source(
            tmp_path, "mod.py", "def f(a_gb, b_gb):\n    return a_gb + b_gb\n"
        )
        assert "unit-mix" not in rule_ids(findings)

    def test_multiplication_across_units_is_fine(self, tmp_path):
        """W x s = J: crossing units under * and / is physics, not a bug."""
        findings = lint_source(
            tmp_path, "mod.py", "def f(p_watts, t_seconds):\n    return p_watts * t_seconds\n"
        )
        assert "unit-mix" not in rule_ids(findings)

    def test_rate_identifiers_are_exempt(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "mod.py",
            "def f(bw_bytes_per_s, n_bytes):\n    return bw_bytes_per_s + n_bytes\n",
        )
        assert "unit-mix" not in rule_ids(findings)

    def test_suppression_comment(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "mod.py",
            "def f(t_seconds, n_bytes):\n"
            "    return t_seconds + n_bytes  # repro-lint: disable=unit-mix\n",
        )
        assert "unit-mix" not in rule_ids(findings)


class TestMagicNumberRule:
    IN_SCOPE = "src/repro/core/mod.py"

    def test_duplicated_constant_in_scope_is_flagged(self, tmp_path):
        findings = lint_source(tmp_path, self.IN_SCOPE, "x = n / 1e9\n")
        assert "magic-number" in rule_ids(findings)
        assert any("repro.units.GB" in f.message for f in findings)

    def test_out_of_scope_package_is_exempt(self, tmp_path):
        findings = lint_source(tmp_path, "src/repro/viz/mod.py", "x = n / 1e9\n")
        assert "magic-number" not in rule_ids(findings)

    def test_small_literal_is_fine(self, tmp_path):
        findings = lint_source(tmp_path, self.IN_SCOPE, "x = n / 1e3\n")
        assert "magic-number" not in rule_ids(findings)

    def test_non_constant_large_literal_is_fine(self, tmp_path):
        findings = lint_source(tmp_path, self.IN_SCOPE, "x = 123_456_789\n")
        assert "magic-number" not in rule_ids(findings)

    def test_suppression_comment(self, tmp_path):
        findings = lint_source(
            tmp_path, self.IN_SCOPE, "x = n / 1e9  # repro-lint: disable=magic-number\n"
        )
        assert "magic-number" not in rule_ids(findings)


class TestPaperDocRule:
    def test_undocumented_constant_is_flagged(self, tmp_path):
        findings = lint_source(tmp_path, "src/repro/paper.py", "MYSTERY_W = 123.0\n")
        assert "paper-doc" in rule_ids(findings)

    def test_doc_comment_satisfies_the_rule(self, tmp_path):
        findings = lint_source(
            tmp_path, "src/repro/paper.py", "#: Section V, Fig. 4.\nMYSTERY_W = 123.0\n"
        )
        assert "paper-doc" not in rule_ids(findings)

    def test_group_doc_comment_covers_contiguous_constants(self, tmp_path):
        source = "#: Section IV cluster shape.\nNODES = 150\nCORES = 2_400\n"
        findings = lint_source(tmp_path, "src/repro/paper.py", source)
        assert "paper-doc" not in rule_ids(findings)

    def test_blank_line_breaks_a_group(self, tmp_path):
        source = "#: Section IV cluster shape.\nNODES = 150\n\nCORES = 2_400\n"
        findings = lint_source(tmp_path, "src/repro/paper.py", source)
        assert "paper-doc" in rule_ids(findings)
        assert any("CORES" in f.message for f in findings)

    def test_other_modules_are_exempt(self, tmp_path):
        findings = lint_source(tmp_path, "src/repro/other.py", "MYSTERY_W = 123.0\n")
        assert "paper-doc" not in rule_ids(findings)

    def test_suppression_comment(self, tmp_path):
        source = "# repro-lint: disable=paper-doc\nMYSTERY_W = 123.0\n"
        findings = lint_source(tmp_path, "src/repro/paper.py", source)
        assert "paper-doc" not in rule_ids(findings)


class TestPaperRedefinitionRule:
    def test_module_constant_equal_to_paper_value_is_flagged(self, tmp_path):
        findings = lint_source(tmp_path, "src/repro/mine.py", "IDLE = 2_273.0\n")
        assert "paper-redef" in rule_ids(findings)
        assert any("STORAGE_IDLE_W" in f.message for f in findings)

    def test_parameter_default_is_flagged(self, tmp_path):
        findings = lint_source(
            tmp_path, "src/repro/mine.py", "def f(steps=8_640):\n    return steps\n"
        )
        assert "paper-redef" in rule_ids(findings)

    def test_paper_module_itself_is_exempt(self, tmp_path):
        findings = lint_source(tmp_path, "src/repro/paper.py", "#: doc\nX = 2_273.0\n")
        assert "paper-redef" not in rule_ids(findings)

    def test_undistinctive_value_is_fine(self, tmp_path):
        findings = lint_source(tmp_path, "src/repro/mine.py", "N = 150\n")
        assert "paper-redef" not in rule_ids(findings)

    def test_suppression_comment(self, tmp_path):
        findings = lint_source(
            tmp_path, "src/repro/mine.py", "IDLE = 2_273.0  # repro-lint: disable=paper-redef\n"
        )
        assert "paper-redef" not in rule_ids(findings)


SOLVER_TEMPLATE = """\
class Solver:
    def step(self, dt):
        {body}
        return dt
"""


class TestSolverRules:
    PATH = "src/repro/ocean/fake_solver.py"

    def _lint_body(self, tmp_path, body):
        return lint_source(tmp_path, self.PATH, SOLVER_TEMPLATE.format(body=body))

    def test_print_in_step_is_flagged(self, tmp_path):
        findings = self._lint_body(tmp_path, 'print("step", dt)')
        assert "solver-print" in rule_ids(findings)

    def test_open_in_step_is_flagged(self, tmp_path):
        findings = self._lint_body(tmp_path, 'open("log.txt", "w").write("x")')
        assert "solver-io" in rule_ids(findings)

    def test_wall_clock_in_step_is_flagged(self, tmp_path):
        findings = self._lint_body(tmp_path, "t0 = time.time()")
        assert "solver-clock" in rule_ids(findings)

    def test_helper_functions_are_exempt(self, tmp_path):
        source = 'def summarize(x):\n    print(x)\n'
        findings = lint_source(tmp_path, self.PATH, source)
        assert "solver-print" not in rule_ids(findings)

    def test_outside_ocean_is_exempt(self, tmp_path):
        source = SOLVER_TEMPLATE.format(body='print("hi")')
        findings = lint_source(tmp_path, "src/repro/viz/fake.py", source)
        assert "solver-print" not in rule_ids(findings)

    def test_suppressions(self, tmp_path):
        body = (
            "print(dt)  # repro-lint: disable=solver-print\n"
            '        open("f")  # repro-lint: disable=solver-io\n'
            "        t = time.time()  # repro-lint: disable=solver-clock"
        )
        findings = self._lint_body(tmp_path, body)
        assert not rule_ids(findings) & {"solver-print", "solver-io", "solver-clock"}


class TestMutableDefaultRule:
    def test_list_default_is_flagged(self, tmp_path):
        findings = lint_source(tmp_path, "mod.py", "def f(a=[]):\n    return a\n")
        assert "mutable-default" in rule_ids(findings)

    def test_factory_call_default_is_flagged(self, tmp_path):
        findings = lint_source(tmp_path, "mod.py", "def f(a=dict()):\n    return a\n")
        assert "mutable-default" in rule_ids(findings)

    def test_none_default_is_fine(self, tmp_path):
        findings = lint_source(tmp_path, "mod.py", "def f(a=None):\n    return a\n")
        assert "mutable-default" not in rule_ids(findings)

    def test_tuple_default_is_fine(self, tmp_path):
        findings = lint_source(tmp_path, "mod.py", "def f(a=(1, 2)):\n    return a\n")
        assert "mutable-default" not in rule_ids(findings)

    def test_suppression_comment(self, tmp_path):
        findings = lint_source(
            tmp_path, "mod.py",
            "def f(a=[]):  # repro-lint: disable=mutable-default\n    return a\n",
        )
        assert "mutable-default" not in rule_ids(findings)


class TestBareExceptRule:
    def test_bare_except_is_flagged(self, tmp_path):
        source = "try:\n    x = 1\nexcept:\n    pass\n"
        findings = lint_source(tmp_path, "mod.py", source)
        assert "bare-except" in rule_ids(findings)

    def test_typed_except_is_fine(self, tmp_path):
        source = "try:\n    x = 1\nexcept ValueError:\n    pass\n"
        findings = lint_source(tmp_path, "mod.py", source)
        assert "bare-except" not in rule_ids(findings)

    def test_suppression_comment(self, tmp_path):
        source = "try:\n    x = 1\nexcept:  # repro-lint: disable=bare-except\n    pass\n"
        findings = lint_source(tmp_path, "mod.py", source)
        assert "bare-except" not in rule_ids(findings)


class TestMissingAllRule:
    def test_public_repro_module_without_all_is_flagged(self, tmp_path):
        findings = lint_source(tmp_path, "src/repro/naked.py", "X = 1\n")
        assert "missing-all" in rule_ids(findings)

    def test_module_with_all_is_fine(self, tmp_path):
        findings = lint_source(tmp_path, "src/repro/ok.py", '__all__ = ["X"]\nX = 1\n')
        assert "missing-all" not in rule_ids(findings)

    def test_dunder_main_is_exempt(self, tmp_path):
        findings = lint_source(tmp_path, "src/repro/__main__.py", "X = 1\n")
        assert "missing-all" not in rule_ids(findings)

    def test_non_library_files_are_exempt(self, tmp_path):
        findings = lint_source(tmp_path, "tests/test_naked.py", "X = 1\n")
        assert "missing-all" not in rule_ids(findings)

    def test_suppression_comment(self, tmp_path):
        findings = lint_source(
            tmp_path, "src/repro/naked.py", "# repro-lint: disable=missing-all\nX = 1\n"
        )
        assert "missing-all" not in rule_ids(findings)


class TestStaleAllRule:
    def test_phantom_export_is_flagged(self, tmp_path):
        source = '__all__ = ["exists", "phantom"]\n\ndef exists():\n    pass\n'
        findings = lint_source(tmp_path, "mod.py", source)
        assert "stale-all" in rule_ids(findings)
        assert any("phantom" in f.message for f in findings)

    def test_consistent_all_is_fine(self, tmp_path):
        source = '__all__ = ["exists"]\n\ndef exists():\n    pass\n'
        findings = lint_source(tmp_path, "mod.py", source)
        assert "stale-all" not in rule_ids(findings)

    def test_imported_names_count_as_defined(self, tmp_path):
        source = 'from os import path\n\n__all__ = ["path"]\n'
        findings = lint_source(tmp_path, "mod.py", source)
        assert "stale-all" not in rule_ids(findings)

    def test_star_import_disables_the_check(self, tmp_path):
        source = 'from os.path import *\n\n__all__ = ["phantom"]\n'
        findings = lint_source(tmp_path, "mod.py", source)
        assert "stale-all" not in rule_ids(findings)

    def test_suppression_comment(self, tmp_path):
        source = '__all__ = ["phantom"]  # repro-lint: disable=stale-all\n'
        findings = lint_source(tmp_path, "mod.py", source)
        assert "stale-all" not in rule_ids(findings)


class TestObsNamingRule:
    def test_missing_unit_suffix_is_flagged(self, tmp_path):
        source = 'obs.counter("repro_storage_writes")\n'
        findings = lint_source(tmp_path, "mod.py", source)
        assert "obs-naming" in rule_ids(findings)

    def test_missing_layer_segment_is_flagged(self, tmp_path):
        source = 'registry.histogram("repro_seconds")\n'
        findings = lint_source(tmp_path, "mod.py", source)
        assert "obs-naming" in rule_ids(findings)

    def test_well_formed_name_is_fine(self, tmp_path):
        source = 'obs.counter("repro_storage_writes_total", 2.0)\n'
        findings = lint_source(tmp_path, "mod.py", source)
        assert "obs-naming" not in rule_ids(findings)

    def test_every_unit_suffix_is_accepted(self, tmp_path):
        lines = [
            f'obs.observe("repro_layer_name_{unit}", 1.0)'
            for unit in ("total", "seconds", "bytes", "watts", "joules", "ratio")
        ]
        findings = lint_source(tmp_path, "mod.py", "\n".join(lines) + "\n")
        assert "obs-naming" not in rule_ids(findings)

    def test_foreign_namespaces_are_ignored(self, tmp_path):
        source = 'text.count("chars")\ngauge("other_metric")\n'
        findings = lint_source(tmp_path, "mod.py", source)
        assert "obs-naming" not in rule_ids(findings)

    def test_dynamic_names_are_ignored(self, tmp_path):
        source = "obs.counter(name_variable)\n"
        findings = lint_source(tmp_path, "mod.py", source)
        assert "obs-naming" not in rule_ids(findings)

    def test_suppression_comment(self, tmp_path):
        source = (
            'obs.counter("repro_legacy")'
            "  # repro-lint: disable=obs-naming\n"
        )
        findings = lint_source(tmp_path, "mod.py", source)
        assert "obs-naming" not in rule_ids(findings)


class TestReporters:
    def _findings(self):
        return [
            Finding(path="a.py", line=3, col=1, rule="bare-except", message="m1"),
            Finding(path="b.py", line=7, col=5, rule="unit-mix", message="m2"),
        ]

    def test_text_report_lists_findings_and_summary(self):
        text = render_text(self._findings())
        assert "a.py:3:1: bare-except: m1" in text
        assert "2 findings" in text

    def test_text_report_clean(self):
        assert render_text([]) == "repro-lint: clean"

    def test_json_report_round_trips(self):
        payload = json.loads(render_json(self._findings()))
        assert payload["count"] == 2
        assert payload["findings"][0]["rule"] == "bare-except"
        assert payload["findings"][1]["line"] == 7


class TestCli:
    def test_clean_file_exits_zero(self, tmp_path, capsys):
        target = tmp_path / "ok.py"
        target.write_text("def f(a=None):\n    return a\n")
        assert lint_main([str(target)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_findings_exit_one(self, tmp_path, capsys):
        target = tmp_path / "bad.py"
        target.write_text("def f(a=[]):\n    return a\n")
        assert lint_main([str(target)]) == 1
        assert "mutable-default" in capsys.readouterr().out

    def test_json_format(self, tmp_path, capsys):
        target = tmp_path / "bad.py"
        target.write_text("def f(a=[]):\n    return a\n")
        assert lint_main(["--format", "json", str(target)]) == 1
        assert json.loads(capsys.readouterr().out)["count"] == 1

    def test_select_restricts_rules(self, tmp_path):
        target = tmp_path / "bad.py"
        target.write_text("def f(a=[]):\n    return a\n")
        assert lint_main(["--select", "bare-except", str(target)]) == 0

    def test_unknown_rule_id_is_usage_error(self, tmp_path):
        assert lint_main(["--select", "bogus", str(tmp_path)]) == 2

    def test_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in registered_rules():
            assert rule_id in out

    def test_main_cli_lint_subcommand(self, tmp_path, capsys):
        from repro.cli import main as repro_main

        target = tmp_path / "bad.py"
        target.write_text("def f(a=[]):\n    return a\n")
        assert repro_main(["lint", str(target)]) == 1
        assert "mutable-default" in capsys.readouterr().out


class TestShippedTreeIsClean:
    """The acceptance gate: the repository itself must lint clean."""

    def test_run_lint_api_is_clean_on_src(self):
        findings = run_lint([str(REPO_ROOT / "src")])
        assert findings == [], "\n".join(str(f) for f in findings)

    def test_module_invocation_is_clean_on_full_tree(self):
        env = dict(os.environ)
        src = str(REPO_ROOT / "src")
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")
        out = subprocess.run(
            [sys.executable, "-m", "repro.lint", "src", "tests", "benchmarks", "examples"],
            capture_output=True,
            text=True,
            timeout=120,
            cwd=str(REPO_ROOT),
            env=env,
        )
        assert out.returncode == 0, out.stdout + out.stderr
        assert "clean" in out.stdout


class TestContextHelpers:
    def test_file_context_records_suppression_kinds(self, tmp_path):
        target = tmp_path / "mod.py"
        source = (
            "# repro-lint: disable=unit-mix\n"
            "x = 1  # repro-lint: disable=magic-number\n"
        )
        target.write_text(source)
        import ast

        ctx = FileContext(target, source, ast.parse(source))
        assert "unit-mix" in ctx.file_suppressions
        assert ctx.line_suppressions == {2: {"magic-number"}}
        assert ctx.suppressed("unit-mix", 99)
        assert ctx.suppressed("magic-number", 2)
        assert not ctx.suppressed("magic-number", 1)


class TestFaultRetryRule:
    def test_while_true_except_continue_is_flagged(self, tmp_path):
        findings = lint_source(
            tmp_path, "repro/mod.py",
            "def fetch():\n"
            "    while True:\n"
            "        try:\n"
            "            return attempt()\n"
            "        except OSError:\n"
            "            continue\n",
        )
        assert "fault-retry" in rule_ids(findings)

    def test_sleep_in_loop_is_flagged(self, tmp_path):
        findings = lint_source(
            tmp_path, "repro/mod.py",
            "import time\n"
            "def poll():\n"
            "    for _ in range(5):\n"
            "        time.sleep(1.0)\n",
        )
        assert "fault-retry" in rule_ids(findings)

    def test_bounded_for_retry_is_fine(self, tmp_path):
        findings = lint_source(
            tmp_path, "repro/mod.py",
            "def fetch():\n"
            "    for _ in range(3):\n"
            "        try:\n"
            "            return attempt()\n"
            "        except OSError:\n"
            "            continue\n",
        )
        assert "fault-retry" not in rule_ids(findings)

    def test_while_true_without_retry_shape_is_fine(self, tmp_path):
        findings = lint_source(
            tmp_path, "repro/mod.py",
            "def pump(queue):\n"
            "    while True:\n"
            "        item = queue.get()\n"
            "        if item is None:\n"
            "            break\n",
        )
        assert "fault-retry" not in rule_ids(findings)

    def test_rule_scoped_to_repro_sources(self, tmp_path):
        findings = lint_source(
            tmp_path, "scripts/mod.py",
            "import time\n"
            "def poll():\n"
            "    while True:\n"
            "        time.sleep(1.0)\n",
        )
        assert "fault-retry" not in rule_ids(findings)

    def test_suppression_comment(self, tmp_path):
        findings = lint_source(
            tmp_path, "repro/mod.py",
            "import time\n"
            "def poll():\n"
            "    for _ in range(5):\n"
            "        time.sleep(1.0)  # repro-lint: disable=fault-retry\n",
        )
        assert "fault-retry" not in rule_ids(findings)

    def test_untimed_future_result_is_flagged(self, tmp_path):
        findings = lint_source(
            tmp_path, "repro/mod.py",
            "from concurrent.futures import ProcessPoolExecutor\n"
            "def collect(futures):\n"
            "    return [f.result() for f in futures]\n",
        )
        assert "fault-retry" in rule_ids(findings)

    def test_explicit_timeout_none_is_accepted(self, tmp_path):
        findings = lint_source(
            tmp_path, "repro/mod.py",
            "from concurrent.futures import ProcessPoolExecutor\n"
            "def collect(futures):\n"
            "    return [f.result(timeout=None) for f in futures]\n",
        )
        assert "fault-retry" not in rule_ids(findings)

    def test_untimed_as_completed_and_wait_are_flagged(self, tmp_path):
        findings = lint_source(
            tmp_path, "repro/mod.py",
            "from concurrent.futures import as_completed, wait\n"
            "def drain(futures):\n"
            "    wait(futures)\n"
            "    return list(as_completed(futures))\n",
        )
        ids = [f.rule for f in findings if f.rule == "fault-retry"]
        assert len(ids) == 2

    def test_result_outside_futures_modules_is_fine(self, tmp_path):
        findings = lint_source(
            tmp_path, "repro/mod.py",
            "def collect(jobs):\n"
            "    return [j.result() for j in jobs]\n",
        )
        assert "fault-retry" not in rule_ids(findings)


class TestStableReportOrder:
    """Reporters must emit byte-identical output for any input order."""

    def _findings_shuffled(self):
        ordered = [
            Finding(path="a.py", line=1, col=1, rule="unit-mix", message="m"),
            Finding(path="a.py", line=1, col=1, rule="zzz-rule", message="m"),
            Finding(path="a.py", line=9, col=1, rule="bare-except", message="m"),
            Finding(path="b.py", line=2, col=4, rule="bare-except", message="m"),
        ]
        shuffled = [ordered[2], ordered[3], ordered[1], ordered[0]]
        return ordered, shuffled

    def test_text_reporter_sorts_by_path_line_rule(self):
        ordered, shuffled = self._findings_shuffled()
        assert render_text(shuffled) == render_text(ordered)
        lines = render_text(shuffled).splitlines()[:-1]
        assert lines == [str(f) for f in ordered]

    def test_json_reporter_sorts_by_path_line_rule(self):
        ordered, shuffled = self._findings_shuffled()
        assert render_json(shuffled) == render_json(ordered)
        rows = json.loads(render_json(shuffled))["findings"]
        assert [(r["path"], r["line"], r["rule"]) for r in rows] == [
            (f.path, f.line, f.rule) for f in ordered
        ]

    def test_sarif_reporter_is_order_insensitive(self):
        from repro.lint.reporters import render_sarif

        ordered, shuffled = self._findings_shuffled()
        assert render_sarif(shuffled) == render_sarif(ordered)


class TestSarifReporter:
    def _findings(self):
        return [
            Finding(path="src/a.py", line=3, col=1, rule="bare-except", message="m1"),
            Finding(path="src/b.py", line=1, col=0, rule="parse-error", message="m2"),
        ]

    def test_log_shape(self):
        from repro.lint.reporters import render_sarif

        log = json.loads(render_sarif(self._findings(), root=Path.cwd()))
        assert log["version"] == "2.1.0"
        run = log["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro-lint"
        assert len(run["results"]) == 2

    def test_rule_index_matches_catalog_order(self):
        from repro.lint.reporters import render_sarif

        run = json.loads(render_sarif(self._findings()))["runs"][0]
        rules = [r["id"] for r in run["tool"]["driver"]["rules"]]
        for result in run["results"]:
            assert rules[result["ruleIndex"]] == result["ruleId"]

    def test_parse_error_is_error_level(self):
        from repro.lint.reporters import render_sarif

        run = json.loads(render_sarif(self._findings()))["runs"][0]
        levels = {r["ruleId"]: r["level"] for r in run["results"]}
        assert levels["parse-error"] == "error"
        assert levels["bare-except"] == "warning"

    def test_uris_are_relative_to_root(self, tmp_path):
        from repro.lint.reporters import render_sarif

        finding = Finding(
            path=str(tmp_path / "src" / "a.py"),
            line=1, col=1, rule="bare-except", message="m",
        )
        run = json.loads(render_sarif([finding], root=tmp_path))["runs"][0]
        location = run["results"][0]["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"] == "src/a.py"
        assert location["artifactLocation"]["uriBaseId"] == "%SRCROOT%"

    def test_cli_sarif_format(self, tmp_path, capsys):
        target = tmp_path / "bad.py"
        target.write_text("def f(a=[]):\n    return a\n")
        assert lint_main(["--format", "sarif", str(target)]) == 1
        log = json.loads(capsys.readouterr().out)
        assert log["runs"][0]["results"][0]["ruleId"] == "mutable-default"


class TestBaseline:
    def _dirty_file(self, tmp_path):
        target = tmp_path / "bad.py"
        target.write_text("def f(a=[]):\n    return a\n")
        return target

    def test_write_then_check_is_clean(self, tmp_path, capsys):
        target = self._dirty_file(tmp_path)
        baseline = tmp_path / "baseline.json"
        assert lint_main([
            "--baseline", "write", "--baseline-file", str(baseline), str(target),
        ]) == 0
        capsys.readouterr()
        assert lint_main([
            "--baseline", "check", "--baseline-file", str(baseline), str(target),
        ]) == 0
        captured = capsys.readouterr()
        assert "suppressed" in captured.err

    def test_new_finding_fails_the_check(self, tmp_path, capsys):
        target = self._dirty_file(tmp_path)
        baseline = tmp_path / "baseline.json"
        assert lint_main([
            "--baseline", "write", "--baseline-file", str(baseline), str(target),
        ]) == 0
        target.write_text("def f(a=[], b={}):\n    return a, b\n")
        assert lint_main([
            "--baseline", "check", "--baseline-file", str(baseline), str(target),
        ]) == 1
        assert "mutable-default" in capsys.readouterr().out

    def test_matching_is_count_bounded(self, tmp_path):
        from repro.lint.baseline import check_baseline, write_baseline

        target = self._dirty_file(tmp_path)
        baseline = tmp_path / "baseline.json"
        findings = run_lint([str(target)])
        write_baseline(findings, baseline)
        # The same finding twice: the count-1 baseline absorbs only one.
        result = check_baseline(findings + findings, baseline)
        assert result.suppressed == len(findings)
        assert len(result.new) == len(findings)

    def test_stale_entries_are_reported_not_fatal(self, tmp_path, capsys):
        target = self._dirty_file(tmp_path)
        baseline = tmp_path / "baseline.json"
        assert lint_main([
            "--baseline", "write", "--baseline-file", str(baseline), str(target),
        ]) == 0
        target.write_text("def f(a=None):\n    return a\n")
        capsys.readouterr()
        assert lint_main([
            "--baseline", "check", "--baseline-file", str(baseline), str(target),
        ]) == 0
        assert "stale baseline entry" in capsys.readouterr().err

    def test_missing_baseline_is_usage_error(self, tmp_path):
        target = self._dirty_file(tmp_path)
        assert lint_main([
            "--baseline", "check",
            "--baseline-file", str(tmp_path / "absent.json"), str(target),
        ]) == 2

    def test_baseline_excludes_line_numbers(self, tmp_path):
        from repro.lint.baseline import load_baseline, write_baseline

        target = self._dirty_file(tmp_path)
        baseline = tmp_path / "baseline.json"
        write_baseline(run_lint([str(target)]), baseline)
        # Shift the finding down two lines: the baseline must still absorb it.
        target.write_text("\n\ndef f(a=[]):\n    return a\n")
        from repro.lint.baseline import check_baseline

        result = check_baseline(run_lint([str(target)]), baseline)
        assert result.new == []
        entries = load_baseline(baseline)
        assert all(len(key) == 3 for key in entries)


class TestUnusedSuppressionRule:
    def test_pointless_line_suppression_is_flagged(self, tmp_path):
        findings = lint_source(
            tmp_path, "mod.py",
            "def f(a=None):\n"
            "    return a  # repro-lint: disable=mutable-default\n",
        )
        assert rule_ids(findings) == {"unused-suppression"}

    def test_used_suppression_is_not_flagged(self, tmp_path):
        findings = lint_source(
            tmp_path, "mod.py",
            "def f(a=[]):  # repro-lint: disable=mutable-default\n"
            "    return a\n",
        )
        assert findings == []

    def test_pointless_file_suppression_is_flagged(self, tmp_path):
        findings = lint_source(
            tmp_path, "mod.py",
            "# repro-lint: disable=bare-except\n"
            "def f(a=None):\n    return a\n",
        )
        assert rule_ids(findings) == {"unused-suppression"}

    def test_suppression_inside_string_literal_is_ignored(self, tmp_path):
        findings = lint_source(
            tmp_path, "mod.py",
            'FIXTURE = """\n'
            "x = 1  # repro-lint: disable=magic-number\n"
            '"""\n',
        )
        assert findings == []

    def test_inactive_rule_suppressions_are_not_judged(self, tmp_path):
        # With --select, suppressions of unselected rules must not be
        # reported as unused — the rule never got a chance to fire.
        target = tmp_path / "mod.py"
        target.write_text(
            "def f(a=[]):  # repro-lint: disable=mutable-default\n"
            "    return a\n"
        )
        findings = run_lint([str(target)], select=["bare-except", "unused-suppression"])
        assert findings == []
