"""Tests for backfill co-scheduling (:mod:`repro.cluster.backfill`)."""

from __future__ import annotations

import pytest

from repro.cluster.backfill import BackfillScheduler, SecondaryJobProfile
from repro.cluster.power import e5_2670_node
from repro.core.metrics import PhaseTimeline
from repro.errors import ConfigurationError


def timeline_with_waits(*waits: float) -> PhaseTimeline:
    tl = PhaseTimeline()
    t = 0.0
    for w in waits:
        tl.add("simulation", t, t + 10.0)
        t += 10.0
        tl.add("io", t, t + w)
        t += w
    return tl


@pytest.fixture
def scheduler() -> BackfillScheduler:
    return BackfillScheduler(e5_2670_node(), n_nodes=150)


class TestSecondaryJobProfile:
    def test_usability_floor(self):
        job = SecondaryJobProfile(min_slice_seconds=1.0, switch_seconds=0.1)
        assert job.usable(1.0)
        assert not job.usable(0.5)

    def test_switch_bound(self):
        job = SecondaryJobProfile(min_slice_seconds=0.01, switch_seconds=1.0)
        assert not job.usable(1.5)
        assert job.usable(2.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SecondaryJobProfile(switch_seconds=-1.0)
        with pytest.raises(ConfigurationError):
            SecondaryJobProfile(min_slice_seconds=0.0)
        with pytest.raises(ConfigurationError):
            SecondaryJobProfile(utilization=0.0)


class TestHarvest:
    def test_harvested_node_seconds(self, scheduler):
        tl = timeline_with_waits(3.0, 3.0)
        job = SecondaryJobProfile(switch_seconds=0.5, min_slice_seconds=1.0)
        report = scheduler.harvest(tl, job)
        # Each 3 s wait hosts 3 - 2*0.5 = 2 s of work on 150 nodes.
        assert report.harvested_node_seconds == pytest.approx(2 * 2.0 * 150)
        assert report.n_backfilled == 2
        assert report.harvested_node_hours == pytest.approx(600 / 3_600)

    def test_short_waits_skipped(self, scheduler):
        tl = timeline_with_waits(0.1, 0.2, 5.0)
        report = scheduler.harvest(tl)
        assert report.n_intervals == 3
        assert report.n_backfilled == 1

    def test_energy_attribution_small_vs_polling(self, scheduler):
        """Backfill converts polling watts into work: the extra energy over
        the busy-poll baseline is a small fraction of the harvested work's
        nominal cost."""
        tl = timeline_with_waits(10.0, 10.0, 10.0)
        report = scheduler.harvest(tl)
        nominal = 150 * e5_2670_node().power(0.95) * 30.0
        assert abs(report.extra_energy_joules) < 0.15 * nominal

    def test_no_waits_no_harvest(self, scheduler):
        tl = PhaseTimeline()
        tl.add("simulation", 0.0, 100.0)
        report = scheduler.harvest(tl)
        assert report.harvested_node_seconds == 0.0
        assert report.utilization_of_waits == 0.0

    def test_campaign_fraction(self, scheduler):
        tl = timeline_with_waits(10.0)
        frac = scheduler.equivalent_campaign_fraction(tl, campaign_node_seconds=150 * 100.0)
        assert 0.0 < frac < 1.0
        with pytest.raises(ConfigurationError):
            scheduler.equivalent_campaign_fraction(tl, campaign_node_seconds=0.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            BackfillScheduler(e5_2670_node(), n_nodes=0)
        with pytest.raises(ConfigurationError):
            BackfillScheduler(e5_2670_node(), n_nodes=1, wait_utilization=1.5)


class TestOnMeasuredRun:
    def test_post_processing_waits_are_harvestable(self):
        """On the measured 8-h post run, backfill recovers a meaningful
        fraction of a second campaign — §VIII's Legion suggestion."""
        from repro.exec.api import RunRequest
        from repro.pipelines import (
            PipelineSpec,
            PostProcessingPipeline,
            SamplingPolicy,
        )

        m = PostProcessingPipeline().execute(
            RunRequest(spec=PipelineSpec(sampling=SamplingPolicy(8.0)))
        ).measurement
        scheduler = BackfillScheduler(e5_2670_node(), n_nodes=150)
        report = scheduler.harvest(m.timeline)
        # The 8-h cadence run waits ~1600 s; most of it is in >0.5 s slices.
        assert report.harvested_node_hours > 30.0
        assert report.n_backfilled > 500
        frac = scheduler.equivalent_campaign_fraction(
            m.timeline, campaign_node_seconds=150 * m.execution_time
        )
        assert 0.3 < frac < 0.8
