"""Cross-layer consistency: the DES platform obeys the analytical model.

The paper's two-stage structure only works because Eq. 4 really describes
the machine.  These tests verify that *our* simulated machine has the same
property: measurements taken at arbitrary cadences and campaign lengths are
predicted by a model calibrated elsewhere — the strongest end-to-end
invariant in the repo.
"""

from __future__ import annotations

import pytest

from repro.core.calibration import calibrate_least_squares, points_from_measurements
from repro.core.metrics import IN_SITU, POST_PROCESSING
from repro.exec.api import RunRequest
from repro.ocean.driver import MPASOceanConfig
from repro.pipelines.base import PipelineSpec
from repro.pipelines.insitu import InSituPipeline
from repro.pipelines.postprocessing import PostProcessingPipeline
from repro.pipelines.sampling import SamplingPolicy
from repro.units import MONTH


def run_cell(pipeline, hours, months=6.0):
    spec = PipelineSpec(
        ocean=MPASOceanConfig(duration_seconds=months * MONTH),
        sampling=SamplingPolicy(hours),
    )
    return pipeline.execute(RunRequest(spec=spec)).measurement


@pytest.fixture(scope="module")
def fitted_model():
    """Least-squares fit over a 4-cell grid (distinct from the test cells)."""
    cells = [
        run_cell(InSituPipeline(), 8.0),
        run_cell(InSituPipeline(), 48.0),
        run_cell(PostProcessingPipeline(), 16.0),
        run_cell(PostProcessingPipeline(), 48.0),
    ]
    points = points_from_measurements(cells)
    return calibrate_least_squares(points, iter_ref=cells[0].n_timesteps)


class TestUnseenCadences:
    @pytest.mark.parametrize("hours", [4.0, 12.0, 36.0, 120.0])
    def test_insitu_predicted_at_unseen_cadence(self, fitted_model, hours):
        m = run_cell(InSituPipeline(), hours)
        predicted = fitted_model.model.execution_time(
            m.n_timesteps, m.storage_bytes / 1e9, m.n_outputs
        )
        assert predicted == pytest.approx(m.execution_time, rel=0.02)

    @pytest.mark.parametrize("hours", [4.0, 36.0])
    def test_post_predicted_at_unseen_cadence(self, fitted_model, hours):
        m = run_cell(PostProcessingPipeline(), hours)
        predicted = fitted_model.model.execution_time(
            m.n_timesteps, m.storage_bytes / 1e9, m.n_outputs
        )
        assert predicted == pytest.approx(m.execution_time, rel=0.02)


class TestUnseenCampaignLengths:
    @pytest.mark.parametrize("months", [1.0, 3.0, 12.0])
    def test_iteration_scaling_holds(self, fitted_model, months):
        """Eq. 4's first term: time scales with the campaign length."""
        m = run_cell(InSituPipeline(), 24.0, months=months)
        predicted = fitted_model.model.execution_time(
            m.n_timesteps, m.storage_bytes / 1e9, m.n_outputs
        )
        assert predicted == pytest.approx(m.execution_time, rel=0.02)


class TestStructuralInvariants:
    def test_execution_time_monotone_in_rate(self):
        """Finer sampling never makes a pipeline faster."""
        for pipeline in (InSituPipeline(), PostProcessingPipeline()):
            times = [
                run_cell(pipeline, h, months=2.0).execution_time
                for h in (72.0, 24.0, 8.0)
            ]
            assert times == sorted(times)

    def test_storage_linear_in_rate(self):
        """Eq. 6 emerges from the simulator (not assumed by it)."""
        a = run_cell(PostProcessingPipeline(), 12.0, months=2.0)
        b = run_cell(PostProcessingPipeline(), 48.0, months=2.0)
        assert a.storage_bytes / b.storage_bytes == pytest.approx(4.0, rel=0.01)

    def test_image_count_linear_in_rate(self):
        a = run_cell(InSituPipeline(), 6.0, months=2.0)
        b = run_cell(InSituPipeline(), 24.0, months=2.0)
        assert a.n_images / b.n_images == pytest.approx(4.0)

    def test_fitted_coefficients_have_physical_values(self, fitted_model):
        """α tracks the Lustre bandwidth; β tracks the render model."""
        assert fitted_model.model.alpha == pytest.approx(1e9 / 160e6, rel=0.05)
        assert fitted_model.model.beta == pytest.approx(1.2, rel=0.10)

    def test_residuals_small_on_training_cells(self, fitted_model):
        assert fitted_model.max_relative_error < 0.02
