"""Tests for the analytical model and its calibration (Eqs. 1-7)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import paper
from repro.core.calibration import (
    CalibrationPoint,
    calibrate_exact,
    calibrate_least_squares,
    points_from_measurements,
)
from repro.core.metrics import IN_SITU, Measurement
from repro.core.model import DataModel, PerformanceModel, PipelinePredictor
from repro.errors import CalibrationError, ConfigurationError, ModelError


def paper_model(power=None) -> PerformanceModel:
    return PerformanceModel(
        t_sim_ref=paper.EQ5_T_SIM,
        iter_ref=paper.CAMPAIGN_TIMESTEPS,
        alpha=paper.EQ5_ALPHA_S_PER_GB,
        beta=paper.EQ5_BETA_S_PER_IMAGE,
        power_watts=power,
    )


class TestPerformanceModel:
    def test_eq4_reproduces_eq5_rows(self):
        """The paper's solution satisfies its own system of equations."""
        m = paper_model()
        for s_gb, n_viz, total in paper.EQ5_SYSTEM:
            assert m.execution_time(8_640, s_gb, n_viz) == pytest.approx(total, rel=0.01)

    def test_simulation_time_scales_with_iterations(self):
        m = paper_model()
        assert m.simulation_time(2 * 8_640) == pytest.approx(2 * 603.0)
        assert m.simulation_time(0) == 0.0

    def test_energy_requires_power(self):
        with pytest.raises(ModelError):
            paper_model().energy(8_640, 1.0, 1.0)

    def test_energy_is_p_times_t(self):
        m = paper_model(power=46_000.0)
        t = m.execution_time(8_640, 80.0, 180)
        assert m.energy(8_640, 80.0, 180) == pytest.approx(46_000.0 * t)

    def test_negative_inputs_rejected(self):
        m = paper_model()
        with pytest.raises(ModelError):
            m.execution_time(-1, 1.0, 1.0)
        with pytest.raises(ModelError):
            m.execution_time(1, -1.0, 1.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PerformanceModel(t_sim_ref=-1, iter_ref=10, alpha=1, beta=1)
        with pytest.raises(ConfigurationError):
            PerformanceModel(t_sim_ref=1, iter_ref=0, alpha=1, beta=1)
        with pytest.raises(ConfigurationError):
            PerformanceModel(t_sim_ref=1, iter_ref=10, alpha=-1, beta=1)


class TestDataModel:
    def _post(self) -> DataModel:
        return DataModel(interval_hours_ref=24.0, s_io_gb_ref=80.0,
                         n_viz_ref=180.0, iter_ref=8_640)

    def test_eq6_rate_scaling(self):
        d = self._post()
        assert d.s_io_gb(12.0) == pytest.approx(160.0)  # twice the rate
        assert d.s_io_gb(48.0) == pytest.approx(40.0)
        assert d.s_io_gb(24.0) == pytest.approx(80.0)

    def test_eq7_image_scaling(self):
        d = self._post()
        assert d.n_viz(8.0) == pytest.approx(540.0)
        assert d.n_viz(72.0) == pytest.approx(60.0)

    def test_iteration_scaling(self):
        """A 100-year campaign is 200x the 6-month reference."""
        d = self._post()
        assert d.s_io_gb(24.0, iterations=200 * 8_640) == pytest.approx(16_000.0)

    def test_from_measurement(self):
        m = Measurement(
            pipeline=IN_SITU, sample_interval_hours=24.0, execution_time=820.0,
            n_timesteps=8_640, storage_bytes=0.2e9, n_outputs=180,
        )
        d = DataModel.from_measurement(m)
        assert d.s_io_gb_ref == pytest.approx(0.2)
        assert d.n_viz_ref == 180
        assert d.iter_ref == 8_640

    def test_invalid_queries(self):
        d = self._post()
        with pytest.raises(ModelError):
            d.s_io_gb(0.0)
        with pytest.raises(ModelError):
            d.n_viz(24.0, iterations=-1)


class TestPipelinePredictor:
    def _predictor(self) -> PipelinePredictor:
        return PipelinePredictor(
            pipeline="post-processing",
            model=paper_model(power=46_000.0),
            data=DataModel(24.0, 80.0, 180.0, 8_640),
        )

    def test_prediction_at_reference_matches_eq5(self):
        pred = self._predictor().predict(24.0)
        assert pred.execution_time == pytest.approx(1_322.0, rel=0.01)
        assert pred.s_io_gb == 80.0
        assert pred.n_viz == 180.0
        assert pred.storage_bytes == 80.0e9

    def test_energy_included_when_power_known(self):
        pred = self._predictor().predict(24.0)
        assert pred.energy == pytest.approx(46_000.0 * pred.execution_time)

    def test_energy_none_without_power(self):
        p = PipelinePredictor("x", paper_model(), DataModel(24.0, 1.0, 1.0, 8_640))
        assert p.predict(24.0).energy is None

    @settings(deadline=None, max_examples=30)
    @given(
        h=st.floats(min_value=0.5, max_value=720.0, allow_nan=False),
        scale=st.floats(min_value=0.1, max_value=500.0, allow_nan=False),
    )
    def test_time_decomposition_property(self, h, scale):
        """t = t_sim + alpha*S + beta*N for every query (Eq. 3)."""
        p = self._predictor()
        iters = scale * 8_640
        pred = p.predict(h, iters)
        expected = (
            p.model.simulation_time(iters)
            + p.model.alpha * pred.s_io_gb
            + p.model.beta * pred.n_viz
        )
        assert pred.execution_time == pytest.approx(expected, rel=1e-12)


class TestCalibration:
    def paper_points(self):
        return [
            CalibrationPoint(s_io_gb=s, n_viz=n, total_time=t, label=f"p{i}")
            for i, (s, n, t) in enumerate(paper.EQ5_SYSTEM)
        ]

    def test_exact_solve_recovers_paper_solution(self):
        """Solving the printed Eq. 5 system gives t_sim=603, α≈6.3, β≈1.2."""
        result = calibrate_exact(self.paper_points())
        assert result.model.t_sim_ref == pytest.approx(603.0, abs=7.0)
        assert result.model.alpha == pytest.approx(6.3, abs=0.25)
        assert result.model.beta == pytest.approx(1.2, abs=0.05)

    def test_exact_needs_three_points(self):
        with pytest.raises(CalibrationError):
            calibrate_exact(self.paper_points()[:2])

    def test_singular_system_rejected(self):
        points = [
            CalibrationPoint(s_io_gb=1.0, n_viz=10, total_time=100.0),
            CalibrationPoint(s_io_gb=2.0, n_viz=20, total_time=120.0),
            CalibrationPoint(s_io_gb=3.0, n_viz=30, total_time=140.0),
        ]  # S and N perfectly collinear
        with pytest.raises(CalibrationError):
            calibrate_exact(points)

    def test_residuals_zero_for_exact_solve(self):
        result = calibrate_exact(self.paper_points())
        assert max(abs(r) for r in result.residuals) < 1e-6

    def test_least_squares_matches_exact_on_three_points(self):
        exact = calibrate_exact(self.paper_points())
        ls = calibrate_least_squares(self.paper_points())
        assert ls.model.alpha == pytest.approx(exact.model.alpha, rel=1e-6)
        assert ls.model.beta == pytest.approx(exact.model.beta, rel=1e-6)

    def test_least_squares_needs_three_points(self):
        with pytest.raises(CalibrationError):
            calibrate_least_squares(self.paper_points()[:2])

    def test_least_squares_averages_noise(self):
        rng = np.random.default_rng(0)
        truth = paper_model()
        points = []
        for i in range(30):
            s = float(rng.uniform(0, 100))
            n = float(rng.uniform(0, 600))
            t = truth.execution_time(8_640, s, n) * float(rng.normal(1.0, 0.01))
            points.append(CalibrationPoint(s_io_gb=s, n_viz=n, total_time=t))
        fit = calibrate_least_squares(points)
        assert fit.model.alpha == pytest.approx(truth.alpha, rel=0.05)
        assert fit.model.beta == pytest.approx(truth.beta, rel=0.05)
        assert fit.model.t_sim_ref == pytest.approx(truth.t_sim_ref, rel=0.05)

    def test_negative_coefficients_rejected(self):
        points = [
            CalibrationPoint(s_io_gb=0.0, n_viz=0, total_time=100.0),
            CalibrationPoint(s_io_gb=1.0, n_viz=0, total_time=50.0),  # faster with MORE IO
            CalibrationPoint(s_io_gb=0.0, n_viz=10, total_time=110.0),
        ]
        with pytest.raises(CalibrationError):
            calibrate_exact(points)

    def test_validate_on_holdout(self):
        truth = paper_model()
        fit = calibrate_exact(self.paper_points())
        holdout = [
            CalibrationPoint(
                s_io_gb=230.0, n_viz=540,
                total_time=truth.execution_time(8_640, 230.0, 540),
            )
        ]
        rows = fit.validate(holdout)
        assert len(rows) == 1
        _, predicted, rel = rows[0]
        assert abs(rel) < 0.01

    def test_calibration_round_trip_property(self):
        """Synthesize exact data from a known model -> recover it."""
        truth = PerformanceModel(t_sim_ref=500.0, iter_ref=1_000, alpha=4.2, beta=0.8)
        pts = [
            CalibrationPoint(s, n, truth.execution_time(1_000, s, n))
            for s, n in ((0.1, 50), (0.9, 600), (120.0, 200))
        ]
        fit = calibrate_exact(pts, iter_ref=1_000)
        assert fit.model.t_sim_ref == pytest.approx(500.0)
        assert fit.model.alpha == pytest.approx(4.2)
        assert fit.model.beta == pytest.approx(0.8)

    def test_points_from_measurements_iter_ratio(self):
        short = Measurement(
            pipeline=IN_SITU, sample_interval_hours=24.0, execution_time=100.0,
            n_timesteps=4_320, storage_bytes=1e9, n_outputs=90,
        )
        full = Measurement(
            pipeline=IN_SITU, sample_interval_hours=24.0, execution_time=200.0,
            n_timesteps=8_640, storage_bytes=2e9, n_outputs=180,
        )
        points = points_from_measurements([full, short])
        assert points[0].iter_ratio == 1.0
        assert points[1].iter_ratio == 0.5

    def test_points_from_no_measurements_rejected(self):
        with pytest.raises(CalibrationError):
            points_from_measurements([])

    def test_point_validation(self):
        with pytest.raises(CalibrationError):
            CalibrationPoint(s_io_gb=-1.0, n_viz=1, total_time=1.0)
        with pytest.raises(CalibrationError):
            CalibrationPoint(s_io_gb=1.0, n_viz=1, total_time=0.0)
        with pytest.raises(CalibrationError):
            CalibrationPoint(s_io_gb=1.0, n_viz=1, total_time=1.0, iter_ratio=0.0)
