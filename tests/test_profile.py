"""Tests for cross-process tracing, the energy profiler and ``obs diff``."""

from __future__ import annotations

import json
import os

import pytest

from repro import obs
from repro.core.characterization import run_characterization
from repro.errors import ConfigurationError
from repro.exec.engine import ExecutionEngine
from repro.obs.cli import main as obs_cli_main
from repro.obs.diff import diff_documents, flatten_document, flatten_manifest
from repro.obs.exporters import read_jsonl, to_prometheus
from repro.obs.profile import (
    folded_stacks,
    profile_directory,
    profile_events,
    render_text,
)
from repro.obs.registry import MetricsRegistry
from repro.obs.report import write_report
from repro.obs.trace import TraceContext, derive_trace_id
from repro.ocean.driver import MPASOceanConfig
from repro.pipelines.base import PipelineSpec
from repro.units import MONTH


@pytest.fixture(autouse=True)
def _clean_registry():
    obs.default_registry().reset()
    yield
    obs.default_registry().reset()
    assert obs.active() is None


@pytest.fixture
def small_spec() -> PipelineSpec:
    return PipelineSpec(ocean=MPASOceanConfig(duration_seconds=MONTH))


def _run_grid(directory, spec, engine=None, intervals=(24.0,)) -> None:
    with obs.session(str(directory), label="characterize"):
        run_characterization(intervals_hours=intervals, spec=spec, engine=engine)


# ------------------------------------------------------------ trace context


class TestTraceContext:
    def test_round_trip(self):
        ctx = TraceContext(
            trace_id=derive_trace_id("characterize"),
            parent_span_id=3,
            label="characterize",
            task_index=7,
            shard_dir="/tmp/shards",
        )
        assert TraceContext.from_dict(ctx.to_dict()) == ctx

    def test_trace_id_is_deterministic(self):
        assert derive_trace_id("characterize") == derive_trace_id("characterize")
        assert derive_trace_id("a") != derive_trace_id("b")


# ------------------------------------------------------- shard merge/tracing


class TestParallelTelemetry:
    def test_parallel_events_byte_identical_to_serial(self, tmp_path, small_spec):
        _run_grid(tmp_path / "serial", small_spec)
        _run_grid(
            tmp_path / "par1", small_spec, engine=ExecutionEngine(max_workers=2)
        )
        _run_grid(
            tmp_path / "par2", small_spec, engine=ExecutionEngine(max_workers=2)
        )
        serial = (tmp_path / "serial" / "events.jsonl").read_bytes()
        par1 = (tmp_path / "par1" / "events.jsonl").read_bytes()
        par2 = (tmp_path / "par2" / "events.jsonl").read_bytes()
        assert serial == par1, "parallel merge lost or reordered records"
        assert par1 == par2, "parallel runs are not repeatable"

    def test_no_worker_spans_lost(self, tmp_path, small_spec):
        _run_grid(tmp_path / "serial", small_spec)
        _run_grid(
            tmp_path / "par", small_spec, engine=ExecutionEngine(max_workers=2)
        )
        count = lambda d: sum(  # noqa: E731
            1 for _ in read_jsonl(str(tmp_path / d / "events.jsonl"))
        )
        assert count("par") == count("serial")

    def test_shared_trace_id_on_every_record(self, tmp_path, small_spec):
        _run_grid(
            tmp_path / "par", small_spec, engine=ExecutionEngine(max_workers=2)
        )
        records = list(read_jsonl(str(tmp_path / "par" / "events.jsonl")))
        ids = {r["trace"] for r in records}
        assert ids == {derive_trace_id("characterize")}

    def test_worker_metrics_merged(self, tmp_path, small_spec):
        _run_grid(
            tmp_path / "par", small_spec, engine=ExecutionEngine(max_workers=2)
        )
        manifest = json.load(open(tmp_path / "par" / "manifest.json"))
        # Simulation-side counters only increment inside the workers.
        assert "repro_events_processed_total" in manifest["metrics"]
        assert manifest["trace_id"] == derive_trace_id("characterize")


# ------------------------------------------------------------- registry merge


class TestRegistryMerge:
    def test_counter_and_gauge_merge(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("repro_storage_writes_total").inc(2)
        b.counter("repro_storage_writes_total").inc(3)
        b.gauge("repro_storage_queue_bytes").set(7.0)
        a.merge(b.snapshot())
        assert a.counter("repro_storage_writes_total").value == 5
        assert a.gauge("repro_storage_queue_bytes").value == 7.0

    def test_histogram_merge_preserves_buckets(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        for reg, value in ((a, 0.5), (b, 2.0)):
            reg.histogram("repro_exec_task_seconds", bounds=(1.0, 10.0)).observe(value)
        a.merge(b.snapshot())
        h = a.histogram("repro_exec_task_seconds", bounds=(1.0, 10.0))
        assert h.count == 2
        assert h.sum == 2.5


# ----------------------------------------------------------- energy profiler


class TestEnergyConservation:
    def test_profile_conserves_energy_both_pipelines(self, tmp_path, small_spec):
        _run_grid(tmp_path / "run", small_spec)
        result = profile_directory(str(tmp_path / "run"))
        assert len(result.roots) == 2  # in-situ + post-processing
        assert result.conservation_errors(rtol=0.01) == []
        for rp in result.roots:
            assert rp.trace is not None
            assert rp.root.joules == pytest.approx(rp.trace_joules, rel=0.01)
            # Children never sum to more than the parent.
            for node in rp.root.walk():
                if node.joules is not None:
                    assert node.self_joules() >= -1e-6 * abs(node.joules)

    def test_io_bytes_attributed(self, tmp_path, small_spec):
        _run_grid(tmp_path / "run", small_spec)
        result = profile_directory(str(tmp_path / "run"))
        for rp in result.roots:
            assert rp.root.bytes_written > 0

    def test_renderings_smoke(self, tmp_path, small_spec):
        _run_grid(tmp_path / "run", small_spec)
        result = profile_directory(str(tmp_path / "run"))
        text = render_text(result)
        assert "pipeline.run" in text and "conservation" in text
        folded = folded_stacks(result)
        assert folded.count("\n") > 2
        for line in folded.strip().splitlines():
            frames, value = line.rsplit(" ", 1)
            assert frames and int(value) > 0

    def test_unmetered_stream_degrades_gracefully(self):
        records = [
            {"type": "span", "id": 1, "name": "pipeline.run",
             "parent": None, "t0": 0.0, "t1": 10.0, "domain": "sim"},
            {"type": "phase", "id": 2, "name": "simulation",
             "parent": 1, "t0": 0.0, "t1": 8.0, "domain": "sim"},
        ]
        result = profile_events(records)
        assert len(result.roots) == 1
        assert result.roots[0].root.joules is None
        assert result.conservation_errors() == []

    def test_power_trace_before_root_rejected(self):
        with pytest.raises(ConfigurationError):
            profile_events([
                {"type": "event", "name": "power_trace", "fields": {}},
            ])


class TestHtmlReport:
    def test_report_is_self_contained(self, tmp_path, small_spec):
        _run_grid(tmp_path / "run", small_spec)
        path = write_report(str(tmp_path / "run"))
        html = open(path, encoding="utf-8").read()
        assert html.startswith("<!doctype html>")
        assert "<svg" in html and "pipeline.run" not in html.split("<svg")[0]
        assert "http://" not in html and "https://" not in html  # no CDN assets
        assert "in-situ@24h" in html


# ------------------------------------------------------------------- obs diff


class TestDiff:
    def test_flatten_manifest_drops_volatile_keys(self):
        flat = flatten_manifest({
            "run_id": "x-1", "created_unix": 123.0, "n_events": 4,
            "durations": {"simulation": 2.0},
            "metrics": {
                "repro_storage_writes_total": {
                    "kind": "counter",
                    "series": [{"labels": {"tier": "burst"}, "value": 9.0}],
                },
                "repro_exec_task_seconds": {
                    "kind": "histogram",
                    "series": [{"labels": {}, "sum": 1.5, "count": 3}],
                },
            },
        })
        assert flat["n_events"] == 4.0
        assert flat["durations.simulation"] == 2.0
        assert flat["metrics.repro_storage_writes_total{tier=burst}"] == 9.0
        assert flat["metrics.repro_exec_task_seconds.sum"] == 1.5
        assert not any("run_id" in k or "created" in k for k in flat)

    def test_rel_delta_and_zero_handling(self):
        result = diff_documents(
            {"a": 10.0, "b": 0.0, "gone": 1.0}, {"a": 12.0, "b": 5.0, "new": 1.0}
        )
        by_key = {d.key: d for d in result.deltas}
        assert by_key["a"].rel_delta == pytest.approx(0.2)
        assert by_key["b"].rel_delta == float("inf")
        assert result.only_baseline == ["gone"]
        assert result.only_candidate == ["new"]

    def test_cli_exit_codes(self, tmp_path):
        base = tmp_path / "base.json"
        same = tmp_path / "same.json"
        worse = tmp_path / "worse.json"
        base.write_text(json.dumps({"speedup": 2.0, "seconds": 10.0}))
        same.write_text(json.dumps({"speedup": 2.05, "seconds": 10.1}))
        worse.write_text(json.dumps({"speedup": 1.0, "seconds": 30.0}))
        assert obs_cli_main(["diff", str(base), str(same)]) == 0
        assert obs_cli_main(
            ["diff", str(base), str(worse), "--threshold", "0.2"]
        ) == 3
        assert obs_cli_main(["diff", str(base), str(tmp_path / "nope.json")]) == 2

    def test_manifest_vs_json_rejected(self, tmp_path, small_spec, capsys):
        _run_grid(tmp_path / "run", small_spec)
        bench = tmp_path / "bench.json"
        bench.write_text(json.dumps({"speedup": 2.0}))
        rc = obs_cli_main(["diff", str(tmp_path / "run"), str(bench)])
        assert rc == 2
        assert "cannot diff" in capsys.readouterr().err

    def test_flatten_document_nested(self):
        flat = flatten_document({"a": {"b": [1, 2]}, "s": "text", "ok": True})
        assert flat == {"a.b[0]": 1.0, "a.b[1]": 2.0}


# ------------------------------------------------------------------ exporters


class TestExporterHardening:
    def test_prometheus_label_escaping(self):
        reg = MetricsRegistry()
        reg.counter(
            "repro_storage_writes_total",
            path='dir\\file "x"\nnext',
        ).inc()
        text = to_prometheus(reg)
        assert 'path="dir\\\\file \\"x\\"\\nnext"' in text
        assert "\n\n" not in text

    def test_read_jsonl_tolerates_truncated_tail(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text('{"a": 1}\n{"b": 2}\n{"tru', encoding="utf-8")
        with pytest.warns(RuntimeWarning, match="truncated"):
            records = list(read_jsonl(str(path)))
        assert records == [{"a": 1}, {"b": 2}]

    def test_read_jsonl_midfile_corruption_still_raises(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text('{"a": 1}\n{bad\n{"b": 2}\n', encoding="utf-8")
        with pytest.raises(ValueError):
            list(read_jsonl(str(path)))


# ------------------------------------------------------------ metric naming


class TestNewMetricNames:
    def test_new_names_follow_convention(self):
        for name in (
            "repro_profile_roots_total",
            "repro_profile_spans_total",
            "repro_profile_unattributed_joules",
            "repro_obs_truncated_records_total",
            "repro_exec_bench_seconds",
        ):
            obs.validate_metric_name(name)

    def test_lint_covers_profile_metrics(self, tmp_path):
        from repro.lint.engine import run_lint

        bad = tmp_path / "bad.py"
        bad.write_text(
            "from repro import obs\n"
            'obs.counter("repro_profile_roots_count")\n'
            'obs.counter("repro_obs_truncated_records")\n'
        )
        findings = run_lint([str(bad)], select=["obs-naming"])
        assert len([f for f in findings if f.rule == "obs-naming"]) == 2


# ----------------------------------------------------------- cache-hit metrics


class TestCacheHitMetrics:
    def test_cache_hits_record_task_metrics(self, tmp_path, small_spec):
        from repro.exec.cache import DiskCache
        from repro.exec.engine import ExecutionEngine as Engine
        from repro.pipelines.sampling import SamplingPolicy

        engine = Engine(max_workers=1, cache=DiskCache(str(tmp_path / "cache")))
        from repro.exec.api import RunRequest

        request = RunRequest(
            pipeline="in-situ",
            spec=small_spec.with_sampling(SamplingPolicy(24.0)),
        )
        with obs.session(str(tmp_path / "tel"), label="cachehit"):
            engine.map([request])   # miss
            engine.map([request])   # hit
            snap = obs.default_registry().snapshot()
        series = snap["repro_exec_tasks_total"]["series"]
        by_cached = {s["labels"]["cached"]: s["value"] for s in series}
        assert by_cached == {"false": 1.0, "true": 1.0}
        hist = snap["repro_exec_task_seconds"]["series"]
        assert {s["labels"]["cached"] for s in hist} == {"false", "true"}
