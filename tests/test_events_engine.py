"""Tests for the discrete-event engine (:mod:`repro.events.engine`)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import DeadlockError, SimulationError
from repro.events.engine import Simulator


class TestEvent:
    def test_fresh_event_is_pending(self, sim):
        ev = sim.event()
        assert not ev.triggered
        assert not ev.processed

    def test_succeed_carries_value(self, sim):
        ev = sim.event()
        ev.succeed(42)
        assert ev.triggered
        assert ev.value == 42

    def test_double_trigger_rejected(self, sim):
        ev = sim.event()
        ev.succeed()
        with pytest.raises(SimulationError):
            ev.succeed()

    def test_fail_requires_exception(self, sim):
        ev = sim.event()
        with pytest.raises(TypeError):
            ev.fail("not an exception")

    def test_value_before_trigger_raises(self, sim):
        with pytest.raises(SimulationError):
            sim.event().value

    def test_unhandled_failure_propagates_from_run(self, sim):
        ev = sim.event()
        ev.fail(ValueError("boom"))
        with pytest.raises(ValueError, match="boom"):
            sim.run()


class TestTimeout:
    def test_timeout_advances_clock(self, sim):
        sim.timeout(5.0)
        sim.run()
        assert sim.now == 5.0

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.timeout(-1.0)

    def test_zero_delay_fires_now(self, sim):
        fired = []
        ev = sim.timeout(0.0, value="v")
        ev.callbacks.append(lambda e: fired.append((sim.now, e.value)))
        sim.run()
        assert fired == [(0.0, "v")]


class TestProcess:
    def test_sequential_timeouts(self, sim):
        trace = []

        def proc():
            yield sim.timeout(1.0)
            trace.append(sim.now)
            yield sim.timeout(2.0)
            trace.append(sim.now)

        sim.process(proc())
        sim.run()
        assert trace == [1.0, 3.0]

    def test_same_time_events_fire_fifo(self, sim):
        order = []

        def proc(tag):
            yield sim.timeout(1.0)
            order.append(tag)

        for tag in "abc":
            sim.process(proc(tag))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_process_return_value(self, sim):
        def child():
            yield sim.timeout(1.0)
            return "result"

        def parent(out):
            value = yield sim.process(child())
            out.append(value)

        out = []
        sim.process(parent(out))
        sim.run()
        assert out == ["result"]

    def test_yield_from_subgenerator(self, sim):
        def inner():
            yield sim.timeout(2.0)
            return 7

        def outer(out):
            value = yield from inner()
            out.append((sim.now, value))

        out = []
        sim.process(outer(out))
        sim.run()
        assert out == [(2.0, 7)]

    def test_failed_event_raises_inside_process(self, sim):
        caught = []

        def proc(ev):
            try:
                yield ev
            except RuntimeError as exc:
                caught.append(str(exc))

        ev = sim.event()
        sim.process(proc(ev))
        ev.fail(RuntimeError("io error"))
        sim.run()
        assert caught == ["io error"]

    def test_yielding_non_event_raises(self, sim):
        def proc():
            yield 42

        sim.process(proc())
        with pytest.raises(SimulationError, match="not an Event"):
            sim.run()

    def test_yielding_foreign_event_raises(self, sim):
        other = Simulator()

        def proc():
            yield other.event()

        sim.process(proc())
        with pytest.raises(SimulationError, match="another Simulator"):
            sim.run()

    def test_process_requires_generator(self, sim):
        with pytest.raises(TypeError):
            sim.process(lambda: None)

    def test_waiting_on_already_processed_event(self, sim):
        """A process that yields an event which already fired resumes at once."""
        ev = sim.timeout(1.0, value="early")
        got = []

        def late():
            yield sim.timeout(5.0)
            value = yield ev
            got.append((sim.now, value))

        sim.process(late())
        sim.run()
        assert got == [(5.0, "early")]

    def test_deadlock_detection(self, sim):
        def proc():
            yield sim.event()  # nobody will ever trigger this

        sim.process(proc())
        with pytest.raises(DeadlockError):
            sim.run()


class TestConditions:
    def test_all_of_waits_for_every_event(self, sim):
        done = []

        def proc():
            yield sim.all_of([sim.timeout(1.0), sim.timeout(3.0), sim.timeout(2.0)])
            done.append(sim.now)

        sim.process(proc())
        sim.run()
        assert done == [3.0]

    def test_any_of_fires_on_first(self, sim):
        done = []

        def proc():
            yield sim.any_of([sim.timeout(5.0), sim.timeout(1.0)])
            done.append(sim.now)

        sim.process(proc())
        sim.run(until=10.0)
        assert done == [1.0]

    def test_all_of_empty_fires_immediately(self, sim):
        cond = sim.all_of([])
        assert cond.triggered

    def test_all_of_collects_values(self, sim):
        t1 = sim.timeout(1.0, value="a")
        t2 = sim.timeout(2.0, value="b")
        results = []

        def proc():
            values = yield sim.all_of([t1, t2])
            results.append(sorted(values.values()))

        sim.process(proc())
        sim.run()
        assert results == [["a", "b"]]

    def test_mixed_simulator_condition_rejected(self, sim):
        other = Simulator()
        with pytest.raises(SimulationError):
            sim.all_of([sim.timeout(1.0), other.timeout(1.0)])


class TestRunControl:
    def test_run_until_stops_at_time(self, sim):
        sim.timeout(10.0)
        sim.run(until=4.0)
        assert sim.now == 4.0
        sim.run(until=20.0)
        assert sim.now == 20.0

    def test_run_until_past_raises(self, sim):
        sim.timeout(1.0)
        sim.run()
        with pytest.raises(SimulationError):
            sim.run(until=0.5)

    def test_step_on_empty_queue_raises(self, sim):
        with pytest.raises(SimulationError):
            sim.step()

    def test_peek(self, sim):
        assert sim.peek() == float("inf")
        sim.timeout(3.0)
        assert sim.peek() == 3.0

    def test_clock_never_goes_backwards(self, sim):
        times = []

        def proc(delay):
            yield sim.timeout(delay)
            times.append(sim.now)

        for d in (5.0, 1.0, 3.0, 1.0, 0.0):
            sim.process(proc(d))
        sim.run()
        assert times == sorted(times)


class TestClockMonotonicityProperty:
    @given(st.lists(st.floats(min_value=0, max_value=1e6, allow_nan=False), min_size=1, max_size=30))
    def test_arbitrary_delays_fire_in_order(self, delays):
        sim = Simulator()
        fired = []

        def proc(d):
            yield sim.timeout(d)
            fired.append(sim.now)

        for d in delays:
            sim.process(proc(d))
        sim.run()
        assert fired == sorted(fired)
        assert len(fired) == len(delays)
        assert sim.now == max(delays)
