"""Tests for :mod:`repro.power.trace` and :mod:`repro.power.meter`."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, MeterError
from repro.power.meter import CageMonitor, MeteredPDU, PowerMeter
from repro.power.report import PowerReport
from repro.power.signal import PowerSignal
from repro.power.trace import PowerTrace
from repro.units import MINUTE


class TestPowerTrace:
    def test_energy_is_dt_times_sum(self):
        tr = PowerTrace(0.0, 60.0, [100.0, 200.0, 300.0])
        assert tr.energy() == pytest.approx(60 * 600)

    def test_average_power(self):
        tr = PowerTrace(0.0, 60.0, [100.0, 200.0])
        assert tr.average_power() == 150.0

    def test_peak_power(self):
        tr = PowerTrace(0.0, 60.0, [100.0, 250.0, 50.0])
        assert tr.peak_power() == 250.0

    def test_times_are_midpoints(self):
        tr = PowerTrace(10.0, 60.0, [1.0, 2.0])
        np.testing.assert_allclose(tr.times, [40.0, 100.0])

    def test_negative_samples_rejected(self):
        with pytest.raises(ConfigurationError):
            PowerTrace(0.0, 60.0, [100.0, -1.0])

    def test_nonpositive_dt_rejected(self):
        with pytest.raises(ConfigurationError):
            PowerTrace(0.0, 0.0, [100.0])

    def test_2d_samples_rejected(self):
        with pytest.raises(ConfigurationError):
            PowerTrace(0.0, 1.0, np.zeros((2, 2)))

    def test_empty_trace_stats_raise(self):
        tr = PowerTrace(0.0, 60.0, [])
        with pytest.raises(MeterError):
            tr.average_power()
        with pytest.raises(MeterError):
            tr.peak_power()

    def test_from_signal_averages_exactly(self):
        s = PowerSignal(100.0)
        s.set(30.0, 200.0)  # half the first minute at 100, half at 200
        tr = PowerTrace.from_signal(s, 0.0, 120.0, MINUTE)
        np.testing.assert_allclose(tr.watts, [150.0, 200.0])

    def test_from_signal_partial_final_window(self):
        s = PowerSignal(100.0)
        tr = PowerTrace.from_signal(s, 0.0, 90.0, MINUTE)
        assert tr.n_samples == 2
        np.testing.assert_allclose(tr.watts, [100.0, 100.0])

    def test_from_signal_conserves_energy(self):
        s = PowerSignal(120.0)
        s.set(45.0, 310.0)
        s.set(100.0, 80.0)
        tr = PowerTrace.from_signal(s, 0.0, 180.0, MINUTE)
        assert tr.energy() == pytest.approx(s.integrate(0.0, 180.0))

    def test_from_signal_empty_window_rejected(self):
        with pytest.raises(MeterError):
            PowerTrace.from_signal(PowerSignal(1.0), 5.0, 5.0, MINUTE)

    def test_add_aligned_traces(self):
        a = PowerTrace(0.0, 60.0, [100.0, 200.0], name="compute")
        b = PowerTrace(0.0, 60.0, [10.0], name="storage")
        c = a + b
        np.testing.assert_allclose(c.watts, [110.0, 200.0])  # b zero-extended

    def test_add_misaligned_rejected(self):
        a = PowerTrace(0.0, 60.0, [100.0])
        b = PowerTrace(30.0, 60.0, [100.0])
        with pytest.raises(MeterError):
            a + b
        c = PowerTrace(0.0, 30.0, [100.0])
        with pytest.raises(MeterError):
            a + c

    def test_aligned_sum(self):
        traces = [PowerTrace(0.0, 60.0, [i, i]) for i in range(1, 4)]
        total = PowerTrace.aligned_sum(traces)
        np.testing.assert_allclose(total.watts, [6.0, 6.0])

    def test_aligned_sum_empty_rejected(self):
        with pytest.raises(MeterError):
            PowerTrace.aligned_sum([])

    def test_shifted(self):
        tr = PowerTrace(0.0, 60.0, [1.0]).shifted(30.0)
        assert tr.start == 30.0

    def test_resample_conserves_energy(self):
        tr = PowerTrace(0.0, 60.0, [100.0, 200.0, 150.0, 300.0])
        for dt in (30.0, 60.0, 120.0, 240.0):
            assert tr.resample(dt).energy() == pytest.approx(tr.energy(), rel=1e-9)

    def test_resample_non_tiling_dt_keeps_energy_via_partial_tail(self):
        tr = PowerTrace(0.0, 60.0, [100.0, 200.0, 150.0, 300.0])
        res = tr.resample(95.0)
        assert res.final_dt == pytest.approx(240.0 - 190.0)
        assert res.energy() == pytest.approx(tr.energy(), rel=1e-9)
        assert res.duration == pytest.approx(tr.duration)

    def test_resample_longer_than_duration_rejected(self):
        tr = PowerTrace(0.0, 60.0, [100.0])
        with pytest.raises(ConfigurationError):
            tr.resample(120.0)

    def test_partial_final_interval_energy_exact(self):
        """A trace ending mid-minute integrates exactly (final_dt)."""
        s = PowerSignal(100.0)
        s.set(70.0, 300.0)
        tr = PowerTrace.from_signal(s, 0.0, 90.0, 60.0)
        assert tr.final_dt == pytest.approx(30.0)
        assert tr.duration == pytest.approx(90.0)
        assert tr.energy() == pytest.approx(s.integrate(0.0, 90.0))
        assert tr.average_power() == pytest.approx(s.mean(0.0, 90.0))

    def test_invalid_final_dt_rejected(self):
        with pytest.raises(ConfigurationError):
            PowerTrace(0.0, 60.0, [1.0, 2.0], final_dt=0.0)
        with pytest.raises(ConfigurationError):
            PowerTrace(0.0, 60.0, [1.0, 2.0], final_dt=61.0)

    def test_resample_coarse_average(self):
        tr = PowerTrace(0.0, 60.0, [100.0, 200.0])
        coarse = tr.resample(120.0)
        np.testing.assert_allclose(coarse.watts, [150.0])

    @settings(deadline=None, max_examples=30)
    @given(
        watts=st.lists(st.floats(min_value=0, max_value=1e5, allow_nan=False), min_size=1, max_size=24),
        factor=st.integers(min_value=1, max_value=5),
    )
    def test_resample_energy_invariant_property(self, watts, factor):
        assume(len(watts) % factor == 0)  # dt must tile the duration
        tr = PowerTrace(0.0, 60.0, watts)
        res = tr.resample(60.0 * factor)
        assert res.energy() == pytest.approx(tr.energy(), rel=1e-9, abs=1e-6)


class TestMeters:
    def test_meter_reads_attached_signals(self):
        meter = PowerMeter("m")
        meter.attach(PowerSignal(100.0))
        meter.attach(PowerSignal(50.0))
        tr = meter.read(0.0, 120.0)
        np.testing.assert_allclose(tr.watts, [150.0, 150.0])

    def test_meter_without_signals_raises(self):
        with pytest.raises(MeterError):
            PowerMeter("m").read(0.0, 60.0)
        with pytest.raises(MeterError):
            PowerMeter("m").instantaneous(0.0)

    def test_instantaneous(self):
        meter = PowerMeter("m")
        s = PowerSignal(100.0)
        s.set(10.0, 300.0)
        meter.attach(s)
        assert meter.instantaneous(5.0) == 100.0
        assert meter.instantaneous(15.0) == 300.0

    def test_loss_factor_scales_readings(self):
        meter = PowerMeter("m", loss_factor=1.1)
        meter.attach(PowerSignal(100.0))
        tr = meter.read(0.0, 60.0)
        assert tr.average_power() == pytest.approx(110.0)

    def test_loss_factor_below_one_rejected(self):
        with pytest.raises(ConfigurationError):
            PowerMeter("m", loss_factor=0.9)

    def test_one_minute_default_interval(self):
        meter = MeteredPDU()
        assert meter.interval == 60.0

    def test_cage_monitor_capacity(self):
        cage = CageMonitor(0)
        for _ in range(CageMonitor.NODES_PER_CAGE):
            cage.attach(PowerSignal(100.0))
        with pytest.raises(ConfigurationError):
            cage.attach(PowerSignal(100.0))

    def test_cage_monitor_negative_index_rejected(self):
        with pytest.raises(ConfigurationError):
            CageMonitor(-1)

    def test_meter_averaging_hides_short_spikes(self):
        """The 1/min instrument smooths sub-minute features (Fig. 4 caveat)."""
        s = PowerSignal(100.0)
        s.set(10.0, 1_000.0)
        s.set(11.0, 100.0)  # a 1-second spike
        meter = PowerMeter("m")
        meter.attach(s)
        tr = meter.read(0.0, 60.0)
        assert tr.peak_power() == pytest.approx(115.0)  # spike diluted 60x


class TestPowerReport:
    def _report(self) -> PowerReport:
        compute = PowerTrace(0.0, 60.0, [40_000.0, 44_000.0], name="compute")
        storage = PowerTrace(0.0, 60.0, [2_273.0, 2_280.0], name="storage")
        return PowerReport(compute=compute, storage=storage, label="test",
                           budget_watts=46_302.0)

    def test_totals(self):
        r = self._report()
        assert r.average_power == pytest.approx((42_000.0 + 2_276.5))
        assert r.energy == pytest.approx(r.compute_energy + r.storage_energy)
        assert r.duration == 120.0

    def test_component_breakdown(self):
        r = self._report()
        assert r.average_compute_power == pytest.approx(42_000.0)
        assert r.average_storage_power == pytest.approx(2_276.5)

    def test_utilization_and_trapped_capacity(self):
        r = self._report()
        assert r.power_utilization() + r.trapped_capacity() == pytest.approx(1.0)
        assert 0.9 < r.power_utilization() < 1.0

    def test_utilization_requires_budget(self):
        r = PowerReport(
            compute=PowerTrace(0.0, 60.0, [1.0]),
            storage=PowerTrace(0.0, 60.0, [1.0]),
        )
        with pytest.raises(MeterError):
            r.power_utilization()

    def test_summary_renders(self):
        text = self._report().summary()
        assert "avg power total" in text
        assert "trapped" in text
