"""Tests for the study report, Green500 reporting and node allocation."""

from __future__ import annotations

import pytest

from repro.cluster.allocation import Allocator
from repro.cluster.machine import caddy
from repro.core.characterization import run_characterization
from repro.core.metrics import IN_SITU, POST_PROCESSING
from repro.core.report import StudyReport, render_report
from repro.errors import ConfigurationError, ResourceError
from repro.ocean.driver import MPASOceanConfig
from repro.pipelines.base import PipelineSpec
from repro.power.green500 import efficiency_report
from repro.units import MONTH


@pytest.fixture(scope="module")
def study():
    return run_characterization()


class TestStudyReport:
    def test_full_render(self, study):
        text = StudyReport(study).render()
        for heading in ("# In-Situ", "## Measurements", "## Storage power",
                        "## Calibrated model", "## What-if"):
            assert heading in text
        # Every grid cell appears.
        for hours in ("8", "24", "72"):
            assert f"| every {hours} h | in-situ |" in text
            assert f"| every {hours} h | post-processing |" in text

    def test_model_numbers_present(self, study):
        text = StudyReport(study).render()
        assert "603" in text
        assert "s/GB" in text

    def test_write_to_disk(self, study, tmp_path):
        path = str(tmp_path / "report.md")
        n = StudyReport(study).write(path)
        assert n == (tmp_path / "report.md").stat().st_size

    def test_render_report_convenience(self, study, tmp_path):
        path = str(tmp_path / "r.md")
        text = render_report(study, path=path, whatif_years=50.0)
        assert "50-year campaign" in text
        assert open(path).read() == text

    def test_validation(self, study):
        with pytest.raises(ConfigurationError):
            StudyReport(study, whatif_years=0.0)
        with pytest.raises(ConfigurationError):
            StudyReport(study, whatif_storage_budget_gb=-1.0)
        with pytest.raises(ConfigurationError):
            StudyReport(study, whatif_intervals=())


class TestGreen500:
    def test_two_scopes(self, study):
        m = study.metrics.get(IN_SITU, 24.0)
        rep = efficiency_report(m, MPASOceanConfig())
        assert rep.level3_energy_joules > rep.level1_energy_joules
        assert rep.level1_efficiency > rep.level3_efficiency
        assert 0.0 < rep.storage_scope_penalty < 0.2

    def test_insitu_more_efficient_than_post(self, study):
        cfg = MPASOceanConfig()
        insitu = efficiency_report(study.metrics.get(IN_SITU, 8.0), cfg)
        post = efficiency_report(study.metrics.get(POST_PROCESSING, 8.0), cfg)
        # Same useful work, less energy: in-situ wins at both scopes.
        assert insitu.cell_steps == post.cell_steps
        assert insitu.level3_efficiency > post.level3_efficiency

    def test_summary_renders(self, study):
        rep = efficiency_report(study.metrics.get(IN_SITU, 24.0), MPASOceanConfig())
        assert "cell-steps/J" in rep.summary()

    def test_unmetered_run_rejected(self):
        from repro.core.metrics import Measurement
        m = Measurement(
            pipeline=IN_SITU, sample_interval_hours=24.0, execution_time=1.0,
            n_timesteps=10, storage_bytes=0, n_outputs=1,
        )
        with pytest.raises(ConfigurationError):
            efficiency_report(m, MPASOceanConfig())


class TestAllocator:
    def test_exclusive_allocation(self, sim):
        cluster = caddy(sim)
        alloc = Allocator(cluster)
        a = alloc.allocate("sim", 100)
        b = alloc.allocate("viz", 50)
        assert a.n_nodes == 100 and b.n_nodes == 50
        assert alloc.free_nodes == 0
        assert not any(node in b for node in a.nodes)

    def test_over_allocation_rejected(self, sim):
        alloc = Allocator(caddy(sim))
        alloc.allocate("big", 140)
        with pytest.raises(ResourceError):
            alloc.allocate("more", 11)

    def test_release_returns_nodes(self, sim):
        alloc = Allocator(caddy(sim))
        p = alloc.allocate("tmp", 30)
        alloc.release(p)
        assert alloc.free_nodes == 150
        assert p.released
        with pytest.raises(ResourceError):
            alloc.release(p)

    def test_release_idles_nodes(self, sim):
        alloc = Allocator(caddy(sim))
        p = alloc.allocate("busy", 10)
        p.set_utilization(1.0)
        alloc.release(p)
        assert all(n.utilization == 0.0 for n in p.nodes)

    def test_partition_utilization_and_power(self, sim):
        cluster = caddy(sim)
        alloc = Allocator(cluster)
        p = alloc.allocate("p", 10)
        p.set_utilization(1.0)
        assert p.current_power == pytest.approx(10 * cluster.node_model.peak_watts)
        # The rest of the machine stayed idle.
        assert cluster.current_power == pytest.approx(
            10 * cluster.node_model.peak_watts + 140 * cluster.node_model.idle_watts
        )

    def test_released_partition_unusable(self, sim):
        alloc = Allocator(caddy(sim))
        p = alloc.allocate("p", 5)
        alloc.release(p)
        with pytest.raises(ResourceError):
            p.set_utilization(0.5)

    def test_duplicate_name_rejected(self, sim):
        alloc = Allocator(caddy(sim))
        alloc.allocate("p", 5)
        with pytest.raises(ConfigurationError):
            alloc.allocate("p", 5)

    def test_allocate_fraction(self, sim):
        alloc = Allocator(caddy(sim))
        p = alloc.allocate_fraction("tenth", 0.1)
        assert p.n_nodes == 15
        with pytest.raises(ConfigurationError):
            alloc.allocate_fraction("bad", 0.0)

    def test_get_by_name(self, sim):
        alloc = Allocator(caddy(sim))
        p = alloc.allocate("p", 5)
        assert alloc.get("p") is p
        assert alloc.get("missing") is None
