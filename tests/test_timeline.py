"""Tests for continuous timelines, SLO watchdogs and the bench ledger.

Covers :mod:`repro.obs.timeline` (grid sampling, probes, determinism),
:mod:`repro.obs.watch` (episode/growth semantics), the timeline/alert
naming grammar and its ``obs-naming`` lint extension, the ``obs check`` /
``obs summarize`` surfaces, the zero-observation exporter regressions, and
:mod:`repro.exec.history` (MAD drift detection).
"""

from __future__ import annotations

import json
import os

import pytest

from repro import obs
from repro.core.characterization import run_characterization
from repro.errors import ConfigurationError
from repro.events.engine import Simulator
from repro.exec import history
from repro.obs.cli import main as obs_cli_main
from repro.obs.cli import collect_alerts, summarize
from repro.ocean.driver import MPASOceanConfig
from repro.pipelines.base import PipelineSpec
from repro.units import MONTH


@pytest.fixture(autouse=True)
def _clean_registry():
    obs.default_registry().reset()
    yield
    obs.default_registry().reset()
    assert obs.active() is None


@pytest.fixture
def small_spec() -> PipelineSpec:
    return PipelineSpec(ocean=MPASOceanConfig(duration_seconds=MONTH))


# ------------------------------------------------------------------ naming


class TestTimelineNaming:
    def test_valid_series_names_pass(self):
        for name in (
            "repro_timeline_engine_queue_depth_total",
            "repro_timeline_storage_ost3_fill_ratio",
            "repro_timeline_storage_bandwidth_bytes_per_second",
            "repro_timeline_power_headroom_watts",
        ):
            obs.validate_timeline_series_name(name)

    def test_wildcard_prefix_selector_allowed(self):
        obs.validate_timeline_series_name("repro_timeline_storage_ost*")
        obs.validate_timeline_series_name("repro_timeline_power_*")

    def test_invalid_series_names_rejected(self):
        for name in (
            "repro_storage_fill_ratio",       # missing timeline segment
            "repro_timeline_fill_ratio",      # missing <layer>
            "repro_timeline_storage_fill",    # missing unit
            "repro_timeline_storage_Fill_ratio",
            "ost*",
            "",
        ):
            with pytest.raises(ConfigurationError):
                obs.validate_timeline_series_name(name)

    def test_alert_metric_name_derivation(self):
        assert (
            obs.alert_metric_name("power_cap_exceeded")
            == "repro_alert_power_cap_exceeded_total"
        )
        assert obs.ALERT_METRIC_RE.match("repro_alert_ost_fill_high_total")

    def test_alert_metric_name_rejects_non_snake_case(self):
        for bad in ("PowerCap", "0cap", "cap-exceeded", ""):
            with pytest.raises(ConfigurationError):
                obs.alert_metric_name(bad)


# ----------------------------------------------------------------- sampler


def _ticking_sim(n_steps: int = 10, step: float = 1.0) -> Simulator:
    sim = Simulator()

    def ticker():
        for _ in range(n_steps):
            yield sim.timeout(step)

    sim.process(ticker())
    return sim


class TestTimelineSampler:
    def test_samples_land_on_the_grid(self):
        sim = _ticking_sim(n_steps=10, step=1.0)
        sampler = obs.TimelineSampler(sim, interval_seconds=2.5)
        sampler.add_probe("repro_timeline_engine_clock_seconds", lambda t: t)
        sampler.attach()
        sim.run()
        sampler.detach()
        times = [s["t"] for s in sampler.recent]
        # Grid ticks at 2.5/5.0/7.5/10.0; run ends exactly on the last tick,
        # so detach adds nothing.
        assert times == [2.5, 5.0, 7.5, 10.0]
        assert all(
            s["values"]["repro_timeline_engine_clock_seconds"] == s["t"]
            for s in sampler.recent
        )

    def test_detach_snapshots_the_end_state(self):
        sim = _ticking_sim(n_steps=3, step=1.0)
        sampler = obs.TimelineSampler(sim, interval_seconds=2.0)
        sampler.add_probe("repro_timeline_engine_clock_seconds", lambda t: t)
        sampler.attach()
        sim.run()
        sampler.detach()
        assert [s["t"] for s in sampler.recent] == [2.0, 3.0]

    def test_coarse_events_still_hit_every_tick(self):
        # One event jumping far ahead must emit one row per crossed tick.
        sim = _ticking_sim(n_steps=1, step=10.0)
        sampler = obs.TimelineSampler(sim, interval_seconds=2.0)
        sampler.add_probe("repro_timeline_engine_clock_seconds", lambda t: t)
        sampler.attach()
        sim.run()
        sampler.detach()
        assert [s["t"] for s in sampler.recent] == [2.0, 4.0, 6.0, 8.0, 10.0]

    def test_ring_capacity_bounds_memory(self):
        sim = _ticking_sim(n_steps=20, step=1.0)
        sampler = obs.TimelineSampler(sim, interval_seconds=1.0, capacity=5)
        sampler.add_probe("repro_timeline_engine_clock_seconds", lambda t: t)
        sampler.attach()
        sim.run()
        sampler.detach()
        assert sampler.n_samples == 20
        assert len(sampler.recent) == 5
        assert [s["t"] for s in sampler.recent] == [16.0, 17.0, 18.0, 19.0, 20.0]

    def test_probe_name_discipline(self):
        sampler = obs.TimelineSampler(Simulator(), interval_seconds=1.0)
        sampler.add_probe("repro_timeline_engine_clock_seconds", lambda t: t)
        with pytest.raises(ConfigurationError):
            sampler.add_probe("repro_timeline_engine_clock_seconds", lambda t: t)
        with pytest.raises(ConfigurationError):
            sampler.add_probe("repro_timeline_engine_*", lambda t: t)  # repro-lint: disable=obs-naming
        with pytest.raises(ConfigurationError):
            sampler.add_probe("not_a_series", lambda t: t)

    def test_interval_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            obs.TimelineSampler(Simulator(), interval_seconds=0.0)

    def test_config_round_trips(self):
        cfg = obs.TimelineConfig(
            interval_seconds=3.5, capacity=16, power_cap_watts=1_000.0
        )
        assert obs.TimelineConfig.from_dict(cfg.to_dict()) == cfg
        with pytest.raises(ConfigurationError):
            obs.TimelineConfig(interval_seconds=-1.0)
        with pytest.raises(ConfigurationError):
            obs.TimelineConfig(capacity=0)


# ---------------------------------------------------------------- watchdog


class TestWatchdog:
    def test_threshold_fires_once_per_episode(self):
        dog = obs.Watchdog(
            [obs.WatchRule(name="hot", series="repro_timeline_power_draw_watts",
                           op=">", threshold=100.0)]
        )
        series = "repro_timeline_power_draw_watts"
        assert dog.observe(1.0, {series: 50.0}) == []
        first = dog.observe(2.0, {series: 150.0})
        assert len(first) == 1 and first[0].rule == "hot"
        # Still breached: quiet until the episode clears.
        assert dog.observe(3.0, {series: 200.0}) == []
        assert dog.observe(4.0, {series: 50.0}) == []
        # Re-armed: a fresh breach fires again.
        assert len(dog.observe(5.0, {series: 150.0})) == 1
        assert len(dog.alerts) == 2

    def test_for_seconds_debounces(self):
        dog = obs.Watchdog(
            [obs.WatchRule(name="hot", series="repro_timeline_power_draw_watts",
                           op=">", threshold=100.0, for_seconds=2.0)]
        )
        series = "repro_timeline_power_draw_watts"
        assert dog.observe(1.0, {series: 150.0}) == []
        assert dog.observe(2.0, {series: 150.0}) == []
        fired = dog.observe(3.0, {series: 150.0})
        assert len(fired) == 1 and fired[0].t == 3.0
        # A dip resets the debounce clock.
        dog.observe(4.0, {series: 50.0})
        assert dog.observe(5.0, {series: 150.0}) == []

    def test_growth_requires_strict_increase_over_window(self):
        dog = obs.Watchdog(
            [obs.WatchRule(name="queue_growth",
                           series="repro_timeline_engine_queue_depth_total",
                           kind="growth", window=3)]
        )
        series = "repro_timeline_engine_queue_depth_total"
        assert dog.observe(1.0, {series: 1.0}) == []
        assert dog.observe(2.0, {series: 2.0}) == []
        assert len(dog.observe(3.0, {series: 3.0})) == 1
        # A plateau clears the episode; growth must rebuild the full window.
        assert dog.observe(4.0, {series: 3.0}) == []
        assert dog.observe(5.0, {series: 4.0}) == []
        assert len(dog.observe(6.0, {series: 5.0})) == 1

    def test_wildcard_selector_keeps_per_series_state(self):
        dog = obs.Watchdog(
            [obs.WatchRule(name="ost_full", series="repro_timeline_storage_ost*",
                           op=">=", threshold=0.9)]
        )
        sample = {
            "repro_timeline_storage_ost0_fill_ratio": 0.95,
            "repro_timeline_storage_ost1_fill_ratio": 0.10,
        }
        fired = dog.observe(1.0, sample)
        assert [a.series for a in fired] == [
            "repro_timeline_storage_ost0_fill_ratio"
        ]
        sample["repro_timeline_storage_ost1_fill_ratio"] = 0.92
        assert [a.series for a in dog.observe(2.0, sample)] == [
            "repro_timeline_storage_ost1_fill_ratio"
        ]

    def test_rule_validation(self):
        with pytest.raises(ConfigurationError):
            obs.WatchRule(name="Bad-Name", series="repro_timeline_power_draw_watts")  # repro-lint: disable=obs-naming
        with pytest.raises(ConfigurationError):
            obs.WatchRule(name="ok", series="bogus")  # repro-lint: disable=obs-naming
        with pytest.raises(ConfigurationError):
            obs.WatchRule(name="ok", series="repro_timeline_power_draw_watts",
                          op="!=")
        with pytest.raises(ConfigurationError):
            obs.WatchRule(name="ok", series="repro_timeline_power_draw_watts",
                          severity="fatal")
        with pytest.raises(ConfigurationError):
            obs.WatchRule(name="ok", series="repro_timeline_power_draw_watts",
                          kind="growth", window=1)

    def test_duplicate_rule_names_rejected(self):
        rule = obs.WatchRule(name="dup", series="repro_timeline_power_draw_watts")
        with pytest.raises(ConfigurationError):
            obs.Watchdog([rule, rule])

    def test_default_rules_gate_on_limits(self):
        names = {r.name for r in obs.default_rules()}
        assert "power_cap_exceeded" not in names
        assert "checkpoint_overdue" not in names
        assert {"storage_fill_high", "ost_fill_high", "engine_queue_growth"} <= names
        full = {
            r.name
            for r in obs.default_rules(
                power_cap_watts=10_000.0, checkpoint_overdue_seconds=60.0
            )
        }
        assert {"power_cap_exceeded", "checkpoint_overdue"} <= full


# ----------------------------------------------------- platform integration


def _run_with_timeline(directory, spec, **cfg):
    with obs.session(
        str(directory), label="tl", timeline=obs.TimelineConfig(**cfg)
    ):
        run_characterization(intervals_hours=(72.0,), spec=spec)


class TestPlatformIntegration:
    def test_timeline_covers_engine_storage_and_power(self, tmp_path, small_spec):
        d = tmp_path / "t"
        _run_with_timeline(d, small_spec, power_cap_watts=30_000.0)
        rows = list(obs.read_jsonl(str(d / obs.TIMELINE_FILENAME)))
        assert rows
        names = set()
        for row in rows:
            assert row["type"] == "sample"
            assert "seq" in row and "trace" in row
            names.update(row["values"])
        for series in (
            "repro_timeline_engine_queue_depth_total",
            "repro_timeline_engine_events_processed_total",
            "repro_timeline_storage_fill_ratio",
            "repro_timeline_storage_ost0_fill_ratio",
            "repro_timeline_resource_mds_utilization_ratio",
            "repro_timeline_power_draw_watts",
            "repro_timeline_power_cap_watts",
            "repro_timeline_power_headroom_watts",
            "repro_timeline_power_nodes_busy_total",
        ):
            assert series in names, series
        manifest = obs.RunManifest.load(str(d))
        assert manifest.n_timeline == len(rows)
        assert "repro_obs_timeline_samples_total" in manifest.metrics

    def test_two_seeded_runs_produce_byte_identical_timelines(
        self, tmp_path, small_spec
    ):
        a, b = tmp_path / "a", tmp_path / "b"
        _run_with_timeline(a, small_spec, power_cap_watts=16_000.0)
        obs.default_registry().reset()
        _run_with_timeline(b, small_spec, power_cap_watts=16_000.0)
        bytes_a = (a / obs.TIMELINE_FILENAME).read_bytes()
        assert bytes_a == (b / obs.TIMELINE_FILENAME).read_bytes()
        assert bytes_a

    def test_sampling_off_leaves_no_timeline_and_identical_results(
        self, tmp_path, small_spec
    ):
        plain = run_characterization(intervals_hours=(72.0,), spec=small_spec)
        d = tmp_path / "off"
        with obs.session(str(d), label="off"):
            # No TimelineConfig: the session records spans/metrics only.
            sampled = run_characterization(intervals_hours=(72.0,), spec=small_spec)
        assert not (d / obs.TIMELINE_FILENAME).exists()
        assert obs.RunManifest.load(str(d)).n_timeline == 0
        a = [m.to_dict() for m in plain.metrics]
        b = [m.to_dict() for m in sampled.metrics]
        assert a == b

    def test_disabled_config_is_equivalent_to_none(self, tmp_path, small_spec):
        d = tmp_path / "disabled"
        _run_with_timeline(d, small_spec, enabled=False)
        assert not (d / obs.TIMELINE_FILENAME).exists()

    def test_power_cap_alerts_are_deterministic(self, tmp_path, small_spec):
        a, b = tmp_path / "a", tmp_path / "b"
        _run_with_timeline(a, small_spec, power_cap_watts=16_000.0)
        obs.default_registry().reset()
        _run_with_timeline(b, small_spec, power_cap_watts=16_000.0)
        alerts_a = collect_alerts(
            list(obs.read_jsonl(str(a / obs.EVENTS_FILENAME)))
        )
        alerts_b = collect_alerts(
            list(obs.read_jsonl(str(b / obs.EVENTS_FILENAME)))
        )
        assert alerts_a and alerts_a == alerts_b
        assert any(al["rule"] == "power_cap_exceeded" for al in alerts_a)
        assert all(al["severity"] == "critical" for al in alerts_a
                   if al["rule"] == "power_cap_exceeded")
        manifest = obs.RunManifest.load(str(a))
        assert "repro_alert_power_cap_exceeded_total" in manifest.metrics

    def test_parallel_timeline_matches_serial(self, tmp_path, small_spec):
        from repro.exec.engine import ExecutionEngine

        a, b = tmp_path / "serial", tmp_path / "parallel"
        with obs.session(str(a), label="tl", timeline=obs.TimelineConfig()):
            run_characterization(intervals_hours=(72.0,), spec=small_spec)
        obs.default_registry().reset()
        with obs.session(str(b), label="tl", timeline=obs.TimelineConfig()):
            run_characterization(
                intervals_hours=(72.0,),
                spec=small_spec,
                engine=ExecutionEngine(max_workers=2),
            )
        assert (a / obs.TIMELINE_FILENAME).read_bytes() == (
            b / obs.TIMELINE_FILENAME
        ).read_bytes()


# ---------------------------------------------------------------- obs CLI


class TestObsCheckAndSummarize:
    def _capped_run(self, directory, spec):
        _run_with_timeline(directory, spec, power_cap_watts=16_000.0)

    def test_check_exits_2_on_alerts(self, tmp_path, small_spec, capsys):
        d = tmp_path / "t"
        self._capped_run(d, small_spec)
        assert obs_cli_main(["check", str(d)]) == 2
        assert obs_cli_main(["check", str(d), "--min-severity", "critical"]) == 2
        out = capsys.readouterr()
        assert "power_cap_exceeded" in out.out

    def test_check_passes_without_alerts(self, tmp_path, small_spec, capsys):
        d = tmp_path / "t"
        _run_with_timeline(d, small_spec)  # no cap -> no alerts
        assert obs_cli_main(["check", str(d)]) == 0

    def test_summarize_reports_timeline_and_alerts(self, tmp_path, small_spec):
        d = tmp_path / "t"
        self._capped_run(d, small_spec)
        text = summarize(str(d))
        assert "timeline:" in text
        assert "alerts:" in text
        assert "power_cap_exceeded" in text

    def test_summarize_counts_unknown_record_kinds(self, tmp_path):
        d = tmp_path / "t"
        with obs.session(str(d), label="u"):
            obs.event("noop")
        with open(d / obs.EVENTS_FILENAME, "a", encoding="utf-8") as fh:
            fh.write(json.dumps({"type": "mystery", "x": 1}) + "\n")
            fh.write(json.dumps({"type": "mystery", "x": 2}) + "\n")
        text = summarize(str(d))
        assert "unknown kind" in text
        assert "mystery (x2)" in text
        snap = obs.default_registry().snapshot()
        series = snap["repro_obs_unknown_records_total"]["series"]
        assert [s["value"] for s in series] == [2.0]
        assert series[0]["labels"] == {"kind": "mystery"}

    def test_report_renders_sparklines_and_alert_markers(
        self, tmp_path, small_spec
    ):
        from repro.obs.report import render_html

        d = tmp_path / "t"
        self._capped_run(d, small_spec)
        doc = render_html(str(d))
        assert "<h2>Timeline" in doc
        assert doc.count("<polyline") >= 10
        assert "power_cap_exceeded" in doc


# ------------------------------------------------------ exporter regressions


class TestExporterRegressions:
    def test_zero_observation_histogram_exposes_sum_and_count(self):
        reg = obs.MetricsRegistry()
        reg._family("repro_pipeline_phase_seconds", "histogram", "")
        text = obs.to_prometheus(reg)
        assert "repro_pipeline_phase_seconds_sum 0" in text
        assert "repro_pipeline_phase_seconds_count 0" in text
        assert 'repro_pipeline_phase_seconds_bucket{le="+Inf"} 0' in text

    def test_merge_preserves_empty_series_families(self):
        src = obs.MetricsRegistry()
        src._family("repro_pipeline_phase_seconds", "histogram", "")
        src._family("repro_storage_writes_total", "counter", "")
        dst = obs.MetricsRegistry()
        dst.merge(src.snapshot())
        names = [f.name for f in dst.families()]
        assert "repro_pipeline_phase_seconds" in names
        assert "repro_storage_writes_total" in names


# ------------------------------------------------------------ bench history


def _bench_report(**overrides) -> dict:
    report = {
        "quick": True,
        "cpus": os.cpu_count() or 1,
        "workers": 2,
        "workload": {"n_tasks": 12},
        "cache": {"entries": 12, "hits": 12, "misses": 12},
        "serial_seconds": 10.0,
        "parallel_seconds": 5.0,
        "cached_seconds": 1.0,
        "speedup_parallel": 2.0,
        "speedup_cached": 10.0,
    }
    report.update(overrides)
    return report


class TestBenchHistory:
    def test_record_append_load_round_trip(self, tmp_path):
        path = str(tmp_path / "hist.jsonl")
        record = history.history_record(_bench_report(), created_unix=123.0)
        assert record["created_unix"] == 123.0
        assert record["host"]["cpus"] == (os.cpu_count() or 1)
        assert record["metrics"]["serial_seconds"] == 10.0
        history.append_record(record, path)
        history.append_record(record, path)
        rows = history.load_history(path)
        assert len(rows) == 2
        assert rows[0]["metrics"] == record["metrics"]

    def test_load_missing_ledger_is_empty(self, tmp_path):
        assert history.load_history(str(tmp_path / "nope.jsonl")) == []

    def test_short_history_is_informational(self):
        ledger = [history.history_record(_bench_report()) for _ in range(2)]
        assert history.check_drift(_bench_report(), ledger) == []

    def test_in_band_run_passes(self):
        ledger = [history.history_record(_bench_report()) for _ in range(5)]
        checks = history.check_drift(_bench_report(serial_seconds=11.0), ledger)
        assert checks and not any(c.failed for c in checks)
        assert history.drift_problems(checks) == []

    def test_synthetic_regression_is_caught(self):
        ledger = [history.history_record(_bench_report()) for _ in range(5)]
        bad = _bench_report(serial_seconds=20.0, speedup_parallel=1.0)
        checks = history.check_drift(bad, ledger)
        failing = {c.metric for c in checks if c.failed}
        assert failing == {"serial_seconds", "speedup_parallel"}
        assert len(history.drift_problems(checks)) == 2

    def test_improvement_is_not_drift(self):
        ledger = [history.history_record(_bench_report()) for _ in range(5)]
        better = _bench_report(serial_seconds=1.0, speedup_parallel=8.0)
        checks = history.check_drift(better, ledger)
        assert not any(c.failed for c in checks)

    def test_other_hosts_are_filtered_out(self):
        record = history.history_record(_bench_report())
        record["host"]["cpus"] = (os.cpu_count() or 1) + 64
        assert history.check_drift(_bench_report(), [record] * 5) == []
        full = history.history_record(_bench_report())
        full["quick"] = False
        assert history.check_drift(_bench_report(), [full] * 5) == []

    def test_mad_band_has_a_relative_floor(self):
        # Identical history -> MAD 0; the floor keeps jitter from flagging.
        ledger = [history.history_record(_bench_report()) for _ in range(5)]
        checks = history.check_drift(_bench_report(), ledger)
        serial = next(c for c in checks if c.metric == "serial_seconds")
        assert serial.halfwidth == pytest.approx(0.25 * 10.0)

    def test_parameter_validation(self):
        with pytest.raises(ConfigurationError):
            history.check_drift(_bench_report(), [], window=0)
        with pytest.raises(ConfigurationError):
            history.check_drift(_bench_report(), [], mad_k=0.0)
        with pytest.raises(ConfigurationError):
            history.history_record({"quick": True})

    def test_render_history(self):
        assert "empty ledger" in history.render_history([])
        ledger = [history.history_record(_bench_report()) for _ in range(3)]
        text = history.render_history(ledger)
        assert "3 record(s)" in text and "quick" in text

    def test_cli_gate_and_append(self, tmp_path, capsys):
        from repro.cli import main as repro_main

        ledger = str(tmp_path / "hist.jsonl")
        rp = str(tmp_path / "report.json")
        with open(rp, "w", encoding="utf-8") as fh:
            json.dump(_bench_report(), fh)
        # Empty ledger: informational pass, appended.
        assert repro_main(
            ["bench", "history", "--check", "--append",
             "--report", rp, "--history-path", ledger]
        ) == 0
        for _ in range(3):
            assert repro_main(
                ["bench", "history", "--append", "--report", rp,
                 "--history-path", ledger]
            ) == 0
        assert repro_main(
            ["bench", "history", "--check", "--report", rp,
             "--history-path", ledger]
        ) == 0
        with open(rp, "w", encoding="utf-8") as fh:
            json.dump(_bench_report(serial_seconds=100.0), fh)
        assert repro_main(
            ["bench", "history", "--check", "--report", rp,
             "--history-path", ledger]
        ) == 2
        assert repro_main(["bench", "history", "--history-path", ledger]) == 0
        out = capsys.readouterr()
        assert "bench history" in out.out


# ------------------------------------------------------------- lint fixtures


class TestObsNamingLintExtension:
    def _lint(self, tmp_path, source: str):
        from repro.lint import run_lint

        target = tmp_path / "fixture.py"
        target.write_text(source, encoding="utf-8")
        return [f for f in run_lint([str(target)]) if f.rule == "obs-naming"]

    def test_bad_probe_name_is_flagged(self, tmp_path):
        findings = self._lint(
            tmp_path, "sampler.add_probe('repro_timeline_bad', fn)\n"
        )
        assert len(findings) == 1
        assert "repro_timeline_<layer>_<name>_<unit>" in findings[0].message

    def test_good_probe_name_is_clean(self, tmp_path):
        assert not self._lint(
            tmp_path,
            "sampler.add_probe('repro_timeline_engine_queue_depth_total', fn)\n",
        )

    def test_bad_watch_rule_series_is_flagged(self, tmp_path):
        findings = self._lint(
            tmp_path, "WatchRule(name='ok', series='repro_storage_ost*')\n"
        )
        assert len(findings) == 1

    def test_bad_watch_rule_name_is_flagged(self, tmp_path):
        findings = self._lint(
            tmp_path,
            "WatchRule(name='Bad-Name', "
            "series='repro_timeline_power_draw_watts')\n",
        )
        assert len(findings) == 1
        assert "snake_case" in findings[0].message

    def test_good_watch_rule_is_clean(self, tmp_path):
        assert not self._lint(
            tmp_path,
            "WatchRule(name='ost_fill_high', "
            "series='repro_timeline_storage_ost*')\n",
        )

    def test_plain_metric_checks_still_work(self, tmp_path):
        assert self._lint(tmp_path, "obs.counter('repro_bad')\n")
        assert not self._lint(
            tmp_path, "obs.counter('repro_storage_writes_total')\n"
        )
