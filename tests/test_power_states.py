"""Tests for idle-period power management (:mod:`repro.power.states`)."""

from __future__ import annotations

import pytest

from repro.cluster.power import e5_2670_node
from repro.core.metrics import PhaseTimeline
from repro.errors import ConfigurationError
from repro.power.states import (
    IdlePeriodManager,
    LowPowerState,
    default_states,
)


def timeline_with_waits(*waits: float) -> PhaseTimeline:
    tl = PhaseTimeline()
    t = 0.0
    for w in waits:
        tl.add("simulation", t, t + 10.0)
        t += 10.0
        tl.add("io", t, t + w)
        t += w
    return tl


class TestLowPowerState:
    def test_applicability_floor(self):
        state = LowPowerState("s", 0.5, transition_seconds=0.1, min_interval_seconds=1.0)
        assert state.applicable(1.0)
        assert not state.applicable(0.5)

    def test_applicability_transition_bound(self):
        """Intervals shorter than 2x the transition are never worth it."""
        state = LowPowerState("s", 0.5, transition_seconds=1.0, min_interval_seconds=0.0)
        assert not state.applicable(1.5)
        assert state.applicable(2.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            LowPowerState("s", 1.5, 0.0, 0.0)
        with pytest.raises(ConfigurationError):
            LowPowerState("s", 0.5, -1.0, 0.0)

    def test_default_states_ordering(self):
        states = default_states()
        fractions = [s.power_fraction for s in states]
        floors = [s.min_interval_seconds for s in states]
        assert fractions == sorted(fractions, reverse=True)  # deeper saves more
        assert floors == sorted(floors)  # deeper needs longer residency


class TestIdlePeriodManager:
    def manager(self, **kw) -> IdlePeriodManager:
        return IdlePeriodManager(e5_2670_node(), n_nodes=150, **kw)

    def test_wait_interval_extraction(self):
        tl = timeline_with_waits(3.0, 5.0)
        tl.add("viz", 100.0, 110.0)  # not a wait phase
        assert self.manager().wait_intervals(tl) == [3.0, 5.0]

    def test_savings_positive_for_manageable_waits(self):
        tl = timeline_with_waits(3.0, 3.0, 3.0)
        state = LowPowerState("s", 0.45, 5e-3, 0.05)
        s = self.manager().analyze_state(tl, state)
        assert s.n_managed == 3
        assert s.energy_saved_joules > 0
        assert s.coverage == pytest.approx(1.0)
        assert s.time_penalty_seconds == pytest.approx(3 * 5e-3)

    def test_deep_state_skips_short_waits(self):
        tl = timeline_with_waits(3.0, 3.0)
        deep = LowPowerState("deep", 0.2, 2.0, 30.0)
        s = self.manager().analyze_state(tl, deep)
        assert s.n_managed == 0
        assert s.energy_saved_joules == pytest.approx(0.0)

    def test_deep_state_wins_on_long_waits(self):
        tl = timeline_with_waits(120.0)
        best = self.manager().best_state(tl)
        assert best.state.name == "pkg-sleep"

    def test_shallow_state_wins_on_short_waits(self):
        tl = timeline_with_waits(*([0.01] * 50))
        best = self.manager().best_state(tl)
        assert best.state.name == "clock-gate"

    def test_energy_accounting_exact(self):
        """Hand-check one interval: E = sleep*resident + idle*transition."""
        node = e5_2670_node()
        mgr = IdlePeriodManager(node, n_nodes=10, wait_utilization=0.8)
        tl = timeline_with_waits(10.0)
        state = LowPowerState("s", 0.5, transition_seconds=1.0, min_interval_seconds=0.0)
        s = mgr.analyze_state(tl, state)
        idle = 10 * node.idle_watts
        poll = 10 * node.power(0.8)
        expected_managed = 0.5 * idle * 9.0 + idle * 1.0
        assert s.baseline_energy_joules == pytest.approx(poll * 10.0)
        assert s.managed_energy_joules == pytest.approx(expected_managed)

    def test_savings_fraction(self):
        tl = timeline_with_waits(10.0)
        s = self.manager().analyze(tl)[1]
        assert 0.0 < s.savings_fraction(1e9) < 1.0
        with pytest.raises(ConfigurationError):
            s.savings_fraction(0.0)

    def test_empty_timeline(self):
        tl = PhaseTimeline()
        s = self.manager().analyze(tl)[0]
        assert s.n_intervals == 0
        assert s.coverage == 0.0
        assert s.energy_saved_joules == 0.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            IdlePeriodManager(e5_2670_node(), n_nodes=0)
        with pytest.raises(ConfigurationError):
            IdlePeriodManager(e5_2670_node(), n_nodes=1, wait_utilization=2.0)
        with pytest.raises(ConfigurationError):
            IdlePeriodManager(e5_2670_node(), n_nodes=1, states=[])
