"""Tests for the declarative scenario system (``repro.scenario``)."""

from __future__ import annotations

import json
import warnings
from pathlib import Path

import pytest

from repro.scenario import (
    ClusterConfig,
    ExecutionConfig,
    ExperimentConfig,
    FaultsCampaignConfig,
    PipelineConfig,
    SamplingConfig,
    Scenario,
    ScenarioError,
    StorageConfig,
    TelemetryConfig,
    apply_overrides,
    load_scenario,
    parse_bandwidth,
    parse_bytes,
    parse_duration,
    parse_scenario,
    scenario_text,
    write_scenario,
)
from repro.scenario.build import (
    build_engine,
    build_pipelines,
    build_platform_factory,
    build_spec,
    scenario_from_args,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
GALLERY_DIR = REPO_ROOT / "scenarios"


def _minimal(**extra) -> dict:
    data = {"schema_version": 1}
    data.update(extra)
    return data


class TestSchemaRoundTrip:
    def test_parse_freeze_serialize_reparse_equal(self):
        data = _minimal(
            name="round-trip",
            experiment={"kind": "characterize"},
            sampling={"intervals_hours": [8, 24]},
            storage={"capacity": "7.7 TB", "write_bandwidth": "160 MB/s"},
            ocean={"duration": "6 months", "timestep": "1800 s"},
        )
        first = parse_scenario(data)
        second = parse_scenario(first.to_dict())
        assert first == second
        assert first.content_digest() == second.content_digest()

    def test_digest_stable_across_key_order(self):
        a = parse_scenario({"schema_version": 1, "name": "a",
                            "sampling": {"intervals_hours": [8, 24, 72]}})
        b = parse_scenario({"sampling": {"intervals_hours": [8, 24, 72]},
                            "name": "b", "schema_version": 1})
        assert a.content_digest() == b.content_digest()

    def test_digest_excludes_transport_sections(self):
        base = parse_scenario(_minimal(name="x"))
        renamed = parse_scenario(_minimal(name="y", description="other"))
        cached = parse_scenario(
            _minimal(name="x", execution={"workers": 2, "cache": "/tmp/c"})
        )
        telemetered = parse_scenario(
            _minimal(name="x", telemetry={"directory": "out/run"})
        )
        assert base.content_digest() == renamed.content_digest()
        assert base.content_digest() == cached.content_digest()
        assert base.content_digest() == telemetered.content_digest()

    def test_digest_tracks_identity_sections(self):
        base = parse_scenario(_minimal(name="x"))
        changed = parse_scenario(
            _minimal(name="x", sampling={"intervals_hours": [8]})
        )
        capped = parse_scenario(
            _minimal(name="x", power={"cap_watts": 10_000})
        )
        assert base.content_digest() != changed.content_digest()
        assert base.content_digest() != capped.content_digest()

    def test_unit_strings_resolve_to_canonical_defaults(self):
        spelled = parse_scenario(_minimal(
            name="spelled",
            storage={"capacity": "7.7 TB", "write_bandwidth": "160 MB/s",
                     "metadata_latency": "1 ms"},
        ))
        assert spelled.storage == StorageConfig()

    def test_faults_scenario_autofills_campaign_section(self):
        s = parse_scenario(_minimal(
            name="f",
            experiment={"kind": "faults"},
            sampling={"intervals_hours": [24]},
        ))
        assert s.faults == FaultsCampaignConfig()

    def test_yaml_text_round_trips(self, tmp_path):
        s = parse_scenario(_minimal(name="t", sampling={"intervals_hours": [8]}))
        path = tmp_path / "t.yaml"
        write_scenario(s, str(path))
        again = load_scenario(str(path))
        assert again == s
        json_path = tmp_path / "t.json"
        write_scenario(s, str(json_path))
        assert load_scenario(str(json_path)) == s

    def test_scenario_text_json_is_sorted(self):
        s = parse_scenario(_minimal(name="t"))
        payload = json.loads(scenario_text(s, fmt="json"))
        assert payload["schema_version"] == 1
        assert payload["name"] == "t"


class TestValidationErrors:
    def test_missing_schema_version(self):
        with pytest.raises(ScenarioError) as exc:
            parse_scenario({"name": "x"})
        assert exc.value.path == "schema_version"
        assert "add schema_version: 1" in str(exc.value)

    def test_unsupported_schema_version(self):
        with pytest.raises(ScenarioError) as exc:
            parse_scenario({"schema_version": 99})
        assert "99" in str(exc.value)

    def test_unknown_top_level_key_suggests_close_match(self):
        with pytest.raises(ScenarioError) as exc:
            parse_scenario(_minimal(samplng={"intervals_hours": [8]}))
        assert exc.value.path == "samplng"
        assert "sampling" in str(exc.value)

    def test_unknown_section_key_has_dotted_path(self):
        with pytest.raises(ScenarioError) as exc:
            parse_scenario(_minimal(storage={"capcity": "1 TB"}))
        assert exc.value.path == "storage.capcity"
        assert "capacity" in str(exc.value)

    def test_bad_unit_names_offending_path(self):
        with pytest.raises(ScenarioError) as exc:
            parse_scenario(_minimal(storage={"capacity": "7 parsecs"}))
        assert exc.value.path == "storage.capacity"
        assert "parsecs" in str(exc.value)

    def test_bad_type_names_offending_path(self):
        with pytest.raises(ScenarioError) as exc:
            parse_scenario(_minimal(cluster={"nodes": "many"}))
        assert exc.value.path == "cluster.nodes"

    def test_whatif_only_keys_rejected_elsewhere(self):
        with pytest.raises(ScenarioError) as exc:
            parse_scenario(_minimal(experiment={"kind": "characterize",
                                                "years": 10}))
        assert exc.value.path == "experiment.years"

    def test_faults_section_needs_faults_kind(self):
        with pytest.raises(ScenarioError) as exc:
            parse_scenario(_minimal(name="x", faults={"seed": 1}))
        assert exc.value.path == "faults"

    def test_faults_kind_needs_single_cadence(self):
        with pytest.raises(ScenarioError) as exc:
            parse_scenario(_minimal(
                experiment={"kind": "faults"},
                sampling={"intervals_hours": [8, 24]},
            ))
        assert exc.value.path == "sampling.intervals_hours"

    def test_whatif_grid_must_cover_training_cadences(self):
        with pytest.raises(ScenarioError) as exc:
            parse_scenario(_minimal(
                experiment={"kind": "whatif"},
                sampling={"intervals_hours": [8, 24]},
            ))
        assert "72" in str(exc.value)

    def test_characterize_pipelines_need_comparison_pair(self):
        with pytest.raises(ScenarioError) as exc:
            parse_scenario(_minimal(pipelines=["in-situ", "in-transit"]))
        assert exc.value.path == "pipelines"

    def test_duplicate_pipeline_kinds_rejected(self):
        with pytest.raises(ScenarioError):
            parse_scenario(_minimal(pipelines=["in-situ", "in-situ",
                                               "post-processing"]))

    def test_staging_nodes_only_for_in_transit(self):
        with pytest.raises(ScenarioError) as exc:
            PipelineConfig(kind="in-situ", staging_nodes=5)
        assert exc.value.path == "pipelines.staging_nodes"

    def test_custom_topology_rejects_engine_options(self):
        with pytest.raises(ScenarioError) as exc:
            Scenario(
                name="x",
                cluster=ClusterConfig(nodes=75),
                execution=ExecutionConfig(workers=2),
            )
        assert exc.value.path == "execution"

    def test_resume_needs_journal_and_cache(self):
        with pytest.raises(ScenarioError) as exc:
            Scenario(name="x", execution=ExecutionConfig(resume=True))
        assert exc.value.path == "execution.resume"

    def test_unknown_experiment_kind(self):
        with pytest.raises(ScenarioError) as exc:
            ExperimentConfig(kind="bogus")
        assert exc.value.path == "experiment.kind"


class TestUnits:
    def test_durations(self):
        assert parse_duration(90) == 90.0
        assert parse_duration("1800 s") == 1800.0
        assert parse_duration("6 months") == 6 * 2_592_000.0
        assert parse_duration("1 ms") == 1e-3

    def test_bytes_and_bandwidth(self):
        assert parse_bytes("7.7 TB") == 7.7e12
        assert parse_bytes(1024) == 1024.0
        assert parse_bandwidth("160 MB/s") == 160e6
        assert parse_bandwidth(5e8) == 5e8

    def test_booleans_are_not_numbers(self):
        with pytest.raises(ScenarioError):
            parse_duration(True, "x")


class TestOverrides:
    def test_dotted_path_sets_nested_value(self):
        data = _minimal(sampling={"intervals_hours": [8]})
        apply_overrides(data, ["sampling.intervals_hours=[8, 24]"])
        assert data["sampling"]["intervals_hours"] == [8, 24]

    def test_override_creates_missing_sections(self):
        data = _minimal()
        apply_overrides(data, ["cluster.nodes=75"])
        assert data["cluster"]["nodes"] == 75

    def test_override_indexes_lists(self):
        data = _minimal(pipelines=[
            "in-situ", "post-processing",
            {"kind": "in-transit", "staging_nodes": 15},
        ])
        apply_overrides(data, ["pipelines.2.staging_nodes=30"])
        assert data["pipelines"][2]["staging_nodes"] == 30
        scenario = parse_scenario(data)
        assert scenario.pipelines[2].staging_nodes == 30

    def test_malformed_override_rejected(self):
        with pytest.raises(ScenarioError):
            apply_overrides(_minimal(), ["no-equals-sign"])

    def test_out_of_range_index_rejected(self):
        data = _minimal(pipelines=["in-situ", "post-processing"])
        with pytest.raises(ScenarioError):
            apply_overrides(data, ["pipelines.7.kind=in-transit"])


class TestBuilders:
    def test_default_scenario_builds_all_none(self):
        s = parse_scenario(_minimal(name="default"))
        assert build_spec(s) is None
        assert build_pipelines(s) is None
        assert build_platform_factory(s) is None
        assert build_engine(s) is None

    def test_faults_scenario_spec_matches_legacy_construction(self):
        from repro.ocean.driver import MPASOceanConfig
        from repro.pipelines.base import PipelineSpec
        from repro.pipelines.sampling import SamplingPolicy
        from repro.units import MONTH

        s = parse_scenario(_minimal(
            experiment={"kind": "faults"},
            sampling={"intervals_hours": [24]},
            ocean={"duration": "6 months"},
        ))
        legacy = PipelineSpec(
            ocean=MPASOceanConfig(duration_seconds=6 * MONTH),
            sampling=SamplingPolicy(24.0),
        )
        assert build_spec(s) == legacy

    def test_custom_topology_builds_platform_factory(self):
        s = parse_scenario(_minimal(
            cluster={"nodes": 12, "nodes_per_cage": 4},
            storage={"ost": 16},
        ))
        factory = build_platform_factory(s)
        platform = factory()
        assert platform.cluster.n_nodes == 12
        assert len(platform.cluster.cages) == 3
        assert len(platform.storage.fs.osts) == 16

    def test_pipelines_built_in_declared_order(self):
        s = parse_scenario(_minimal(pipelines=[
            "post-processing", "in-situ",
            {"kind": "in-transit", "staging_nodes": 30},
        ]))
        built = build_pipelines(s)
        assert [p.name for p in built] == [
            "post-processing", "in-situ", "in-transit"
        ]
        assert built[2].n_staging_nodes == 30

    def test_engine_cache_namespaced_by_digest(self, tmp_path):
        s = parse_scenario(_minimal(
            name="cached", execution={"cache": str(tmp_path / "c")}
        ))
        engine = build_engine(s)
        stamp = f"scenario-{s.content_digest()[:12]}"
        assert engine.cache.code_version.endswith(f"+{stamp}")

    def test_supervised_engine_journal_label(self, tmp_path):
        s = parse_scenario(_minimal(
            name="sup",
            execution={"journal": str(tmp_path / "j.jsonl"), "task_retries": 2},
        ))
        engine = build_engine(s)
        assert engine.journal.label == f"scenario-{s.content_digest()[:12]}"
        assert engine.policy.retry.max_attempts == 2

    def test_scenario_from_args_matches_file_digest(self):
        import argparse

        args = argparse.Namespace(
            intervals=[72.0], json=False, telemetry=None,
            timeline_interval=None, no_timeline=False, power_cap=None,
            workers=None, cache=None, supervise=False, deadline=None,
            task_retries=None, max_worker_crashes=None, fail_policy=None,
            journal=None, resume=False, emit_scenario=None,
        )
        from_flags = scenario_from_args("characterize", args)
        from_file = load_scenario(str(GALLERY_DIR / "ci-small.yaml"))
        assert from_flags.content_digest() == from_file.content_digest()


class TestJournalLabel:
    def test_journal_records_custom_label(self, tmp_path):
        from repro.exec.supervise import SweepJournal

        path = tmp_path / "j.jsonl"
        journal = SweepJournal(str(path), label="scenario-abc123")
        assert journal.label == "scenario-abc123"
        journal.begin(3, "code", label=journal.label)
        header = json.loads(path.read_text().splitlines()[0])
        assert header["label"] == "scenario-abc123"

    def test_default_label_is_sweep(self, tmp_path):
        from repro.exec.supervise import SweepJournal

        journal = SweepJournal(str(tmp_path / "j.jsonl"))
        assert journal.label == "sweep"


class TestSessionStamp:
    def test_run_scenario_stamps_active_session(self, tmp_path):
        from repro import obs
        from repro.scenario.run import _stamp_session

        s = parse_scenario(_minimal(name="stamped"))
        with obs.session(str(tmp_path / "run"), label="characterize"):
            _stamp_session(s)
            active = obs.active()
            assert active.config["scenario"]["name"] == "stamped"
            assert active.config["scenario"]["digest"] == s.content_digest()
        manifest = json.loads((tmp_path / "run" / "manifest.json").read_text())
        assert manifest["config"]["scenario"]["digest"] == s.content_digest()


class TestGallery:
    def test_committed_gallery_is_healthy(self):
        from repro.scenario.gallery import check_gallery

        problems = check_gallery(
            str(GALLERY_DIR), str(GALLERY_DIR / "TEMPLATES.json")
        )
        assert problems == []

    def test_gallery_has_expected_templates(self):
        from repro.scenario.gallery import gallery_paths

        names = [Path(p).name for p in gallery_paths(str(GALLERY_DIR))]
        assert names == sorted(names)
        assert {"paper-caddy-150.yaml", "ci-small.yaml",
                "intransit-staging.yaml", "mtbf-campaign.yaml",
                "powercap-stress.yaml"} <= set(names)

    def test_paper_template_is_the_default_characterization(self):
        """The paper template must reproduce the Section V grid exactly."""
        paper = load_scenario(str(GALLERY_DIR / "paper-caddy-150.yaml"))
        default = Scenario(name="characterize")
        assert paper.content_digest() == default.content_digest()
        assert not paper.needs_custom_platform
        assert paper.sampling == SamplingConfig()

    def test_digest_drift_detected(self, tmp_path):
        from repro.scenario.gallery import check_gallery, write_manifest

        gallery = tmp_path / "scenarios"
        gallery.mkdir()
        template = gallery / "t.yaml"
        template.write_text("schema_version: 1\nname: t\n")
        manifest = gallery / "TEMPLATES.json"
        write_manifest(str(gallery), str(manifest))
        assert check_gallery(str(gallery), str(manifest)) == []
        template.write_text(
            "schema_version: 1\nname: t\nsampling:\n  intervals_hours: [8]\n"
        )
        problems = check_gallery(str(gallery), str(manifest))
        assert len(problems) == 1 and "drifted" in problems[0]

    def test_unrecorded_template_detected(self, tmp_path):
        from repro.scenario.gallery import check_gallery, write_manifest

        gallery = tmp_path / "scenarios"
        gallery.mkdir()
        (gallery / "a.yaml").write_text("schema_version: 1\nname: a\n")
        manifest = gallery / "TEMPLATES.json"
        write_manifest(str(gallery), str(manifest))
        (gallery / "b.yaml").write_text("schema_version: 1\nname: b\n")
        problems = check_gallery(str(gallery), str(manifest))
        assert len(problems) == 1 and "b.yaml" in problems[0]


class TestCliScenarioCommands:
    def test_scenario_validate_and_hash(self, capsys):
        from repro.cli import main

        path = str(GALLERY_DIR / "ci-small.yaml")
        assert main(["scenario", "validate", path]) == 0
        out = capsys.readouterr().out
        assert "ok" in out and "ci-small" in out
        assert main(["scenario", "hash", path]) == 0
        digest = capsys.readouterr().out.split()[0]
        assert digest == load_scenario(path).content_digest()

    def test_scenario_validate_without_files_errors(self, capsys):
        from repro.cli import main

        assert main(["scenario", "validate"]) == 2

    def test_scenario_gallery_checks_committed_manifest(self, capsys):
        from repro.cli import main

        assert main(["scenario", "gallery"]) == 0
        assert "gallery ok" in capsys.readouterr().out

    def test_run_rejects_bad_scenario_with_exit_2(self, tmp_path, capsys):
        from repro.cli import main

        bad = tmp_path / "bad.yaml"
        bad.write_text("schema_version: 1\nsampling:\n  intervals_hors: [8]\n")
        assert main(["run", str(bad)]) == 2
        err = capsys.readouterr().err
        assert "sampling.intervals_hors" in err
        assert "intervals_hours" in err  # the close-match hint

    def test_run_missing_file_exit_2(self, capsys):
        from repro.cli import main

        assert main(["run", "/nonexistent/scenario.yaml"]) == 2


class TestByteIdentity:
    """`repro run scenario.yaml` == the equivalent legacy flags, byte for byte."""

    def test_characterize_flags_vs_scenario_file(self, tmp_path, capsys):
        from repro.cli import main

        leg_dir = tmp_path / "legacy"
        scn_dir = tmp_path / "scenario"
        assert main([
            "characterize", "--intervals", "72", "--json",
            "--telemetry", str(leg_dir),
        ]) == 0
        legacy_out = capsys.readouterr().out
        assert main([
            "run", str(GALLERY_DIR / "ci-small.yaml"), "--json",
            "--telemetry", str(scn_dir),
        ]) == 0
        scenario_out = capsys.readouterr().out
        assert scenario_out == legacy_out
        assert (scn_dir / "events.jsonl").read_bytes() == (
            leg_dir / "events.jsonl"
        ).read_bytes()
        assert (scn_dir / "timeline.jsonl").read_bytes() == (
            leg_dir / "timeline.jsonl"
        ).read_bytes()
        for directory in (leg_dir, scn_dir):
            manifest = json.loads((directory / "manifest.json").read_text())
            assert manifest["label"] == "characterize"
            assert manifest["config"]["scenario"]["digest"] == load_scenario(
                str(GALLERY_DIR / "ci-small.yaml")
            ).content_digest()

    def test_emit_scenario_round_trips_faults_invocation(self, tmp_path, capsys):
        from repro.cli import main

        emitted = tmp_path / "faults.yaml"
        argv = [
            "faults", "--months", "0.3", "--interval", "24",
            "--mtbf-hours", "0.05", "--checkpoint-every", "2", "--seed", "3",
        ]
        assert main(argv + ["--emit-scenario", str(emitted)]) == 0
        assert f"wrote {emitted}" in capsys.readouterr().out
        assert main(argv + ["--json"]) == 0
        legacy = capsys.readouterr().out
        assert main(["run", str(emitted), "--json"]) == 0
        assert capsys.readouterr().out == legacy


class TestKeywordOnlyBuilders:
    def setup_method(self):
        from repro.exec.api import reset_legacy_warnings

        reset_legacy_warnings()

    def test_positional_compute_cluster_warns_once(self):
        from repro.cluster.machine import ComputeCluster
        from repro.events.engine import Simulator

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            # repro-lint: disable=api-deprecated
            cluster = ComputeCluster(Simulator(), 20)
            ComputeCluster(Simulator(), 30)  # repro-lint: disable=api-deprecated
        assert cluster.n_nodes == 20
        deprecations = [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        assert len(deprecations) == 1
        assert "ComputeCluster" in str(deprecations[0].message)

    def test_positional_intransit_warns(self):
        from repro.pipelines.intransit import InTransitPipeline

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            pipe = InTransitPipeline(7)  # repro-lint: disable=api-deprecated
        assert pipe.n_staging_nodes == 7
        assert any(
            issubclass(w.category, DeprecationWarning) for w in caught
        )

    def test_double_assignment_is_type_error(self):
        from repro.cluster.machine import ComputeCluster
        from repro.events.engine import Simulator

        with pytest.raises(TypeError, match="multiple values"):
            # repro-lint: disable=api-deprecated
            ComputeCluster(Simulator(), 20, n_nodes=30)

    def test_too_many_positionals_is_type_error(self):
        from repro.pipelines.intransit import InTransitPipeline

        with pytest.raises(TypeError, match="at most"):
            InTransitPipeline(1, 2)  # repro-lint: disable=api-deprecated

    def test_builders_accept_scenario_sub_configs(self):
        from repro.cluster.machine import ComputeCluster
        from repro.events.engine import Simulator
        from repro.pipelines.intransit import InTransitPipeline
        from repro.storage.lustre import StorageCluster

        sim = Simulator()
        cluster = ComputeCluster(
            sim, config=ClusterConfig(nodes=12, nodes_per_cage=4)
        )
        assert cluster.n_nodes == 12 and cluster.name == "caddy"
        storage = StorageCluster(sim, config=StorageConfig(ost=16, mds=3))
        assert len(storage.fs.osts) == 16
        assert storage.fs.mds.capacity == 3
        pipe = InTransitPipeline(
            config=PipelineConfig(kind="in-transit", staging_nodes=25)
        )
        assert pipe.n_staging_nodes == 25

    def test_explicit_keywords_override_config(self):
        from repro.cluster.machine import ComputeCluster
        from repro.events.engine import Simulator

        cluster = ComputeCluster(
            Simulator(), config=ClusterConfig(nodes=12), n_nodes=9
        )
        assert cluster.n_nodes == 9


class TestLintRule:
    def _run(self, tmp_path, source):
        from repro.lint.engine import LintRunner

        target = tmp_path / "sample.py"
        target.write_text(source)
        return LintRunner(select=["api-deprecated"]).run([str(target)])

    def test_positional_builder_flagged(self, tmp_path):
        findings = self._run(
            tmp_path,
            "from repro.pipelines.intransit import InTransitPipeline\n"
            "p = InTransitPipeline(20)\n",
        )
        assert any(f.rule == "api-deprecated" for f in findings)

    def test_keyword_builder_clean(self, tmp_path):
        findings = self._run(
            tmp_path,
            "from repro.pipelines.intransit import InTransitPipeline\n"
            "p = InTransitPipeline(n_staging_nodes=20)\n"
            "q = InTransitPipeline(config=cfg)\n",
        )
        assert findings == []

    def test_anchor_positionals_allowed(self, tmp_path):
        findings = self._run(
            tmp_path,
            "from repro.cluster.machine import ComputeCluster\n"
            "c = ComputeCluster(sim, n_nodes=10)\n",
        )
        assert findings == []
