"""Tests for the hypothesis evaluation machinery (Section II-C / V)."""

from __future__ import annotations

import pytest

from repro.core.characterization import run_characterization
from repro.core.hypotheses import evaluate_hypotheses, findings_summary


@pytest.fixture(scope="module")
def study():
    return run_characterization()


class TestHypotheses:
    def test_three_verdicts_in_order(self, study):
        verdicts = evaluate_hypotheses(study)
        assert [v.hypothesis for v in verdicts] == ["H1", "H2", "H3"]

    def test_h1_refuted(self, study):
        """In-situ does NOT reduce storage power (Finding 2)."""
        h1 = evaluate_hypotheses(study)[0]
        assert not h1.supported
        assert abs(h1.effect) < 0.02

    def test_h2_supported(self, study):
        """In-situ DOES reduce overall energy (Finding 4)."""
        h2 = evaluate_hypotheses(study)[1]
        assert h2.supported
        assert 0.25 < h2.effect < 0.60

    def test_h3_refuted(self, study):
        """In-situ does NOT harness trapped capacity (Finding 3)."""
        h3 = evaluate_hypotheses(study)[2]
        assert not h3.supported
        assert abs(h3.effect) < 0.05

    def test_paper_scorecard(self, study):
        """The paper: 'our findings have disproved two of our initial
        hypotheses... The other hypothesis, however, holds true.'"""
        verdicts = evaluate_hypotheses(study)
        assert sum(1 for v in verdicts if not v.supported) == 2
        assert sum(1 for v in verdicts if v.supported) == 1

    def test_verdict_summaries_render(self, study):
        for v in evaluate_hypotheses(study):
            text = v.summary()
            assert v.hypothesis in text
            assert ("SUPPORTED" in text) != ("REFUTED" not in text) or True
            assert "%" in text


class TestFindingsSummary:
    def test_all_five_findings_present(self, study):
        text = findings_summary(study)
        for n in range(1, 6):
            assert f"Finding {n}:" in text

    def test_findings_carry_the_verdicts(self, study):
        text = findings_summary(study)
        assert "H1 refuted" in text
        assert "H2 supported" in text
        assert "H3 refuted" in text

    def test_data_reduction_quoted(self, study):
        assert "data reduction" in findings_summary(study)
