"""Tests for frame annotation (:mod:`repro.viz.annotate`)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.viz.annotate import annotate_frame, draw_text, text_extent
from repro.viz.image import Image


class TestTextExtent:
    def test_empty(self):
        assert text_extent("") == (0, 0)

    def test_single_char(self):
        assert text_extent("A") == (5, 7)

    def test_multiple_chars_include_spacing(self):
        w, h = text_extent("AB")
        assert w == 5 + 1 + 5
        assert h == 7

    def test_scale(self):
        w1, h1 = text_extent("DAY 42")
        w2, h2 = text_extent("DAY 42", scale=3)
        assert (w2, h2) == (3 * w1, 3 * h1)

    def test_invalid_scale(self):
        with pytest.raises(ConfigurationError):
            text_extent("A", scale=0)


class TestDrawText:
    def test_draws_pixels_in_expected_box(self):
        img = Image.blank(40, 20)
        draw_text(img, "OK", 3, 4, color=(255, 0, 0))
        w, h = text_extent("OK")
        box = img.pixels[3 : 3 + h, 4 : 4 + w]
        assert (box[:, :, 0] == 255).any()
        # Nothing outside the text box.
        outside = img.pixels.copy()
        outside[3 : 3 + h, 4 : 4 + w] = 0
        assert (outside == 0).all()

    def test_digits_are_distinct(self):
        rendered = []
        for digit in "0123456789":
            img = Image.blank(8, 8)
            draw_text(img, digit, 0, 0)
            rendered.append(img.pixels.tobytes())
        assert len(set(rendered)) == 10

    def test_lowercase_maps_to_uppercase(self):
        a, b = Image.blank(8, 8), Image.blank(8, 8)
        draw_text(a, "day", 0, 0)
        draw_text(b, "DAY", 0, 0)
        assert a == b

    def test_unknown_char_renders_box_not_crash(self):
        img = Image.blank(10, 10)
        draw_text(img, "@", 0, 0, color=(9, 9, 9))
        assert (img.pixels == 9).any()

    def test_clipping_at_edges(self):
        img = Image.blank(10, 10)
        draw_text(img, "WWWW", -3, -3)  # partially off-screen
        draw_text(img, "WWWW", 8, 8)
        # No exception, and something was drawn in-bounds.
        assert (img.pixels != 0).any()

    def test_scale_multiplies_glyph_size(self):
        img = Image.blank(40, 40)
        draw_text(img, "I", 0, 0, scale=3)
        rows = np.nonzero((img.pixels != 0).any(axis=(1, 2)))[0]
        assert rows.max() - rows.min() + 1 == 21  # 7 * 3

    def test_invalid_scale(self):
        with pytest.raises(ConfigurationError):
            draw_text(Image.blank(8, 8), "A", 0, 0, scale=0)


class TestAnnotateFrame:
    def test_stamps_strip_and_label(self):
        img = Image.blank(120, 40, color=(50, 50, 50))
        annotate_frame(img, "DAY 42", color=(255, 255, 0), background=(0, 0, 0))
        # Background strip present at the corner.
        assert tuple(img.pixels[0, 0]) == (0, 0, 0)
        # Label pixels present.
        yellow = (img.pixels[:, :, 0] == 255) & (img.pixels[:, :, 2] == 0)
        assert yellow.any()
        # Rest of the frame untouched.
        assert tuple(img.pixels[-1, -1]) == (50, 50, 50)

    def test_long_label_clipped_to_frame(self):
        img = Image.blank(20, 10)
        annotate_frame(img, "A VERY LONG LABEL INDEED")
        assert img.width == 20  # unchanged, no error

    def test_returns_same_image(self):
        img = Image.blank(30, 12)
        assert annotate_frame(img, "X") is img
