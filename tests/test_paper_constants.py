"""Internal consistency of the transcribed paper constants (:mod:`repro.paper`)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import paper


class TestEq5Consistency:
    def test_printed_solution_satisfies_printed_system(self):
        """t_sim=603, α=6.3, β=1.2 solves the printed equations to ~1 %."""
        for s_gb, n_viz, total in paper.EQ5_SYSTEM:
            lhs = (
                paper.EQ5_T_SIM
                + paper.EQ5_ALPHA_S_PER_GB * s_gb
                + paper.EQ5_BETA_S_PER_IMAGE * n_viz
            )
            assert lhs == pytest.approx(total, rel=0.01)

    def test_swapped_assignment_does_not_solve_the_system(self):
        """The paper's printed 'α=1.2, β=6.3' is inconsistent with Eq. 5."""
        worst = 0.0
        for s_gb, n_viz, total in paper.EQ5_SYSTEM:
            lhs = paper.EQ5_T_SIM + 1.2 * s_gb + 6.3 * n_viz
            worst = max(worst, abs(lhs / total - 1.0))
        assert worst > 0.10  # off by far more than measurement noise

    def test_exact_solve_matches_quoted_solution(self):
        a = np.array([[1.0, s, n] for s, n, _ in paper.EQ5_SYSTEM])
        b = np.array([t for _, _, t in paper.EQ5_SYSTEM])
        t_sim, alpha, beta = np.linalg.solve(a, b)
        assert t_sim == pytest.approx(paper.EQ5_T_SIM, abs=7.0)
        assert alpha == pytest.approx(paper.EQ5_ALPHA_S_PER_GB, abs=0.25)
        assert beta == pytest.approx(paper.EQ5_BETA_S_PER_IMAGE, abs=0.05)


class TestCrossReferences:
    def test_output_counts_match_campaign_and_cadence(self):
        """540/180/60 outputs = 8640 half-hour steps / cadence."""
        for hours, n in paper.N_OUTPUTS.items():
            steps_per_output = hours * 3_600 / paper.TIMESTEP_SECONDS
            assert paper.CAMPAIGN_TIMESTEPS / steps_per_output == n

    def test_eq5_image_counts_are_the_output_counts(self):
        n_viz_values = sorted(n for _, n, _ in paper.EQ5_SYSTEM)
        assert n_viz_values == [60, 180, 540]

    def test_storage_proportionality_from_endpoints(self):
        assert paper.STORAGE_FULL_W / paper.STORAGE_IDLE_W - 1 == pytest.approx(
            paper.STORAGE_PROPORTIONALITY, abs=0.001
        )

    def test_compute_dynamic_range_from_endpoints(self):
        assert paper.COMPUTE_LOADED_W / paper.COMPUTE_IDLE_W - 1 == pytest.approx(
            paper.COMPUTE_DYNAMIC_RANGE, abs=0.01
        )

    def test_energy_savings_track_time_savings(self):
        """Fig. 6 ≈ Fig. 3, because power is flat (Fig. 5)."""
        for hours in paper.SAMPLING_INTERVALS_HOURS:
            assert paper.ENERGY_SAVINGS[hours] == pytest.approx(
                paper.TIME_SAVINGS[hours], abs=0.02
            )

    def test_insitu_storage_consistent_with_reduction_claim(self):
        """<1 GB of images against >=99.5 % reduction at every cadence."""
        for hours, post_gb in paper.POST_STORAGE_GB.items():
            implied_max = post_gb * (1 - paper.STORAGE_REDUCTION_MIN)
            assert implied_max <= paper.INSITU_STORAGE_GB_MAX + 0.2

    def test_cluster_shape(self):
        assert paper.CADDY_NODES * 16 == paper.CADDY_CORES
        assert paper.CADDY_NODES / 10 == paper.CADDY_CAGES

    def test_whatif_callouts_monotone(self):
        rates = sorted(paper.WHATIF_ENERGY_SAVINGS)
        savings = [paper.WHATIF_ENERGY_SAVINGS[r] for r in rates]
        assert savings == sorted(savings, reverse=True)
