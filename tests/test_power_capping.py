"""Tests for power capping (:mod:`repro.power.capping`)."""

from __future__ import annotations

import pytest

from repro import paper
from repro.cluster.power import e5_2670_node
from repro.core.metrics import IN_SITU, POST_PROCESSING
from repro.core.model import DataModel, PerformanceModel, PipelinePredictor
from repro.errors import ConfigurationError, ModelError
from repro.power.capping import PowerCapEnforcer


@pytest.fixture
def enforcer() -> PowerCapEnforcer:
    return PowerCapEnforcer(e5_2670_node(), n_nodes=150)


@pytest.fixture
def insitu_predictor() -> PipelinePredictor:
    model = PerformanceModel(
        t_sim_ref=paper.EQ5_T_SIM,
        iter_ref=paper.CAMPAIGN_TIMESTEPS,
        alpha=paper.EQ5_ALPHA_S_PER_GB,
        beta=paper.EQ5_BETA_S_PER_IMAGE,
        power_watts=46_300.0,
    )
    return PipelinePredictor(
        IN_SITU, model, DataModel(24.0, 0.2, 180.0, paper.CAMPAIGN_TIMESTEPS)
    )


@pytest.fixture
def post_predictor(insitu_predictor) -> PipelinePredictor:
    return PipelinePredictor(
        POST_PROCESSING,
        insitu_predictor.model,
        DataModel(24.0, 80.0, 180.0, paper.CAMPAIGN_TIMESTEPS),
    )


class TestFrequencyForCap:
    def test_no_cap_needed_above_uncapped(self, enforcer):
        assert enforcer.frequency_for_cap(1e9) == 1.0
        assert enforcer.frequency_for_cap(enforcer.uncapped_watts()) == 1.0

    def test_uncapped_watts_matches_measured_machine(self, enforcer):
        # 150 nodes at 0.95 utilization + the storage rack.
        expected = 150 * e5_2670_node().power(0.95) + 2_273.0
        assert enforcer.uncapped_watts() == pytest.approx(expected)

    def test_tighter_cap_means_lower_frequency(self, enforcer):
        top = enforcer.uncapped_watts()
        caps = [0.95 * top, 0.9 * top, 0.85 * top]
        freqs = [enforcer.frequency_for_cap(c) for c in caps]
        assert freqs == sorted(freqs, reverse=True)
        assert all(0 < f < 1 for f in freqs)

    def test_cap_is_respected(self, enforcer):
        cap = 0.9 * enforcer.uncapped_watts()
        f = enforcer.frequency_for_cap(cap)
        node = e5_2670_node()
        achieved = 150 * node.power(0.95, f * 2.6) + 2_273.0
        assert achieved <= cap * (1 + 1e-9)
        # And it is the *highest* such frequency (binding constraint).
        assert achieved == pytest.approx(cap, rel=1e-6)

    def test_infeasible_cap_rejected(self, enforcer):
        with pytest.raises(ModelError):
            enforcer.frequency_for_cap(0.5 * enforcer.floor_watts())

    def test_nonpositive_cap_rejected(self, enforcer):
        with pytest.raises(ModelError):
            enforcer.frequency_for_cap(0.0)

    def test_floor_below_uncapped(self, enforcer):
        assert enforcer.floor_watts() < enforcer.uncapped_watts()

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PowerCapEnforcer(e5_2670_node(), n_nodes=0)
        with pytest.raises(ConfigurationError):
            PowerCapEnforcer(e5_2670_node(), n_nodes=1, compute_utilization=0.0)
        with pytest.raises(ConfigurationError):
            PowerCapEnforcer(e5_2670_node(), n_nodes=1, overhead_watts=-1.0)


class TestApply:
    def test_uncapped_prediction_unchanged(self, enforcer, insitu_predictor):
        capped = enforcer.apply(insitu_predictor, 24.0, cap_watts=1e9)
        assert capped.frequency_ratio == 1.0
        assert capped.execution_time == pytest.approx(
            capped.base.execution_time, rel=1e-9
        )
        assert capped.slowdown == pytest.approx(1.0)

    def test_cap_slows_compute_not_io(self, enforcer, post_predictor):
        cap = 0.85 * enforcer.uncapped_watts()
        capped = enforcer.apply(post_predictor, 24.0, cap)
        f = capped.frequency_ratio
        model = post_predictor.model
        base = capped.base
        expected = (
            model.simulation_time(base.iterations) + model.beta * base.n_viz
        ) / f + model.alpha * base.s_io_gb
        assert capped.execution_time == pytest.approx(expected, rel=1e-9)
        assert capped.slowdown > 1.0

    def test_insitu_hurt_more_in_relative_time(
        self, enforcer, insitu_predictor, post_predictor
    ):
        """In-situ is more compute-bound, so a cap stretches it more."""
        cap = 0.85 * enforcer.uncapped_watts()
        insitu = enforcer.apply(insitu_predictor, 24.0, cap)
        post = enforcer.apply(post_predictor, 24.0, cap)
        assert insitu.slowdown > post.slowdown

    def test_insitu_still_wins_absolutely(self, enforcer, insitu_predictor, post_predictor):
        cap = 0.85 * enforcer.uncapped_watts()
        insitu = enforcer.apply(insitu_predictor, 24.0, cap)
        post = enforcer.apply(post_predictor, 24.0, cap)
        assert insitu.execution_time < post.execution_time
        assert insitu.energy < post.energy

    def test_capped_energy_reasonable(self, enforcer, insitu_predictor):
        """DVFS trades power for time; energy moves far less than power."""
        cap = 0.85 * enforcer.uncapped_watts()
        capped = enforcer.apply(insitu_predictor, 24.0, cap)
        assert capped.energy == pytest.approx(capped.base.energy, rel=0.20)
