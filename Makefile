PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: lint test check

lint:
	$(PYTHON) -m repro.lint src/ tests/ benchmarks/

test:
	$(PYTHON) -m pytest -x -q

check: lint test
