PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: lint lint-flow lint-sarif baseline test check bench-history scenarios obs-store

lint:
	$(PYTHON) -m repro.lint src/ tests/ benchmarks/ examples/

# Flow-sensitive dimensional + determinism rules only (fast feedback).
lint-flow:
	$(PYTHON) -m repro.lint --select dim-mix,dim-arg,dim-return,det-seed,det-clock,det-iter,det-env \
		src/ tests/ benchmarks/ examples/

lint-sarif:
	$(PYTHON) -m repro.lint --format sarif src/ tests/ benchmarks/ examples/ > repro-lint.sarif || true

baseline:
	$(PYTHON) -m repro.lint --baseline write src/ tests/ benchmarks/ examples/

test:
	$(PYTHON) -m pytest -x -q

# Quick bench: gate against the trajectory ledger, then append the new row.
bench-history:
	$(PYTHON) -m repro bench history --quick --check --append

# Validate the scenario template gallery against its pinned digests.
scenarios:
	$(PYTHON) -m repro scenario gallery

# Run registry demo: three instrumented runs ingested into .repro/store,
# then cross-run query + trend gate + HTML dashboard over them.
STORE ?= .repro/store
obs-store:
	$(PYTHON) -m repro characterize --intervals 8 --telemetry .repro/runs/char-8h --store $(STORE) >/dev/null
	$(PYTHON) -m repro characterize --intervals 24 --telemetry .repro/runs/char-24h --store $(STORE) >/dev/null
	$(PYTHON) -m repro characterize --intervals 72 --telemetry .repro/runs/char-72h --store $(STORE) >/dev/null
	$(PYTHON) -m repro obs query --store $(STORE) --runs
	$(PYTHON) -m repro obs trend --store $(STORE) --check repro_pipeline_phase_seconds
	$(PYTHON) -m repro obs report --store $(STORE)

check: lint test scenarios
