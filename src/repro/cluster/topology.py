"""Cluster topology: cages of nodes and the InfiniBand interconnect.

*Cages* follow the paper's Appro GreenBlade layout — ten nodes per cage, one
power monitor per cage, fifteen cages covering all 150 nodes.

The :class:`Interconnect` is an analytical QLogic QDR InfiniBand model used
for collective-cost estimates (image compositing in the renderer, aggregation
in the parallel I/O layer).  It uses the standard latency/bandwidth (Hockney)
model with log-rounds collectives.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.cluster.node import Node
from repro.errors import ConfigurationError
from repro.power.meter import CageMonitor

__all__ = ["Cage", "Interconnect"]


class Cage:
    """A group of (up to) ten nodes behind one cage-level power monitor."""

    def __init__(self, index: int, nodes: Sequence[Node]) -> None:
        if not nodes:
            raise ConfigurationError("a cage needs at least one node")
        if len(nodes) > CageMonitor.NODES_PER_CAGE:
            raise ConfigurationError(
                f"cage holds at most {CageMonitor.NODES_PER_CAGE} nodes, got {len(nodes)}"
            )
        self.index = index
        self.nodes = list(nodes)
        self.monitor = CageMonitor(index)
        self.monitor.attach_all(n.power_signal for n in self.nodes)

    def __len__(self) -> int:
        return len(self.nodes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Cage {self.index}: {len(self.nodes)} nodes>"


@dataclass(frozen=True)
class Interconnect:
    """Hockney-model InfiniBand fabric.

    Defaults approximate QLogic QDR (4 × 10 Gb/s signalling, ~3.2 GB/s
    effective per link after 8b/10b encoding and protocol overhead, ~1.3 µs
    MPI latency).
    """

    latency_s: float = 1.3e-6
    bandwidth_bytes_per_s: float = 3.2e9

    def __post_init__(self) -> None:
        if self.latency_s < 0:
            raise ConfigurationError(f"negative latency: {self.latency_s}")
        if self.bandwidth_bytes_per_s <= 0:
            raise ConfigurationError(f"non-positive bandwidth: {self.bandwidth_bytes_per_s}")

    def point_to_point_time(self, nbytes: float) -> float:
        """Time to move ``nbytes`` between two nodes."""
        if nbytes < 0:
            raise ConfigurationError(f"negative message size: {nbytes}")
        return self.latency_s + nbytes / self.bandwidth_bytes_per_s

    def _rounds(self, n_ranks: int) -> int:
        if n_ranks < 1:
            raise ConfigurationError(f"need >= 1 rank, got {n_ranks}")
        return max(1, math.ceil(math.log2(n_ranks))) if n_ranks > 1 else 0

    def allreduce_time(self, nbytes: float, n_ranks: int) -> float:
        """Recursive-doubling allreduce of an ``nbytes`` buffer."""
        r = self._rounds(n_ranks)
        return r * self.point_to_point_time(nbytes) if r else 0.0

    def gather_time(self, nbytes_per_rank: float, n_ranks: int) -> float:
        """Binomial-tree gather; the root ends up receiving everything."""
        if n_ranks <= 1:
            return 0.0
        r = self._rounds(n_ranks)
        # Data volume at the root doubles each round; total receive time is
        # dominated by the final rounds.
        total = 0.0
        for k in range(r):
            total += self.point_to_point_time(nbytes_per_rank * 2**k)
        return total

    def binary_swap_composite_time(self, image_bytes: float, n_ranks: int) -> float:
        """Binary-swap image compositing (the sort-last render pattern).

        Each of ``log2 p`` rounds exchanges half of the remaining image, so
        the per-rank traffic is bounded by the full image size; a final
        gather reassembles the image at the root.
        """
        if n_ranks <= 1:
            return 0.0
        r = self._rounds(n_ranks)
        time = 0.0
        remaining = image_bytes / 2.0
        for _ in range(r):
            time += self.point_to_point_time(remaining)
            remaining /= 2.0
        # Final gather of the fully composited tiles to rank 0.
        time += self.gather_time(image_bytes / n_ranks, n_ranks)
        return time
