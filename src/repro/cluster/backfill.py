"""Backfill co-scheduling: using I/O waits to run other work.

The last proposal of the paper's Section VIII: "Alternatively, techniques
that utilize the idle periods by running a different job may be embraced.
Research solutions for effectively utilizing idle periods already exist (in,
for example, Legion)."

:class:`BackfillScheduler` takes a measured run's wait intervals and a
secondary-job profile and computes what a Legion-style tasking layer could
harvest: node-hours of useful secondary work, the throughput it represents,
and the energy attribution (the watts were being burned on busy-polling
anyway — backfill converts them into work instead of eliminating them, the
complementary strategy to :mod:`repro.power.states`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.cluster.power import NodePowerModel
from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.metrics import PhaseTimeline

__all__ = ["SecondaryJobProfile", "HarvestReport", "BackfillScheduler"]

#: Phases whose intervals can host backfilled work.
WAIT_PHASES = ("io", "stall", "drain")


@dataclass(frozen=True)
class SecondaryJobProfile:
    """What the backfilled job looks like."""

    name: str = "analysis-tasks"
    #: Cost of switching the nodes to/from the secondary job (s per slice).
    switch_seconds: float = 0.05
    #: Smallest wait interval worth backfilling.
    min_slice_seconds: float = 0.5
    #: CPU utilization the secondary job sustains while resident.
    utilization: float = 0.95

    def __post_init__(self) -> None:
        if self.switch_seconds < 0:
            raise ConfigurationError(f"negative switch cost: {self.switch_seconds}")
        if self.min_slice_seconds <= 0:
            raise ConfigurationError(
                f"min slice must be positive: {self.min_slice_seconds}"
            )
        if not 0.0 < self.utilization <= 1.0:
            raise ConfigurationError(f"utilization outside (0, 1]: {self.utilization}")

    def usable(self, interval_seconds: float) -> bool:
        """Is an interval long enough to host a slice?"""
        return interval_seconds >= max(
            self.min_slice_seconds, 2.0 * self.switch_seconds
        )


@dataclass(frozen=True)
class HarvestReport:
    """What backfilling one run's waits yields."""

    job: SecondaryJobProfile
    n_intervals: int
    n_backfilled: int
    wait_seconds: float
    harvested_node_seconds: float
    #: Extra energy drawn versus busy-polling baseline (can be negative if
    #: the secondary job is lighter than the polling it replaces).
    extra_energy_joules: float

    @property
    def harvested_node_hours(self) -> float:
        """Node-hours of secondary work recovered from the waits."""
        return self.harvested_node_seconds / 3_600.0

    @property
    def utilization_of_waits(self) -> float:
        """Fraction of total wait node-time converted into work."""
        if self.wait_seconds == 0:
            return 0.0
        return self.harvested_node_seconds / (
            self.wait_seconds * self._n_nodes_hint
        ) if self._n_nodes_hint else 0.0

    # populated by the scheduler; kept private-ish to keep the dataclass frozen
    _n_nodes_hint: int = 0


class BackfillScheduler:
    """Evaluates backfill harvesting over a measured run."""

    def __init__(self, node_model: NodePowerModel, n_nodes: int,
                 wait_utilization: float = 0.85) -> None:
        if n_nodes < 1:
            raise ConfigurationError(f"need >= 1 node, got {n_nodes}")
        if not 0.0 <= wait_utilization <= 1.0:
            raise ConfigurationError(
                f"wait utilization outside [0, 1]: {wait_utilization}"
            )
        self.node_model = node_model
        self.n_nodes = n_nodes
        self.wait_utilization = wait_utilization

    def wait_intervals(self, timeline: "PhaseTimeline") -> list[float]:
        """Durations of the backfillable intervals of a run."""
        return [
            t1 - t0
            for phase, t0, t1 in timeline.records
            if phase in WAIT_PHASES and t1 > t0
        ]

    def harvest(
        self, timeline: "PhaseTimeline", job: SecondaryJobProfile | None = None
    ) -> HarvestReport:
        """Backfill the run's waits with ``job``; returns the harvest."""
        profile = job if job is not None else SecondaryJobProfile()
        intervals = self.wait_intervals(timeline)
        poll_watts = self.n_nodes * self.node_model.power(self.wait_utilization)
        busy_watts = self.n_nodes * self.node_model.power(profile.utilization)
        idle_watts = self.n_nodes * self.node_model.idle_watts
        harvested = 0.0
        extra_energy = 0.0
        n_backfilled = 0
        for length in intervals:
            if not profile.usable(length):
                continue
            resident = length - 2.0 * profile.switch_seconds
            harvested += resident * self.n_nodes
            # Energy: resident at the job's utilization + switches at idle,
            # versus the whole interval spent busy-polling.
            with_backfill = (
                busy_watts * resident + idle_watts * 2.0 * profile.switch_seconds
            )
            extra_energy += with_backfill - poll_watts * length
            n_backfilled += 1
        return HarvestReport(
            job=profile,
            n_intervals=len(intervals),
            n_backfilled=n_backfilled,
            wait_seconds=sum(intervals),
            harvested_node_seconds=harvested,
            extra_energy_joules=extra_energy,
            _n_nodes_hint=self.n_nodes,
        )

    def equivalent_campaign_fraction(
        self, timeline: "PhaseTimeline", campaign_node_seconds: float,
        job: SecondaryJobProfile | None = None,
    ) -> float:
        """Harvested work as a fraction of a full campaign's node-time.

        "How much of a second science campaign rides along for free?"
        """
        if campaign_node_seconds <= 0:
            raise ConfigurationError(
                f"campaign node-seconds must be positive: {campaign_node_seconds}"
            )
        return self.harvest(timeline, job).harvested_node_seconds / campaign_node_seconds
