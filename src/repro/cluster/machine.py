"""The :class:`ComputeCluster` facade and the *Caddy* factory.

Workflows drive the cluster through *phases*: a phase sets every allocated
node to a utilization level for its duration (e.g. simulation at 0.95,
rendering at 0.92, I/O wait at 0.85 — MPI implementations busy-poll while
waiting on collective I/O, which is why I/O phases are *not* near idle and
why the paper measured essentially flat power across pipelines).

Phase utilization defaults live in :class:`PhaseProfile` so studies can
ablate them (e.g. "what if MPI blocked instead of polling?").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Iterable, Optional

from repro.cluster.node import Node
from repro.cluster.power import NodePowerModel, e5_2670_node
from repro.cluster.topology import Cage, Interconnect
from repro.errors import ConfigurationError
from repro.events.engine import Simulator
from repro.legacy import UNSET as _UNSET
from repro.legacy import merge_legacy_positionals as _merge_legacy_positionals
from repro.power.meter import CageMonitor
from repro.power.signal import PowerSignal
from repro.power.trace import PowerTrace

__all__ = ["PhaseProfile", "ComputeCluster", "caddy"]


@dataclass(frozen=True)
class PhaseProfile:
    """Utilization levels for the workflow phases.

    ``io_wait`` defaults to 0.85: parallel-netCDF collectives keep ranks
    spin-polling during writes, so CPUs stay hot.  Set it near 0.05 to model
    a blocking MPI and watch Hypothesis 3 (in-situ harnesses trapped
    capacity) come *true* — one of the ablations in DESIGN.md.
    """

    simulation: float = 0.95
    render: float = 0.92
    io_wait: float = 0.85
    idle: float = 0.0

    def __post_init__(self) -> None:
        for name in ("simulation", "render", "io_wait", "idle"):
            v = getattr(self, name)
            if not 0.0 <= v <= 1.0:
                raise ConfigurationError(f"phase utilization {name}={v} outside [0, 1]")


class ComputeCluster:
    """A simulated compute cluster: nodes in cages plus an interconnect."""

    def __init__(
        self,
        sim: Simulator,
        *legacy,
        config=None,
        n_nodes=_UNSET,
        node_model=_UNSET,
        cores_per_socket=_UNSET,
        nodes_per_cage=_UNSET,
        interconnect=_UNSET,
        phase_profile=_UNSET,
        name=_UNSET,
    ) -> None:
        """Build a cluster from keywords and/or a frozen scenario sub-config.

        ``config`` is a duck-typed
        :class:`repro.scenario.schema.ClusterConfig` (attributes ``nodes``,
        ``cores_per_socket``, ``nodes_per_cage``, ``name``); explicit
        keywords override it.  Positional arguments after ``sim`` are
        deprecated (warn-once) — see ``docs/MIGRATION.md``.
        """
        values = {
            "n_nodes": n_nodes,
            "node_model": node_model,
            "cores_per_socket": cores_per_socket,
            "nodes_per_cage": nodes_per_cage,
            "interconnect": interconnect,
            "phase_profile": phase_profile,
            "name": name,
        }
        if legacy:
            _merge_legacy_positionals(
                "ComputeCluster(sim, ...)",
                values,
                legacy,
                "keyword arguments or config=ClusterConfig(...)",
            )
        if config is not None:
            for key, attr in (
                ("n_nodes", "nodes"),
                ("cores_per_socket", "cores_per_socket"),
                ("nodes_per_cage", "nodes_per_cage"),
                ("name", "name"),
            ):
                if values[key] is _UNSET:
                    values[key] = getattr(config, attr)
        if values["n_nodes"] is _UNSET:
            raise ConfigurationError(
                "ComputeCluster needs n_nodes= (or config=ClusterConfig(...))"
            )
        n_nodes = values["n_nodes"]
        node_model = None if values["node_model"] is _UNSET else values["node_model"]
        cores_per_socket = (
            8 if values["cores_per_socket"] is _UNSET else values["cores_per_socket"]
        )
        nodes_per_cage = (
            CageMonitor.NODES_PER_CAGE
            if values["nodes_per_cage"] is _UNSET
            else values["nodes_per_cage"]
        )
        interconnect = (
            None if values["interconnect"] is _UNSET else values["interconnect"]
        )
        phase_profile = (
            None if values["phase_profile"] is _UNSET else values["phase_profile"]
        )
        name = "cluster" if values["name"] is _UNSET else values["name"]
        if n_nodes < 1:
            raise ConfigurationError(f"cluster needs >= 1 node, got {n_nodes}")
        if nodes_per_cage < 1:
            raise ConfigurationError(f"nodes_per_cage must be >= 1, got {nodes_per_cage}")
        self.sim = sim
        self.name = name
        model = node_model if node_model is not None else e5_2670_node()
        self.node_model = model
        self.nodes = [
            Node(sim, i, model, cores_per_socket=cores_per_socket) for i in range(n_nodes)
        ]
        self.cages = [
            Cage(c, self.nodes[c * nodes_per_cage : (c + 1) * nodes_per_cage])
            for c in range((n_nodes + nodes_per_cage - 1) // nodes_per_cage)
        ]
        self.interconnect = interconnect if interconnect is not None else Interconnect()
        self.phases = phase_profile if phase_profile is not None else PhaseProfile()

    # --------------------------------------------------------------- queries

    @property
    def n_nodes(self) -> int:
        """Number of nodes in the cluster."""
        return len(self.nodes)

    @property
    def n_cores(self) -> int:
        """Total core count."""
        return sum(n.n_cores for n in self.nodes)

    @property
    def idle_watts(self) -> float:
        """Whole-cluster power at idle."""
        return self.node_model.idle_watts * self.n_nodes

    @property
    def peak_watts(self) -> float:
        """Whole-cluster power at full utilization."""
        return self.node_model.peak_watts * self.n_nodes

    @property
    def current_power(self) -> float:
        """Instantaneous cluster power in watts."""
        return sum(n.current_power for n in self.nodes)

    @property
    def monitors(self) -> list[CageMonitor]:
        """The cage-level power monitors (15 on Caddy)."""
        return [c.monitor for c in self.cages]

    def power_signals(self) -> list[PowerSignal]:
        """Per-node true power signals."""
        return [n.power_signal for n in self.nodes]

    # --------------------------------------------------------------- control

    def set_utilization(self, utilization: float, nodes: Optional[Iterable[Node]] = None) -> None:
        """Set utilization on ``nodes`` (default: all) at the current time."""
        for node in self.nodes if nodes is None else nodes:
            node.set_utilization(utilization)

    def run_phase(
        self, duration: float, utilization: float, after: Optional[float] = None
    ) -> Generator:
        """DES process: hold the whole cluster at ``utilization`` for ``duration``.

        Afterwards utilization returns to ``after`` (default: the phase
        profile's idle level).  Yield this from a workflow process::

            yield from cluster.run_phase(603.0, cluster.phases.simulation)
        """
        if duration < 0:
            raise ConfigurationError(f"negative phase duration: {duration}")
        self.set_utilization(utilization)
        yield self.sim.timeout(duration)
        self.set_utilization(self.phases.idle if after is None else after)

    # ------------------------------------------------------------ measurement

    def read_monitors(self, t0: float, t1: float) -> list[PowerTrace]:
        """One trace per cage monitor over ``[t0, t1]`` (1-minute averages)."""
        return [m.read(t0, t1) for m in self.monitors]

    def read_total(self, t0: float, t1: float) -> PowerTrace:
        """Whole-cluster trace: the sum of all cage monitors."""
        return PowerTrace.aligned_sum(self.read_monitors(t0, t1), name=f"{self.name}-compute")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ComputeCluster {self.name!r}: {self.n_nodes} nodes / {self.n_cores} cores, "
            f"{self.idle_watts / 1e3:.1f}-{self.peak_watts / 1e3:.1f} kW>"
        )


def caddy(sim: Simulator, phase_profile: Optional[PhaseProfile] = None) -> ComputeCluster:
    """The paper's test system: 150 nodes / 2400 cores, 15 cages, QDR IB.

    Idle 15 kW, loaded 44 kW, matching Section V's measurements.
    """
    return ComputeCluster(
        sim,
        n_nodes=150,
        node_model=e5_2670_node(),
        cores_per_socket=8,
        nodes_per_cage=10,
        interconnect=Interconnect(),
        phase_profile=phase_profile,
        name="caddy",
    )
