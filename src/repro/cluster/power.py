"""Node and CPU power models for the compute cluster.

The models are utilization-driven: a socket draws its idle power plus a
dynamic component that scales with utilization (the fraction of cycles doing
work) and with the cube of the DVFS frequency ratio (the classic ``P ~ f V²``
approximation with voltage tracking frequency).

Default constants are calibrated so a 150-node cluster reproduces the
paper's measurements on *Caddy*: **15 kW idle** (100 W/node) and **44 kW**
running the MPAS-O workload (293.3 W/node) — the "193 % increase" of
Section V.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError

__all__ = ["PState", "CpuPowerModel", "NodePowerModel"]


@dataclass(frozen=True)
class PState:
    """A DVFS operating point of a CPU socket."""

    #: Core frequency in GHz.
    frequency_ghz: float
    #: Human-readable label, e.g. ``"P0"``.
    label: str = ""

    def __post_init__(self) -> None:
        if self.frequency_ghz <= 0:
            raise ConfigurationError(f"non-positive frequency: {self.frequency_ghz}")


@dataclass(frozen=True)
class CpuPowerModel:
    """Power model of one CPU socket.

    ``power(util)`` = ``idle + (peak - idle) * util**gamma * (f/f_base)**3``
    where ``f`` is the current P-state frequency.  ``gamma = 1`` (linear in
    utilization) is the default and is what the paper's flat Fig. 5 implies
    for this workload mix.
    """

    idle_watts: float
    peak_watts: float
    base_frequency_ghz: float = 2.6
    gamma: float = 1.0
    pstates: tuple[PState, ...] = field(
        default_factory=lambda: (
            PState(2.6, "P0"),
            PState(2.2, "P1"),
            PState(1.8, "P2"),
            PState(1.2, "Pn"),
        )
    )

    def __post_init__(self) -> None:
        if self.idle_watts < 0:
            raise ConfigurationError(f"negative idle power: {self.idle_watts}")
        if self.peak_watts < self.idle_watts:
            raise ConfigurationError(
                f"peak power {self.peak_watts} below idle {self.idle_watts}"
            )
        if self.gamma <= 0:
            raise ConfigurationError(f"gamma must be positive: {self.gamma}")
        if not self.pstates:
            raise ConfigurationError("a CPU needs at least one P-state")

    def power(self, utilization: float, frequency_ghz: float | None = None) -> float:
        """Socket power in watts at the given utilization and frequency."""
        if not 0.0 <= utilization <= 1.0:
            raise ConfigurationError(f"utilization outside [0, 1]: {utilization}")
        f = self.base_frequency_ghz if frequency_ghz is None else frequency_ghz
        if f <= 0:
            raise ConfigurationError(f"non-positive frequency: {f}")
        ratio = f / self.base_frequency_ghz
        dynamic = (self.peak_watts - self.idle_watts) * utilization**self.gamma
        return self.idle_watts + dynamic * ratio**3

    def slowest_pstate(self) -> PState:
        """The lowest-frequency P-state (for idle-period management studies)."""
        return min(self.pstates, key=lambda p: p.frequency_ghz)


@dataclass(frozen=True)
class NodePowerModel:
    """Power model of a whole compute node.

    The node is ``base`` (board, fans, NIC) + ``n_sockets`` CPU sockets +
    DRAM, with DRAM power interpolating linearly between its idle and active
    draw with utilization.
    """

    cpu: CpuPowerModel
    n_sockets: int = 2
    base_watts: float = 34.0
    dram_idle_watts: float = 16.0
    dram_active_watts: float = 40.0

    def __post_init__(self) -> None:
        if self.n_sockets < 1:
            raise ConfigurationError(f"node needs >= 1 socket, got {self.n_sockets}")
        if min(self.base_watts, self.dram_idle_watts) < 0:
            raise ConfigurationError("negative component power")
        if self.dram_active_watts < self.dram_idle_watts:
            raise ConfigurationError("active DRAM power below idle DRAM power")

    @property
    def idle_watts(self) -> float:
        """Node power at zero utilization."""
        return self.power(0.0)

    @property
    def peak_watts(self) -> float:
        """Node power at full utilization and base frequency."""
        return self.power(1.0)

    def power(self, utilization: float, frequency_ghz: float | None = None) -> float:
        """Node power in watts at ``utilization``."""
        if not 0.0 <= utilization <= 1.0:
            raise ConfigurationError(f"utilization outside [0, 1]: {utilization}")
        dram = self.dram_idle_watts + (self.dram_active_watts - self.dram_idle_watts) * utilization
        return (
            self.base_watts
            + dram
            + self.n_sockets * self.cpu.power(utilization, frequency_ghz)
        )

    def dynamic_range(self) -> float:
        """Fractional increase from idle to peak (the paper's 193 % for compute)."""
        return self.peak_watts / self.idle_watts - 1.0


def e5_2670_node() -> NodePowerModel:
    """The calibrated *Caddy* node: 2 × 8-core Intel E5-2670 @ 2.6 GHz.

    Idle 100 W and peak 293.33 W per node, so that 150 nodes give the
    measured 15 kW idle and 44 kW under the MPAS-O workload.
    """
    cpu = CpuPowerModel(idle_watts=25.0, peak_watts=109.665, base_frequency_ghz=2.6)
    return NodePowerModel(cpu=cpu, n_sockets=2, base_watts=34.0,
                          dram_idle_watts=16.0, dram_active_watts=40.0)


__all__.append("e5_2670_node")
