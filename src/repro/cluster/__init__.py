"""Compute-cluster simulator (the paper's *Caddy* machine).

The cluster is a collection of :class:`~repro.cluster.node.Node` objects
grouped into cages of ten, each node carrying a calibrated power model and an
exact :class:`~repro.power.signal.PowerSignal`.  Workflows drive the cluster
through *phases* (simulation, rendering, I/O wait), each with a utilization
level; node power follows utilization, which is how the paper's 15 kW-idle /
44 kW-loaded dynamic range — and the flat power profile of Fig. 5 — arise.
"""

from repro.cluster.machine import ComputeCluster, caddy
from repro.cluster.node import Node
from repro.cluster.power import CpuPowerModel, NodePowerModel, PState
from repro.cluster.topology import Cage, Interconnect

__all__ = [
    "Cage",
    "ComputeCluster",
    "CpuPowerModel",
    "Interconnect",
    "Node",
    "NodePowerModel",
    "PState",
    "caddy",
]
