"""A simulated compute node.

A node tracks its current utilization (set by the workflow phases running on
the cluster) and mirrors every change into an exact
:class:`~repro.power.signal.PowerSignal` via its
:class:`~repro.cluster.power.NodePowerModel`.  It also accumulates
busy-seconds so CPU-utilization statistics can be reported per run.
"""

from __future__ import annotations

from typing import Optional

from repro.cluster.power import NodePowerModel
from repro.errors import ConfigurationError
from repro.events.engine import Simulator
from repro.power.signal import PowerSignal

__all__ = ["Node"]


class Node:
    """One compute node: sockets × cores, a power model, and a power signal."""

    def __init__(
        self,
        sim: Simulator,
        node_id: int,
        power_model: NodePowerModel,
        cores_per_socket: int = 8,
        memory_gb: float = 64.0,
    ) -> None:
        if node_id < 0:
            raise ConfigurationError(f"negative node id: {node_id}")
        if cores_per_socket < 1:
            raise ConfigurationError(f"cores_per_socket must be >= 1, got {cores_per_socket}")
        if memory_gb <= 0:
            raise ConfigurationError(f"memory must be positive, got {memory_gb}")
        self.sim = sim
        self.node_id = node_id
        self.power_model = power_model
        self.cores_per_socket = cores_per_socket
        self.memory_gb = memory_gb
        self._utilization = 0.0
        self._frequency_ghz: Optional[float] = None
        self._busy_core_seconds = 0.0
        self._last_change = sim.now
        self.power_signal = PowerSignal(
            power_model.idle_watts, start_time=sim.now, name=f"node-{node_id:03d}"
        )

    # --------------------------------------------------------------- queries

    @property
    def n_cores(self) -> int:
        """Total core count of the node."""
        return self.power_model.n_sockets * self.cores_per_socket

    @property
    def utilization(self) -> float:
        """Current utilization in [0, 1]."""
        return self._utilization

    @property
    def frequency_ghz(self) -> float:
        """Current operating frequency (base frequency unless DVFS'd)."""
        if self._frequency_ghz is not None:
            return self._frequency_ghz
        return self.power_model.cpu.base_frequency_ghz

    @property
    def current_power(self) -> float:
        """Instantaneous node power draw in watts."""
        return self.power_model.power(self._utilization, self._frequency_ghz)

    def busy_core_seconds(self) -> float:
        """Accumulated core-busy-seconds up to the current simulated time."""
        return self._busy_core_seconds + self._utilization * self.n_cores * (
            self.sim.now - self._last_change
        )

    # --------------------------------------------------------------- control

    def set_utilization(self, utilization: float, frequency_ghz: Optional[float] = None) -> None:
        """Change the node's utilization (and optionally DVFS frequency) *now*."""
        if not 0.0 <= utilization <= 1.0:
            raise ConfigurationError(f"utilization outside [0, 1]: {utilization}")
        now = self.sim.now
        self._busy_core_seconds += self._utilization * self.n_cores * (now - self._last_change)
        self._last_change = now
        self._utilization = utilization
        self._frequency_ghz = frequency_ghz
        self.power_signal.set(now, self.current_power)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Node {self.node_id} util={self._utilization:.2f} "
            f"{self.current_power:.0f} W @ {self.sim.now:.1f}s>"
        )
