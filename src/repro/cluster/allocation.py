"""Node allocation: exclusive partitions of the cluster.

The paper runs whole-machine ("we ran our test application on the entire
cluster"), but the in-transit extension and co-scheduling studies need to
split the machine into named, non-overlapping partitions.  The
:class:`Allocator` hands out :class:`Partition` objects, enforces
exclusivity, and reports per-partition power.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.cluster.machine import ComputeCluster
from repro.cluster.node import Node
from repro.errors import ConfigurationError, ResourceError

__all__ = ["Partition", "Allocator"]


@dataclass
class Partition:
    """A named, exclusive set of nodes."""

    name: str
    nodes: list[Node]
    _released: bool = field(default=False, repr=False)

    @property
    def n_nodes(self) -> int:
        """Node count of the partition."""
        return len(self.nodes)

    @property
    def released(self) -> bool:
        """True once the partition has been handed back."""
        return self._released

    @property
    def current_power(self) -> float:
        """Instantaneous power of this partition's nodes (watts)."""
        return sum(n.current_power for n in self.nodes)

    def set_utilization(self, utilization: float) -> None:
        """Drive every node of the partition to ``utilization``."""
        if self._released:
            raise ResourceError(f"partition {self.name!r} was already released")
        for node in self.nodes:
            node.set_utilization(utilization)

    def __contains__(self, node: Node) -> bool:
        return any(n is node for n in self.nodes)


class Allocator:
    """Exclusive partitioning of a :class:`ComputeCluster`."""

    def __init__(self, cluster: ComputeCluster) -> None:
        self.cluster = cluster
        self._free: list[Node] = list(cluster.nodes)
        self._partitions: dict[str, Partition] = {}

    @property
    def free_nodes(self) -> int:
        """Nodes not currently in any partition."""
        return len(self._free)

    @property
    def partitions(self) -> list[Partition]:
        """All live partitions."""
        return list(self._partitions.values())

    def allocate(self, name: str, n_nodes: int) -> Partition:
        """Carve out ``n_nodes`` free nodes as a named partition."""
        if not name:
            raise ConfigurationError("partition name must be non-empty")
        if name in self._partitions:
            raise ConfigurationError(f"partition {name!r} already exists")
        if n_nodes < 1:
            raise ConfigurationError(f"need >= 1 node, got {n_nodes}")
        if n_nodes > len(self._free):
            raise ResourceError(
                f"requested {n_nodes} nodes but only {len(self._free)} are free"
            )
        taken, self._free = self._free[:n_nodes], self._free[n_nodes:]
        partition = Partition(name=name, nodes=taken)
        self._partitions[name] = partition
        return partition

    def allocate_fraction(self, name: str, fraction: float) -> Partition:
        """Allocate a fraction of the whole machine (rounded, at least 1)."""
        if not 0.0 < fraction <= 1.0:
            raise ConfigurationError(f"fraction outside (0, 1]: {fraction}")
        return self.allocate(name, max(1, round(fraction * self.cluster.n_nodes)))

    def release(self, partition: Partition, idle: bool = True) -> None:
        """Return a partition's nodes to the free pool."""
        if partition.released:
            raise ResourceError(f"partition {partition.name!r} already released")
        if self._partitions.get(partition.name) is not partition:
            raise ResourceError(f"partition {partition.name!r} is not from this allocator")
        if idle:
            partition.set_utilization(0.0)
        partition._released = True
        del self._partitions[partition.name]
        self._free.extend(partition.nodes)

    def get(self, name: str) -> Optional[Partition]:
        """Look up a live partition by name."""
        return self._partitions.get(name)
