"""The post-processing pipeline (Fig. 1a).

Phase 1: the simulation writes the raw Okubo-Weiss output of every sampled
timestep to the parallel filesystem as netCDF (through the PIO aggregation
layer).  Phase 2: after the simulation completes, the files are read back
and rendered — with a bounded-depth prefetch reader overlapping reads with
rendering, the way a parallel ParaView batch job streams timesteps.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Generator

from repro import obs
from repro.core.metrics import POST_PROCESSING, Measurement, PhaseTimeline
from repro.errors import Interrupt
from repro.events.resources import Resource, Store
from repro.io.ncformat import read_nclite
from repro.io.pio import RealIOBackend
from repro.pipelines.base import Pipeline, PipelineSpec
from repro.viz.cinema import CinemaDatabase
from repro.viz.render import render_okubo_weiss

if TYPE_CHECKING:  # pragma: no cover
    from repro.pipelines.platform import RealPlatform, SimulatedPlatform

__all__ = ["PostProcessingPipeline"]

#: How many samples the visualization stage prefetches ahead of rendering.
PREFETCH_DEPTH = 2


class PostProcessingPipeline(Pipeline):
    """Raw writes during simulation; separate read-back + render pass."""

    name = POST_PROCESSING

    # ------------------------------------------------------------- simulated

    def simulated_process(
        self,
        platform: "SimulatedPlatform",
        spec: PipelineSpec,
        timeline: PhaseTimeline,
        artifacts: dict,
        resume=None,
    ) -> Generator:
        sim = platform.sim
        cluster = platform.cluster
        k = spec.steps_between_outputs
        n_out = spec.n_outputs
        step_s = platform.simulation_seconds_per_step(spec)
        render_s = platform.render_seconds_per_sample(spec)
        raw_bytes = float(spec.ocean.bytes_per_sample)
        sample_image_bytes = platform.image_size.bytes_per_sample(spec.images)
        ipc = spec.images.images_per_sample
        # Crash-recovery progress: raw samples already durable, and (when a
        # phase-2 checkpoint exists) image sets already rendered.  A nonzero
        # render count implies phase 2 had begun, so the trailing simulation
        # steps are already done too.
        start_write = resume.outputs_done if resume is not None else 0
        start_render = resume.renders_done // ipc if resume is not None else 0

        def raw_path(i: int) -> str:
            return f"{spec.output_prefix}/raw/sample-{i:05d}.nc"

        # ---- Phase 1: simulate + write raw netCDF every sampled timestep.
        for i in range(start_write, n_out):
            t0 = sim.now
            yield from cluster.run_phase(k * step_s, cluster.phases.simulation)
            timeline.add("simulation", t0, sim.now)
            t0 = sim.now
            cluster.set_utilization(cluster.phases.io_wait)
            yield from platform.pio.write_simulated(
                platform.io_backend, raw_path(i), raw_bytes, overwrite=True
            )
            cluster.set_utilization(cluster.phases.idle)
            timeline.add("io", t0, sim.now)
            artifacts["n_outputs"] += 1
            yield from self.maybe_checkpoint(
                platform,
                spec,
                timeline,
                artifacts,
                progress=i + 1,
                outputs_done=i + 1,
            )
        leftover = spec.ocean.n_timesteps - n_out * k
        if leftover > 0 and start_render == 0:
            t0 = sim.now
            yield from cluster.run_phase(leftover * step_s, cluster.phases.simulation)
            timeline.add("simulation", t0, sim.now)

        # ---- Phase 2: read back and render, with bounded prefetch.
        slots = Resource(sim, capacity=PREFETCH_DEPTH)
        ready = Store(sim)

        def reader() -> Generator:
            for i in range(start_render, n_out):
                req = slots.request()
                try:
                    yield req
                    yield from platform.io_backend.read_bytes(raw_path(i))
                except Interrupt:
                    # Killed by the main process (crash cleanup): hand back
                    # the slot — granted or still queued — and bow out.
                    slots.release(req)
                    return
                ready.put((i, req))

        reader_proc = None
        try:
            if n_out > start_render:
                reader_proc = sim.process(reader(), name=f"{spec.output_prefix}-prefetch")
            for i in range(start_render, n_out):
                t0 = sim.now
                item = yield ready.get()  # stall only when the read lags the render
                if sim.now > t0:
                    timeline.add("io", t0, sim.now)
                _, req = item
                t0 = sim.now
                yield from cluster.run_phase(render_s, cluster.phases.render)
                timeline.add("viz", t0, sim.now)
                slots.release(req)
                # Commit the rendered image set alongside the raw data.
                t0 = sim.now
                cluster.set_utilization(cluster.phases.io_wait)
                yield from platform.pio.write_simulated(
                    platform.io_backend,
                    f"{spec.output_prefix}/images/sample-{i:05d}.png",
                    sample_image_bytes,
                    overwrite=True,
                )
                cluster.set_utilization(cluster.phases.idle)
                timeline.add("io", t0, sim.now)
                artifacts["n_images"] += ipc
                obs.counter(
                    "repro_viz_images_total",
                    ipc,
                    pipeline=self.name,
                )
                yield from self.maybe_checkpoint(
                    platform,
                    spec,
                    timeline,
                    artifacts,
                    progress=i + 1,
                    outputs_done=n_out,
                    renders_done=(i + 1) * ipc,
                )
        finally:
            # A crash interrupt lands here: take the prefetcher down with us
            # so it cannot dangle on a dead run (its own cleanup releases
            # any slot it holds).
            if reader_proc is not None and reader_proc.is_alive:
                reader_proc.interrupt()

    # ------------------------------------------------------------------ real

    def run_real(self, platform: "RealPlatform", spec: PipelineSpec) -> Measurement:
        scale = platform.scale
        driver = platform.new_driver()
        outdir = platform.run_directory(self.name)
        backend = RealIOBackend(os.path.join(outdir, "raw"))
        timeline = PhaseTimeline(domain=obs.WALL)
        wall_start = platform.clock()

        # ---- Phase 1: simulate + write raw nclite files.
        for i in range(scale.n_outputs):
            t0 = platform.clock()
            driver.advance(scale.steps_between_outputs)
            t1 = platform.clock()
            timeline.add("simulation", t0, t1)
            fields = driver.output_fields()
            t0 = platform.clock()
            backend.write_fields(f"sample-{i:05d}.nc", fields, {"time": driver.time})
            t1 = platform.clock()
            timeline.add("io", t0, t1)

        # ---- Phase 2: read back + render into an image directory.
        cinema = CinemaDatabase(os.path.join(outdir, "images"), name="eddies-post")
        n_images = 0
        for i in range(scale.n_outputs):
            t0 = platform.clock()
            fields = read_nclite(backend.path_of(f"sample-{i:05d}.nc"))
            t1 = platform.clock()
            timeline.add("io", t0, t1)
            t0 = platform.clock()
            image = render_okubo_weiss(
                fields["okubo_weiss"], width=scale.image_width, height=scale.image_height
            )
            t1 = platform.clock()
            timeline.add("viz", t0, t1)
            t0 = platform.clock()
            cinema.add_image({"time": i, "camera": 0}, image)
            n_images += 1
            obs.counter("repro_viz_images_total", 1.0, pipeline=self.name)
            t1 = platform.clock()
            timeline.add("io", t0, t1)
        cinema.close()
        wall_end = platform.clock()
        return Measurement(
            pipeline=self.name,
            sample_interval_hours=platform.sample_interval_hours(),
            execution_time=wall_end - wall_start,
            n_timesteps=scale.n_steps,
            storage_bytes=float(backend.bytes_written),
            n_outputs=scale.n_outputs,
            n_images=n_images,
            timeline=timeline,
            label=outdir,
        )
