"""Execution platforms for the pipelines.

:class:`SimulatedPlatform` is the paper's instrumented testbed in software:
the discrete-event *Caddy* cluster, the Lustre storage cluster, the cage
monitors and the storage PDU, plus the calibrated cost models that map the
campaign configuration onto simulated durations.  Running a pipeline on it
yields a fully metered :class:`~repro.core.metrics.Measurement`.

:class:`RealPlatform` runs the *miniature real* version: the actual
barotropic solver, actual PNG rendering, actual files in a working
directory, wall-clock timed.  It produces the same ``Measurement`` shape
(without power, which a laptop run cannot meter the paper's way).
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Optional

from repro import obs
from repro.cluster.machine import ComputeCluster, PhaseProfile, caddy
from repro.core.metrics import Measurement, PhaseTimeline
from repro.errors import ConfigurationError
from repro.events.engine import Simulator
from repro.io.pio import PIOWriter, SimulatedIOBackend
from repro.ocean.driver import MiniOceanDriver, OceanCostModel
from repro.paper import TIMESTEP_SECONDS
from repro.pipelines.base import Pipeline, PipelineSpec
from repro.power.report import PowerReport
from repro.storage.lustre import StorageCluster
from repro.units import HOUR
from repro.viz.render import ImageSpec, RenderCostModel

__all__ = ["ImageSizeModel", "SimulatedPlatform", "RealScale", "RealPlatform"]


@dataclass(frozen=True)
class ImageSizeModel:
    """Size model for encoded frames at campaign scale.

    ``bytes = width * height * 3 * compression_ratio``.  The default ratio
    (0.125) reflects PNG on smooth large-scale ocean renders and puts a
    1920×1080 frame at ≈0.78 MB, so the paper's 540-image in-situ run
    commits well under 1 GB (Fig. 7); the mini model's real turbulent
    renders compress a little worse (~0.3), which the real platform measures
    directly instead of modelling.
    """

    compression_ratio: float = 0.125

    def __post_init__(self) -> None:
        if not 0.0 < self.compression_ratio <= 1.0:
            raise ConfigurationError(
                f"compression ratio outside (0, 1]: {self.compression_ratio}"
            )

    def bytes_per_image(self, spec: ImageSpec) -> float:
        """Encoded bytes of one frame."""
        return spec.pixels * 3.0 * self.compression_ratio

    def bytes_per_sample(self, spec: ImageSpec) -> float:
        """Encoded bytes of one output timestep's full image set."""
        return self.bytes_per_image(spec) * spec.images_per_sample


class SimulatedPlatform:
    """The instrumented campaign-scale testbed.

    One platform hosts one or more runs; measurements are windowed and
    delta-based, so back-to-back runs do not contaminate each other (storage
    accumulates across runs, exactly as on the real cluster).
    """

    #: Memory bandwidth per node available to the Catalyst deep copy (B/s).
    ADAPTOR_COPY_BANDWIDTH = 10e9

    def __init__(
        self,
        cluster: Optional[ComputeCluster] = None,
        storage: Optional[StorageCluster] = None,
        ocean_cost: Optional[OceanCostModel] = None,
        render_cost: Optional[RenderCostModel] = None,
        image_size: Optional[ImageSizeModel] = None,
        phase_profile: Optional[PhaseProfile] = None,
        n_io_aggregators: int = 8,
    ) -> None:
        self.sim = cluster.sim if cluster is not None else Simulator()
        self.cluster = cluster if cluster is not None else caddy(self.sim, phase_profile)
        if storage is not None and storage.sim is not self.sim:
            raise ConfigurationError("cluster and storage must share a Simulator")
        self.storage = storage if storage is not None else StorageCluster(self.sim)
        self.ocean_cost = ocean_cost if ocean_cost is not None else OceanCostModel()
        self.render_cost = render_cost if render_cost is not None else RenderCostModel()
        self.image_size = image_size if image_size is not None else ImageSizeModel()
        self.io_backend = SimulatedIOBackend(self.storage.fs)
        self.pio = PIOWriter(
            n_ranks=self.cluster.n_nodes,
            n_aggregators=min(n_io_aggregators, self.cluster.n_nodes),
            interconnect=self.cluster.interconnect,
        )
        self._run_counter = 0

    # ------------------------------------------------------------ cost hooks

    def simulation_seconds_per_step(self, spec: PipelineSpec) -> float:
        """Wall seconds per ocean timestep on this cluster."""
        return self.ocean_cost.seconds_per_step(spec.ocean, self.cluster.n_nodes)

    def render_seconds_per_sample(self, spec: PipelineSpec) -> float:
        """Wall seconds to render one output timestep's image set."""
        return self.render_cost.seconds_per_sample(
            spec.ocean.n_cells, spec.images, self.cluster.n_nodes, self.cluster.interconnect
        )

    def adaptor_seconds_per_sample(self, spec: PipelineSpec) -> float:
        """Wall seconds of the Catalyst deep copy for one sample."""
        per_node_bytes = spec.ocean.bytes_per_sample / self.cluster.n_nodes
        return per_node_bytes / self.ADAPTOR_COPY_BANDWIDTH

    # ------------------------------------------------------------------- run

    def run(self, pipeline: Pipeline, spec: PipelineSpec) -> Measurement:
        """Execute ``pipeline`` at campaign scale and meter everything."""
        self._run_counter += 1
        run_spec = PipelineSpec(
            ocean=spec.ocean,
            sampling=spec.sampling,
            images=spec.images,
            output_prefix=f"{spec.output_prefix}-{self._run_counter:03d}",
        )
        timeline = PhaseTimeline()
        artifacts: dict = {"storage_bytes": 0.0, "n_images": 0, "n_outputs": 0}
        t_start = self.sim.now
        storage_before = self.storage.fs.used_bytes
        session = obs.active()
        listener = None
        if session is not None:
            processed = session.registry.counter(
                "repro_events_processed_total", pipeline=pipeline.name
            )
            listener = self.sim.add_step_listener(
                lambda event, now: processed.inc()
            )
        try:
            with obs.span(
                "pipeline.run",
                clock=self.sim,
                pipeline=pipeline.name,
                mode="simulated",
                interval_hours=run_spec.sampling.interval_hours,
            ):
                self.sim.process(
                    pipeline.simulated_process(self, run_spec, timeline, artifacts),
                    name=f"{pipeline.name}-{self._run_counter}",
                )
                self.sim.run()
        finally:
            if listener is not None:
                self.sim.remove_step_listener(listener)
        t_end = self.sim.now
        duration = t_end - t_start
        if duration <= 0:
            raise ConfigurationError("pipeline run consumed no simulated time")
        compute_trace = self.cluster.read_total(t_start, t_end)
        storage_trace = self.storage.read_pdu(t_start, t_end)
        report = PowerReport(
            compute=compute_trace,
            storage=storage_trace,
            label=f"{pipeline.name} @ {run_spec.sampling}",
            budget_watts=self.cluster.peak_watts + self.storage.power_model.full_load_watts,
        )
        measured_storage = self.storage.fs.used_bytes - storage_before
        obs.counter("repro_pipeline_runs_total", pipeline=pipeline.name, mode="simulated")
        obs.counter(
            "repro_pipeline_storage_bytes", measured_storage, pipeline=pipeline.name
        )
        obs.counter(
            "repro_pipeline_images_total", artifacts["n_images"], pipeline=pipeline.name
        )
        obs.event(
            "measurement",
            pipeline=pipeline.name,
            interval_hours=run_spec.sampling.interval_hours,
            execution_time=duration,
            storage_bytes=measured_storage,
            average_power=report.average_power,
        )
        return Measurement(
            pipeline=pipeline.name,
            sample_interval_hours=run_spec.sampling.interval_hours,
            execution_time=duration,
            n_timesteps=run_spec.ocean.n_timesteps,
            storage_bytes=measured_storage,
            n_outputs=artifacts["n_outputs"],
            n_images=artifacts["n_images"],
            timeline=timeline,
            average_power=report.average_power,
            # The paper's Eq. (1): "Energy consumed was calculated as the
            # product of average power and execution time."  (The raw trace
            # energy differs slightly because the 1-minute instruments pad
            # the final partial interval.)
            energy=report.average_power * duration,
            power_report=report,
            label=run_spec.output_prefix,
        )


@dataclass(frozen=True)
class RealScale:
    """Miniature dimensions for real-mode runs."""

    nx: int = 128
    ny: int = 64
    n_steps: int = 48
    steps_between_outputs: int = 8
    image_width: int = 320
    image_height: int = 160
    seed: int = 0
    spinup_steps: int = 20

    def __post_init__(self) -> None:
        if self.n_steps < 1 or self.steps_between_outputs < 1:
            raise ConfigurationError("step counts must be >= 1")
        if self.n_steps % self.steps_between_outputs:
            raise ConfigurationError(
                f"n_steps={self.n_steps} not a multiple of "
                f"steps_between_outputs={self.steps_between_outputs}"
            )
        if self.spinup_steps < 0:
            raise ConfigurationError("negative spinup")

    @property
    def n_outputs(self) -> int:
        """Output samples over the mini run."""
        return self.n_steps // self.steps_between_outputs


class RealPlatform:
    """The laptop-scale platform: real solver, real renders, real files."""

    def __init__(self, workdir: str, scale: Optional[RealScale] = None) -> None:
        os.makedirs(workdir, exist_ok=True)
        self.workdir = workdir
        self.scale = scale if scale is not None else RealScale()
        self._run_counter = 0

    def new_driver(self) -> MiniOceanDriver:
        """A fresh, spun-up mini ocean model (identical across pipelines)."""
        driver = MiniOceanDriver(nx=self.scale.nx, ny=self.scale.ny, seed=self.scale.seed)
        if self.scale.spinup_steps:
            driver.advance(self.scale.spinup_steps)
        return driver

    def run_directory(self, pipeline_name: str) -> str:
        """A fresh output directory for one run."""
        self._run_counter += 1
        path = os.path.join(
            self.workdir, f"{pipeline_name.replace(' ', '_')}-{self._run_counter:03d}"
        )
        os.makedirs(path, exist_ok=True)
        return path

    @staticmethod
    def clock() -> float:
        """Wall-clock timestamp (monotonic)."""
        return time.perf_counter()

    def sample_interval_hours(self) -> float:
        """The mini run's cadence expressed in simulated hours."""
        driver_dt = TIMESTEP_SECONDS  # MiniOceanDriver default timestep
        return self.scale.steps_between_outputs * driver_dt / HOUR

    def run(self, pipeline: Pipeline, spec: Optional[PipelineSpec] = None) -> Measurement:
        """Run the miniature real version of ``pipeline``."""
        with obs.span("pipeline.run", pipeline=pipeline.name, mode="real"):
            measurement = pipeline.run_real(self, spec if spec is not None else PipelineSpec())
        obs.counter("repro_pipeline_runs_total", pipeline=pipeline.name, mode="real")
        obs.counter(
            "repro_pipeline_images_total", measurement.n_images, pipeline=pipeline.name
        )
        return measurement
