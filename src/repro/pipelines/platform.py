"""Execution platforms for the pipelines.

:class:`SimulatedPlatform` is the paper's instrumented testbed in software:
the discrete-event *Caddy* cluster, the Lustre storage cluster, the cage
monitors and the storage PDU, plus the calibrated cost models that map the
campaign configuration onto simulated durations.  Running a pipeline on it
yields a fully metered :class:`~repro.core.metrics.Measurement`.

:class:`RealPlatform` runs the *miniature real* version: the actual
barotropic solver, actual PNG rendering, actual files in a working
directory, wall-clock timed.  It produces the same ``Measurement`` shape
(without power, which a laptop run cannot meter the paper's way).
"""

from __future__ import annotations

import os
import random
import time
from dataclasses import dataclass
from typing import Generator, Optional

from repro import obs
from repro.cluster.machine import ComputeCluster, PhaseProfile, caddy
from repro.core.metrics import Measurement, PhaseTimeline
from repro.errors import ConfigurationError, DeadlockError, NodeCrashError
from repro.events.engine import Simulator
from repro.faults.injector import FaultInjector
from repro.faults.resilience import CheckpointPolicy, ResumeState
from repro.faults.retry import RetryPolicy
from repro.faults.spec import FaultSpec
from repro.io.pio import PIOWriter, SimulatedIOBackend
from repro.legacy import UNSET as _UNSET
from repro.legacy import merge_legacy_positionals as _merge_legacy_positionals
from repro.obs.timeline import (
    DEFAULT_TIMELINE_POINTS,
    TimelineSampler,
    engine_probes,
    power_probes,
    resource_probes,
    storage_probes,
)
from repro.obs.watch import Watchdog, default_rules
from repro.ocean.driver import MiniOceanDriver, OceanCostModel
from repro.paper import TIMESTEP_SECONDS
from repro.pipelines.base import CHECKPOINT_FILENAME, Pipeline, PipelineSpec
from repro.power.meter import PowerMeter
from repro.power.report import PowerReport
from repro.storage.lustre import StorageCluster
from repro.units import HOUR
from repro.viz.render import ImageSpec, RenderCostModel

__all__ = ["ImageSizeModel", "SimulatedPlatform", "RealScale", "RealPlatform"]


@dataclass(frozen=True)
class ImageSizeModel:
    """Size model for encoded frames at campaign scale.

    ``bytes = width * height * 3 * compression_ratio``.  The default ratio
    (0.125) reflects PNG on smooth large-scale ocean renders and puts a
    1920×1080 frame at ≈0.78 MB, so the paper's 540-image in-situ run
    commits well under 1 GB (Fig. 7); the mini model's real turbulent
    renders compress a little worse (~0.3), which the real platform measures
    directly instead of modelling.
    """

    compression_ratio: float = 0.125

    def __post_init__(self) -> None:
        if not 0.0 < self.compression_ratio <= 1.0:
            raise ConfigurationError(
                f"compression ratio outside (0, 1]: {self.compression_ratio}"
            )

    def bytes_per_image(self, spec: ImageSpec) -> float:  # repro-unit: bytes
        """Encoded bytes of one frame."""
        return spec.pixels * 3.0 * self.compression_ratio

    def bytes_per_sample(self, spec: ImageSpec) -> float:  # repro-unit: bytes
        """Encoded bytes of one output timestep's full image set."""
        return self.bytes_per_image(spec) * spec.images_per_sample


class SimulatedPlatform:
    """The instrumented campaign-scale testbed.

    One platform hosts one or more runs; measurements are windowed and
    delta-based, so back-to-back runs do not contaminate each other (storage
    accumulates across runs, exactly as on the real cluster).
    """

    #: Memory bandwidth per node available to the Catalyst deep copy (B/s).
    ADAPTOR_COPY_BANDWIDTH = 10e9

    def __init__(
        self,
        *legacy,
        cluster=_UNSET,
        storage=_UNSET,
        ocean_cost=_UNSET,
        render_cost=_UNSET,
        image_size=_UNSET,
        phase_profile=_UNSET,
        n_io_aggregators=_UNSET,
    ) -> None:
        """Assemble the platform (keyword-only; positionals are deprecated).

        The old positional spelling
        ``SimulatedPlatform(cluster, storage, ...)`` still works and warns
        once — see ``docs/MIGRATION.md``.
        """
        values = {
            "cluster": cluster,
            "storage": storage,
            "ocean_cost": ocean_cost,
            "render_cost": render_cost,
            "image_size": image_size,
            "phase_profile": phase_profile,
            "n_io_aggregators": n_io_aggregators,
        }
        if legacy:
            _merge_legacy_positionals(
                "SimulatedPlatform(...)",
                values,
                legacy,
                "keyword arguments (SimulatedPlatform(cluster=..., storage=...))",
            )
        cluster = None if values["cluster"] is _UNSET else values["cluster"]
        storage = None if values["storage"] is _UNSET else values["storage"]
        ocean_cost = None if values["ocean_cost"] is _UNSET else values["ocean_cost"]
        render_cost = None if values["render_cost"] is _UNSET else values["render_cost"]
        image_size = None if values["image_size"] is _UNSET else values["image_size"]
        phase_profile = (
            None if values["phase_profile"] is _UNSET else values["phase_profile"]
        )
        n_io_aggregators = (
            8 if values["n_io_aggregators"] is _UNSET else values["n_io_aggregators"]
        )
        self.sim = cluster.sim if cluster is not None else Simulator()
        self.cluster = cluster if cluster is not None else caddy(self.sim, phase_profile)
        if storage is not None and storage.sim is not self.sim:
            raise ConfigurationError("cluster and storage must share a Simulator")
        self.storage = storage if storage is not None else StorageCluster(self.sim)
        self.ocean_cost = ocean_cost if ocean_cost is not None else OceanCostModel()
        self.render_cost = render_cost if render_cost is not None else RenderCostModel()
        self.image_size = image_size if image_size is not None else ImageSizeModel()
        self.io_backend = SimulatedIOBackend(self.storage.fs)
        self.pio = PIOWriter(
            n_ranks=self.cluster.n_nodes,
            n_aggregators=min(n_io_aggregators, self.cluster.n_nodes),
            interconnect=self.cluster.interconnect,
        )
        self._run_counter = 0
        #: Active checkpoint policy; set only for the duration of a
        #: supervised run (pipelines consult it via ``maybe_checkpoint``).
        self.checkpoints: Optional[CheckpointPolicy] = None
        #: Retry policy installed on the filesystem during supervised runs.
        #: ``op_timeout_seconds`` stays off by default: injected transient
        #: errors fail fast, and retries back off deterministically.
        self.retry_policy = RetryPolicy()
        #: Injection tally of the most recent faulted run (``None`` after a
        #: fault-free run).
        self.last_fault_summary: Optional[dict] = None
        #: Recoveries performed during the most recent run.
        self.last_recoveries = 0

    # ------------------------------------------------------------ cost hooks

    def simulation_seconds_per_step(self, spec: PipelineSpec) -> float:  # repro-unit: seconds
        """Wall seconds per ocean timestep on this cluster."""
        return self.ocean_cost.seconds_per_step(spec.ocean, self.cluster.n_nodes)

    def render_seconds_per_sample(self, spec: PipelineSpec) -> float:  # repro-unit: seconds
        """Wall seconds to render one output timestep's image set."""
        return self.render_cost.seconds_per_sample(
            spec.ocean.n_cells, spec.images, self.cluster.n_nodes, self.cluster.interconnect
        )

    def adaptor_seconds_per_sample(self, spec: PipelineSpec) -> float:  # repro-unit: seconds
        """Wall seconds of the Catalyst deep copy for one sample."""
        per_node_bytes = spec.ocean.bytes_per_sample / self.cluster.n_nodes
        return per_node_bytes / self.ADAPTOR_COPY_BANDWIDTH

    # ------------------------------------------------------------------- run

    def run(
        self,
        pipeline: Pipeline,
        spec: PipelineSpec,
        faults: Optional[FaultSpec] = None,
        checkpoints: Optional[CheckpointPolicy] = None,
    ) -> Measurement:
        """Deprecated legacy entry point — use :meth:`Pipeline.execute`.

        ``platform.run(pipeline, spec, ...)`` became
        ``pipeline.execute(RunRequest(spec=spec, faults=..., checkpoints=...),
        platform=platform)`` — see ``docs/MIGRATION.md``.
        """
        from repro.exec.api import warn_legacy

        warn_legacy(
            "SimulatedPlatform.run(pipeline, spec, ...)",
            "Pipeline.execute(RunRequest(...))",
        )
        return self._execute(pipeline, spec, faults=faults, checkpoints=checkpoints)

    def _execute(
        self,
        pipeline: Pipeline,
        spec: PipelineSpec,
        faults: Optional[FaultSpec] = None,
        checkpoints: Optional[CheckpointPolicy] = None,
    ) -> Measurement:
        """Execute ``pipeline`` at campaign scale and meter everything.

        With ``faults`` and/or ``checkpoints`` the run goes through the
        supervised path: a seeded :class:`~repro.faults.FaultInjector`
        delivers the spec's chaos schedule, transient storage errors retry
        with deterministic backoff, and node crashes rewind to the last
        checkpoint instead of aborting (when a policy is given).  With both
        ``None`` — the default — the legacy unsupervised path runs and is
        bit-identical to the pre-fault-subsystem behaviour.
        """
        self._run_counter += 1
        if faults is None and checkpoints is None:
            self.last_fault_summary = None
            self.last_recoveries = 0
        run_spec = PipelineSpec(
            ocean=spec.ocean,
            sampling=spec.sampling,
            images=spec.images,
            output_prefix=f"{spec.output_prefix}-{self._run_counter:03d}",
        )
        timeline = PhaseTimeline()
        artifacts: dict = {"storage_bytes": 0.0, "n_images": 0, "n_outputs": 0}
        t_start = self.sim.now
        storage_before = self.storage.fs.used_bytes
        session = obs.active()
        listener = None
        sampler = None
        if session is not None:
            processed = session.registry.counter(
                "repro_events_processed_total", pipeline=pipeline.name
            )
            listener = self.sim.add_step_listener(
                lambda event, now: processed.inc()
            )
            if session.timeline is not None and session.timeline.enabled:
                sampler = self._build_sampler(
                    session, run_spec, checkpoints, artifacts, t_start
                )
                sampler.attach()
        try:
            with obs.span(
                "pipeline.run",
                clock=self.sim,
                pipeline=pipeline.name,
                mode="simulated",
                interval_hours=run_spec.sampling.interval_hours,
            ):
                if faults is None and checkpoints is None:
                    self.sim.process(
                        pipeline.simulated_process(self, run_spec, timeline, artifacts),
                        name=f"{pipeline.name}-{self._run_counter}",
                    )
                    self.sim.run()
                else:
                    self._run_supervised(
                        pipeline, run_spec, timeline, artifacts, faults, checkpoints
                    )
        finally:
            if sampler is not None:
                sampler.detach()
            if listener is not None:
                self.sim.remove_step_listener(listener)
        t_end = self.sim.now
        duration = t_end - t_start
        if duration <= 0:
            raise ConfigurationError("pipeline run consumed no simulated time")
        compute_trace = self.cluster.read_total(t_start, t_end)
        storage_trace = self.storage.read_pdu(t_start, t_end)
        report = PowerReport(
            compute=compute_trace,
            storage=storage_trace,
            label=f"{pipeline.name} @ {run_spec.sampling}",
            budget_watts=self.cluster.peak_watts + self.storage.power_model.full_load_watts,
        )
        measured_storage = self.storage.fs.used_bytes - storage_before
        obs.counter("repro_pipeline_runs_total", pipeline=pipeline.name, mode="simulated")
        obs.counter(
            "repro_pipeline_storage_bytes", measured_storage, pipeline=pipeline.name
        )
        obs.counter(
            "repro_pipeline_images_total", artifacts["n_images"], pipeline=pipeline.name
        )
        obs.event(
            "measurement",
            pipeline=pipeline.name,
            interval_hours=run_spec.sampling.interval_hours,
            execution_time=duration,
            storage_bytes=measured_storage,
            average_power=report.average_power,
        )
        # The meter windows for this run, verbatim — what lets the span
        # profiler apportion joules to the phases recorded above.  Follows
        # the run's root span in the stream, so the profiler pairs each
        # trace with the nearest preceding "pipeline.run" record.
        obs.event(
            "power_trace",
            pipeline=pipeline.name,
            label=run_spec.output_prefix,
            interval_hours=run_spec.sampling.interval_hours,
            t0=t_start,
            t1=t_end,
            compute=compute_trace.to_dict(),
            storage=storage_trace.to_dict(),
        )
        return Measurement(
            pipeline=pipeline.name,
            sample_interval_hours=run_spec.sampling.interval_hours,
            execution_time=duration,
            n_timesteps=run_spec.ocean.n_timesteps,
            storage_bytes=measured_storage,
            n_outputs=artifacts["n_outputs"],
            n_images=artifacts["n_images"],
            timeline=timeline,
            average_power=report.average_power,
            # The paper's Eq. (1): "Energy consumed was calculated as the
            # product of average power and execution time."  (The raw trace
            # energy differs slightly because the 1-minute instruments pad
            # the final partial interval.)
            energy=report.average_power * duration,
            power_report=report,
            label=run_spec.output_prefix,
        )

    def _build_sampler(
        self,
        session,
        run_spec: PipelineSpec,
        checkpoints: Optional[CheckpointPolicy],
        artifacts: dict,
        t_start: float,
    ) -> TimelineSampler:
        """Assemble the run's timeline sampler from the session's policy.

        Probes cover all three layers the paper's figures resolve over time
        — the event engine, the storage cluster and the power models — plus
        a checkpoint-age series when the run checkpoints.  The watchdog gets
        the default rule set, extended with cap/overdue rules when the
        policy sets those limits.
        """
        tcfg = session.timeline
        interval = tcfg.interval_seconds
        if interval is None:
            # The DES clock runs in campaign *execution* seconds, so derive
            # the grid from the predicted compute time (a lower bound on the
            # run — I/O and render phases only add samples beyond it).
            estimate = (
                self.simulation_seconds_per_step(run_spec)
                * run_spec.ocean.n_timesteps
            )
            interval = estimate / DEFAULT_TIMELINE_POINTS
        # A passive meter over every power signal on the platform; reads go
        # through total_watts(), which leaves the instrument-read counters
        # untouched so sampling does not perturb the power metrics.
        meter = PowerMeter("timeline-total")
        meter.attach_all(self.cluster.power_signals())
        meter.attach(self.storage.power_signal)
        watchdog = Watchdog(
            default_rules(
                power_cap_watts=tcfg.power_cap_watts,
                checkpoint_overdue_seconds=tcfg.checkpoint_overdue_seconds,
            )
        )
        sampler = TimelineSampler(
            self.sim,
            interval,
            session=session,
            label=run_spec.output_prefix,
            watchdog=watchdog,
            capacity=tcfg.capacity,
        )
        sampler.add_probes(engine_probes(self.sim))
        sampler.add_probes(storage_probes(self.storage.fs))
        sampler.add_probes(resource_probes("mds", self.storage.fs.mds))
        sampler.add_probes(
            power_probes(
                meter, self.cluster, self.storage, cap_watts=tcfg.power_cap_watts
            )
        )
        if checkpoints is not None:
            sampler.add_probe(
                "repro_timeline_pipeline_checkpoint_age_seconds",
                lambda t: t
                - float((artifacts.get("checkpoint") or {}).get("t", t_start)),
            )
        return sampler

    # ------------------------------------------------------- supervised path

    def _run_supervised(
        self,
        pipeline: Pipeline,
        run_spec: PipelineSpec,
        timeline: PhaseTimeline,
        artifacts: dict,
        faults: Optional[FaultSpec],
        checkpoints: Optional[CheckpointPolicy],
    ) -> None:
        """Drive one pipeline run under fault injection and/or checkpointing.

        The simulator is stepped manually until the supervisor process
        completes, so fault events scheduled beyond the end of the run never
        advance the clock (they are disarmed and left stale in the heap —
        use a fresh platform per faulted run when comparing measurements).
        """
        fs = self.storage.fs
        self.last_fault_summary = None
        self.last_recoveries = 0
        injector = None
        if faults is not None:
            injector = FaultInjector(self.sim, fs, faults)
            injector.arm()
        prev_policy, prev_rng = fs.retry_policy, fs.retry_rng
        self.checkpoints = checkpoints
        fs.retry_policy = self.retry_policy
        fs.retry_rng = random.Random(faults.seed if faults is not None else 0)
        supervisor = self.sim.process(
            self._supervise(pipeline, run_spec, timeline, artifacts, injector, checkpoints),
            name=f"{pipeline.name}-supervisor-{self._run_counter}",
        )
        try:
            while not supervisor.triggered:
                if not self.sim._heap:
                    raise DeadlockError(
                        "supervised run stalled: event queue drained before "
                        "the supervisor completed"
                    )
                self.sim.step()
        finally:
            self.checkpoints = None
            fs.retry_policy, fs.retry_rng = prev_policy, prev_rng
            if injector is not None:
                injector.disarm()
                self.last_fault_summary = injector.summary()
                self.last_fault_summary["recoveries"] = self.last_recoveries
        if not supervisor.ok:
            supervisor.defused = True
            raise supervisor.value

    def _supervise(
        self,
        pipeline: Pipeline,
        run_spec: PipelineSpec,
        timeline: PhaseTimeline,
        artifacts: dict,
        injector: Optional[FaultInjector],
        checkpoints: Optional[CheckpointPolicy],
    ) -> Generator:
        """Checkpoint/restart supervisor: re-spawns the pipeline after crashes."""
        fs = self.storage.fs
        max_attempts = 1 + (checkpoints.max_restarts if checkpoints is not None else 0)
        ckpt_path = f"{run_spec.output_prefix}/{CHECKPOINT_FILENAME}"
        for attempt in range(max_attempts):
            if attempt == 0:
                gen = pipeline.simulated_process(self, run_spec, timeline, artifacts)
            else:
                marker = artifacts.get("checkpoint")
                resume = ResumeState(
                    outputs_done=marker["outputs_done"] if marker else 0,
                    renders_done=marker["renders_done"] if marker else 0,
                )
                # Rewind the progress counters to the durable state; the
                # re-spawned pipeline re-counts the replayed work (its file
                # rewrites use overwrite semantics, so storage agrees).
                artifacts["n_outputs"] = resume.outputs_done
                artifacts["n_images"] = resume.renders_done
                t0 = self.sim.now
                if checkpoints.restart_penalty_seconds > 0:
                    yield self.sim.timeout(checkpoints.restart_penalty_seconds)
                if marker is not None and fs.exists(ckpt_path):
                    yield from fs.read(ckpt_path)
                timeline.add("recovery", t0, self.sim.now)
                self.last_recoveries += 1
                obs.counter("repro_faults_recoveries_total", pipeline=pipeline.name)
                gen = pipeline.simulated_process(
                    self, run_spec, timeline, artifacts, resume=resume
                )
            proc = self.sim.process(
                gen, name=f"{pipeline.name}-{self._run_counter}-attempt-{attempt}"
            )
            if injector is not None:
                injector.watch(proc)
            try:
                yield proc
                return
            except NodeCrashError:
                # The crash left the cluster wherever the phase put it;
                # recovery proceeds from idle.
                self.cluster.set_utilization(self.cluster.phases.idle)
                if checkpoints is None or attempt + 1 >= max_attempts:
                    raise


@dataclass(frozen=True)
class RealScale:
    """Miniature dimensions for real-mode runs."""

    nx: int = 128
    ny: int = 64
    n_steps: int = 48
    steps_between_outputs: int = 8
    image_width: int = 320
    image_height: int = 160
    seed: int = 0
    spinup_steps: int = 20

    def __post_init__(self) -> None:
        if self.n_steps < 1 or self.steps_between_outputs < 1:
            raise ConfigurationError("step counts must be >= 1")
        if self.n_steps % self.steps_between_outputs:
            raise ConfigurationError(
                f"n_steps={self.n_steps} not a multiple of "
                f"steps_between_outputs={self.steps_between_outputs}"
            )
        if self.spinup_steps < 0:
            raise ConfigurationError("negative spinup")

    @property
    def n_outputs(self) -> int:
        """Output samples over the mini run."""
        return self.n_steps // self.steps_between_outputs


class RealPlatform:
    """The laptop-scale platform: real solver, real renders, real files."""

    def __init__(self, workdir: str, *legacy, scale=_UNSET) -> None:
        """Build the real platform (``scale`` is keyword-only; the old
        positional spelling warns once — see ``docs/MIGRATION.md``)."""
        values = {"scale": scale}
        if legacy:
            _merge_legacy_positionals(
                "RealPlatform(workdir, ...)",
                values,
                legacy,
                "RealPlatform(workdir, scale=...)",
            )
        scale = None if values["scale"] is _UNSET else values["scale"]
        os.makedirs(workdir, exist_ok=True)
        self.workdir = workdir
        self.scale = scale if scale is not None else RealScale()
        self._run_counter = 0

    def new_driver(self) -> MiniOceanDriver:
        """A fresh, spun-up mini ocean model (identical across pipelines)."""
        driver = MiniOceanDriver(nx=self.scale.nx, ny=self.scale.ny, seed=self.scale.seed)
        if self.scale.spinup_steps:
            driver.advance(self.scale.spinup_steps)
        return driver

    def run_directory(self, pipeline_name: str) -> str:
        """A fresh output directory for one run."""
        self._run_counter += 1
        path = os.path.join(
            self.workdir, f"{pipeline_name.replace(' ', '_')}-{self._run_counter:03d}"
        )
        os.makedirs(path, exist_ok=True)
        return path

    @staticmethod
    def clock() -> float:
        """Wall-clock timestamp (monotonic)."""
        return time.perf_counter()

    def sample_interval_hours(self) -> float:  # repro-unit: hours
        """The mini run's cadence expressed in simulated hours."""
        driver_dt = TIMESTEP_SECONDS  # MiniOceanDriver default timestep
        return self.scale.steps_between_outputs * driver_dt / HOUR

    def run(self, pipeline: Pipeline, spec: Optional[PipelineSpec] = None) -> Measurement:
        """Deprecated legacy entry point — use :meth:`Pipeline.execute`.

        ``platform.run(pipeline, spec)`` became
        ``pipeline.execute(RunRequest(mode="real", spec=spec,
        workdir=...), platform=platform)`` — see ``docs/MIGRATION.md``.
        """
        from repro.exec.api import warn_legacy

        warn_legacy(
            "RealPlatform.run(pipeline, spec)",
            'Pipeline.execute(RunRequest(mode="real", ...))',
        )
        return self._execute(pipeline, spec)

    def _execute(self, pipeline: Pipeline, spec: Optional[PipelineSpec] = None) -> Measurement:
        """Run the miniature real version of ``pipeline``."""
        with obs.span("pipeline.run", pipeline=pipeline.name, mode="real"):
            measurement = pipeline.run_real(self, spec if spec is not None else PipelineSpec())
        obs.counter("repro_pipeline_runs_total", pipeline=pipeline.name, mode="real")
        obs.counter(
            "repro_pipeline_images_total", measurement.n_images, pipeline=pipeline.name
        )
        return measurement
