"""Pipeline abstractions shared by both workflows."""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Generator

from repro.core.metrics import Measurement, PhaseTimeline
from repro.errors import ConfigurationError
from repro.ocean.driver import MPASOceanConfig
from repro.pipelines.sampling import SamplingPolicy
from repro.viz.render import ImageSpec

if TYPE_CHECKING:  # pragma: no cover
    from repro.pipelines.platform import RealPlatform, SimulatedPlatform

__all__ = ["PipelineSpec", "Pipeline"]


@dataclass(frozen=True)
class PipelineSpec:
    """What to run: campaign configuration, cadence and image parameters."""

    ocean: MPASOceanConfig = field(default_factory=MPASOceanConfig)
    sampling: SamplingPolicy = field(default_factory=lambda: SamplingPolicy(24.0))
    images: ImageSpec = field(default_factory=ImageSpec)
    #: Namespace prefix for files this run writes.
    output_prefix: str = "run"

    def __post_init__(self) -> None:
        # Validate early that the cadence divides the timestep grid.
        self.sampling.steps_between_outputs(self.ocean)
        if not self.output_prefix:
            raise ConfigurationError("output_prefix must be non-empty")

    @property
    def n_outputs(self) -> int:
        """Output products over the campaign."""
        return self.sampling.n_outputs(self.ocean)

    @property
    def steps_between_outputs(self) -> int:
        """Timesteps between outputs."""
        return self.sampling.steps_between_outputs(self.ocean)

    def with_sampling(self, sampling: SamplingPolicy) -> "PipelineSpec":
        """The same spec at a different cadence."""
        return PipelineSpec(
            ocean=self.ocean,
            sampling=sampling,
            images=self.images,
            output_prefix=self.output_prefix,
        )


class Pipeline(ABC):
    """A visualization workflow that can run on either platform."""

    #: Canonical name ("in-situ" / "post-processing").
    name: str = ""

    @abstractmethod
    def simulated_process(
        self,
        platform: "SimulatedPlatform",
        spec: PipelineSpec,
        timeline: PhaseTimeline,
        artifacts: dict,
    ) -> Generator:
        """The DES generator process executing this workflow at campaign scale.

        Implementations record phases into ``timeline`` and artifact counts
        (``storage_bytes``, ``n_images``, ``n_outputs``) into ``artifacts``.
        """

    @abstractmethod
    def run_real(self, platform: "RealPlatform", spec: PipelineSpec) -> Measurement:
        """Run the miniature real-mode version; returns its measurement."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"
