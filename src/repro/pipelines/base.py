"""Pipeline abstractions shared by both workflows."""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Generator, Optional, Sequence

from repro import obs
from repro.core.metrics import Measurement, PhaseTimeline
from repro.errors import ConfigurationError
from repro.ocean.driver import MPASOceanConfig
from repro.pipelines.sampling import SamplingPolicy
from repro.viz.render import ImageSpec

if TYPE_CHECKING:  # pragma: no cover
    from repro.exec.api import RunRequest, RunResult
    from repro.pipelines.platform import RealPlatform, SimulatedPlatform

__all__ = ["CHECKPOINT_FILENAME", "PipelineSpec", "Pipeline"]

#: Namespace-relative filename of a run's (single, rotating) checkpoint.
CHECKPOINT_FILENAME = "checkpoint.dat"


@dataclass(frozen=True)
class PipelineSpec:
    """What to run: campaign configuration, cadence and image parameters."""

    ocean: MPASOceanConfig = field(default_factory=MPASOceanConfig)
    sampling: SamplingPolicy = field(default_factory=lambda: SamplingPolicy(24.0))
    images: ImageSpec = field(default_factory=ImageSpec)
    #: Namespace prefix for files this run writes.
    output_prefix: str = "run"

    def __post_init__(self) -> None:
        # Validate early that the cadence divides the timestep grid.
        self.sampling.steps_between_outputs(self.ocean)
        if not self.output_prefix:
            raise ConfigurationError("output_prefix must be non-empty")

    @property
    def n_outputs(self) -> int:
        """Output products over the campaign."""
        return self.sampling.n_outputs(self.ocean)

    @property
    def steps_between_outputs(self) -> int:
        """Timesteps between outputs."""
        return self.sampling.steps_between_outputs(self.ocean)

    def with_sampling(self, sampling: SamplingPolicy) -> "PipelineSpec":
        """The same spec at a different cadence."""
        return PipelineSpec(
            ocean=self.ocean,
            sampling=sampling,
            images=self.images,
            output_prefix=self.output_prefix,
        )


class Pipeline(ABC):
    """A visualization workflow that can run on either platform."""

    #: Canonical name ("in-situ" / "post-processing").
    name: str = ""

    @abstractmethod
    def simulated_process(
        self,
        platform: "SimulatedPlatform",
        spec: PipelineSpec,
        timeline: PhaseTimeline,
        artifacts: dict,
    ) -> Generator:
        """The DES generator process executing this workflow at campaign scale.

        Implementations record phases into ``timeline`` and artifact counts
        (``storage_bytes``, ``n_images``, ``n_outputs``) into ``artifacts``.
        Restartable pipelines additionally accept an optional ``resume``
        keyword (a :class:`~repro.faults.ResumeState`), passed only by the
        platform's supervised run path when recovering from a crash —
        subclasses that never run under fault injection can ignore it.
        """

    @abstractmethod
    def run_real(self, platform: "RealPlatform", spec: PipelineSpec) -> Measurement:
        """Run the miniature real-mode version; returns its measurement."""

    def request_args(self) -> dict:
        """Constructor arguments identifying this instance in a RunRequest.

        Subclasses with configuration knobs (e.g. in-transit's staging node
        count) override this so a request round-trips to an equivalent
        instance via :func:`repro.exec.api.build_pipeline`.
        """
        return {}

    def execute(
        self,
        request: Optional["RunRequest"] = None,
        platform: Optional[object] = None,
    ) -> "RunResult":
        """The unified entry point: one request in, one result out.

        Dispatches on ``request.mode``: simulated requests run at campaign
        scale on a :class:`~repro.pipelines.platform.SimulatedPlatform`
        (a fresh one per call unless ``platform`` is given — fresh platforms
        are what make runs pure functions of the request, hence cacheable
        and pool-safe), real requests run the miniature version in
        ``request.workdir``.  ``None`` means "this pipeline with every
        default": ``pipeline.execute()`` is the new spelling of the old
        ``platform.run(pipeline, PipelineSpec())``.
        """
        from repro.exec.api import RunRequest

        if request is None:
            request = RunRequest()
        request = request.bound_to(self)
        if request.trace is not None and not obs.enabled():
            # A pool worker (or any fresh process) handed a TraceContext:
            # record this run into a shard session and carry the shard back
            # in the result for the parent to merge.
            from dataclasses import replace

            with obs.shard_session(request.trace) as shard:
                result = self._execute_bound(request, platform)
            return replace(result, telemetry=shard.shard_payload())
        return self._execute_bound(request, platform)

    def execute_many(
        self,
        requests: Sequence["RunRequest"],
        workers: Optional[int] = None,
        cache: Optional[object] = None,
        journal: Optional[str] = None,
        resume: bool = False,
        policy: Optional[object] = None,
    ) -> list:
        """Run a sweep of requests through a supervised engine.

        The batch spelling of :meth:`execute`: every request is bound to
        this pipeline and fanned out over a
        :class:`~repro.exec.supervise.SupervisedExecutor` — worker-crash
        recovery, bounded retries, and (with ``journal``/``resume``) a
        resumable sweep that replays completed work from ``cache``.
        Results come back in request order; with a non-abort fail policy,
        exhausted tasks carry ``RunResult.failure`` instead of raising.
        """
        from repro.exec.supervise import SupervisedExecutor

        bound = [request.bound_to(self) for request in requests]
        executor = SupervisedExecutor(
            max_workers=workers,
            cache=cache,
            policy=policy,
            journal=journal,
            resume=resume,
        )
        return executor.map(bound)

    def _execute_bound(
        self,
        request: "RunRequest",
        platform: Optional[object] = None,
    ) -> "RunResult":
        """Execute an already-bound request (see :meth:`execute`)."""
        from repro.exec.api import MODE_REAL, RunResult

        t0 = time.perf_counter()
        if request.mode == MODE_REAL:
            from repro.pipelines.platform import RealPlatform

            if platform is None:
                if request.workdir is None:
                    raise ConfigurationError(
                        "real-mode request needs a workdir (or pass a "
                        "RealPlatform explicitly)"
                    )
                platform = RealPlatform(request.workdir)
            measurement = platform._execute(self, request.spec)
            fault_summary: Optional[dict] = None
            recoveries = 0
        else:
            from repro.pipelines.platform import SimulatedPlatform

            if platform is None:
                platform = SimulatedPlatform()
            measurement = platform._execute(
                self,
                request.spec,
                faults=request.faults,
                checkpoints=request.checkpoints,
            )
            fault_summary = platform.last_fault_summary
            recoveries = platform.last_recoveries
        # wall_seconds is a diagnostic only: excluded from cache keys and
        # from the bit-identity comparison in replay/telemetry tests.
        return RunResult(  # repro-lint: disable=det-clock
            request=request,
            measurement=measurement,
            wall_seconds=time.perf_counter() - t0,
            fault_summary=fault_summary,
            recoveries=recoveries,
        )

    def maybe_checkpoint(
        self,
        platform: "SimulatedPlatform",
        spec: PipelineSpec,
        timeline: PhaseTimeline,
        artifacts: dict,
        progress: int,
        outputs_done: int,
        renders_done: int = 0,
    ) -> Generator:
        """DES sub-generator: write a periodic checkpoint when due.

        ``progress`` is the pipeline's unit-of-work counter; a checkpoint is
        written whenever it reaches a multiple of the platform checkpoint
        policy's cadence.  The state write is costed through the simulated
        storage model like any other I/O (one rotating file, overwritten in
        place).  With no policy installed this yields **zero events**, so
        fault-free runs stay bit-identical to the unsupervised path.
        """
        policy = getattr(platform, "checkpoints", None)
        if policy is None or progress <= 0 or progress % policy.every_n_outputs:
            return
        sim = platform.sim
        cluster = platform.cluster
        state_bytes = (
            policy.state_bytes
            if policy.state_bytes is not None
            else float(spec.ocean.bytes_per_sample)
        )
        t0 = sim.now
        cluster.set_utilization(cluster.phases.io_wait)
        try:
            yield from platform.storage.fs.write(
                f"{spec.output_prefix}/{CHECKPOINT_FILENAME}", state_bytes, overwrite=True
            )
        finally:
            cluster.set_utilization(cluster.phases.idle)
        timeline.add("checkpoint", t0, sim.now)
        # The durable-progress marker the platform supervisor rewinds to.
        artifacts["checkpoint"] = {
            "outputs_done": outputs_done,
            "renders_done": renders_done,
            "state_bytes": state_bytes,
            # When durability was reached — the timeline's checkpoint-age
            # probe (and the checkpoint_overdue watch rule) read this.
            "t": sim.now,
        }
        obs.counter("repro_faults_checkpoints_total", pipeline=self.name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"
