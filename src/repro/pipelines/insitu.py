"""The in-situ pipeline (Fig. 1b).

Simulation and visualization share the machine: after each sampled timestep
the Catalyst adaptor deep-copies the fields, the renderer produces the image
set, and only the compact images are committed to storage through a Cinema
database.  No raw fields ever reach the filesystem.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Generator

import numpy as np

from repro import obs
from repro.core.metrics import IN_SITU, Measurement, PhaseTimeline
from repro.pipelines.base import Pipeline, PipelineSpec
from repro.viz.catalyst import CatalystAdaptor
from repro.viz.cinema import CinemaDatabase
from repro.viz.render import Camera, render_okubo_weiss

if TYPE_CHECKING:  # pragma: no cover
    from repro.pipelines.platform import RealPlatform, SimulatedPlatform

__all__ = ["InSituPipeline"]


class InSituPipeline(Pipeline):
    """Simulation + Catalyst render + image write, every sampled timestep."""

    name = IN_SITU

    # ------------------------------------------------------------- simulated

    def simulated_process(
        self,
        platform: "SimulatedPlatform",
        spec: PipelineSpec,
        timeline: PhaseTimeline,
        artifacts: dict,
        resume=None,
    ) -> Generator:
        sim = platform.sim
        cluster = platform.cluster
        k = spec.steps_between_outputs
        n_out = spec.n_outputs
        step_s = platform.simulation_seconds_per_step(spec)
        render_s = platform.render_seconds_per_sample(spec)
        adaptor_s = platform.adaptor_seconds_per_sample(spec)
        image_bytes = platform.image_size.bytes_per_image(spec.images)
        sample_bytes = platform.image_size.bytes_per_sample(spec.images)
        cinema = CinemaDatabase(name=spec.output_prefix)
        # After a crash recovery the supervisor re-spawns us with the last
        # checkpoint's progress; outputs before it are already durable.
        start = resume.outputs_done if resume is not None else 0
        for i in range(start, n_out):
            t0 = sim.now
            yield from cluster.run_phase(k * step_s, cluster.phases.simulation)
            timeline.add("simulation", t0, sim.now)
            # Catalyst deep copy + render + composite + encode.
            t0 = sim.now
            yield from cluster.run_phase(adaptor_s + render_s, cluster.phases.render)
            timeline.add("viz", t0, sim.now)
            # Commit the image set (ranks poll in the I/O collective).
            t0 = sim.now
            cluster.set_utilization(cluster.phases.io_wait)
            yield from platform.pio.write_simulated(
                platform.io_backend,
                f"{spec.output_prefix}/cinema/sample-{i:05d}.png",
                sample_bytes,
                overwrite=True,
            )
            cluster.set_utilization(cluster.phases.idle)
            timeline.add("io", t0, sim.now)
            for cam in range(spec.images.images_per_sample):
                cinema.add_accounted({"time": i, "camera": cam}, int(image_bytes))
            artifacts["n_outputs"] += 1
            artifacts["n_images"] += spec.images.images_per_sample
            obs.counter(
                "repro_viz_images_total",
                spec.images.images_per_sample,
                pipeline=self.name,
            )
            yield from self.maybe_checkpoint(
                platform,
                spec,
                timeline,
                artifacts,
                progress=i + 1,
                outputs_done=i + 1,
                renders_done=artifacts["n_images"],
            )
        # Trailing timesteps after the last output, if the cadence does not
        # divide the campaign exactly.
        leftover = spec.ocean.n_timesteps - n_out * k
        if leftover > 0:
            t0 = sim.now
            yield from cluster.run_phase(leftover * step_s, cluster.phases.simulation)
            timeline.add("simulation", t0, sim.now)
        cinema.close()
        artifacts["cinema"] = cinema

    # ------------------------------------------------------------------ real

    def run_real(self, platform: "RealPlatform", spec: PipelineSpec) -> Measurement:
        scale = platform.scale
        driver = platform.new_driver()
        outdir = platform.run_directory(self.name)
        cinema = CinemaDatabase(os.path.join(outdir, "cinema"), name="eddies")
        cameras = [Camera(), Camera(center=(0.5, 0.5), zoom=2.0)]
        timeline = PhaseTimeline(domain=obs.WALL)
        n_images = 0
        storage_before = cinema.total_bytes

        adaptor = CatalystAdaptor()

        def render_hook(step: int, _time: float, fields) -> list:
            w = np.asarray(fields["okubo_weiss"])
            return [
                render_okubo_weiss(
                    w, width=scale.image_width, height=scale.image_height, camera=cam
                )
                for cam in cameras
            ]

        adaptor.register_pipeline("okubo-weiss", render_hook)

        wall_start = platform.clock()
        for i in range(scale.n_outputs):
            t0 = platform.clock()
            driver.advance(scale.steps_between_outputs)
            t1 = platform.clock()
            timeline.add("simulation", t0, t1)
            fields = driver.output_fields()
            t0 = platform.clock()
            images = adaptor.coprocess(i, driver.time, fields)["okubo-weiss"]
            t1 = platform.clock()
            timeline.add("viz", t0, t1)
            t0 = platform.clock()
            for cam_index, image in enumerate(images):
                cinema.add_image({"time": i, "camera": cam_index}, image)
                n_images += 1
            t1 = platform.clock()
            timeline.add("io", t0, t1)
            obs.counter("repro_viz_images_total", len(images), pipeline=self.name)
        adaptor.finalize()
        cinema.close()
        wall_end = platform.clock()
        return Measurement(
            pipeline=self.name,
            sample_interval_hours=platform.sample_interval_hours(),
            execution_time=wall_end - wall_start,
            n_timesteps=scale.n_steps,
            storage_bytes=cinema.total_bytes - storage_before,
            n_outputs=scale.n_outputs,
            n_images=n_images,
            timeline=timeline,
            label=outdir,
        )
