"""Temporal sampling policies.

"Scientists are forced to save their data only every few steps using a
technique known as *temporal sampling*" (Section II-B).  A
:class:`SamplingPolicy` is the cadence at which output products (raw fields
or image sets) are committed, expressed in simulated hours — the unit of the
paper's x-axes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.ocean.driver import MPASOceanConfig
from repro.units import HOUR

__all__ = ["SamplingPolicy", "PAPER_SAMPLING_GRID"]


@dataclass(frozen=True)
class SamplingPolicy:
    """Write one output every ``interval_hours`` simulated hours."""

    interval_hours: float

    def __post_init__(self) -> None:
        if self.interval_hours <= 0:
            raise ConfigurationError(
                f"sampling interval must be positive: {self.interval_hours}"
            )

    @property
    def interval_seconds(self) -> float:  # repro-unit: seconds
        """Sampling interval in simulated seconds."""
        return self.interval_hours * HOUR

    @property
    def outputs_per_day(self) -> float:
        """Output products per simulated day."""
        return 24.0 / self.interval_hours

    def steps_between_outputs(self, config: MPASOceanConfig) -> int:
        """Simulation timesteps between consecutive outputs."""
        return config.steps_between_outputs(self.interval_hours)

    def n_outputs(self, config: MPASOceanConfig) -> int:
        """Output products over a whole campaign."""
        return config.n_outputs(self.interval_hours)

    def rate_ratio(self, reference: "SamplingPolicy") -> float:
        """``rate_any / rate_ref`` of Equations (6)–(7).

        Rates are *frequencies*: sampling twice as often doubles the ratio,
        i.e. the ratio is ``reference.interval_hours / self.interval_hours``.
        """
        return reference.interval_hours / self.interval_hours

    def __str__(self) -> str:
        if self.interval_hours >= 24 and self.interval_hours % 24 == 0:
            days = self.interval_hours / 24
            return "every day" if days == 1 else f"every {days:g} days"
        return f"every {self.interval_hours:g} h"


#: The paper's three measured configurations: outputs written once every
#: 8, 24 and 72 simulated hours.
PAPER_SAMPLING_GRID: tuple[SamplingPolicy, ...] = (
    SamplingPolicy(8.0),
    SamplingPolicy(24.0),
    SamplingPolicy(72.0),
)
