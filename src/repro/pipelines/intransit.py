"""The in-transit pipeline (an extension beyond the paper's two).

The paper's related work (Bennett et al. [13], Rodero et al. [22]) studies a
third workflow the evaluation does not measure: **in-transit** processing,
where a subset of the machine is set aside as *staging nodes*.  The
simulation partition never renders; after each sampled timestep it ships the
fields over the interconnect to the staging partition and immediately
resumes stepping, while the staging nodes render and commit images
concurrently.

Compared to in-situ this trades nodes for overlap:

* the simulation runs on fewer nodes (slower per step), but
* rendering is completely off the critical path — until the staging
  partition saturates, at which point a bounded queue applies back-pressure
  (Rodero et al.'s placement question: how many staging nodes are enough?).

Both a campaign-scale DES implementation and a *really concurrent* real-mode
implementation (worker thread) are provided.
"""

from __future__ import annotations

import os
import queue
import threading
from typing import TYPE_CHECKING, Generator

import numpy as np

from repro import obs
from repro.core.metrics import Measurement, PhaseTimeline
from repro.errors import ConfigurationError
from repro.events.resources import Store
from repro.legacy import UNSET as _UNSET
from repro.legacy import merge_legacy_positionals as _merge_legacy_positionals
from repro.pipelines.base import Pipeline, PipelineSpec
from repro.viz.cinema import CinemaDatabase
from repro.viz.render import render_okubo_weiss

if TYPE_CHECKING:  # pragma: no cover
    from repro.pipelines.platform import RealPlatform, SimulatedPlatform

__all__ = ["IN_TRANSIT", "InTransitPipeline"]

IN_TRANSIT = "in-transit"

#: Maximum samples queued to the staging partition before the simulation
#: blocks (back-pressure), mirroring a bounded staging-memory budget.
STAGING_QUEUE_DEPTH = 4


class InTransitPipeline(Pipeline):
    """Simulation on one partition; rendering concurrently on another."""

    name = IN_TRANSIT

    def __init__(self, *legacy, config=None, n_staging_nodes=_UNSET) -> None:
        """Build the pipeline (``n_staging_nodes`` is keyword-only).

        ``config`` is a duck-typed
        :class:`repro.scenario.schema.PipelineConfig` whose
        ``staging_nodes`` (when set) provides the partition size; an
        explicit ``n_staging_nodes=`` wins.  The old positional spelling
        ``InTransitPipeline(15)`` warns once — see ``docs/MIGRATION.md``.
        """
        values = {"n_staging_nodes": n_staging_nodes}
        if legacy:
            _merge_legacy_positionals(
                "InTransitPipeline(...)",
                values,
                legacy,
                "InTransitPipeline(n_staging_nodes=...) or config=PipelineConfig(...)",
            )
        n_staging_nodes = values["n_staging_nodes"]
        if n_staging_nodes is _UNSET and config is not None:
            staged = getattr(config, "staging_nodes", None)
            if staged is not None:
                n_staging_nodes = staged
        if n_staging_nodes is _UNSET:
            n_staging_nodes = 15
        if n_staging_nodes < 1:
            raise ConfigurationError(
                f"need at least one staging node, got {n_staging_nodes}"
            )
        self.n_staging_nodes = n_staging_nodes

    def request_args(self) -> dict:
        return {"n_staging_nodes": self.n_staging_nodes}

    # ------------------------------------------------------------- simulated

    def simulated_process(
        self,
        platform: "SimulatedPlatform",
        spec: PipelineSpec,
        timeline: PhaseTimeline,
        artifacts: dict,
    ) -> Generator:
        sim = platform.sim
        cluster = platform.cluster
        if self.n_staging_nodes >= cluster.n_nodes:
            raise ConfigurationError(
                f"{self.n_staging_nodes} staging nodes leaves no simulation "
                f"nodes on a {cluster.n_nodes}-node cluster"
            )
        n_sim_nodes = cluster.n_nodes - self.n_staging_nodes
        sim_nodes = cluster.nodes[:n_sim_nodes]
        staging_nodes = cluster.nodes[n_sim_nodes:]

        k = spec.steps_between_outputs
        n_out = spec.n_outputs
        # The simulation partition is smaller, so each step costs more.
        step_s = platform.ocean_cost.seconds_per_step(spec.ocean, n_sim_nodes)
        # Rendering happens on the staging partition only.
        render_s = platform.render_cost.seconds_per_sample(
            spec.ocean.n_cells, spec.images, self.n_staging_nodes, cluster.interconnect
        )
        # Shipping one sample: every sim node sends its shard to staging.
        transfer_s = cluster.interconnect.gather_time(
            spec.ocean.bytes_per_sample / max(n_sim_nodes, 1), self.n_staging_nodes
        ) + spec.ocean.bytes_per_sample / cluster.interconnect.bandwidth_bytes_per_s / max(
            self.n_staging_nodes, 1
        )
        image_bytes = platform.image_size.bytes_per_image(spec.images)
        sample_bytes = platform.image_size.bytes_per_sample(spec.images)
        cinema = CinemaDatabase(name=spec.output_prefix)

        slots = Store(sim)
        for _ in range(STAGING_QUEUE_DEPTH):
            slots.put(None)
        inbox = Store(sim)
        done = sim.event()

        def staging() -> Generator:
            for i in range(n_out):
                item = yield inbox.get()
                # Receive the shipped shards onto the staging partition.
                for node in staging_nodes:
                    node.set_utilization(cluster.phases.io_wait)
                yield sim.timeout(transfer_s)
                # Render concurrently with the ongoing simulation.
                t0 = sim.now
                for node in staging_nodes:
                    node.set_utilization(cluster.phases.render)
                yield sim.timeout(render_s)
                timeline.add("viz", t0, sim.now)
                # Commit the image set.
                t0 = sim.now
                for node in staging_nodes:
                    node.set_utilization(cluster.phases.io_wait)
                yield from platform.pio.write_simulated(
                    platform.io_backend,
                    f"{spec.output_prefix}/cinema/sample-{item:05d}.png",
                    sample_bytes,
                )
                timeline.add("io", t0, sim.now)
                for node in staging_nodes:
                    node.set_utilization(cluster.phases.idle)
                for cam in range(spec.images.images_per_sample):
                    cinema.add_accounted({"time": item, "camera": cam}, int(image_bytes))
                artifacts["n_images"] += spec.images.images_per_sample
                slots.put(None)
            done.succeed()

        sim.process(staging(), name=f"{spec.output_prefix}-staging")

        for i in range(n_out):
            t0 = sim.now
            for node in sim_nodes:
                node.set_utilization(cluster.phases.simulation)
            yield sim.timeout(k * step_s)
            timeline.add("simulation", t0, sim.now)
            for node in sim_nodes:
                node.set_utilization(cluster.phases.idle)
            # Back-pressure: wait for a staging slot, then hand the sample off.
            t0 = sim.now
            yield slots.get()
            if sim.now > t0:
                timeline.add("stall", t0, sim.now)
            inbox.put(i)
            artifacts["n_outputs"] += 1
        leftover = spec.ocean.n_timesteps - n_out * k
        if leftover > 0:
            t0 = sim.now
            for node in sim_nodes:
                node.set_utilization(cluster.phases.simulation)
            yield sim.timeout(leftover * step_s)
            timeline.add("simulation", t0, sim.now)
            for node in sim_nodes:
                node.set_utilization(cluster.phases.idle)
        # Drain the staging partition.
        t0 = sim.now
        yield done
        if sim.now > t0:
            timeline.add("drain", t0, sim.now)
        cinema.close()
        artifacts["cinema"] = cinema

    # ------------------------------------------------------------------ real

    def run_real(self, platform: "RealPlatform", spec: PipelineSpec) -> Measurement:
        scale = platform.scale
        driver = platform.new_driver()
        outdir = platform.run_directory(self.name)
        cinema = CinemaDatabase(os.path.join(outdir, "cinema"), name="eddies-intransit")
        timeline = PhaseTimeline(domain=obs.WALL)
        inbox: "queue.Queue" = queue.Queue(maxsize=STAGING_QUEUE_DEPTH)
        n_images = 0
        lock = threading.Lock()

        def staging_worker() -> None:
            nonlocal n_images
            while True:
                item = inbox.get()
                if item is None:
                    return
                index, w = item
                image = render_okubo_weiss(
                    w, width=scale.image_width, height=scale.image_height
                )
                with lock:
                    cinema.add_image({"time": index}, image)
                    n_images += 1

        worker = threading.Thread(target=staging_worker, name="staging")
        worker.start()
        wall_start = platform.clock()
        try:
            for i in range(scale.n_outputs):
                t0 = platform.clock()
                driver.advance(scale.steps_between_outputs)
                t1 = platform.clock()
                timeline.add("simulation", t0, t1)
                # Ship a deep copy to staging; the solver keeps mutating.
                w = np.array(driver.okubo_weiss_field(), copy=True)
                t0 = platform.clock()
                inbox.put((i, w))  # blocks only when staging is saturated
                t1 = platform.clock()
                if t1 > t0:
                    timeline.add("stall", t0, t1)
        finally:
            inbox.put(None)
            t0 = platform.clock()
            worker.join()
            timeline.add("drain", t0, platform.clock())
        cinema.close()
        wall_end = platform.clock()
        return Measurement(
            pipeline=self.name,
            sample_interval_hours=platform.sample_interval_hours(),
            execution_time=wall_end - wall_start,
            n_timesteps=scale.n_steps,
            storage_bytes=cinema.total_bytes,
            n_outputs=scale.n_outputs,
            n_images=n_images,
            timeline=timeline,
            label=outdir,
        )
