"""The two visualization pipelines of the paper's Fig. 1.

* :class:`~repro.pipelines.insitu.InSituPipeline` — simulation and
  visualization coupled on the same machine; every sampled timestep is
  rendered through the Catalyst adaptor and committed as compact images in a
  Cinema database (Fig. 1b).
* :class:`~repro.pipelines.postprocessing.PostProcessingPipeline` — raw
  fields written to the parallel filesystem every sampled timestep, then a
  separate read-back + render pass (Fig. 1a).

Both run on either platform:

* :class:`~repro.pipelines.platform.SimulatedPlatform` — campaign scale on
  the discrete-event Caddy + Lustre models with full power metering;
* :class:`~repro.pipelines.platform.RealPlatform` — miniature scale with the
  real ocean solver, real PNG rendering and real files, wall-clock timed.
"""

from repro.pipelines.insitu import InSituPipeline
from repro.pipelines.intransit import InTransitPipeline
from repro.pipelines.platform import RealPlatform, RealScale, SimulatedPlatform
from repro.pipelines.postprocessing import PostProcessingPipeline
from repro.pipelines.sampling import SamplingPolicy
from repro.pipelines.base import Pipeline, PipelineSpec

__all__ = [
    "InSituPipeline",
    "InTransitPipeline",
    "Pipeline",
    "PipelineSpec",
    "PostProcessingPipeline",
    "RealPlatform",
    "RealScale",
    "SamplingPolicy",
    "SimulatedPlatform",
]
