"""Lustre-like parallel storage simulator (the paper's private storage rack).

The storage cluster mirrors the paper's setup: one master node, two metadata
servers (MDS), two object storage servers (OSS) hosting the object storage
targets (OSTs), 7.7 TB capacity, ~160 MB/s aggregate bandwidth — and an
extremely *non-power-proportional* power profile (2273 W idle → 2302 W at
full load, a 1.3 % dynamic range), which is the mechanism behind the paper's
Finding 2 ("reducing storage bandwidth does not noticeably improve power").
"""

from repro.storage.devices import OstDevice
from repro.storage.governor import StorageDvfsGovernor, wimpy_storage_model
from repro.storage.lustre import FileRecord, LustreFileSystem, StorageCluster
from repro.storage.power import StoragePowerModel

__all__ = [
    "FileRecord",
    "LustreFileSystem",
    "OstDevice",
    "StorageCluster",
    "StorageDvfsGovernor",
    "StoragePowerModel",
    "wimpy_storage_model",
]
