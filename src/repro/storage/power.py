"""Power model of the storage cluster.

Calibrated to the paper's benchmark of the Lustre rack: **2273 W idle** and
**2302 W at full load** (peak I/O bandwidth) — a dynamic range of 1.3 %,
making the storage subsystem "one of the least power-proportional components"
in the data center.  The model interpolates linearly in the achieved
throughput fraction, split across the five storage nodes (1 master, 2 MDS,
2 OSS); only the OSS nodes carry the dynamic component, since they move the
bytes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.paper import (
    STORAGE_BANDWIDTH_BYTES_PER_S,
    STORAGE_FULL_W,
    STORAGE_IDLE_W,
)

__all__ = ["StoragePowerModel"]


@dataclass(frozen=True)
class StoragePowerModel:
    """Throughput-driven power model for the whole storage rack."""

    idle_watts: float = STORAGE_IDLE_W
    full_load_watts: float = STORAGE_FULL_W
    #: Aggregate bandwidth (bytes/s) at which full-load power is reached.
    rated_bandwidth: float = STORAGE_BANDWIDTH_BYTES_PER_S
    n_master: int = 1
    n_mds: int = 2
    n_oss: int = 2

    def __post_init__(self) -> None:
        if self.idle_watts < 0:
            raise ConfigurationError(f"negative idle power: {self.idle_watts}")
        if self.full_load_watts < self.idle_watts:
            raise ConfigurationError("full-load power below idle power")
        if self.rated_bandwidth <= 0:
            raise ConfigurationError("rated bandwidth must be positive")
        if min(self.n_master, self.n_mds, self.n_oss) < 0 or self.n_nodes < 1:
            raise ConfigurationError("invalid storage node counts")

    @property
    def n_nodes(self) -> int:
        """Total storage-cluster node count (5 in the paper)."""
        return self.n_master + self.n_mds + self.n_oss

    @property
    def dynamic_watts(self) -> float:
        """Idle-to-full power swing (29 W in the paper)."""
        return self.full_load_watts - self.idle_watts

    def power(self, throughput: float) -> float:
        # repro-unit: watts, throughput=bytes_per_s
        """Rack power in watts at aggregate ``throughput`` bytes/s."""
        if throughput < 0:
            raise ConfigurationError(f"negative throughput: {throughput}")
        frac = min(1.0, throughput / self.rated_bandwidth)
        return self.idle_watts + self.dynamic_watts * frac

    def proportionality(self) -> float:
        """Fractional increase idle→full (the paper's 1.3 % for storage)."""
        return self.full_load_watts / self.idle_watts - 1.0

    def per_node_idle(self) -> dict[str, float]:
        """Idle power attributed per node role (equal split, for reporting)."""
        share = self.idle_watts / self.n_nodes
        return {
            "master": share * self.n_master,
            "mds": share * self.n_mds,
            "oss": share * self.n_oss,
        }
