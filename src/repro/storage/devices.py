"""Object-storage-target (OST) device model.

An OST is a RAID-backed block device behind an OSS.  The device model only
needs to supply per-target bandwidth caps and capacities to the filesystem
layer — the queueing itself happens on the shared OSS bandwidth pipe.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = ["OstDevice"]


@dataclass(frozen=True)
class OstDevice:
    """One object storage target."""

    index: int
    capacity_bytes: float
    write_bandwidth: float
    read_bandwidth: float

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ConfigurationError(f"negative OST index: {self.index}")
        if self.capacity_bytes <= 0:
            raise ConfigurationError(f"OST capacity must be positive: {self.capacity_bytes}")
        if self.write_bandwidth <= 0 or self.read_bandwidth <= 0:
            raise ConfigurationError("OST bandwidths must be positive")

    def stripe_cap(self, stripe_count: int, write: bool) -> float:
        """Bandwidth ceiling for a file striped over ``stripe_count`` OSTs."""
        if stripe_count < 1:
            raise ConfigurationError(f"stripe_count must be >= 1, got {stripe_count}")
        per_target = self.write_bandwidth if write else self.read_bandwidth
        return per_target * stripe_count
