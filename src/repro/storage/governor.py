"""Storage-side power management (Section VIII of the paper).

Two proposals from the paper's discussion, made quantitative:

* **DVFS governor** — "The CPUs [of the storage subsystem], for instance,
  should operate at the minimum frequency necessary to handle the various
  I/O requests from the client."  :class:`StorageDvfsGovernor` models the
  storage nodes' CPU share of idle power scaling with ``f³`` and picks, for
  a demanded bandwidth, the slowest frequency that still sustains it
  (bandwidth ceiling ∝ f).
* **Wimpy nodes** — "The 'brawny' CPUs on the storage side may be replaced
  with 'wimpy' ones with little to no difference in the storage bandwidth."
  :func:`wimpy_storage_model` derives the rack's power model after such a
  replacement.

Both let the what-if layer ask how much of the rack's 2273 W idle floor is
actually recoverable.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.storage.power import StoragePowerModel

__all__ = ["StorageDvfsGovernor", "wimpy_storage_model"]


@dataclass(frozen=True)
class StorageDvfsGovernor:
    """Frequency governor for the storage nodes' CPUs.

    Parameters
    ----------
    base:
        The ungoverned rack power model.
    cpu_idle_share:
        Fraction of the rack's *idle* power drawn by the storage CPUs (the
        governable part; disks, DRAM and fans are not).
    f_min_ratio:
        Lowest frequency as a fraction of nominal.
    """

    base: StoragePowerModel
    cpu_idle_share: float = 0.40
    f_min_ratio: float = 0.40

    def __post_init__(self) -> None:
        if not 0.0 < self.cpu_idle_share < 1.0:
            raise ConfigurationError(f"cpu share outside (0, 1): {self.cpu_idle_share}")
        if not 0.0 < self.f_min_ratio <= 1.0:
            raise ConfigurationError(f"f_min ratio outside (0, 1]: {self.f_min_ratio}")

    def frequency_for(self, throughput: float) -> float:  # repro-unit: throughput=bytes_per_s
        """Slowest frequency ratio that sustains ``throughput`` bytes/s.

        The CPU-imposed bandwidth ceiling scales linearly with frequency and
        equals the rated bandwidth at nominal frequency.
        """
        if throughput < 0:
            raise ConfigurationError(f"negative throughput: {throughput}")
        demanded = min(1.0, throughput / self.base.rated_bandwidth)
        return max(self.f_min_ratio, demanded)

    def power(self, throughput: float) -> float:  # repro-unit: watts, throughput=bytes_per_s
        """Rack power under the governor at the given demand."""
        f = self.frequency_for(throughput)
        cpu_idle = self.base.idle_watts * self.cpu_idle_share
        other_idle = self.base.idle_watts - cpu_idle
        frac = min(1.0, throughput / self.base.rated_bandwidth)
        return other_idle + cpu_idle * f**3 + self.base.dynamic_watts * frac

    def idle_savings_watts(self) -> float:
        """Rack watts shaved at zero demand (the common case in the paper)."""
        return self.base.power(0.0) - self.power(0.0)

    def governed_model(self, typical_throughput: float = 0.0) -> StoragePowerModel:
        # repro-unit: typical_throughput=bytes_per_s
        """An equivalent static power model at a typical demand level.

        Useful for plugging the governed rack back into the campaign
        simulator: idle power reflects the governor's floor, full-load power
        is unchanged (full demand needs nominal frequency).
        """
        return StoragePowerModel(
            idle_watts=self.power(typical_throughput)
            - self.base.dynamic_watts
            * min(1.0, typical_throughput / self.base.rated_bandwidth),
            full_load_watts=self.power(self.base.rated_bandwidth),
            rated_bandwidth=self.base.rated_bandwidth,
            n_master=self.base.n_master,
            n_mds=self.base.n_mds,
            n_oss=self.base.n_oss,
        )


def wimpy_storage_model(
    base: StoragePowerModel,
    cpu_idle_share: float = 0.40,
    wimpy_ratio: float = 0.25,
) -> StoragePowerModel:
    """The rack after replacing brawny storage CPUs with wimpy ones.

    ``wimpy_ratio`` is the wimpy CPUs' power relative to the brawny ones.
    Bandwidth is assumed unchanged ("little to no difference in the storage
    bandwidth offered"), so only the power model moves.
    """
    if not 0.0 < wimpy_ratio <= 1.0:
        raise ConfigurationError(f"wimpy ratio outside (0, 1]: {wimpy_ratio}")
    if not 0.0 < cpu_idle_share < 1.0:
        raise ConfigurationError(f"cpu share outside (0, 1): {cpu_idle_share}")
    saved = base.idle_watts * cpu_idle_share * (1.0 - wimpy_ratio)
    return StoragePowerModel(
        idle_watts=base.idle_watts - saved,
        full_load_watts=base.full_load_watts - saved,
        rated_bandwidth=base.rated_bandwidth,
        n_master=base.n_master,
        n_mds=base.n_mds,
        n_oss=base.n_oss,
    )
