"""The Lustre-like parallel filesystem and the storage-cluster facade.

Architecture (mirroring the paper's rack):

* **MDS** — metadata servers; every open/create costs a metadata round-trip
  through a counted :class:`~repro.events.resources.Resource` (2 servers,
  one op in service per server at a time).
* **OSS/OST** — object storage; all data moves through two shared
  :class:`~repro.events.resources.BandwidthPipe` objects (write path capped
  at the measured ~160 MB/s aggregate; read path faster, since the OSS page
  cache and sequential layout make post-hoc reads cheaper than the random
  writes the 160 MB/s figure describes).
* **StorageCluster** — binds the filesystem to its power model and the
  Raritan metered PDU.

Writes and reads are DES generator processes::

    yield from fs.write(path, nbytes)      # inside a Simulator process
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Generator, Optional

from repro import obs
from repro.errors import ConfigurationError, StorageError, StorageFullError
from repro.events.engine import Simulator
from repro.events.resources import BandwidthPipe, Resource
from repro.legacy import UNSET as _UNSET
from repro.legacy import merge_legacy_positionals as _merge_legacy_positionals
from repro.power.meter import MeteredPDU
from repro.power.signal import PowerSignal
from repro.storage.devices import OstDevice
from repro.storage.power import StoragePowerModel
from repro.units import MB, TB

__all__ = ["FileRecord", "LustreFileSystem", "StorageCluster"]


@dataclass
class FileRecord:
    """Namespace entry for one file."""

    path: str
    size: float = 0.0
    created_at: float = 0.0
    stripe_count: int = 1
    #: First OST of this file's stripe set (round-robin at creation); the
    #: file's bytes spread evenly over ``stripe_count`` OSTs from here.
    stripe_start: int = 0
    closed: bool = True
    n_writes: int = field(default=0, repr=False)
    n_reads: int = field(default=0, repr=False)


class LustreFileSystem:
    """Simulated parallel filesystem with shared-bandwidth data paths."""

    def __init__(
        self,
        sim: Simulator,
        *legacy,
        config=None,
        capacity_bytes=_UNSET,
        # repro-unit: write_bandwidth=bytes_per_s, read_bandwidth=bytes_per_s, metadata_latency=seconds
        write_bandwidth=_UNSET,
        read_bandwidth=_UNSET,
        n_mds=_UNSET,
        n_ost=_UNSET,
        metadata_latency=_UNSET,
        default_stripe_count=_UNSET,
    ) -> None:
        """Build a filesystem from keywords and/or a scenario sub-config.

        ``config`` is a duck-typed
        :class:`repro.scenario.schema.StorageConfig` (attributes
        ``capacity_bytes``, ``write_bandwidth``, ``read_bandwidth``,
        ``mds``, ``ost``, ``metadata_latency_seconds``); explicit keywords
        override it.  Positional arguments after ``sim`` are deprecated
        (warn-once) — see ``docs/MIGRATION.md``.
        """
        values = {
            "capacity_bytes": capacity_bytes,
            "write_bandwidth": write_bandwidth,
            "read_bandwidth": read_bandwidth,
            "n_mds": n_mds,
            "n_ost": n_ost,
            "metadata_latency": metadata_latency,
            "default_stripe_count": default_stripe_count,
        }
        if legacy:
            _merge_legacy_positionals(
                "LustreFileSystem(sim, ...)",
                values,
                legacy,
                "keyword arguments or config=StorageConfig(...)",
            )
        if config is not None:
            for key, attr in (
                ("capacity_bytes", "capacity_bytes"),
                ("write_bandwidth", "write_bandwidth"),
                ("read_bandwidth", "read_bandwidth"),
                ("n_mds", "mds"),
                ("n_ost", "ost"),
                ("metadata_latency", "metadata_latency_seconds"),
            ):
                if values[key] is _UNSET:
                    values[key] = getattr(config, attr)
        capacity_bytes = (
            7.7 * TB if values["capacity_bytes"] is _UNSET else values["capacity_bytes"]
        )
        write_bandwidth = (
            160 * MB if values["write_bandwidth"] is _UNSET else values["write_bandwidth"]
        )
        read_bandwidth = (
            1_000 * MB if values["read_bandwidth"] is _UNSET else values["read_bandwidth"]
        )
        n_mds = 2 if values["n_mds"] is _UNSET else values["n_mds"]
        n_ost = 8 if values["n_ost"] is _UNSET else values["n_ost"]
        metadata_latency = (
            1e-3 if values["metadata_latency"] is _UNSET else values["metadata_latency"]
        )
        default_stripe_count = (
            None
            if values["default_stripe_count"] is _UNSET
            else values["default_stripe_count"]
        )
        if capacity_bytes <= 0:
            raise ConfigurationError(f"capacity must be positive: {capacity_bytes}")
        if write_bandwidth <= 0 or read_bandwidth <= 0:
            raise ConfigurationError("bandwidths must be positive")
        if n_mds < 1 or n_ost < 1:
            raise ConfigurationError("need at least one MDS and one OST")
        if metadata_latency < 0:
            raise ConfigurationError(f"negative metadata latency: {metadata_latency}")
        self.sim = sim
        self.capacity_bytes = float(capacity_bytes)
        self.metadata_latency = float(metadata_latency)
        self.default_stripe_count = default_stripe_count or n_ost
        self.mds = Resource(sim, capacity=n_mds, name="mds")
        self.osts = [
            OstDevice(
                i,
                capacity_bytes / n_ost,
                write_bandwidth / n_ost,
                read_bandwidth / n_ost,
            )
            for i in range(n_ost)
        ]
        self.write_pipe = BandwidthPipe(sim, write_bandwidth)
        self.read_pipe = BandwidthPipe(sim, read_bandwidth)
        self._files: dict[str, FileRecord] = {}
        self._metadata_ops = 0
        #: Round-robin cursor assigning each new file's ``stripe_start``.
        self._stripe_cursor = 0
        #: Bytes reserved by in-flight writes; counted against free space so
        #: concurrent writers cannot both pass the capacity check and
        #: overfill the filesystem.
        self._reserved_bytes = 0.0
        #: Optional fault hook (``check(op, path)`` raises TransientIOError
        #: when an injected error is armed).  Duck-typed — this module never
        #: imports :mod:`repro.faults`, which sits above it.
        self.fault_gate: Optional[Any] = None
        #: Optional retry hook (a :class:`repro.faults.RetryPolicy`) applied
        #: to whole write/read operations; ``None`` (the default) keeps the
        #: legacy single-attempt path bit-identical.
        self.retry_policy: Optional[Any] = None
        #: Seeded randomness for retry backoff jitter (deterministic runs).
        self.retry_rng: random.Random = random.Random(0)

    # --------------------------------------------------------------- queries

    @property
    def used_bytes(self) -> float:
        """Bytes currently stored."""
        return sum(f.size for f in self._files.values())

    @property
    def free_bytes(self) -> float:
        """Remaining capacity, net of reservations held by in-flight writes."""
        return self.capacity_bytes - self.used_bytes - self._reserved_bytes

    @property
    def reserved_bytes(self) -> float:
        """Bytes reserved by writes currently in flight."""
        return self._reserved_bytes

    @property
    def n_files(self) -> int:
        """Number of files in the namespace."""
        return len(self._files)

    @property
    def metadata_ops(self) -> int:
        """Total metadata operations served."""
        return self._metadata_ops

    @property
    def bytes_written(self) -> float:
        """Total bytes ever moved through the write path."""
        return self.write_pipe.bytes_moved

    @property
    def bytes_read(self) -> float:
        """Total bytes ever moved through the read path."""
        return self.read_pipe.bytes_moved

    @property
    def current_throughput(self) -> float:
        """Instantaneous aggregate data rate (read + write) in bytes/s."""
        return self.write_pipe.current_rate + self.read_pipe.current_rate

    @property
    def fill_ratio(self) -> float:
        """Fraction of total capacity holding committed data, in [0, 1]."""
        return self.used_bytes / self.capacity_bytes

    def ost_fill_fractions(self) -> tuple[float, ...]:
        """Per-OST fill fraction, derived from the live namespace.

        Each file spreads its bytes evenly over the ``stripe_count`` OSTs
        starting at its ``stripe_start`` (mod the OST count), so deletes and
        overwrites stay consistent with :attr:`used_bytes` by construction.
        """
        n = len(self.osts)
        used = [0.0] * n
        for record in self._files.values():
            per_stripe = record.size / record.stripe_count
            for k in range(record.stripe_count):
                used[(record.stripe_start + k) % n] += per_stripe
        return tuple(
            used[i] / self.osts[i].capacity_bytes for i in range(n)
        )

    def stat(self, path: str) -> FileRecord:
        """Namespace record for ``path``."""
        try:
            return self._files[path]
        except KeyError:
            raise StorageError(f"no such file: {path!r}") from None

    def exists(self, path: str) -> bool:
        """True if ``path`` is in the namespace."""
        return path in self._files

    def listdir(self, prefix: str = "") -> list[str]:
        """All paths starting with ``prefix``, sorted."""
        return sorted(p for p in self._files if p.startswith(prefix))

    # ------------------------------------------------------------- processes

    def _metadata_op(self) -> Generator:
        req = self.mds.request()
        try:
            yield req
            yield self.sim.timeout(self.metadata_latency)
        finally:
            # Runs even when the waiting process is interrupted mid-flight:
            # a granted slot is handed to the next waiter, a still-queued
            # request is cancelled — the server slot never leaks.
            self.mds.release(req)
        self._metadata_ops += 1
        obs.counter("repro_storage_metadata_ops_total")

    def write(
        self,
        path: str,
        nbytes: float,  # repro-unit: nbytes=bytes
        stripe_count: Optional[int] = None,
        overwrite: bool = False,
    ) -> Generator[object, object, FileRecord]:
        """DES process: create/extend ``path`` with ``nbytes`` of data.

        With ``overwrite=True`` the file's contents are *replaced* rather
        than appended — the restart-safe mode checkpoint rewrites use.
        Returns the file's namespace record.  Raises
        :class:`~repro.errors.StorageFullError` *before* moving any data if
        the write cannot fit.  When a :attr:`retry_policy` is installed,
        transient failures re-attempt the whole operation with backoff.
        """
        if nbytes < 0:
            raise StorageError(f"negative write size: {nbytes}")
        stripes = stripe_count or self.default_stripe_count
        if not 1 <= stripes <= len(self.osts):
            raise StorageError(
                f"stripe_count {stripes} outside [1, {len(self.osts)}]"
            )
        if self.retry_policy is None:
            record = yield from self._write_attempt(path, nbytes, stripes, overwrite)
        else:
            record = yield from self.retry_policy.run(
                self.sim,
                lambda: self._write_attempt(path, nbytes, stripes, overwrite),
                self.retry_rng,
                op="write",
            )
        return record

    def _write_attempt(
        self, path: str, nbytes: float, stripes: int, overwrite: bool
    ) -> Generator[object, object, FileRecord]:
        """One crash-consistent write attempt.

        Capacity is *reserved* before any data moves and released when the
        attempt leaves (success or failure), so concurrent writes cannot
        jointly overcommit; on interrupt/failure the in-flight transfer is
        cancelled, rolling its partial bytes back out of ``bytes_written``
        so the byte counters and the namespace never disagree.
        """
        if self.fault_gate is not None:
            self.fault_gate.check("write", path)
        existing = self._files.get(path)
        replaced = existing.size if (overwrite and existing is not None) else 0.0
        needed = max(0.0, nbytes - replaced)
        if needed > self.free_bytes:
            raise StorageFullError(
                f"write of {nbytes:.3e} B exceeds free capacity {self.free_bytes:.3e} B"
            )
        self._reserved_bytes += needed
        transfer = None
        try:
            yield from self._metadata_op()
            cap = self.osts[0].stripe_cap(stripes, write=True)
            if nbytes > 0:
                transfer = self.write_pipe.transfer(nbytes, cap=cap, tag=path)
                yield transfer
        except BaseException:
            if transfer is not None:
                self.write_pipe.cancel(transfer)
            raise
        finally:
            self._reserved_bytes -= needed
        record = self._files.get(path)
        if record is None:
            record = FileRecord(
                path,
                created_at=self.sim.now,
                stripe_count=stripes,
                stripe_start=self._stripe_cursor,
            )
            self._stripe_cursor = (self._stripe_cursor + stripes) % len(self.osts)
            self._files[path] = record
        if overwrite:
            record.size = float(nbytes)
        else:
            record.size += nbytes
        record.n_writes += 1
        obs.counter("repro_storage_writes_total")
        obs.counter("repro_storage_written_bytes", nbytes)
        # Timestamped (sim-clock) completion event so the span profiler can
        # attribute written bytes to the enclosing span/phase window.
        obs.event("storage_write", t=self.sim.now, path=path, bytes=float(nbytes))
        return record

    def read(self, path: str, nbytes: Optional[float] = None) -> Generator[object, object, float]:
        # repro-unit: nbytes=bytes
        """DES process: read ``nbytes`` (default: whole file) from ``path``."""
        record = self.stat(path)
        size = record.size if nbytes is None else float(nbytes)
        if size < 0:
            raise StorageError(f"negative read size: {size}")
        if size > record.size:
            raise StorageError(
                f"read of {size:.3e} B beyond EOF of {path!r} ({record.size:.3e} B)"
            )
        if self.retry_policy is None:
            result = yield from self._read_attempt(path, record, size)
        else:
            result = yield from self.retry_policy.run(
                self.sim,
                lambda: self._read_attempt(path, record, size),
                self.retry_rng,
                op="read",
            )
        return result

    def _read_attempt(
        self, path: str, record: FileRecord, size: float
    ) -> Generator[object, object, float]:
        if self.fault_gate is not None:
            self.fault_gate.check("read", path)
        transfer = None
        try:
            yield from self._metadata_op()
            cap = self.osts[0].stripe_cap(record.stripe_count, write=False)
            if size > 0:
                transfer = self.read_pipe.transfer(size, cap=cap, tag=path)
                yield transfer
        except BaseException:
            if transfer is not None:
                self.read_pipe.cancel(transfer)
            raise
        record.n_reads += 1
        obs.counter("repro_storage_reads_total")
        obs.counter("repro_storage_read_bytes", size)
        obs.event("storage_read", t=self.sim.now, path=path, bytes=float(size))
        return size

    def delete(self, path: str) -> Generator:
        """DES process: remove ``path`` (metadata-only cost)."""
        self.stat(path)
        yield from self._metadata_op()
        del self._files[path]


class StorageCluster:
    """Filesystem + power model + metered PDU, as racked in the paper."""

    def __init__(
        self,
        sim: Simulator,
        *legacy,
        config=None,
        filesystem=_UNSET,
        power_model=_UNSET,
        name=_UNSET,
    ) -> None:
        """Build a storage rack from keywords and/or a scenario sub-config.

        ``config`` (a duck-typed :class:`repro.scenario.schema.StorageConfig`)
        shapes the default-built filesystem; an explicit ``filesystem=``
        wins.  Positional arguments after ``sim`` are deprecated
        (warn-once) — see ``docs/MIGRATION.md``.
        """
        values = {"filesystem": filesystem, "power_model": power_model, "name": name}
        if legacy:
            _merge_legacy_positionals(
                "StorageCluster(sim, ...)",
                values,
                legacy,
                "keyword arguments or config=StorageConfig(...)",
            )
        filesystem = None if values["filesystem"] is _UNSET else values["filesystem"]
        power_model = None if values["power_model"] is _UNSET else values["power_model"]
        name = "storage" if values["name"] is _UNSET else values["name"]
        if filesystem is None:
            filesystem = (
                LustreFileSystem(sim, config=config)
                if config is not None
                else LustreFileSystem(sim)
            )
        self.sim = sim
        self.name = name
        self.fs = filesystem
        self.power_model = power_model if power_model is not None else StoragePowerModel(
            rated_bandwidth=self.fs.write_pipe.capacity
        )
        self.power_signal = PowerSignal(
            self.power_model.power(0.0), start_time=sim.now, name=name
        )
        self.pdu = MeteredPDU(f"{name}-pdu")
        self.pdu.attach(self.power_signal)
        # Observe both pipes; either change re-evaluates total throughput.
        self.fs.write_pipe.on_rate_change = self._on_rate_change
        self.fs.read_pipe.on_rate_change = self._on_rate_change

    def _on_rate_change(self, time: float, _rate: float) -> None:
        self.power_signal.set(time, self.power_model.power(self.fs.current_throughput))

    @property
    def current_power(self) -> float:
        """Instantaneous rack power in watts."""
        return self.power_model.power(self.fs.current_throughput)

    def read_pdu(self, t0: float, t1: float):
        """The Raritan PDU's 1-minute-averaged trace over ``[t0, t1]``."""
        return self.pdu.read(t0, t1)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<StorageCluster {self.name!r}: {self.fs.n_files} files, "
            f"{self.fs.used_bytes / TB:.2f}/{self.fs.capacity_bytes / TB:.1f} TB>"
        )
