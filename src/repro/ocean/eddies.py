"""Eddy detection and tracking (the paper's visualization/analysis task).

Detection follows Woodring et al. (the paper's reference [27]): threshold the
Okubo-Weiss field at ``-0.2 σ_W``, take connected components (with periodic
wrap-around merging on the mini model's grid), and summarize each component
as an :class:`Eddy` feature.  Tracking greedily links detections in
consecutive frames by nearest (periodic) centroid distance, producing
:class:`EddyTrack` objects — eddies in the real ocean "exist for hundreds of
days while traveling hundreds of kilometers" (Section VII), and the tracking
rate requirement is exactly what drives the paper's sampling-rate what-ifs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np
from scipy import ndimage

from repro.errors import ConfigurationError
from repro.ocean.okubo_weiss import DEFAULT_THRESHOLD_FACTOR, okubo_weiss_threshold

__all__ = ["Eddy", "EddyTrack", "detect_eddies", "track_eddies"]


@dataclass(frozen=True)
class Eddy:
    """A single detected eddy in one frame."""

    #: Centroid in grid coordinates ``(row, col)`` (fractional).
    center: tuple[float, float]
    #: Number of grid cells in the core.
    area_cells: int
    #: Most negative Okubo-Weiss value inside the core (the "amplitude").
    min_w: float
    #: Sign of the core-mean vorticity: +1 cyclonic, -1 anticyclonic.
    rotation_sign: int
    #: Effective radius in cells (radius of the equal-area disk).
    radius_cells: float
    #: Frame index the eddy was detected in.
    frame: int = 0

    def __post_init__(self) -> None:
        if self.area_cells < 1:
            raise ConfigurationError(f"eddy with no cells: {self.area_cells}")
        if self.rotation_sign not in (-1, 0, 1):
            raise ConfigurationError(f"rotation sign must be -1/0/+1: {self.rotation_sign}")


@dataclass
class EddyTrack:
    """A linked sequence of the same eddy across frames."""

    eddies: list[Eddy] = field(default_factory=list)

    @property
    def birth_frame(self) -> int:
        """Frame of first detection."""
        return self.eddies[0].frame

    @property
    def death_frame(self) -> int:
        """Frame of last detection."""
        return self.eddies[-1].frame

    @property
    def lifetime_frames(self) -> int:
        """Number of frames the eddy persisted."""
        return self.death_frame - self.birth_frame + 1

    def path_length(self, shape: Optional[tuple[int, int]] = None) -> float:
        """Total centroid travel distance in cells (periodic if ``shape`` given)."""
        total = 0.0
        for a, b in zip(self.eddies[:-1], self.eddies[1:]):
            total += _centroid_distance(a.center, b.center, shape)
        return total


def _centroid_distance(
    a: tuple[float, float], b: tuple[float, float], shape: Optional[tuple[int, int]]
) -> float:
    dr = a[0] - b[0]
    dc = a[1] - b[1]
    if shape is not None:
        ny, nx = shape
        dr = dr - round(dr / ny) * ny
        dc = dc - round(dc / nx) * nx
    return float(np.hypot(dr, dc))


def _merge_periodic_labels(labels: np.ndarray, n: int) -> np.ndarray:
    """Union labels that touch across the periodic boundaries."""
    if n == 0:
        return labels
    parent = np.arange(n + 1)

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(a: int, b: int) -> None:
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[max(ra, rb)] = min(ra, rb)

    top, bottom = labels[0, :], labels[-1, :]
    for a, b in zip(top, bottom):
        if a and b:
            union(int(a), int(b))
    left, right = labels[:, 0], labels[:, -1]
    for a, b in zip(left, right):
        if a and b:
            union(int(a), int(b))
    # Path-compress everything and relabel densely.
    roots = np.array([find(i) for i in range(n + 1)])
    return roots[labels]


def _periodic_centroid(rows: np.ndarray, cols: np.ndarray, shape: tuple[int, int]) -> tuple[float, float]:
    """Centroid of a point set on a torus (circular mean per axis)."""
    ny, nx = shape
    theta_r = rows * (2.0 * np.pi / ny)
    theta_c = cols * (2.0 * np.pi / nx)
    mr = np.arctan2(np.mean(np.sin(theta_r)), np.mean(np.cos(theta_r)))
    mc = np.arctan2(np.mean(np.sin(theta_c)), np.mean(np.cos(theta_c)))
    return (float(mr % (2 * np.pi)) * ny / (2 * np.pi), float(mc % (2 * np.pi)) * nx / (2 * np.pi))


def detect_eddies(
    w: np.ndarray,
    vorticity: Optional[np.ndarray] = None,
    threshold: Optional[float] = None,
    threshold_factor: float = DEFAULT_THRESHOLD_FACTOR,
    min_cells: int = 4,
    periodic: bool = True,
    frame: int = 0,
) -> list[Eddy]:
    """Detect eddy cores in an Okubo-Weiss field.

    Parameters
    ----------
    w:
        The Okubo-Weiss field (``(y, x)`` indexed).
    vorticity:
        Optional relative-vorticity field to attribute a rotation sign; when
        omitted all eddies get sign 0.
    threshold:
        Absolute cut; cells with ``W < threshold`` are core candidates.
        Defaults to ``-threshold_factor * std(W)``.
    min_cells:
        Discard components smaller than this (noise suppression).
    periodic:
        Merge components across wrap-around boundaries.
    frame:
        Frame index stamped onto the detections (for tracking).
    """
    w = np.asarray(w, dtype=float)
    if w.ndim != 2:
        raise ConfigurationError(f"W must be 2-D, got shape {w.shape}")
    if min_cells < 1:
        raise ConfigurationError(f"min_cells must be >= 1, got {min_cells}")
    cut = okubo_weiss_threshold(w, threshold_factor) if threshold is None else float(threshold)
    mask = w < cut
    labels, n = ndimage.label(mask)
    if periodic:
        labels = _merge_periodic_labels(labels, n)
    eddies: list[Eddy] = []
    for lab in np.unique(labels):
        if lab == 0:
            continue
        rows, cols = np.nonzero(labels == lab)
        if rows.size < min_cells:
            continue
        if periodic:
            center = _periodic_centroid(rows, cols, w.shape)
        else:
            center = (float(rows.mean()), float(cols.mean()))
        core_w = w[rows, cols]
        sign = 0
        if vorticity is not None:
            zeta_mean = float(np.asarray(vorticity)[rows, cols].mean())
            sign = int(np.sign(zeta_mean)) if zeta_mean != 0.0 else 0
        eddies.append(
            Eddy(
                center=center,
                area_cells=int(rows.size),
                min_w=float(core_w.min()),
                rotation_sign=sign,
                radius_cells=float(np.sqrt(rows.size / np.pi)),
                frame=frame,
            )
        )
    eddies.sort(key=lambda e: e.min_w)
    return eddies


def track_eddies(
    frames: Sequence[list[Eddy]],
    max_distance_cells: float = 10.0,
    shape: Optional[tuple[int, int]] = None,
) -> list[EddyTrack]:
    """Link per-frame detections into tracks by nearest-centroid matching.

    Greedy bipartite matching between consecutive frames: closest pairs link
    first; links longer than ``max_distance_cells`` are rejected, ending the
    track.  Unmatched detections start new tracks.  ``shape`` enables
    periodic distances.
    """
    if max_distance_cells <= 0:
        raise ConfigurationError(f"max_distance must be positive: {max_distance_cells}")
    tracks: list[EddyTrack] = []
    open_tracks: dict[int, EddyTrack] = {}
    for frame_eddies in frames:
        if open_tracks and frame_eddies:
            candidates = []
            for tid, track in open_tracks.items():
                last = track.eddies[-1]
                for j, eddy in enumerate(frame_eddies):
                    d = _centroid_distance(last.center, eddy.center, shape)
                    if d <= max_distance_cells:
                        candidates.append((d, tid, j))
            candidates.sort(key=lambda c: c[0])
            used_tracks: set[int] = set()
            used_eddies: set[int] = set()
            matches: dict[int, int] = {}
            for d, tid, j in candidates:
                if tid in used_tracks or j in used_eddies:
                    continue
                used_tracks.add(tid)
                used_eddies.add(j)
                matches[j] = tid
        else:
            matches = {}
            used_tracks = set()
        next_open: dict[int, EddyTrack] = {}
        for j, eddy in enumerate(frame_eddies):
            tid = matches.get(j)
            if tid is not None:
                track = open_tracks[tid]
                track.eddies.append(eddy)
                next_open[tid] = track
            else:
                track = EddyTrack(eddies=[eddy])
                tracks.append(track)
                next_open[id(track)] = track
        open_tracks = next_open
    return tracks
