"""Campaign configuration, cost model and the runnable mini driver.

:class:`MPASOceanConfig` describes a campaign the way the paper does: grid
resolution (60 km), timestep (30 simulated minutes), duration (6 simulated
months), and the variables written per output sample.  From these it derives
cell counts, timestep counts and raw-output sizes — e.g. the paper's
reference configuration writes ≈0.47 GB per sample, giving ≈85 GB at
24-hourly sampling (paper measured 80 GB) and ≈28 GB at 72-hourly (paper: 27).

:class:`OceanCostModel` converts the configuration into per-timestep compute
cost on a given cluster, calibrated so the 60 km / 6-month run takes 603
compute-seconds on the 150-node *Caddy* — the paper's measured ``t_sim``.

:class:`MiniOceanDriver` is the *real* executable version: it advances the
barotropic solver and exposes the same named output variables as actual
arrays, for the real-mode pipelines, examples and tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro import obs
from repro.errors import ConfigurationError
from repro.ocean.barotropic import BarotropicSolver
from repro.ocean.grid import SpectralGrid, icosahedral_cell_count
from repro.ocean.okubo_weiss import okubo_weiss
from repro.paper import TIMESTEP_SECONDS
from repro.units import HOUR, MONTH

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.machine import ComputeCluster

__all__ = ["MPASOceanConfig", "OceanCostModel", "MiniOceanDriver"]

#: Variables written per output sample: six full-depth 3-D fields (the MPAS-O
#: prognostics plus the derived Okubo-Weiss field) and two 2-D fields, 8-byte
#: floats each.  This puts the raw sample at ≈0.47 GB, so 180 samples ≈ 85 GB
#: and 60 samples ≈ 28 GB — within ~6 % of the paper's measured 80/27 GB.
DEFAULT_3D_VARS = ("temperature", "salinity", "layer_thickness", "u", "v", "okubo_weiss")
DEFAULT_2D_VARS = ("ssh", "okubo_weiss_surface")


@dataclass(frozen=True)
class MPASOceanConfig:
    """A campaign-scale MPAS-O configuration (the paper's Section IV-B)."""

    resolution_km: float = 60.0
    n_vertical_levels: int = 60
    timestep_seconds: float = TIMESTEP_SECONDS
    duration_seconds: float = 6 * MONTH
    vars_3d: tuple[str, ...] = DEFAULT_3D_VARS
    vars_2d: tuple[str, ...] = DEFAULT_2D_VARS
    bytes_per_value: int = 8

    def __post_init__(self) -> None:
        if self.resolution_km <= 0:
            raise ConfigurationError(f"resolution must be positive: {self.resolution_km}")
        if self.n_vertical_levels < 1:
            raise ConfigurationError(f"need >= 1 vertical level: {self.n_vertical_levels}")
        if self.timestep_seconds <= 0:
            raise ConfigurationError(f"timestep must be positive: {self.timestep_seconds}")
        if self.duration_seconds <= 0:
            raise ConfigurationError(f"duration must be positive: {self.duration_seconds}")
        if self.bytes_per_value not in (4, 8):
            raise ConfigurationError(f"bytes_per_value must be 4 or 8: {self.bytes_per_value}")

    @property
    def n_cells(self) -> int:
        """Horizontal cell count of the quasi-uniform mesh (163,842 at 60 km)."""
        return icosahedral_cell_count(self.resolution_km)

    @property
    def n_timesteps(self) -> int:
        """Total simulation timesteps (8,640 for the reference run)."""
        return int(round(self.duration_seconds / self.timestep_seconds))

    @property
    def bytes_per_sample(self) -> int:
        """Raw output bytes per written sample (≈0.47 GB for the reference)."""
        per_cell = (
            len(self.vars_3d) * self.n_vertical_levels + len(self.vars_2d)
        ) * self.bytes_per_value
        return self.n_cells * per_cell

    def steps_between_outputs(self, sample_interval_hours: float) -> int:
        """Timesteps between output samples at the given cadence."""
        if sample_interval_hours <= 0:
            raise ConfigurationError(
                f"sample interval must be positive: {sample_interval_hours}"
            )
        steps = sample_interval_hours * HOUR / self.timestep_seconds
        k = int(round(steps))
        if k < 1 or abs(steps - k) > 1e-9:
            raise ConfigurationError(
                f"sample interval {sample_interval_hours} h is not a whole number "
                f"of {self.timestep_seconds:.0f}-second timesteps"
            )
        return k

    def n_outputs(self, sample_interval_hours: float) -> int:
        """Number of output samples over the campaign at the given cadence."""
        return self.n_timesteps // self.steps_between_outputs(sample_interval_hours)

    def scaled(self, duration_seconds: float) -> "MPASOceanConfig":
        """The same configuration run for a different simulated duration."""
        return MPASOceanConfig(
            resolution_km=self.resolution_km,
            n_vertical_levels=self.n_vertical_levels,
            timestep_seconds=self.timestep_seconds,
            duration_seconds=duration_seconds,
            vars_3d=self.vars_3d,
            vars_2d=self.vars_2d,
            bytes_per_value=self.bytes_per_value,
        )


@dataclass(frozen=True)
class OceanCostModel:
    """Per-timestep compute cost of the ocean solver on a cluster.

    ``cost_per_cell_level_node_seconds`` is the node-seconds of compute per
    cell per vertical level per timestep.  The default is calibrated so the
    paper's reference run (163,842 cells × 60 levels × 8,640 steps on 150
    nodes) takes 603 seconds of pure simulation:

        603 s / 8640 steps × 150 nodes / (163842 × 60) ≈ 1.0648e-6
    """

    cost_per_cell_level_node_seconds: float = 603.0 / 8_640.0 * 150.0 / (163_842.0 * 60.0)

    def __post_init__(self) -> None:
        if self.cost_per_cell_level_node_seconds <= 0:
            raise ConfigurationError("cost coefficient must be positive")

    def seconds_per_step(self, config: MPASOceanConfig, n_nodes: int) -> float:
        """Wall seconds per simulation timestep on ``n_nodes`` nodes."""
        if n_nodes < 1:
            raise ConfigurationError(f"need >= 1 node, got {n_nodes}")
        work = config.n_cells * config.n_vertical_levels
        return self.cost_per_cell_level_node_seconds * work / n_nodes

    def simulation_seconds(self, config: MPASOceanConfig, n_nodes: int) -> float:
        """Wall seconds of the pure-simulation phase for a whole campaign."""
        return self.seconds_per_step(config, n_nodes) * config.n_timesteps


class MiniOceanDriver:
    """The runnable mini ocean model exposing MPAS-O-style output variables.

    Each output variable is a real 2-D array on the mini grid: the velocity
    components and Okubo-Weiss come straight from the solver; temperature,
    salinity and SSH are diagnostic proxies derived from the streamfunction
    (warm/fresh/elevated cores in anticyclones), so the rendered images and
    written files carry physically coherent structure.
    """

    def __init__(
        self,
        nx: int = 128,
        ny: int = 64,
        length_m: float = 2.0e6,
        timestep_seconds: float = TIMESTEP_SECONDS,
        seed: int = 0,
        viscosity: float = 5.0e7,
    ) -> None:
        self.grid = SpectralGrid(nx, ny, length_m)
        self.solver = BarotropicSolver(self.grid, viscosity=viscosity, seed=seed)
        self.timestep_seconds = float(timestep_seconds)
        # Keep the advective CFL comfortable for the default RMS speed.
        cfl = self.solver.cfl_number(self.timestep_seconds)
        if cfl > 0.8:
            raise ConfigurationError(
                f"timestep {timestep_seconds}s gives CFL={cfl:.2f} > 0.8 on this grid"
            )

    @property
    def time(self) -> float:
        """Simulated seconds elapsed."""
        return self.solver.time

    @property
    def step_count(self) -> int:
        """Timesteps taken."""
        return self.solver.step_count

    def advance(self, n_steps: int = 1) -> None:
        """Advance the mini model ``n_steps`` timesteps."""
        with obs.span("ocean.advance", n_steps=n_steps):
            self.solver.run(n_steps, self.timestep_seconds)
        obs.counter("repro_ocean_steps_total", n_steps)

    def okubo_weiss_field(self) -> np.ndarray:
        """The current Okubo-Weiss field on the mini grid."""
        u, v = self.solver.velocity()
        return okubo_weiss(u, v, self.grid.dx, self.grid.dy)

    def output_fields(self) -> dict[str, np.ndarray]:
        """The named output variables as real arrays (C-contiguous, float64)."""
        u, v = self.solver.velocity()
        psi = self.solver.streamfunction()
        zeta = self.solver.vorticity()
        w = okubo_weiss(u, v, self.grid.dx, self.grid.dy)
        psi_norm = psi / (np.max(np.abs(psi)) + 1e-30)
        return {
            "u": u,
            "v": v,
            "vorticity": zeta,
            "okubo_weiss": w,
            # Diagnostic proxies: anticyclonic (high-ψ) cores are warm,
            # fresh and elevated — enough structure to make the output
            # files and images physically coherent.
            "temperature": 15.0 + 5.0 * psi_norm,
            "salinity": 35.0 - 0.5 * psi_norm,
            "layer_thickness": 100.0 + 10.0 * psi_norm,
            "ssh": 0.5 * psi_norm,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<MiniOceanDriver {self.grid.nx}x{self.grid.ny} t={self.time:.0f}s>"
