"""Mini ocean model: the MPAS-O stand-in.

Two layers:

* A *real, runnable* pseudo-spectral barotropic-vorticity solver
  (:mod:`repro.ocean.barotropic`) on a doubly periodic grid.  It produces
  genuinely turbulent, eddying velocity fields from which the Okubo-Weiss
  metric (:mod:`repro.ocean.okubo_weiss`) and eddy detections/tracks
  (:mod:`repro.ocean.eddies`) are computed — the full analysis code path of
  the paper's visualization task.
* A *campaign-scale configuration and cost model*
  (:mod:`repro.ocean.driver`) describing the paper's 60 km global MPAS-O
  setup (cell counts, output sizes, per-step compute cost on a given
  cluster), used by the simulated platform.
"""

from repro.ocean.barotropic import BarotropicSolver
from repro.ocean.diagnostics import SimulationMonitor, energy_spectrum, spectral_slope
from repro.ocean.driver import MPASOceanConfig, OceanCostModel, MiniOceanDriver
from repro.ocean.eddies import Eddy, EddyTrack, detect_eddies, track_eddies
from repro.ocean.grid import SpectralGrid, icosahedral_cell_count
from repro.ocean.okubo_weiss import okubo_weiss, okubo_weiss_classification
from repro.ocean.tracer import TracerField

__all__ = [
    "BarotropicSolver",
    "Eddy",
    "EddyTrack",
    "MPASOceanConfig",
    "MiniOceanDriver",
    "OceanCostModel",
    "SimulationMonitor",
    "SpectralGrid",
    "TracerField",
    "detect_eddies",
    "energy_spectrum",
    "icosahedral_cell_count",
    "okubo_weiss",
    "okubo_weiss_classification",
    "spectral_slope",
    "track_eddies",
]
