"""The Okubo-Weiss metric (the paper's eddy-identification field).

For a 2-D velocity field ``(u, v)``:

.. math::

    W = s_n^2 + s_s^2 - \\omega^2

with normal strain ``s_n = u_x - v_y``, shear strain ``s_s = v_x + u_y`` and
relative vorticity ``ω = v_x - u_y``.  Strongly negative ``W`` marks
rotation-dominated flow (eddy cores, the green regions of the paper's
Fig. 2); positive ``W`` marks strain/shear-dominated flow (blue regions).

Derivatives are centered finite differences; the grid is treated as periodic
(matching the mini model) unless ``periodic=False``.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "velocity_gradients",
    "okubo_weiss",
    "okubo_weiss_threshold",
    "okubo_weiss_classification",
]

#: Conventional eddy threshold: W < -0.2 times the spatial std-dev of W
#: (Woodring et al., the paper's reference [27]).
DEFAULT_THRESHOLD_FACTOR = 0.2


def _dd(field: np.ndarray, axis: int, spacing: float, periodic: bool) -> np.ndarray:
    """Centered first derivative along ``axis``."""
    if periodic:
        return (np.roll(field, -1, axis) - np.roll(field, 1, axis)) / (2.0 * spacing)
    return np.gradient(field, spacing, axis=axis)


def velocity_gradients(
    u: np.ndarray, v: np.ndarray, dx: float, dy: float, periodic: bool = True
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Return ``(u_x, u_y, v_x, v_y)`` for ``(y, x)``-indexed fields."""
    u = np.asarray(u, dtype=float)
    v = np.asarray(v, dtype=float)
    if u.shape != v.shape or u.ndim != 2:
        raise ConfigurationError(f"u/v must be matching 2-D fields, got {u.shape}, {v.shape}")
    if dx <= 0 or dy <= 0:
        raise ConfigurationError(f"grid spacings must be positive: dx={dx}, dy={dy}")
    u_x = _dd(u, 1, dx, periodic)
    u_y = _dd(u, 0, dy, periodic)
    v_x = _dd(v, 1, dx, periodic)
    v_y = _dd(v, 0, dy, periodic)
    return u_x, u_y, v_x, v_y


def okubo_weiss(
    u: np.ndarray, v: np.ndarray, dx: float, dy: float, periodic: bool = True
) -> np.ndarray:
    """The Okubo-Weiss field ``W = s_n² + s_s² - ω²`` (1/s²)."""
    u_x, u_y, v_x, v_y = velocity_gradients(u, v, dx, dy, periodic)
    normal_strain = u_x - v_y
    shear_strain = v_x + u_y
    vorticity = v_x - u_y
    return normal_strain**2 + shear_strain**2 - vorticity**2


def okubo_weiss_threshold(w: np.ndarray, factor: float = DEFAULT_THRESHOLD_FACTOR) -> float:
    """The eddy-core threshold ``-factor * std(W)`` (negative by convention)."""
    if factor < 0:
        raise ConfigurationError(f"threshold factor must be >= 0, got {factor}")
    return -factor * float(np.std(w))


def okubo_weiss_classification(
    w: np.ndarray, factor: float = DEFAULT_THRESHOLD_FACTOR
) -> np.ndarray:
    """Classify each cell: -1 rotation-dominated, +1 strain-dominated, 0 background.

    Cells with ``W`` below ``-factor*std(W)`` are rotation cores (eddies);
    cells above ``+factor*std(W)`` are strain/shear regions; the rest are
    background.  This is the green/blue segmentation of the paper's Fig. 2.
    """
    w = np.asarray(w, dtype=float)
    cut = factor * float(np.std(w))
    out = np.zeros(w.shape, dtype=np.int8)
    out[w < -cut] = -1
    out[w > cut] = 1
    return out
