"""Physical diagnostics for the mini ocean model.

Used by tests and examples to check the solver behaves like 2-D turbulence
(the regime that makes the Okubo-Weiss analysis meaningful) and by the
monitoring use case of Section II-B — "enable scientists to quickly identify
incorrect initial conditions in a simulation and abandon these incorrect
simulations early on":

* :func:`energy_spectrum` — isotropic kinetic-energy spectrum E(k);
* :func:`spectral_slope` — fitted inertial-range slope (≈ -3 for the
  enstrophy cascade);
* :class:`SimulationMonitor` — per-step invariant watchdog that flags NaNs,
  energy blow-ups and CFL violations, the in-situ "abandon early" hook.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.ocean.barotropic import BarotropicSolver

__all__ = ["energy_spectrum", "spectral_slope", "HealthReport", "SimulationMonitor"]


def energy_spectrum(solver: BarotropicSolver) -> tuple[np.ndarray, np.ndarray]:
    """Isotropic kinetic-energy spectrum ``(k, E(k))``.

    ``k`` is the integer wavenumber magnitude in box units; ``E`` integrates
    to the domain-mean kinetic energy (Parseval, up to binning).
    """
    g = solver.grid
    u, v = solver.velocity()
    u_hat = np.fft.rfft2(u) / (g.nx * g.ny)
    v_hat = np.fft.rfft2(v) / (g.nx * g.ny)
    # rfft stores half the spectrum: double the interior columns.
    weight = np.full(u_hat.shape, 2.0)
    weight[:, 0] = 1.0
    if g.nx % 2 == 0:
        weight[:, -1] = 1.0
    energy_density = 0.5 * weight * (np.abs(u_hat) ** 2 + np.abs(v_hat) ** 2)
    k0 = 2.0 * np.pi / g.length_m
    kmag = np.sqrt(g.k2) / k0
    bins = np.arange(0.5, kmag.max() + 1.0)
    which = np.digitize(kmag.ravel(), bins)
    spectrum = np.bincount(which, weights=energy_density.ravel())
    k = np.arange(spectrum.size, dtype=float)
    return k[1:], spectrum[1:]


def spectral_slope(
    solver: BarotropicSolver, k_lo: float = 8.0, k_hi: Optional[float] = None
) -> float:
    """Log-log slope of E(k) over the inertial range ``[k_lo, k_hi]``."""
    if k_lo <= 0:
        raise ConfigurationError(f"k_lo must be positive: {k_lo}")
    k, e = energy_spectrum(solver)
    hi = k_hi if k_hi is not None else (2.0 / 3.0) * k.max()
    if hi <= k_lo:
        raise ConfigurationError(f"empty fit range [{k_lo}, {hi}]")
    mask = (k >= k_lo) & (k <= hi) & (e > 0)
    if mask.sum() < 3:
        raise ConfigurationError("too few spectral bins in the fit range")
    slope, _ = np.polyfit(np.log(k[mask]), np.log(e[mask]), 1)
    return float(slope)


@dataclass
class HealthReport:
    """Outcome of one monitor check."""

    step: int
    time: float
    kinetic_energy: float
    enstrophy: float
    cfl: float
    healthy: bool
    reason: str = ""


@dataclass
class SimulationMonitor:
    """In-situ watchdog: catch a diverging run before it wastes machine time.

    The Section II-B monitoring use case.  ``check`` is cheap (a few
    reductions) and is meant to be called from a Catalyst hook.
    """

    #: Abort if kinetic energy grows beyond this multiple of the first check.
    max_energy_growth: float = 4.0
    #: Abort if the advective CFL number exceeds this.
    max_cfl: float = 1.0
    history: list[HealthReport] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.max_energy_growth <= 1.0:
            raise ConfigurationError(
                f"energy-growth bound must exceed 1: {self.max_energy_growth}"
            )
        if self.max_cfl <= 0:
            raise ConfigurationError(f"CFL bound must be positive: {self.max_cfl}")

    def check(self, solver: BarotropicSolver, dt: float) -> HealthReport:
        """Inspect the solver state; appends and returns a report."""
        ke = solver.kinetic_energy()
        ens = solver.enstrophy()
        cfl = solver.cfl_number(dt)
        healthy = True
        reason = ""
        if not np.isfinite(ke) or not np.isfinite(ens):
            healthy, reason = False, "non-finite state"
        elif self.history and ke > self.max_energy_growth * self.history[0].kinetic_energy:
            healthy, reason = False, (
                f"energy grew {ke / self.history[0].kinetic_energy:.1f}x "
                f"(bound {self.max_energy_growth:g}x)"
            )
        elif cfl > self.max_cfl:
            healthy, reason = False, f"CFL {cfl:.2f} > {self.max_cfl:g}"
        report = HealthReport(
            step=solver.step_count,
            time=solver.time,
            kinetic_energy=ke,
            enstrophy=ens,
            cfl=cfl,
            healthy=healthy,
            reason=reason,
        )
        self.history.append(report)
        return report

    @property
    def ever_unhealthy(self) -> bool:
        """True if any check failed (the abandon-early signal)."""
        return any(not r.healthy for r in self.history)
