"""Grids for the mini ocean model.

* :class:`SpectralGrid` — the doubly periodic Fourier grid the runnable
  solver lives on: wavenumber arrays, spectral derivative operators and the
  2/3-rule dealiasing mask, all precomputed.
* :func:`icosahedral_cell_count` — the cell count of an MPAS-style
  quasi-uniform icosahedral mesh at a given nominal resolution, used by the
  campaign-scale configuration (the paper's 60 km mesh → 163,842 cells).
"""

from __future__ import annotations

import math
from functools import cached_property

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["SpectralGrid", "icosahedral_cell_count", "EARTH_RADIUS_M"]

#: Mean Earth radius in meters.
EARTH_RADIUS_M = 6.371e6


def icosahedral_cell_count(resolution_km: float) -> int:
    """Cell count of the quasi-uniform icosahedral mesh nearest ``resolution_km``.

    MPAS quasi-uniform meshes are recursively refined icosahedra with
    ``10 * 4**n + 2`` cells at refinement level ``n``.  We pick the level
    whose mean cell spacing best matches the requested nominal resolution
    (hexagonal cells of area ``sqrt(3)/2 * d**2``).  At 60 km this yields
    163,842 cells — the paper's grid.
    """
    if resolution_km <= 0:
        raise ConfigurationError(f"resolution must be positive, got {resolution_km}")
    surface = 4.0 * math.pi * EARTH_RADIUS_M**2
    target = surface / (math.sqrt(3.0) / 2.0 * (resolution_km * 1e3) ** 2)
    best_n = max(0, round(math.log(max(target - 2, 10) / 10.0, 4)))
    return 10 * 4**best_n + 2


class SpectralGrid:
    """A doubly periodic ``ny x nx`` grid with precomputed spectral operators.

    Arrays follow the ``(y, x)`` index convention.  Wavenumber arrays are
    shaped for broadcasting against ``rfft2`` output (``ny x (nx//2 + 1)``).
    """

    def __init__(self, nx: int, ny: int, length_m: float = 2.0e6) -> None:
        if nx < 8 or ny < 8:
            raise ConfigurationError(f"grid too small for dealiasing: {nx}x{ny}")
        if nx % 2 or ny % 2:
            raise ConfigurationError(f"grid dims must be even, got {nx}x{ny}")
        if length_m <= 0:
            raise ConfigurationError(f"domain length must be positive: {length_m}")
        self.nx = nx
        self.ny = ny
        self.length_m = float(length_m)
        self.dx = self.length_m / nx
        self.dy = self.length_m / ny

    @property
    def shape(self) -> tuple[int, int]:
        """Physical-space array shape ``(ny, nx)``."""
        return (self.ny, self.nx)

    @property
    def n_cells(self) -> int:
        """Total cell count."""
        return self.nx * self.ny

    @cached_property
    def kx(self) -> np.ndarray:
        """x-wavenumbers (rad/m), broadcast shape ``(1, nx//2+1)``."""
        return (2.0 * np.pi * np.fft.rfftfreq(self.nx, d=self.dx))[None, :]

    @cached_property
    def ky(self) -> np.ndarray:
        """y-wavenumbers (rad/m), broadcast shape ``(ny, 1)``."""
        return (2.0 * np.pi * np.fft.fftfreq(self.ny, d=self.dy))[:, None]

    @cached_property
    def k2(self) -> np.ndarray:
        """``kx² + ky²`` on the rfft grid."""
        return self.kx**2 + self.ky**2

    @cached_property
    def inv_k2(self) -> np.ndarray:
        """``1 / k²`` with the mean mode zeroed (for Poisson inversion)."""
        k2 = self.k2.copy()
        k2[0, 0] = 1.0
        out = 1.0 / k2
        out[0, 0] = 0.0
        return out

    @cached_property
    def dealias_mask(self) -> np.ndarray:
        """Boolean 2/3-rule mask on the rfft grid."""
        kx_max = (2.0 * np.pi / self.dx) / 2.0
        ky_max = (2.0 * np.pi / self.dy) / 2.0
        return (np.abs(self.kx) <= (2.0 / 3.0) * kx_max) & (
            np.abs(self.ky) <= (2.0 / 3.0) * ky_max
        )

    # ----------------------------------------------------------- transforms

    def to_spectral(self, field: np.ndarray) -> np.ndarray:
        """Forward real FFT of a physical field."""
        if field.shape != self.shape:
            raise ConfigurationError(f"field shape {field.shape} != grid {self.shape}")
        return np.fft.rfft2(field)

    def to_physical(self, spec: np.ndarray) -> np.ndarray:
        """Inverse real FFT back to physical space."""
        return np.fft.irfft2(spec, s=self.shape)

    def ddx(self, spec: np.ndarray) -> np.ndarray:
        """Spectral x-derivative (returns spectral array)."""
        return 1j * self.kx * spec

    def ddy(self, spec: np.ndarray) -> np.ndarray:
        """Spectral y-derivative (returns spectral array)."""
        return 1j * self.ky * spec

    def laplacian(self, spec: np.ndarray) -> np.ndarray:
        """Spectral Laplacian."""
        return -self.k2 * spec

    def coordinates(self) -> tuple[np.ndarray, np.ndarray]:
        """Cell-center coordinate meshes ``(X, Y)`` in meters."""
        x = (np.arange(self.nx) + 0.5) * self.dx
        y = (np.arange(self.ny) + 0.5) * self.dy
        return np.meshgrid(x, y)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SpectralGrid {self.nx}x{self.ny}, L={self.length_m / 1e3:.0f} km>"
