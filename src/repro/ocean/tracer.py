"""Passive tracer advection on the mini ocean.

Eddies matter to climate scientists because they *stir*: heat, salt and
carbon are transported by the same coherent vortices the Okubo-Weiss
analysis tracks.  :class:`TracerField` advects a passive scalar with the
solver's velocity field (pseudo-spectral advection-diffusion, RK4,
integrated alongside the flow), giving the visualization task a physically
meaningful payload — fronts and filaments instead of an analytic proxy.

.. math::

    \\partial_t c + u \\cdot \\nabla c = \\kappa \\nabla^2 c
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ConfigurationError, SimulationError
from repro.ocean.barotropic import BarotropicSolver

__all__ = ["TracerField"]


class TracerField:
    """A passive scalar advected by a :class:`BarotropicSolver`'s flow."""

    def __init__(
        self,
        solver: BarotropicSolver,
        diffusivity: float = 10.0,
        name: str = "tracer",
        initial: Optional[np.ndarray] = None,
    ) -> None:
        if diffusivity < 0:
            raise ConfigurationError(f"negative diffusivity: {diffusivity}")
        self.solver = solver
        self.grid = solver.grid
        self.diffusivity = float(diffusivity)
        self.name = name
        if initial is None:
            self.set_meridional_gradient()
        else:
            self.set_concentration(initial)

    # --------------------------------------------------------------- set-up

    def set_concentration(self, field: np.ndarray) -> None:
        """Load a physical-space concentration field."""
        field = np.asarray(field, dtype=float)
        if field.shape != self.grid.shape:
            raise ConfigurationError(
                f"tracer shape {field.shape} != grid {self.grid.shape}"
            )
        self._c_hat = self.grid.to_spectral(field) * self.grid.dealias_mask

    def set_meridional_gradient(self, low: float = 0.0, high: float = 1.0) -> None:
        """A smooth north-south gradient (the classic stirring experiment).

        Periodic in y via a single cosine mode, so the spectral method sees
        no discontinuity: ``c = mid - amp * cos(2 pi y / L)``... shifted so
        the south edge is ``low`` and mid-domain is ``high``.
        """
        if high <= low:
            raise ConfigurationError(f"need high > low, got [{low}, {high}]")
        _, y = self.grid.coordinates()
        mid = 0.5 * (low + high)
        amp = 0.5 * (high - low)
        self.set_concentration(mid - amp * np.cos(2.0 * np.pi * y / self.grid.length_m))

    # -------------------------------------------------------------- queries

    def concentration(self) -> np.ndarray:
        """The tracer field in physical space."""
        return self.grid.to_physical(self._c_hat)

    def mean(self) -> float:
        """Domain-mean concentration (conserved by advection-diffusion)."""
        return float(self._c_hat[0, 0].real / self.grid.n_cells)

    def variance(self) -> float:
        """Domain variance (destroyed by diffusion, never created)."""
        c = self.concentration()
        return float(np.mean((c - c.mean()) ** 2))

    def gradient_magnitude(self) -> np.ndarray:
        """|∇c| — fronts and filaments produced by eddy stirring."""
        g = self.grid
        cx = g.to_physical(g.ddx(self._c_hat))
        cy = g.to_physical(g.ddy(self._c_hat))
        return np.hypot(cx, cy)

    # -------------------------------------------------------------- stepping

    def _rhs(self, c_hat: np.ndarray, u: np.ndarray, v: np.ndarray) -> np.ndarray:
        g = self.grid
        cx = g.to_physical(g.ddx(c_hat))
        cy = g.to_physical(g.ddy(c_hat))
        advection = g.to_spectral(u * cx + v * cy)
        diffusion = self.diffusivity * g.k2 * c_hat
        return (-advection - diffusion) * g.dealias_mask

    def step(self, dt: float) -> None:
        """Advance the tracer one RK4 step using the solver's *current* flow.

        Call once per solver step (after or before — the flow evolves slowly
        relative to a stable ``dt``).
        """
        if dt <= 0:
            raise ConfigurationError(f"timestep must be positive: {dt}")
        u, v = self.solver.velocity()
        c = self._c_hat
        k1 = self._rhs(c, u, v)
        k2 = self._rhs(c + 0.5 * dt * k1, u, v)
        k3 = self._rhs(c + 0.5 * dt * k2, u, v)
        k4 = self._rhs(c + dt * k3, u, v)
        self._c_hat = c + (dt / 6.0) * (k1 + 2 * k2 + 2 * k3 + k4)
        if not np.isfinite(self._c_hat).all():
            raise SimulationError(f"tracer {self.name!r} diverged")

    def run_with_flow(self, n_steps: int, dt: float) -> None:
        """Co-advance flow and tracer ``n_steps`` steps."""
        if n_steps < 0:
            raise ConfigurationError(f"negative step count: {n_steps}")
        for _ in range(n_steps):
            self.solver.step(dt)
            self.step(dt)
