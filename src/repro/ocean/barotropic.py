"""Pseudo-spectral barotropic vorticity solver.

Solves the 2-D incompressible barotropic vorticity equation on a doubly
periodic domain:

.. math::

    \\partial_t \\zeta + J(\\psi, \\zeta) = -\\nu_h (-\\nabla^2)^p \\zeta,
    \\qquad \\nabla^2 \\psi = \\zeta

with hyperviscous dissipation (order ``p``), 2/3-rule dealiasing and RK4 time
stepping.  Initialized from a McWilliams (1984)-style random energy spectrum,
the flow self-organizes into coherent vortices — the "eddies" of the paper's
visualization task.

This is the runnable stand-in for MPAS-O's ocean dynamics: it produces real
velocity fields with real eddies at laptop scale, exercising the same
downstream path (Okubo-Weiss → detection → rendering) as the paper.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ConfigurationError, SimulationError
from repro.ocean.grid import SpectralGrid

__all__ = ["BarotropicSolver"]


class BarotropicSolver:
    """RK4 pseudo-spectral solver for the barotropic vorticity equation."""

    def __init__(
        self,
        grid: SpectralGrid,
        viscosity: float = 1.0e8,
        hyperviscosity_order: int = 2,
        seed: Optional[int] = 0,
    ) -> None:
        if viscosity < 0:
            raise ConfigurationError(f"negative viscosity: {viscosity}")
        if hyperviscosity_order < 1:
            raise ConfigurationError(
                f"hyperviscosity order must be >= 1, got {hyperviscosity_order}"
            )
        self.grid = grid
        self.viscosity = float(viscosity)
        self.p = int(hyperviscosity_order)
        self.time = 0.0
        self.step_count = 0
        self._zeta_hat = np.zeros((grid.ny, grid.nx // 2 + 1), dtype=complex)
        if seed is not None:
            self.initialize_random(seed)

    # -------------------------------------------------------- initialization

    def initialize_random(self, seed: int, k_peak: float = 6.0, energy: float = 1.0) -> None:
        """McWilliams-style random initial condition.

        The energy spectrum is peaked at (dimensionless) wavenumber
        ``k_peak``: ``E(k) ~ k^6 / (k + 2 k_peak)^18``, with random phases.
        ``energy`` rescales the RMS velocity to roughly that value (m/s).
        """
        if k_peak <= 0:
            raise ConfigurationError(f"k_peak must be positive: {k_peak}")
        g = self.grid
        rng = np.random.default_rng(seed)
        # Dimensionless wavenumber magnitude (in units of the box wavenumber).
        k0 = 2.0 * np.pi / g.length_m
        kmag = np.sqrt(g.k2) / k0
        with np.errstate(divide="ignore", invalid="ignore"):
            spectrum = kmag**6 / (kmag + 2.0 * k_peak) ** 18
        spectrum[0, 0] = 0.0
        phases = rng.uniform(0.0, 2.0 * np.pi, size=kmag.shape)
        psi_hat = np.sqrt(spectrum) * np.exp(1j * phases)
        zeta_hat = -g.k2 * psi_hat
        zeta_hat *= g.dealias_mask
        self._zeta_hat = zeta_hat
        # Rescale to the requested RMS speed.
        u, v = self.velocity()
        rms = float(np.sqrt(np.mean(u**2 + v**2)))
        if rms > 0:
            self._zeta_hat *= energy / rms
        self.time = 0.0
        self.step_count = 0

    def set_vorticity(self, zeta: np.ndarray) -> None:
        """Load a physical-space vorticity field as the current state."""
        self._zeta_hat = self.grid.to_spectral(np.asarray(zeta, dtype=float))
        self._zeta_hat *= self.grid.dealias_mask

    # --------------------------------------------------------------- queries

    def vorticity(self) -> np.ndarray:
        """Relative vorticity ζ in physical space (1/s)."""
        return self.grid.to_physical(self._zeta_hat)

    def streamfunction(self) -> np.ndarray:
        """Streamfunction ψ with ∇²ψ = ζ (m²/s)."""
        return self.grid.to_physical(self._psi_hat())

    def velocity(self) -> tuple[np.ndarray, np.ndarray]:
        """Velocity components ``(u, v)`` with u = -ψ_y, v = ψ_x (m/s)."""
        psi_hat = self._psi_hat()
        u = self.grid.to_physical(-self.grid.ddy(psi_hat))
        v = self.grid.to_physical(self.grid.ddx(psi_hat))
        return u, v

    def kinetic_energy(self) -> float:
        """Domain-mean kinetic energy per unit mass (m²/s²)."""
        u, v = self.velocity()
        return float(0.5 * np.mean(u**2 + v**2))

    def enstrophy(self) -> float:
        """Domain-mean enstrophy 0.5⟨ζ²⟩ (1/s²)."""
        zeta = self.vorticity()
        return float(0.5 * np.mean(zeta**2))

    def cfl_number(self, dt: float) -> float:
        """Advective CFL number for a step of ``dt`` seconds."""
        u, v = self.velocity()
        umax = float(np.max(np.abs(u)))
        vmax = float(np.max(np.abs(v)))
        return dt * (umax / self.grid.dx + vmax / self.grid.dy)

    # -------------------------------------------------------------- stepping

    def _psi_hat(self) -> np.ndarray:
        return -self.grid.inv_k2 * self._zeta_hat

    def _rhs(self, zeta_hat: np.ndarray) -> np.ndarray:
        """Tendency: -J(ψ, ζ) - ν (k²)^p ζ, dealiased."""
        g = self.grid
        psi_hat = -g.inv_k2 * zeta_hat
        u = g.to_physical(-g.ddy(psi_hat))
        v = g.to_physical(g.ddx(psi_hat))
        zeta_x = g.to_physical(g.ddx(zeta_hat))
        zeta_y = g.to_physical(g.ddy(zeta_hat))
        advection = g.to_spectral(u * zeta_x + v * zeta_y)
        dissipation = self.viscosity * g.k2**self.p * zeta_hat
        return (-advection - dissipation) * g.dealias_mask

    def step(self, dt: float) -> None:
        """Advance one RK4 step of ``dt`` seconds."""
        if dt <= 0:
            raise ConfigurationError(f"timestep must be positive: {dt}")
        z = self._zeta_hat
        # An unstable step overflows inside the RK4 stages before the
        # explicit blow-up check below can fire; silence the redundant
        # numpy warnings so SimulationError is the single diagnostic.
        with np.errstate(over="ignore", invalid="ignore"):
            k1 = self._rhs(z)
            k2 = self._rhs(z + 0.5 * dt * k1)
            k3 = self._rhs(z + 0.5 * dt * k2)
            k4 = self._rhs(z + dt * k3)
            self._zeta_hat = z + (dt / 6.0) * (k1 + 2.0 * k2 + 2.0 * k3 + k4)
        self.time += dt
        self.step_count += 1
        if not np.isfinite(self._zeta_hat).all():
            raise SimulationError(
                f"solver blew up at step {self.step_count} (t={self.time:.1f}s); "
                "reduce dt or increase viscosity"
            )

    def run(self, n_steps: int, dt: float) -> None:
        """Advance ``n_steps`` steps of ``dt`` seconds each."""
        if n_steps < 0:
            raise ConfigurationError(f"negative step count: {n_steps}")
        for _ in range(n_steps):
            self.step(dt)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<BarotropicSolver {self.grid.nx}x{self.grid.ny} "
            f"t={self.time:.0f}s steps={self.step_count}>"
        )
