"""repro — reproduction of *Characterizing and Modeling Power and Energy for
Extreme-Scale In-Situ Visualization* (Adhinarayanan et al., IPDPS 2017).

The library provides:

* a discrete-event compute-cluster + Lustre storage simulator with calibrated
  power models and paper-faithful metering (:mod:`repro.events`,
  :mod:`repro.cluster`, :mod:`repro.storage`, :mod:`repro.power`);
* a real, runnable mini ocean model with Okubo-Weiss eddy detection and a
  software renderer / Cinema image database (:mod:`repro.ocean`,
  :mod:`repro.viz`, :mod:`repro.io`);
* the two visualization pipelines of the paper's Fig. 1
  (:mod:`repro.pipelines`); and
* the paper's primary contribution — the characterization methodology and the
  performance/energy/storage model with what-if analysis
  (:mod:`repro.core`).

Quickstart::

    from repro import run_characterization
    study = run_characterization()
    print(study.table())
"""

from repro.core.calibration import calibrate_exact, calibrate_least_squares
from repro.core.characterization import CharacterizationStudy, run_characterization
from repro.core.metrics import Measurement, MetricSet
from repro.core.model import PerformanceModel
from repro.core.whatif import WhatIfAnalyzer

__version__ = "1.0.0"

__all__ = [
    "CharacterizationStudy",
    "Measurement",
    "MetricSet",
    "PerformanceModel",
    "WhatIfAnalyzer",
    "calibrate_exact",
    "calibrate_least_squares",
    "run_characterization",
    "__version__",
]
