"""Supervised execution: crash recovery, deadlines, retries, resumable sweeps.

:class:`SupervisedExecutor` wraps the process-pool fan-out of
:class:`~repro.exec.engine.ExecutionEngine` with the failure semantics a
real cluster sweep needs — the same checkpoint/restart economics the paper
models for the simulated platform (Eq. 4), applied to our own harness:

* **Deadlines** — every pooled task gets a wall-clock deadline; a hung
  worker is terminated, the pool respawned and the task re-attempted.
* **Worker-crash recovery** — a worker dying mid-task (segfault,
  ``os._exit``, OOM kill) surfaces as ``BrokenProcessPool``; the supervisor
  respawns the pool, requeues in-flight tasks, and isolates suspects so a
  single *poison* task is identified and quarantined after
  ``max_worker_crashes`` strikes instead of livelocking the sweep.
* **Bounded retries** — re-attempts reuse the frozen
  :class:`~repro.faults.retry.RetryPolicy` machinery: a hard attempt
  ceiling and exponential backoff with deterministic per-task jitter
  (seeded from :meth:`RunRequest.task_seed`).
* **Resumable sweeps** — an append-only :class:`SweepJournal`
  (``sweep.journal.jsonl``) records each request digest and outcome as it
  settles, so ``--resume`` replays completed work through the verified
  :class:`~repro.exec.cache.DiskCache` and re-runs only the failures.
* **Graceful degradation** — exhausted tasks become structured failure
  records on :class:`~repro.exec.api.RunResult` (error kind, per-attempt
  elapsed times) under the ``skip`` / ``serial-fallback`` fail policies, or
  raise :class:`~repro.errors.SweepError` under ``abort``.

Supervision incidents flow into ``repro_exec_*`` counters, an ``exec``
timeline sample per incident, and the :func:`~repro.obs.watch.default_exec_rules`
watchdog (``exec_retry_storm``, ``exec_worker_crash``).  A crash-free
supervised run takes exactly the submission-order code path of the
unsupervised engine, so its results — and its telemetry — are byte-identical
to today's serial output.

Chaos hook (tests and the CI ``chaos-exec`` job): setting the
:data:`CHAOS_ENV` environment variable injects failures *inside pool
workers only* — e.g. ``REPRO_EXEC_CHAOS="exit_once=1;dir=/tmp/chaos"``
crashes the worker running submission index 1 exactly once.
"""

from __future__ import annotations

import os
import random
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Union

from repro import obs
from repro.atomicio import append_jsonl_line
from repro.errors import ConfigurationError, SweepError, TransientIOError
from repro.exec.api import RunRequest, RunResult
from repro.exec.engine import ExecutionEngine, execute_request
from repro.faults.retry import DEFAULT_RETRYABLE, RetryPolicy
from repro.obs.naming import alert_metric_name
from repro.obs.watch import Watchdog, default_exec_rules

__all__ = [
    "CHAOS_ENV",
    "FAIL_ABORT",
    "FAIL_POLICIES",
    "FAIL_SERIAL",
    "FAIL_SKIP",
    "JOURNAL_FILENAME",
    "SupervisedExecutor",
    "SweepJournal",
    "TaskPolicy",
    "supervised_task",
]

#: Fail-policy spellings: abort the sweep on the first exhausted task, skip
#: it (structured failure record in its slot), or fall back to running the
#: task inline in the parent as a last resort.
FAIL_ABORT = "abort"
FAIL_SKIP = "skip"
FAIL_SERIAL = "serial-fallback"
FAIL_POLICIES = (FAIL_ABORT, FAIL_SKIP, FAIL_SERIAL)

#: Default journal filename for resumable sweeps.
JOURNAL_FILENAME = "sweep.journal.jsonl"

#: Journal record layout version.
JOURNAL_SCHEMA_VERSION = 1

#: Environment variable carrying the chaos-injection plan (workers only).
CHAOS_ENV = "REPRO_EXEC_CHAOS"

#: Exit status used by the chaos hook's injected worker crashes.
_CHAOS_EXIT_STATUS = 17

#: Floor on a deadline wait so an already-late task still gets collected.
_MIN_WAIT_SECONDS = 0.05


# ------------------------------------------------------------------- policy


def _default_retry() -> RetryPolicy:
    """Supervisor default: 3 attempts, fast seeded-jitter backoff."""
    return RetryPolicy(
        max_attempts=3,
        base_delay_seconds=0.05,
        backoff_factor=2.0,
        max_delay_seconds=1.0,
        jitter=0.25,
    )


@dataclass(frozen=True)
class TaskPolicy:
    """How one sweep's tasks are supervised (pure data, frozen)."""

    #: Per-task wall-clock deadline in seconds, measured from submission
    #: (queueing included); ``None`` disables deadline enforcement.
    deadline_seconds: Optional[float] = None
    #: Attempt ceiling and backoff schedule (the frozen retry machinery
    #: shared with the simulated platform's I/O supervision).
    retry: RetryPolicy = field(default_factory=_default_retry)
    #: Worker crashes a single task may cause before it is quarantined as
    #: poison (one bad request must not livelock the sweep).
    max_worker_crashes: int = 3
    #: What an exhausted task does to the sweep (see :data:`FAIL_POLICIES`).
    fail_policy: str = FAIL_ABORT

    def __post_init__(self) -> None:
        if self.deadline_seconds is not None and self.deadline_seconds <= 0:
            raise ConfigurationError(
                f"deadline must be positive: {self.deadline_seconds}"
            )
        if self.max_worker_crashes < 1:
            raise ConfigurationError(
                f"max_worker_crashes must be >= 1: {self.max_worker_crashes}"
            )
        if self.fail_policy not in FAIL_POLICIES:
            raise ConfigurationError(
                f"unknown fail policy {self.fail_policy!r}; "
                f"expected one of {FAIL_POLICIES}"
            )

    def to_dict(self) -> dict:
        """JSON-safe form (manifest provenance)."""
        return {
            "deadline_seconds": self.deadline_seconds,
            "max_attempts": self.retry.max_attempts,
            "base_delay_seconds": self.retry.base_delay_seconds,
            "max_worker_crashes": self.max_worker_crashes,
            "fail_policy": self.fail_policy,
        }


# -------------------------------------------------------------- chaos hook


def parse_chaos(spec: str) -> dict:
    """Parse a :data:`CHAOS_ENV` plan.

    Semicolon-separated clauses; index lists are comma-separated submission
    indices (the position in the sweep's non-cached pending order):

    * ``exit=I,J`` — the worker running the task calls ``os._exit`` every
      attempt (a poison task);
    * ``exit_once=I`` — same, but only the first time (requires ``dir=``,
      where a marker file arbitrates "first");
    * ``raise=I`` / ``raise_once=I`` — raise a retryable
      :class:`~repro.errors.TransientIOError` inside the task;
    * ``hang=I`` — sleep ``hang_seconds`` (default 3600) so the task blows
      its deadline;
    * ``dir=PATH`` — marker directory for the ``*_once`` clauses;
    * ``hang_seconds=S`` — how long ``hang`` sleeps.
    """
    plan: dict = {
        "exit": set(),
        "exit_once": set(),
        "raise": set(),
        "raise_once": set(),
        "hang": set(),
        "dir": None,
        "hang_seconds": 3600.0,
    }
    for clause in spec.split(";"):
        clause = clause.strip()
        if not clause:
            continue
        if "=" not in clause:
            raise ConfigurationError(f"malformed chaos clause {clause!r}")
        kind, _, value = clause.partition("=")
        kind = kind.strip()
        value = value.strip()
        if kind == "dir":
            plan["dir"] = value
        elif kind == "hang_seconds":
            plan["hang_seconds"] = float(value)
        elif kind in ("exit", "exit_once", "raise", "raise_once", "hang"):
            plan[kind].update(int(v) for v in value.split(",") if v)
        else:
            raise ConfigurationError(f"unknown chaos clause kind {kind!r}")
    needs_dir = plan["exit_once"] or plan["raise_once"]
    if needs_dir and plan["dir"] is None:
        raise ConfigurationError("chaos *_once clauses need a dir= clause")
    return plan


def _claim_marker(directory: str, kind: str, index: int) -> bool:
    """Atomically claim a once-only chaos slot; True on first claim."""
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"{kind}-{index:05d}")
    try:
        fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o644)
    except FileExistsError:
        return False
    os.close(fd)
    return True


def _apply_chaos(task_index: int) -> None:
    spec = os.environ.get(CHAOS_ENV)
    if not spec or task_index < 0:
        return
    plan = parse_chaos(spec)
    if task_index in plan["exit"]:
        os._exit(_CHAOS_EXIT_STATUS)
    if task_index in plan["exit_once"] and _claim_marker(
        plan["dir"], "exit", task_index
    ):
        os._exit(_CHAOS_EXIT_STATUS)
    if task_index in plan["raise"]:
        raise TransientIOError(f"chaos: injected I/O error on task {task_index}")
    if task_index in plan["raise_once"] and _claim_marker(
        plan["dir"], "raise", task_index
    ):
        raise TransientIOError(f"chaos: injected I/O error on task {task_index}")
    if task_index in plan["hang"]:
        time.sleep(plan["hang_seconds"])


def supervised_task(request: RunRequest, task_index: int = -1) -> RunResult:
    """The pool task function of the supervised path.

    Identical to :func:`~repro.exec.engine.execute_request` except that the
    :data:`CHAOS_ENV` failure-injection hook runs first — *only* here, in
    pool workers, so injected crashes can never take down the supervising
    parent (or an inline serial fallback).
    """
    _apply_chaos(task_index)
    return execute_request(request)


# ----------------------------------------------------------------- journal


class SweepJournal:
    """Append-only record of a sweep's per-task outcomes.

    One JSON record per line in ``sweep.journal.jsonl``; every append is a
    single fsynced ``O_APPEND`` write (see
    :func:`repro.atomicio.append_jsonl_line`), so a killed sweep leaves at
    most one torn final line — which the tolerant JSONL reader drops.  The
    journal is the durable half of ``--resume``: completed digests are
    skipped (replayed from the verified cache) and failures re-run.
    """

    def __init__(self, path: str, label: str = "sweep") -> None:
        if not path:
            raise ConfigurationError("journal path must be non-empty")
        self.path = path
        self.label = label

    def begin(self, n_tasks: int, code_version: str, label: str = "sweep") -> None:
        """Append the sweep header record."""
        append_jsonl_line(
            self.path,
            {
                "type": "sweep",
                "schema_version": JOURNAL_SCHEMA_VERSION,
                "label": label,
                "n_tasks": n_tasks,
                "code_version": code_version,
            },
            fsync=True,
        )

    def record(
        self,
        index: int,
        digest: str,
        status: str,
        attempts: int = 1,
        error: Optional[str] = None,
        origin: str = "run",
    ) -> None:
        """Append one settled-task record (``status`` done/failed)."""
        append_jsonl_line(
            self.path,
            {
                "type": "task",
                "index": index,
                "digest": digest,
                "status": status,
                "attempts": attempts,
                "error": error,
                "origin": origin,
            },
            fsync=True,
        )

    def event(self, kind: str, **fields) -> None:
        """Append one supervision incident (worker-crash, quarantine...)."""
        record = {"type": "incident", "kind": kind}
        record.update(fields)
        append_jsonl_line(self.path, record, fsync=True)

    @staticmethod
    def load(path: str) -> Dict[str, dict]:
        """Latest task record per digest; ``{}`` for a missing journal."""
        if not os.path.exists(path):
            return {}
        from repro.obs.exporters import read_jsonl

        latest: Dict[str, dict] = {}
        for record in read_jsonl(path):
            if record.get("type") == "task" and record.get("digest"):
                latest[record["digest"]] = record
        return latest


# ------------------------------------------------------------ task states


class _TaskState:
    """Mutable supervision bookkeeping for one pending task."""

    __slots__ = (
        "index",
        "task_index",
        "request",
        "key",
        "digest",
        "attempts",
        "crashes",
        "rng",
        "submit_t",
        "attempt_log",
    )

    def __init__(
        self, index: int, task_index: int, request: RunRequest, key: Optional[str]
    ) -> None:
        self.index = index            # slot in the results list
        self.task_index = task_index  # submission order (trace + chaos id)
        self.request = request
        self.key = key
        self.digest = key if key is not None else request.cache_key("unversioned")
        self.attempts = 0
        self.crashes = 0
        #: Deterministic backoff jitter, a pure function of the request.
        self.rng = random.Random(request.task_seed())
        self.submit_t = 0.0
        self.attempt_log: List[dict] = []

    def note_attempt(self, kind: str, error: str) -> None:
        self.attempts += 1
        # Elapsed wall time is a diagnostic only: failure records are
        # excluded from identity_dict / bit-identity comparisons.
        elapsed = time.monotonic() - self.submit_t
        self.attempt_log.append(
            {"kind": kind, "error": error, "elapsed_seconds": elapsed}
        )


# -------------------------------------------------------------- supervisor


class SupervisedExecutor(ExecutionEngine):
    """An :class:`ExecutionEngine` that survives worker crashes and hangs.

    Drop-in: same constructor surface plus a :class:`TaskPolicy`, an
    optional journal path and ``resume``.  Crash-free runs follow the base
    engine's submission-order code path exactly, so results and telemetry
    stay byte-identical to an unsupervised (or serial) sweep.
    """

    def __init__(
        self,
        max_workers: Optional[int] = None,
        cache=None,
        policy: Optional[TaskPolicy] = None,
        journal: Union[None, str, SweepJournal] = None,
        resume: bool = False,
        sleeper=None,
        watch_rules=None,
    ) -> None:
        super().__init__(max_workers=max_workers, cache=cache)
        self.policy = policy if policy is not None else TaskPolicy()
        self.journal = SweepJournal(journal) if isinstance(journal, str) else journal
        self.resume = resume
        if resume and self.journal is None:
            raise ConfigurationError("resume needs a journal path")
        if resume and cache is None:
            raise ConfigurationError(
                "resume needs a cache: completed results replay from it"
            )
        #: Injectable for tests; production sleeps real wall time between
        #: retry rounds (deterministically jittered via RetryPolicy).
        self._sleep = sleeper if sleeper is not None else time.sleep
        #: Supervision tallies across this executor's lifetime.
        self.retries = 0
        self.worker_crashes = 0
        self.deadline_expiries = 0
        self.quarantined = 0
        self.pool_restarts = 0
        self.resumed_skips = 0
        self.serial_fallbacks = 0
        #: Structured failure records of tasks that exhausted supervision.
        self.failures: List[dict] = []
        self._watchdog = Watchdog(
            default_exec_rules() if watch_rules is None else watch_rules
        )
        self._incidents = 0
        self._workers = 1

    # ------------------------------------------------------------------ api

    def map(self, requests: Sequence[RunRequest]) -> list:
        """Execute a batch under supervision; order matches ``requests``.

        With a journal, every settled task is recorded as it settles (so a
        killed sweep leaves a half-finished journal a later ``resume`` run
        picks up); with ``resume``, completed digests replay from the
        verified cache and only failures re-run.
        """
        requests = list(requests)
        journal_done: Dict[str, dict] = {}
        if self.resume and self.journal is not None:
            journal_done = {
                digest: rec
                for digest, rec in SweepJournal.load(self.journal.path).items()
                if rec.get("status") == "done"
            }
        if self.journal is not None:
            code = self.cache.code_version if self.cache is not None else "unversioned"
            self.journal.begin(len(requests), code, label=self.journal.label)
        results = super().map(requests)
        if self.journal is not None:
            for index, result in enumerate(results):
                if result is not None and result.engine == "cache":
                    self.journal.record(
                        index=index,
                        digest=result.cache_key,
                        status="done",
                        attempts=0,
                        origin="cache",
                    )
                    if result.cache_key in journal_done:
                        self.resumed_skips += 1
                        obs.counter("repro_exec_resumed_skips_total")
        return results

    # ------------------------------------------------------------ inline path

    def _run_inline(self, pending: list, results: list) -> None:
        """Supervised inline execution: retries, structured failures.

        No deadline enforcement — an in-process task cannot be preempted;
        use workers for deadline coverage.  The chaos hook never applies
        inline, so injected crashes cannot kill the supervisor.
        """
        for task_index, (index, request, key) in enumerate(pending):
            state = _TaskState(index, task_index, request, key)
            for attempt in range(self.policy.retry.max_attempts):
                state.submit_t = time.monotonic()
                try:
                    result = execute_request(request)
                except Exception as exc:
                    state.note_attempt(type(exc).__name__, str(exc))
                    if self._retryable(exc) and attempt + 1 < self.policy.retry.max_attempts:
                        self._note_retry(state, "exception")
                        self._backoff([state])
                        continue
                    self._fail(
                        state,
                        "exception",
                        f"{type(exc).__name__}: {exc}",
                        results,
                    )
                    break
                self._settle_success(state, result, results, None, pooled=False)
                break

    # -------------------------------------------------------------- pool path

    def _run_pool(self, pending: list, results: list) -> None:
        """Pooled execution with crash recovery, deadlines and quarantine."""
        states = [
            _TaskState(index, task_index, request, key)
            for task_index, (index, request, key) in enumerate(pending)
        ]
        self._workers = min(self.max_workers, len(pending))
        pool: Optional[ProcessPoolExecutor] = None
        work = states
        first_round = True
        try:
            while work:
                retry_next: List[_TaskState] = []
                # After any pool breakage, suspects (tasks that were in
                # flight during a crash) run one at a time: a further crash
                # then attributes to exactly one request, so poison tasks
                # are identified without condemning innocent bystanders.
                suspects = [] if first_round else [s for s in work if s.crashes > 0]
                rest = [s for s in work if s not in suspects]
                for state in suspects:
                    pool = self._ensure_pool(pool)
                    pool = self._run_single(pool, state, results, retry_next)
                if rest:
                    pool = self._ensure_pool(pool)
                    pool = self._run_batch(pool, rest, results, retry_next)
                first_round = False
                work = retry_next
                if work:
                    self._backoff(work)
        finally:
            if pool is not None:
                pool.shutdown(wait=False, cancel_futures=True)

    def _ensure_pool(self, pool: Optional[ProcessPoolExecutor]) -> ProcessPoolExecutor:
        if pool is not None:
            return pool
        return ProcessPoolExecutor(max_workers=self._workers)

    def _respawn(self) -> None:
        self.pool_restarts += 1
        obs.counter("repro_exec_pool_restarts_total")

    def _submit(self, pool: ProcessPoolExecutor, state: _TaskState, session):
        state.submit_t = time.monotonic()
        return pool.submit(
            supervised_task,
            self._with_trace(state.request, session, state.task_index),
            state.task_index,
        )

    def _run_batch(
        self,
        pool: ProcessPoolExecutor,
        batch: List[_TaskState],
        results: list,
        retry_next: List[_TaskState],
    ) -> Optional[ProcessPoolExecutor]:
        """Submit a batch, collect in submission order, survive breakage."""
        session = obs.active()
        futures = [self._submit(pool, state, session) for state in batch]
        broken = None  # None | "deadline" | "crash"
        for state, future in zip(batch, futures):
            if broken is not None:
                # The pool died while this future was outstanding: harvest
                # it if it finished in time.  Otherwise, a deadline kill has
                # a known culprit — collateral tasks requeue penalty-free —
                # while a worker crash has an unknown one, so everything in
                # flight becomes a crash suspect (isolation exonerates the
                # innocent next round).
                if (
                    future.done()
                    and not future.cancelled()
                    and future.exception(timeout=0) is None
                ):
                    self._settle_success(
                        state, future.result(timeout=0), results, session
                    )
                elif broken == "deadline":
                    self._note_interrupted(state, retry_next)
                else:
                    self._note_crash(state, results, retry_next)
                continue
            try:
                result = future.result(timeout=self._remaining(state))
            except FuturesTimeoutError:
                self._note_deadline(state, results, retry_next)
                self._kill_pool(pool)
                pool = None
                broken = "deadline"
            except BrokenProcessPool:
                self._note_crash(state, results, retry_next)
                broken = "crash"
            except Exception as exc:
                self._note_task_error(state, exc, results, retry_next)
            else:
                self._settle_success(state, result, results, session)
        if broken is not None:
            if pool is not None:
                pool.shutdown(wait=False, cancel_futures=True)
            self._respawn()
            return None
        return pool

    def _run_single(
        self,
        pool: ProcessPoolExecutor,
        state: _TaskState,
        results: list,
        retry_next: List[_TaskState],
    ) -> Optional[ProcessPoolExecutor]:
        """One isolated task — crash attribution is unambiguous here."""
        session = obs.active()
        future = self._submit(pool, state, session)
        try:
            result = future.result(timeout=self._remaining(state))
        except FuturesTimeoutError:
            self._note_deadline(state, results, retry_next)
            self._kill_pool(pool)
            self._respawn()
            return None
        except BrokenProcessPool:
            self._note_crash(state, results, retry_next)
            pool.shutdown(wait=False, cancel_futures=True)
            self._respawn()
            return None
        except Exception as exc:
            self._note_task_error(state, exc, results, retry_next)
            return pool
        self._settle_success(state, result, results, session)
        return pool

    # ------------------------------------------------------------- settling

    def _remaining(self, state: _TaskState) -> Optional[float]:
        if self.policy.deadline_seconds is None:
            return None
        left = state.submit_t + self.policy.deadline_seconds - time.monotonic()
        return max(_MIN_WAIT_SECONDS, left)

    def _kill_pool(self, pool: ProcessPoolExecutor) -> None:
        """Terminate the pool's workers (the only way to evict a hung task)."""
        try:
            for proc in list(getattr(pool, "_processes", {}).values()):
                try:
                    proc.terminate()
                except OSError:
                    continue
            pool.shutdown(wait=True, cancel_futures=True)
        except Exception:
            # Teardown of an already-broken pool must never mask the
            # supervision decision that triggered it.
            pass

    def _settle_success(
        self,
        state: _TaskState,
        result: RunResult,
        results: list,
        session,
        pooled: bool = True,
    ) -> None:
        if pooled:
            if session is None:
                session = obs.active()
            if result.telemetry is not None:
                if session is not None:
                    session.merge_shard(result.telemetry)
                result = replace(result, telemetry=None)
            result = replace(result, engine="pool")
        results[state.index] = self._finish(state.request, state.key, result)
        if state.attempts > 0:
            obs.counter("repro_exec_recoveries_total")
        if self.journal is not None:
            self.journal.record(
                index=state.index,
                digest=state.digest,
                status="done",
                attempts=state.attempts + 1,
            )

    def _note_retry(self, state: _TaskState, kind: str) -> None:
        self.retries += 1
        obs.counter("repro_exec_retries_total", kind=kind)
        self._incident()

    def _note_interrupted(
        self, state: _TaskState, retry_next: List[_TaskState]
    ) -> None:
        """Collateral requeue: the pool died for a *known other* task.

        No attempt or crash penalty — this task did nothing wrong and must
        not drift toward its retry ceiling because a neighbor hung.
        """
        obs.counter("repro_exec_interrupted_total")
        retry_next.append(state)

    def _note_crash(
        self, state: _TaskState, results: list, retry_next: List[_TaskState]
    ) -> None:
        state.crashes += 1
        state.note_attempt("worker-crash", "worker process died mid-task")
        self.worker_crashes += 1
        obs.counter("repro_exec_worker_crashes_total")
        if self.journal is not None:
            self.journal.event(
                "worker-crash", index=state.index, crashes=state.crashes
            )
        self._incident()
        if state.crashes >= self.policy.max_worker_crashes:
            self.quarantined += 1
            obs.counter("repro_exec_quarantined_total")
            if self.journal is not None:
                self.journal.event("quarantine", index=state.index)
            self._incident()
            self._fail(
                state,
                "poison",
                f"task crashed its worker {state.crashes} time(s); quarantined",
                results,
                quarantined=True,
            )
        elif state.attempts >= self.policy.retry.max_attempts:
            self._fail(
                state,
                "worker-crash",
                f"worker crashed on every one of {state.attempts} attempt(s)",
                results,
            )
        else:
            self._note_retry(state, "worker-crash")
            retry_next.append(state)

    def _note_deadline(
        self, state: _TaskState, results: list, retry_next: List[_TaskState]
    ) -> None:
        state.note_attempt(
            "deadline",
            f"no result within the {self.policy.deadline_seconds}s deadline",
        )
        self.deadline_expiries += 1
        obs.counter("repro_exec_deadline_expired_total")
        if self.journal is not None:
            self.journal.event("deadline", index=state.index)
        self._incident()
        if state.attempts >= self.policy.retry.max_attempts:
            self._fail(
                state,
                "deadline",
                f"deadline expired on every one of {state.attempts} attempt(s)",
                results,
            )
        else:
            self._note_retry(state, "deadline")
            retry_next.append(state)

    def _note_task_error(
        self,
        state: _TaskState,
        exc: BaseException,
        results: list,
        retry_next: List[_TaskState],
    ) -> None:
        state.note_attempt(type(exc).__name__, str(exc))
        if self._retryable(exc) and state.attempts < self.policy.retry.max_attempts:
            self._note_retry(state, "exception")
            retry_next.append(state)
            return
        self._fail(state, "exception", f"{type(exc).__name__}: {exc}", results)

    @staticmethod
    def _retryable(exc: BaseException) -> bool:
        """Transient I/O and OS-level failures retry; deterministic
        simulation errors fail fast (re-running a pure function of the
        request would fail identically)."""
        return isinstance(exc, DEFAULT_RETRYABLE + (OSError,))

    def _fail(
        self,
        state: _TaskState,
        kind: str,
        error: str,
        results: list,
        quarantined: bool = False,
    ) -> None:
        """Task exhausted supervision: apply the fail policy."""
        record = {
            "kind": kind,
            "error": error,
            "attempts": list(state.attempt_log),
            "quarantined": quarantined,
        }
        if self.policy.fail_policy == FAIL_SERIAL and kind in ("poison", "worker-crash"):
            # Last resort for infrastructure failures: run the task inline
            # in the parent.  The chaos hook does not apply here; a task
            # that genuinely segfaults native code would take the parent
            # down, which is the documented risk of this policy.
            try:
                result = execute_request(state.request)
            except Exception as exc:
                record["serial_fallback_error"] = f"{type(exc).__name__}: {exc}"
            else:
                self.serial_fallbacks += 1
                obs.counter("repro_exec_serial_fallback_total")
                result = replace(result, engine="serial-fallback")
                results[state.index] = self._finish(state.request, state.key, result)
                if self.journal is not None:
                    self.journal.record(
                        index=state.index,
                        digest=state.digest,
                        status="done",
                        attempts=state.attempts + 1,
                        origin="serial-fallback",
                    )
                return
        self.failures.append(record)
        failure_result = RunResult(
            request=state.request,
            measurement=None,
            cache_key=state.key,
            engine="supervised",
            failure=record,
        )
        results[state.index] = self._finish(state.request, state.key, failure_result)
        if self.journal is not None:
            self.journal.record(
                index=state.index,
                digest=state.digest,
                status="failed",
                attempts=state.attempts,
                error=kind,
            )
        if self.policy.fail_policy == FAIL_ABORT:
            raise SweepError(
                f"task {state.index} failed ({kind}: {error}) under "
                f"fail-policy=abort",
                failures=[record],
            )

    def _backoff(self, states: List[_TaskState]) -> None:
        """Sleep out the longest due backoff (retries wait concurrently).

        Each task's delay comes from the frozen retry policy with jitter
        drawn from the task's own seeded rng, so the backoff schedule is a
        deterministic function of (request, attempt number).
        """
        delays = [
            self.policy.retry.backoff_delay(max(0, s.attempts - 1), s.rng)
            for s in states
        ]
        delay = max(delays, default=0.0)
        if delay > 0.0:
            self._sleep(delay)

    # ----------------------------------------------------------- telemetry

    def _incident(self) -> None:
        """One supervision incident: timeline sample + watchdog sweep.

        Samples land on the incident sequence number (deterministic for a
        given failure pattern) — a crash-free run emits none, keeping its
        telemetry byte-identical to the unsupervised engine's.
        """
        self._incidents += 1
        values = {
            "repro_timeline_exec_deadline_expiries_total": float(
                self.deadline_expiries
            ),
            "repro_timeline_exec_quarantined_total": float(self.quarantined),
            "repro_timeline_exec_retries_total": float(self.retries),
            "repro_timeline_exec_worker_crashes_total": float(self.worker_crashes),
        }
        t = float(self._incidents)
        session = obs.active()
        if session is not None:
            session.emit_timeline(
                {"type": "sample", "t": t, "label": "exec", "values": values}
            )
            session.registry.counter(
                "repro_obs_timeline_samples_total", label="exec"
            ).inc()
        for alert in self._watchdog.observe(t, values):
            if session is not None:
                session.event("obs.alert", **alert.to_fields())
                session.registry.counter(
                    alert_metric_name(alert.rule), severity=alert.severity
                ).inc()

    def _record_session(self) -> None:
        """Base provenance plus the supervision tallies."""
        super()._record_session()
        session = obs.active()
        if session is None:
            return
        session.config["exec"]["supervise"] = {
            "policy": self.policy.to_dict(),
            "journal": None if self.journal is None else self.journal.path,
            "resume": self.resume,
            "retries": self.retries,
            "worker_crashes": self.worker_crashes,
            "deadline_expiries": self.deadline_expiries,
            "quarantined": self.quarantined,
            "pool_restarts": self.pool_restarts,
            "resumed_skips": self.resumed_skips,
            "serial_fallbacks": self.serial_fallbacks,
            "failures": len(self.failures),
        }
