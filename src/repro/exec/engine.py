"""The experiment-execution engine: fan-out, memoization, determinism.

:class:`ExecutionEngine` takes :class:`~repro.exec.api.RunRequest` objects
and produces :class:`~repro.exec.api.RunResult` objects three ways:

* **inline** — execute in this process (``max_workers=None`` or ``1``);
* **pool** — fan simulated requests out over a ``ProcessPoolExecutor``.
  Results are collected in *submission order* and every worker seeds its
  RNGs deterministically from the request, so a parallel sweep is
  bit-identical to the same sweep run serially;
* **cache** — replay a prior run from the content-addressed
  :class:`~repro.exec.cache.DiskCache` when the (config, code version,
  seed) hash matches.

Real-mode requests always execute inline and are never cached: their
measurements are wall-clock timings, not deterministic functions of the
request.  Hit/miss/task counters flow through the obs layer and the cache
configuration lands in the active session's manifest config.
"""

from __future__ import annotations

import os
import random
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import replace
from typing import Optional, Sequence

from repro import obs
from repro.errors import ConfigurationError
from repro.exec.api import RunRequest, RunResult, build_pipeline
from repro.exec.cache import DiskCache
from repro.obs.telemetry import SHARDS_DIRNAME, TelemetrySession
from repro.obs.trace import TraceContext

__all__ = ["ExecutionEngine", "execute_request"]


def _seed_rngs(request: RunRequest) -> None:
    """Seed the process-global RNGs deterministically for one task.

    The simulated platform draws from its own seeded generators, so this is
    defense-in-depth: any code that reaches for the global ``random`` /
    ``numpy.random`` state sees the same stream serially and in a worker.
    """
    seed = request.task_seed()
    random.seed(seed)
    try:
        import numpy as np

        np.random.seed(seed % 2**32)
    except ImportError:  # pragma: no cover - numpy is a hard dep in practice
        pass


def execute_request(request: RunRequest) -> RunResult:
    """Execute one request in this process (the pool's task function).

    Top-level (hence picklable), builds the pipeline from the request's
    registry name, seeds the RNGs, and routes through the unified
    :meth:`~repro.pipelines.base.Pipeline.execute` entry point.
    """
    _seed_rngs(request)
    pipeline = build_pipeline(request)
    return pipeline.execute(request)


class ExecutionEngine:
    """Runs requests inline, over a process pool, or out of the cache."""

    def __init__(
        self,
        max_workers: Optional[int] = None,
        cache: Optional[DiskCache] = None,
    ) -> None:
        if max_workers is not None and max_workers < 1:
            raise ConfigurationError(f"max_workers must be >= 1: {max_workers}")
        self.max_workers = max_workers
        self.cache = cache
        #: Cumulative tallies across this engine's lifetime.
        self.tasks_executed = 0
        self.cache_hits = 0
        self.cache_misses = 0

    # ------------------------------------------------------------------- api

    def run(self, request: RunRequest) -> RunResult:
        """Execute (or replay) a single request."""
        return self.map([request])[0]

    def map(self, requests: Sequence[RunRequest]) -> list:
        """Execute a batch; results are ordered exactly like ``requests``.

        Cache hits are satisfied immediately; the misses run inline (one
        worker) or across the pool, and are stored back.  The output order
        never depends on completion order, so downstream tables and
        manifests are bit-identical however the batch was scheduled.
        """
        requests = list(requests)
        results: list = [None] * len(requests)
        pending: list = []
        for index, request in enumerate(requests):
            key = self._cache_key(request)
            hit = self.cache.get(key) if key is not None else None
            if hit is not None:
                t0 = time.perf_counter()
                # wall_seconds is a diagnostic only: excluded from cache
                # keys and from bit-identity replay comparisons.
                result = RunResult(  # repro-lint: disable=det-clock
                    request=request,
                    measurement=hit["measurement"],
                    cache_hit=True,
                    cache_key=key,
                    engine="cache",
                    wall_seconds=time.perf_counter() - t0,
                    fault_summary=hit.get("fault_summary"),
                    recoveries=hit.get("recoveries", 0),
                )
                results[index] = result
                self.cache_hits += 1
                obs.counter("repro_exec_cache_hits_total")
                # Replays count as tasks too (labelled), so hit/miss and
                # task tallies reconcile: tasks_total{cached=*} sums to the
                # number of requests.
                obs.counter(
                    "repro_exec_tasks_total",
                    pipeline=request.pipeline,
                    cached="true",
                )
                obs.observe(
                    "repro_exec_task_seconds", result.wall_seconds, cached="true"
                )
            else:
                if key is not None:
                    self.cache_misses += 1
                    obs.counter("repro_exec_cache_misses_total")
                pending.append((index, request, key))

        if len(pending) > 1 and (self.max_workers or 1) > 1:
            self._run_pool(pending, results)
        else:
            self._run_inline(pending, results)
        self._record_session()
        return results

    # -------------------------------------------------------------- internals

    def _cache_key(self, request: RunRequest) -> Optional[str]:
        if self.cache is None or not request.cacheable:
            return None
        return request.cache_key(self.cache.code_version)

    def _run_inline(self, pending: list, results: list) -> None:
        """Execute the pending tasks one by one in this process.

        A hook point: :class:`~repro.exec.supervise.SupervisedExecutor`
        overrides this to convert exceptions into structured failure
        records instead of unwinding the sweep.
        """
        for index, request, key in pending:
            results[index] = self._finish(request, key, execute_request(request))

    def _run_pool(self, pending: list, results: list) -> None:
        workers = min(self.max_workers, len(pending))
        session = obs.active()
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [
                (
                    index,
                    request,
                    key,
                    pool.submit(
                        execute_request,
                        self._with_trace(request, session, task_index),
                    ),
                )
                for task_index, (index, request, key) in enumerate(pending)
            ]
            # Collect in submission order — deterministic regardless of
            # which worker finishes first.  Shards merge in the same order,
            # so the parent's event stream is byte-identical to an inline
            # run of the same batch.
            for index, request, key, future in futures:
                # The unsupervised pool is deliberately deadline-free: a
                # hung worker hangs the sweep (use SupervisedExecutor for
                # deadlines, crash recovery and retries).
                result = replace(future.result(timeout=None), engine="pool")
                if session is not None and result.telemetry is not None:
                    session.merge_shard(result.telemetry)
                if result.telemetry is not None:
                    result = replace(result, telemetry=None)
                results[index] = self._finish(request, key, result)

    @staticmethod
    def _with_trace(
        request: RunRequest,
        session: Optional[TelemetrySession],
        task_index: int,
    ) -> RunRequest:
        """The request as submitted to a worker: trace attached if tracing."""
        if session is None:
            return request
        shard_dir = None
        if session.directory is not None:
            shard_dir = os.path.join(session.directory, SHARDS_DIRNAME)
        return replace(
            request,
            trace=TraceContext(
                trace_id=session.trace_id,
                parent_span_id=session.current_span_id,
                label=session.label,
                task_index=task_index,
                shard_dir=shard_dir,
                timeline=session.timeline,
            ),
        )

    def _finish(self, request: RunRequest, key: Optional[str], result: RunResult) -> RunResult:
        self.tasks_executed += 1
        obs.counter("repro_exec_tasks_total", pipeline=request.pipeline, cached="false")
        obs.observe("repro_exec_task_seconds", result.wall_seconds, cached="false")
        if result.failure is not None:
            # Failed runs carry no measurement and must never be memoized:
            # a later sweep should re-attempt them, not replay the failure.
            obs.counter(
                "repro_exec_task_failures_total",
                pipeline=request.pipeline,
                kind=str(result.failure.get("kind", "unknown")),
            )
            return replace(result, cache_key=key) if key is not None else result
        if key is not None:
            result = replace(result, cache_key=key)
            self.cache.put(
                key,
                {
                    "measurement": result.measurement,
                    "fault_summary": result.fault_summary,
                    "recoveries": result.recoveries,
                },
                meta={"request": request.to_dict()},
            )
        return result

    def _record_session(self) -> None:
        """Fold engine/cache provenance into the active manifest config."""
        session = obs.active()
        if session is None:
            return
        session.config["exec"] = {
            "workers": self.max_workers or 1,
            "cache": (
                None
                if self.cache is None
                else {
                    "directory": self.cache.directory,
                    "code_version": self.cache.code_version,
                    "corrupt_quarantined": self.cache.corrupt_quarantined,
                }
            ),
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "tasks_executed": self.tasks_executed,
        }
