"""The benchmark trajectory ledger: ``repro bench history``.

A single committed baseline JSON answers "is this run slower than the one
blessed snapshot?" but says nothing about *drift* — the slow accretion of
small regressions that each pass a 20 % gate.  The ledger fixes that:

* :func:`history_record` distills a ``BENCH_exec.json`` report into one
  compact row — stage wall times, speedups, cache stats, git commit and a
  host fingerprint — and :func:`append_record` appends it to the
  append-only ``benchmarks/baselines/BENCH_history.jsonl``.
* :func:`check_drift` compares a fresh report against the median of the
  last *N* comparable rows (same CPU count, same quick/full sweep) with a
  MAD-based tolerance band.  Wall times fail *above* the band, speedups
  fail *below* it; the other direction is improvement, not drift.

The band itself — ``max(mad_k * 1.4826 * MAD, rel_floor * |median|)`` —
lives in :mod:`repro.obs.drift`, shared with the run registry's cross-run
metric trends (``repro obs trend``), so the two longitudinal gates cannot
diverge.  Fewer than :data:`MIN_RECORDS` comparable rows means there is no
trajectory yet — the check reports informationally and passes, so a fresh
clone or a new CI host class never blocks on an empty ledger.
"""

from __future__ import annotations

import os
import platform
import sys
import time
from typing import Dict, List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.obs.drift import MAD_SCALE, DriftCheck, check_value
from repro.obs.manifest import SCHEMA_VERSION, collect_provenance

__all__ = [
    "DEFAULT_HISTORY_PATH",
    "DEFAULT_MAD_K",
    "DEFAULT_REL_FLOOR",
    "DEFAULT_WINDOW",
    "DriftCheck",
    "MIN_RECORDS",
    "SPEEDUP_METRICS",
    "WALL_METRICS",
    "append_record",
    "check_drift",
    "drift_problems",
    "history_record",
    "host_fingerprint",
    "load_history",
    "render_history",
]

#: Where the committed ledger lives, relative to the repo root.
DEFAULT_HISTORY_PATH = os.path.join("benchmarks", "baselines", "BENCH_history.jsonl")

#: How many trailing comparable records form the reference window.
DEFAULT_WINDOW = 10

#: Below this many comparable records the drift check is informational.
MIN_RECORDS = 3

#: Band half-width in (consistency-scaled) MAD units.
DEFAULT_MAD_K = 4.0

#: Relative floor on the band half-width, as a fraction of |median|.
DEFAULT_REL_FLOOR = 0.25

#: Report keys where *larger* is worse (fail above the band).
WALL_METRICS = ("serial_seconds", "parallel_seconds", "cached_seconds")

#: Report keys where *smaller* is worse (fail below the band).
SPEEDUP_METRICS = ("speedup_parallel", "speedup_cached")


def host_fingerprint() -> Dict[str, object]:
    """What makes two bench hosts comparable: cores, arch, OS, python."""
    return {
        "cpus": os.cpu_count() or 1,
        "machine": platform.machine(),
        "platform": sys.platform,
        "python": sys.version.split()[0],
    }


def history_record(report: dict, created_unix: Optional[float] = None) -> dict:
    """One ledger row distilled from a ``run_bench`` report."""
    metrics = {}
    for key in WALL_METRICS + SPEEDUP_METRICS:
        if key in report:
            metrics[key] = float(report[key])
    if not metrics:
        raise ConfigurationError(
            "bench report carries none of the ledger metrics "
            f"{WALL_METRICS + SPEEDUP_METRICS}"
        )
    provenance = collect_provenance()
    cache = report.get("cache") or {}
    return {
        "schema_version": SCHEMA_VERSION,
        "created_unix": float(
            created_unix if created_unix is not None else time.time()
        ),
        "git_commit": provenance.get("git_commit"),
        "repro_version": provenance.get("repro_version"),
        "host": host_fingerprint(),
        "quick": bool(report.get("quick", False)),
        "workers": report.get("workers"),
        "n_tasks": (report.get("workload") or {}).get("n_tasks"),
        "cache": {
            "entries": cache.get("entries"),
            "hits": cache.get("hits"),
            "misses": cache.get("misses"),
        },
        "metrics": metrics,
    }


def append_record(record: dict, path: str = DEFAULT_HISTORY_PATH) -> str:
    """Append one row to the ledger (append-only; creates parents).

    The row goes down as a single ``O_APPEND`` write, so concurrent bench
    runs interleave whole lines and a crash tears at most the final one.
    """
    from repro.atomicio import append_jsonl_line

    append_jsonl_line(path, record)
    return path


def load_history(path: str = DEFAULT_HISTORY_PATH) -> List[dict]:
    """The ledger rows in file order; ``[]`` when the file does not exist."""
    if not os.path.exists(path):
        return []
    from repro.obs.exporters import read_jsonl

    return list(read_jsonl(path))


def _comparable(record: dict, report: dict) -> bool:
    """Same sweep set and same core count — wall times only compare then."""
    host = record.get("host") or {}
    return (
        bool(record.get("quick", False)) == bool(report.get("quick", False))
        and host.get("cpus") == (report.get("cpus") or os.cpu_count() or 1)
    )


def check_drift(
    report: dict,
    history: Sequence[dict],
    window: int = DEFAULT_WINDOW,
    mad_k: float = DEFAULT_MAD_K,
    rel_floor: float = DEFAULT_REL_FLOOR,
    min_records: int = MIN_RECORDS,
) -> List[DriftCheck]:
    """Per-metric drift verdicts for ``report`` against the ledger.

    Empty list means "no trajectory yet" (fewer than ``min_records``
    comparable rows) — callers must treat that as an informational pass.
    """
    if window < 1:
        raise ConfigurationError(f"window must be >= 1: {window}")
    if mad_k <= 0 or rel_floor < 0:
        raise ConfigurationError(
            f"mad_k must be > 0 and rel_floor >= 0: {mad_k}, {rel_floor}"
        )
    recent = [r for r in history if _comparable(r, report)][-window:]
    if len(recent) < min_records:
        return []
    checks: List[DriftCheck] = []
    for metric in WALL_METRICS + SPEEDUP_METRICS:
        if metric not in report:
            continue
        series = [
            float(r["metrics"][metric])
            for r in recent
            if metric in (r.get("metrics") or {})
        ]
        direction = "above" if metric in WALL_METRICS else "below"
        check = check_value(
            metric,
            float(report[metric]),
            series,
            direction=direction,
            mad_k=mad_k,
            rel_floor=rel_floor,
            min_records=min_records,
        )
        if check is not None:
            checks.append(check)
    return checks


def drift_problems(checks: Sequence[DriftCheck]) -> List[str]:
    """The failing checks as regression messages (empty = pass)."""
    return [
        f"bench drift: {c.metric} {c.value:.3f} beyond "
        f"{'upper' if c.direction == 'above' else 'lower'} band edge "
        f"(median {c.median:.3f} over last {c.n}, half-width {c.halfwidth:.3f})"
        for c in checks
        if c.failed
    ]


def render_history(history: Sequence[dict], limit: int = 10) -> str:
    """The last ``limit`` ledger rows as an aligned text table."""
    rows = list(history)[-limit:]
    if not rows:
        return "bench history: empty ledger"
    lines = [
        f"bench history: {len(history)} record(s), last {len(rows)} shown",
        f"  {'commit':>9s} {'cpus':>4s} {'sweep':>5s} {'serial':>8s} "
        f"{'parallel':>8s} {'cached':>8s} {'par x':>6s} {'cach x':>6s}",
    ]
    for row in rows:
        metrics = row.get("metrics") or {}
        commit = str(row.get("git_commit") or "?")[:9]
        lines.append(
            "  "
            f"{commit:>9s} "
            f"{(row.get('host') or {}).get('cpus', '?'):>4} "
            f"{'quick' if row.get('quick') else 'full':>5s} "
            f"{metrics.get('serial_seconds', float('nan')):>8.2f} "
            f"{metrics.get('parallel_seconds', float('nan')):>8.2f} "
            f"{metrics.get('cached_seconds', float('nan')):>8.2f} "
            f"{metrics.get('speedup_parallel', float('nan')):>6.2f} "
            f"{metrics.get('speedup_cached', float('nan')):>6.2f}"
        )
    return "\n".join(lines)
