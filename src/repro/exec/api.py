"""The unified run API: :class:`RunRequest` in, :class:`RunResult` out.

Every way of executing a pipeline — serial, fanned out over a process pool,
or replayed from the on-disk cache — goes through the same two frozen
dataclasses.  A request is *pure data*: the pipeline is named (not held as
an object), its constructor arguments are a normalized tuple of pairs, and
the spec/faults/checkpoints payloads are the existing JSON-round-trippable
config objects.  That buys three properties at once:

* **picklability** — requests cross the ``ProcessPoolExecutor`` boundary
  without dragging simulator state along;
* **canonical hashing** — :meth:`RunRequest.cache_key` is a sha256 over the
  sorted-keys JSON of ``(request, code_version)``, the content address of
  the memoized result;
* **provenance** — the same dict lands verbatim in the
  :class:`~repro.obs.manifest.RunManifest`, versioned by the shared
  :data:`~repro.obs.manifest.SCHEMA_VERSION`.

The legacy entry points (``SimulatedPlatform.run`` / ``RealPlatform.run``
and the positional ``WhatIfAnalyzer`` sweep family) survive as thin shims
that route through here and raise a :class:`DeprecationWarning` once per
call signature — see :func:`warn_legacy`.
"""

from __future__ import annotations

import hashlib
import json
import warnings
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Any, Mapping, Optional

from repro.errors import ConfigurationError
from repro.faults.resilience import CheckpointPolicy
from repro.faults.spec import FaultSpec
from repro.obs.manifest import SCHEMA_VERSION
from repro.obs.trace import TraceContext

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.metrics import Measurement
    from repro.pipelines.base import Pipeline, PipelineSpec

__all__ = [
    "MODE_REAL",
    "MODE_SIMULATED",
    "RunRequest",
    "RunResult",
    "build_pipeline",
    "pipeline_factories",
    "reset_legacy_warnings",
    "warn_legacy",
]

MODE_SIMULATED = "simulated"
MODE_REAL = "real"

_MODES = (MODE_SIMULATED, MODE_REAL)


# --------------------------------------------------------------- deprecation

#: Legacy signatures already warned about this process (warn once per API).
_WARNED: set = set()


def warn_legacy(api: str, replacement: str) -> None:
    """Emit one ``DeprecationWarning`` per legacy API per process."""
    if api in _WARNED:
        return
    _WARNED.add(api)
    warnings.warn(
        f"{api} is deprecated; use {replacement} instead (see docs/MIGRATION.md)",
        DeprecationWarning,
        stacklevel=3,
    )


def reset_legacy_warnings() -> None:
    """Forget which legacy APIs already warned (test isolation hook)."""
    _WARNED.clear()


# ------------------------------------------------------------- serialization


def _spec_to_dict(spec: "PipelineSpec") -> dict:
    ocean = spec.ocean
    return {
        "ocean": {
            "resolution_km": ocean.resolution_km,
            "n_vertical_levels": ocean.n_vertical_levels,
            "timestep_seconds": ocean.timestep_seconds,
            "duration_seconds": ocean.duration_seconds,
            "vars_3d": list(ocean.vars_3d),
            "vars_2d": list(ocean.vars_2d),
            "bytes_per_value": ocean.bytes_per_value,
        },
        "sampling": {"interval_hours": spec.sampling.interval_hours},
        "images": {
            "width": spec.images.width,
            "height": spec.images.height,
            "cameras": [
                {"center": list(camera.center), "zoom": camera.zoom}
                for camera in spec.images.cameras
            ],
        },
        "output_prefix": spec.output_prefix,
    }


def _spec_from_dict(data: Mapping[str, Any]) -> "PipelineSpec":
    from repro.ocean.driver import MPASOceanConfig
    from repro.pipelines.base import PipelineSpec
    from repro.pipelines.sampling import SamplingPolicy
    from repro.viz.render import Camera, ImageSpec

    ocean = data["ocean"]
    images = data["images"]
    return PipelineSpec(
        ocean=MPASOceanConfig(
            resolution_km=float(ocean["resolution_km"]),
            n_vertical_levels=int(ocean["n_vertical_levels"]),
            timestep_seconds=float(ocean["timestep_seconds"]),
            duration_seconds=float(ocean["duration_seconds"]),
            vars_3d=tuple(ocean["vars_3d"]),
            vars_2d=tuple(ocean["vars_2d"]),
            bytes_per_value=int(ocean["bytes_per_value"]),
        ),
        sampling=SamplingPolicy(float(data["sampling"]["interval_hours"])),
        images=ImageSpec(
            width=int(images["width"]),
            height=int(images["height"]),
            cameras=tuple(
                Camera(center=tuple(c["center"]), zoom=float(c["zoom"]))
                for c in images["cameras"]
            ),
        ),
        output_prefix=str(data["output_prefix"]),
    )


def _normalize_args(args: Any) -> tuple:
    """Normalize pipeline constructor arguments to a sorted tuple of pairs."""
    if args is None:
        return ()
    if isinstance(args, Mapping):
        items = args.items()
    else:
        items = tuple(args)
    normalized = []
    for pair in sorted(items):
        key, value = pair
        if not isinstance(key, str):
            raise ConfigurationError(f"pipeline_args keys must be strings: {key!r}")
        normalized.append((key, value))
    return tuple(normalized)


# ------------------------------------------------------------------- request


@dataclass(frozen=True)
class RunRequest:
    """Everything needed to execute one pipeline run, as pure data."""

    #: Canonical pipeline name ("in-situ" / "post-processing" / "in-transit").
    #: Empty means "filled in from the pipeline instance by
    #: :meth:`~repro.pipelines.base.Pipeline.execute`".
    pipeline: str = ""
    #: Pipeline constructor arguments as a normalized tuple of ``(name,
    #: value)`` pairs (a dict is accepted and normalized).
    pipeline_args: tuple = ()
    #: Campaign configuration, cadence and image parameters.
    spec: "PipelineSpec" = None  # type: ignore[assignment]
    #: ``"simulated"`` (campaign-scale DES) or ``"real"`` (laptop-scale).
    mode: str = MODE_SIMULATED
    #: Chaos schedule for the supervised simulated path.
    faults: Optional[FaultSpec] = None
    #: Checkpoint/restart policy for the supervised simulated path.
    checkpoints: Optional[CheckpointPolicy] = None
    #: Deterministic per-task seed material (folded into the cache key and
    #: the worker's RNG seeding).
    seed: int = 0
    #: Real mode only: working directory for the miniature run's files.
    workdir: Optional[str] = None
    #: Telemetry propagation capsule, attached by the engine when a session
    #: is active.  Like ``workdir`` it is transport, not identity: excluded
    #: from :meth:`to_dict`, the cache key and request equality.
    trace: Optional[TraceContext] = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if self.spec is None:
            from repro.pipelines.base import PipelineSpec

            object.__setattr__(self, "spec", PipelineSpec())
        object.__setattr__(self, "pipeline_args", _normalize_args(self.pipeline_args))
        if self.mode not in _MODES:
            raise ConfigurationError(
                f"unknown run mode {self.mode!r}; expected one of {_MODES}"
            )
        if self.mode == MODE_REAL and (
            self.faults is not None or self.checkpoints is not None
        ):
            raise ConfigurationError(
                "faults/checkpoints are simulated-mode features; real-mode "
                "requests cannot carry them"
            )
        if self.mode == MODE_SIMULATED and self.workdir is not None:
            raise ConfigurationError("workdir is a real-mode parameter")

    # ------------------------------------------------------------- properties

    @property
    def cacheable(self) -> bool:
        """Only simulated runs are deterministic functions of the request."""
        return self.mode == MODE_SIMULATED

    # ----------------------------------------------------------- construction

    def bound_to(self, pipeline: "Pipeline") -> "RunRequest":
        """This request with pipeline identity filled in from an instance."""
        if self.pipeline and self.pipeline != pipeline.name:
            raise ConfigurationError(
                f"request names pipeline {self.pipeline!r} but is executing "
                f"on {pipeline.name!r}"
            )
        return replace(
            self,
            pipeline=pipeline.name,
            pipeline_args=_normalize_args(pipeline.request_args()),
        )

    def with_spec(self, spec: "PipelineSpec") -> "RunRequest":
        """The same request over a different spec."""
        return replace(self, spec=spec)

    # -------------------------------------------------------------- hash/seed

    def to_dict(self) -> dict:
        """JSON-safe representation (manifest / cache meta / ``--json``)."""
        return {
            "schema_version": SCHEMA_VERSION,
            "pipeline": self.pipeline,
            "pipeline_args": [list(pair) for pair in self.pipeline_args],
            "spec": _spec_to_dict(self.spec),
            "mode": self.mode,
            "faults": None if self.faults is None else self.faults.to_dict(),
            "checkpoints": (
                None if self.checkpoints is None else self.checkpoints.to_dict()
            ),
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunRequest":
        """Inverse of :meth:`to_dict` (``workdir`` is deliberately not
        serialized: it is machine-local and never part of run identity)."""
        faults = data.get("faults")
        checkpoints = data.get("checkpoints")
        return cls(
            pipeline=str(data.get("pipeline", "")),
            pipeline_args=tuple(
                (str(k), v) for k, v in data.get("pipeline_args", ())
            ),
            spec=_spec_from_dict(data["spec"]),
            mode=str(data.get("mode", MODE_SIMULATED)),
            faults=None if faults is None else FaultSpec.from_dict(faults),
            checkpoints=(
                None if checkpoints is None else CheckpointPolicy(**checkpoints)
            ),
            seed=int(data.get("seed", 0)),
        )

    def cache_key(self, code_version: str) -> str:
        """Content address: sha256 of the canonical (request, code) JSON."""
        payload = {"request": self.to_dict(), "code_version": code_version}
        canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def task_seed(self) -> int:
        """Deterministic per-task RNG seed derived from the request alone."""
        digest = self.cache_key(code_version="task-seed")
        return (int(digest[:16], 16) ^ self.seed) & 0x7FFFFFFF


# -------------------------------------------------------------------- result


@dataclass(frozen=True)
class RunResult:
    """One executed (or replayed) run: the request plus everything measured.

    A *failed* supervised run is still a :class:`RunResult`: ``measurement``
    is ``None`` and ``failure`` carries the structured record (error kind,
    per-attempt elapsed times, quarantine flag) instead of an exception
    unwinding the whole sweep.  Failed results are never cached.
    """

    request: RunRequest
    measurement: Optional["Measurement"]
    #: Whether this result came out of the on-disk cache.
    cache_hit: bool = False
    #: Content address of the run, when caching was in play.
    cache_key: Optional[str] = None
    #: How the run was produced: ``"inline"``, ``"pool"`` or ``"cache"``.
    engine: str = "inline"
    #: Wall-clock seconds this process spent obtaining the result.  *Not*
    #: part of the deterministic payload — excluded from :meth:`to_dict`'s
    #: ``identity`` sub-dict and from bit-identity comparisons.
    wall_seconds: float = 0.0
    #: Injection tally of a faulted simulated run (``None`` otherwise).
    fault_summary: Optional[dict] = None
    #: Crash recoveries performed during the run.
    recoveries: int = 0
    #: Worker shard payload (events + metric snapshot) carried back across
    #: the pool boundary; the engine merges and clears it.  Transport, not
    #: identity — excluded from :meth:`identity_dict` and :meth:`to_dict`.
    telemetry: Optional[dict] = field(default=None, compare=False)
    #: Structured failure record from the supervised path (``None`` for a
    #: successful run).  JSON-safe: ``{"kind", "error", "attempts": [...],
    #: "quarantined"}`` — see :mod:`repro.exec.supervise`.  Excluded from
    #: :meth:`identity_dict`: attempt timings are wall-clock diagnostics.
    failure: Optional[dict] = None

    @property
    def ok(self) -> bool:
        """True when the run produced a measurement (no failure record)."""
        return self.failure is None

    def identity_dict(self) -> dict:
        """The deterministic payload used for bit-identity comparisons."""
        return {
            "request": self.request.to_dict(),
            "measurement": (
                None if self.measurement is None else self.measurement.to_dict()
            ),
            "fault_summary": self.fault_summary,
            "recoveries": self.recoveries,
        }

    def to_dict(self) -> dict:
        """JSON-safe representation (manifest / ``--json`` output)."""
        out = {"schema_version": SCHEMA_VERSION}
        out.update(self.identity_dict())
        out.update(
            {
                "cache": {"hit": self.cache_hit, "key": self.cache_key},
                "engine": self.engine,
                "wall_seconds": self.wall_seconds,
                "failure": self.failure,
            }
        )
        return out


# ------------------------------------------------------------------ registry


def pipeline_factories() -> dict:
    """Name → class for every pipeline the engine can instantiate."""
    from repro.pipelines.insitu import InSituPipeline
    from repro.pipelines.intransit import InTransitPipeline
    from repro.pipelines.postprocessing import PostProcessingPipeline

    return {
        InSituPipeline.name: InSituPipeline,
        PostProcessingPipeline.name: PostProcessingPipeline,
        InTransitPipeline.name: InTransitPipeline,
    }


def build_pipeline(request: RunRequest) -> "Pipeline":
    """Instantiate the pipeline a request names (with its stored args)."""
    factories = pipeline_factories()
    if request.pipeline not in factories:
        raise ConfigurationError(
            f"unknown pipeline {request.pipeline!r}; expected one of "
            f"{sorted(factories)}"
        )
    return factories[request.pipeline](**dict(request.pipeline_args))
