"""Content-addressed on-disk memoization of completed runs.

A cache entry is keyed by :meth:`RunRequest.cache_key` — the sha256 of the
canonical ``(request, code_version)`` JSON — so a hit is only possible when
the configuration, the seed *and* the code revision all match.  Each entry
is two files under ``<dir>/<key[:2]>/``:

* ``<key>.pkl`` — the pickled deterministic payload (measurement, fault
  summary, recovery count);
* ``<key>.json`` — a human-readable meta sidecar (the request dict, code
  version, schema version, and the payload's sha256 digest) for provenance
  spelunking without unpickling.

Writes are atomic (temp file + ``os.replace``), so a crashed run never
leaves a torn entry behind.  Reads are *verified*: :meth:`DiskCache.get`
recomputes the payload digest against the sidecar and quarantines a corrupt
entry — moved into ``<dir>/quarantine/`` and counted on
``repro_exec_cache_corrupt_total`` — instead of letting bit-rot or a torn
file poison downstream runs.  Hit/miss counters stay with the engine.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import re
import subprocess
from typing import Any, Optional

from repro import obs
from repro.atomicio import atomic_write_json
from repro.errors import ConfigurationError
from repro.obs.manifest import SCHEMA_VERSION

__all__ = ["DiskCache", "QUARANTINE_DIRNAME", "default_code_version"]

#: Subdirectory of a cache where corrupt entries are moved aside.
QUARANTINE_DIRNAME = "quarantine"

#: Shard directories are the first two hex characters of the key; anything
#: else under the cache root (quarantine, stray files) is not an entry.
_SHARD_RE = re.compile(r"^[0-9a-f]{2}$")


def default_code_version() -> str:
    """The code revision folded into every cache key.

    The git commit when available (any code change invalidates the cache),
    falling back to the package version for source-tarball installs.
    """
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5,
            cwd=os.path.dirname(os.path.abspath(__file__)),
        )
        if out.returncode == 0:
            return out.stdout.strip()
    except (OSError, subprocess.SubprocessError):
        pass
    import repro

    return f"repro-{repro.__version__}"


class DiskCache:
    """A content-addressed store of completed run payloads."""

    def __init__(self, directory: str, code_version: Optional[str] = None) -> None:
        if not directory:
            raise ConfigurationError("cache directory must be non-empty")
        self.directory = directory
        self.code_version = (
            code_version if code_version is not None else default_code_version()
        )
        #: Corrupt entries quarantined over this cache's lifetime.
        self.corrupt_quarantined = 0
        os.makedirs(directory, exist_ok=True)

    # ----------------------------------------------------------------- paths

    def _paths(self, key: str) -> tuple[str, str]:
        shard = os.path.join(self.directory, key[:2])
        return os.path.join(shard, f"{key}.pkl"), os.path.join(shard, f"{key}.json")

    # ------------------------------------------------------------------- api

    def get(self, key: str) -> Optional[Any]:
        """The stored payload for ``key``, or ``None`` on a miss.

        The payload's sha256 is recomputed and checked against the meta
        sidecar (entries written before digests existed skip the check); a
        mismatch — bit-rot, a partially synced copy, tampering — quarantines
        the entry and counts as a miss, so the engine re-executes instead of
        propagating a corrupt measurement.  A torn or unreadable entry is
        likewise a miss.
        """
        payload_path, _ = self._paths(key)
        try:
            with open(payload_path, "rb") as fh:
                raw = fh.read()
        except OSError:
            return None
        meta = self.meta(key)
        expected = (meta or {}).get("payload_sha256")
        if expected is not None:
            digest = hashlib.sha256(raw).hexdigest()
            if digest != expected:
                self.quarantine(key, reason="payload digest mismatch")
                return None
        try:
            return pickle.loads(raw)
        except (pickle.UnpicklingError, EOFError, AttributeError, ValueError):
            if expected is not None:
                # The bytes matched their digest yet do not unpickle: the
                # entry was written by an incompatible code version.  Move
                # it aside too so every later get() doesn't re-hash it.
                self.quarantine(key, reason="payload does not unpickle")
            return None

    def put(self, key: str, payload: Any, meta: Optional[dict] = None) -> None:
        """Store ``payload`` under ``key`` atomically, with a meta sidecar.

        The sidecar records the payload's sha256 so :meth:`get` can verify
        integrity end-to-end.  Both files go through write-to-temp +
        ``os.replace``; a crash mid-put leaves either the old entry or the
        complete new one.
        """
        payload_path, meta_path = self._paths(key)
        os.makedirs(os.path.dirname(payload_path), exist_ok=True)
        raw = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        tmp = f"{payload_path}.tmp.{os.getpid()}"
        with open(tmp, "wb") as fh:
            fh.write(raw)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, payload_path)
        sidecar = {
            "schema_version": SCHEMA_VERSION,
            "key": key,
            "code_version": self.code_version,
            "payload_sha256": hashlib.sha256(raw).hexdigest(),
            "payload_bytes": len(raw),
        }
        if meta:
            sidecar.update(meta)
        atomic_write_json(meta_path, sidecar)

    def quarantine(self, key: str, reason: str = "corrupt") -> None:
        """Move a corrupt entry aside so it cannot poison later runs.

        The payload and sidecar land in ``<dir>/quarantine/`` (clobbering
        any previous quarantine of the same key) and
        ``repro_exec_cache_corrupt_total`` counts the event.
        """
        payload_path, meta_path = self._paths(key)
        qdir = os.path.join(self.directory, QUARANTINE_DIRNAME)
        os.makedirs(qdir, exist_ok=True)
        for path in (payload_path, meta_path):
            if not os.path.exists(path):
                continue
            try:
                os.replace(path, os.path.join(qdir, os.path.basename(path)))
            except OSError:
                continue
        self.corrupt_quarantined += 1
        obs.counter("repro_exec_cache_corrupt_total", reason=reason)

    def __contains__(self, key: str) -> bool:
        payload_path, _ = self._paths(key)
        return os.path.exists(payload_path)

    def __len__(self) -> int:
        return len(self.keys())

    def keys(self) -> list:
        """Every key with a stored payload, deterministically sorted.

        Only two-hex-character shard directories are scanned, so the
        quarantine directory (and any stray files) never leak into the key
        listing, and the order is the sorted key order on every platform
        regardless of directory enumeration order.
        """
        found = []
        if not os.path.isdir(self.directory):
            return found
        for shard in sorted(os.listdir(self.directory)):
            if _SHARD_RE.match(shard) is None:
                continue
            shard_dir = os.path.join(self.directory, shard)
            if not os.path.isdir(shard_dir):
                continue
            for name in sorted(os.listdir(shard_dir)):
                if name.endswith(".pkl"):
                    found.append(name[: -len(".pkl")])
        return found

    def meta(self, key: str) -> Optional[dict]:
        """The JSON meta sidecar for ``key``, or ``None``.

        A missing, torn or non-object sidecar returns ``None`` instead of
        raising — the sidecar is provenance, never a load-bearing input.
        """
        _, meta_path = self._paths(key)
        try:
            with open(meta_path, "r", encoding="utf-8") as fh:
                data = json.load(fh)
        except (OSError, json.JSONDecodeError, ValueError):
            return None
        return data if isinstance(data, dict) else None

    def clear(self) -> int:
        """Delete every entry; returns how many payloads were removed."""
        removed = 0
        for key in self.keys():
            payload_path, meta_path = self._paths(key)
            for path in (payload_path, meta_path):
                try:
                    os.remove(path)
                except OSError:
                    continue
            removed += 1
        return removed
