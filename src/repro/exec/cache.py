"""Content-addressed on-disk memoization of completed runs.

A cache entry is keyed by :meth:`RunRequest.cache_key` — the sha256 of the
canonical ``(request, code_version)`` JSON — so a hit is only possible when
the configuration, the seed *and* the code revision all match.  Each entry
is two files under ``<dir>/<key[:2]>/``:

* ``<key>.pkl`` — the pickled deterministic payload (measurement, fault
  summary, recovery count);
* ``<key>.json`` — a human-readable meta sidecar (the request dict, code
  version, schema version) for provenance spelunking without unpickling.

Writes are atomic (temp file + ``os.replace``), so a crashed run never
leaves a torn entry behind.  Hit/miss counters flow through the obs layer
(the engine owns those — the cache itself stays import-light and silent).
"""

from __future__ import annotations

import json
import os
import pickle
import subprocess
from typing import Any, Optional

from repro.errors import ConfigurationError
from repro.obs.manifest import SCHEMA_VERSION

__all__ = ["DiskCache", "default_code_version"]


def default_code_version() -> str:
    """The code revision folded into every cache key.

    The git commit when available (any code change invalidates the cache),
    falling back to the package version for source-tarball installs.
    """
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5,
            cwd=os.path.dirname(os.path.abspath(__file__)),
        )
        if out.returncode == 0:
            return out.stdout.strip()
    except (OSError, subprocess.SubprocessError):
        pass
    import repro

    return f"repro-{repro.__version__}"


class DiskCache:
    """A content-addressed store of completed run payloads."""

    def __init__(self, directory: str, code_version: Optional[str] = None) -> None:
        if not directory:
            raise ConfigurationError("cache directory must be non-empty")
        self.directory = directory
        self.code_version = (
            code_version if code_version is not None else default_code_version()
        )
        os.makedirs(directory, exist_ok=True)

    # ----------------------------------------------------------------- paths

    def _paths(self, key: str) -> tuple[str, str]:
        shard = os.path.join(self.directory, key[:2])
        return os.path.join(shard, f"{key}.pkl"), os.path.join(shard, f"{key}.json")

    # ------------------------------------------------------------------- api

    def get(self, key: str) -> Optional[Any]:
        """The stored payload for ``key``, or ``None`` on a miss.

        A torn or unreadable entry (interrupted write, pickle drift) counts
        as a miss — the engine simply re-executes and overwrites it.
        """
        payload_path, _ = self._paths(key)
        try:
            with open(payload_path, "rb") as fh:
                return pickle.load(fh)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError):
            return None

    def put(self, key: str, payload: Any, meta: Optional[dict] = None) -> None:
        """Store ``payload`` under ``key`` atomically, with a meta sidecar."""
        payload_path, meta_path = self._paths(key)
        os.makedirs(os.path.dirname(payload_path), exist_ok=True)
        tmp = f"{payload_path}.tmp.{os.getpid()}"
        with open(tmp, "wb") as fh:
            pickle.dump(payload, fh, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp, payload_path)
        sidecar = {
            "schema_version": SCHEMA_VERSION,
            "key": key,
            "code_version": self.code_version,
        }
        if meta:
            sidecar.update(meta)
        tmp = f"{meta_path}.tmp.{os.getpid()}"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(sidecar, fh, indent=2, sort_keys=True)
            fh.write("\n")
        os.replace(tmp, meta_path)

    def __contains__(self, key: str) -> bool:
        payload_path, _ = self._paths(key)
        return os.path.exists(payload_path)

    def __len__(self) -> int:
        return len(self.keys())

    def keys(self) -> list:
        """Every key with a stored payload, sorted."""
        found = []
        if not os.path.isdir(self.directory):
            return found
        for shard in sorted(os.listdir(self.directory)):
            shard_dir = os.path.join(self.directory, shard)
            if not os.path.isdir(shard_dir):
                continue
            for name in sorted(os.listdir(shard_dir)):
                if name.endswith(".pkl"):
                    found.append(name[: -len(".pkl")])
        return found

    def meta(self, key: str) -> Optional[dict]:
        """The JSON meta sidecar for ``key``, or ``None``."""
        _, meta_path = self._paths(key)
        try:
            with open(meta_path, "r", encoding="utf-8") as fh:
                return json.load(fh)
        except (OSError, json.JSONDecodeError):
            return None

    def clear(self) -> int:
        """Delete every entry; returns how many payloads were removed."""
        removed = 0
        for key in self.keys():
            payload_path, meta_path = self._paths(key)
            for path in (payload_path, meta_path):
                try:
                    os.remove(path)
                except OSError:
                    continue
            removed += 1
        return removed
