"""The experiment-execution engine (``repro.exec``).

One unified API for running pipelines — :class:`RunRequest` in,
:class:`RunResult` out — behind three interchangeable execution strategies:
inline, fanned out over a process pool (bit-identical to serial), or
replayed from a content-addressed on-disk cache.  See ``docs/MIGRATION.md``
for the mapping from the legacy ``platform.run(...)`` entry points.
"""

from repro.exec.api import (
    MODE_REAL,
    MODE_SIMULATED,
    RunRequest,
    RunResult,
    build_pipeline,
    pipeline_factories,
    reset_legacy_warnings,
    warn_legacy,
)
from repro.exec.cache import DiskCache, default_code_version
from repro.exec.engine import ExecutionEngine, execute_request

__all__ = [
    "MODE_REAL",
    "MODE_SIMULATED",
    "DiskCache",
    "ExecutionEngine",
    "RunRequest",
    "RunResult",
    "build_pipeline",
    "default_code_version",
    "execute_request",
    "pipeline_factories",
    "reset_legacy_warnings",
    "warn_legacy",
]
