"""The experiment-execution engine (``repro.exec``).

One unified API for running pipelines — :class:`RunRequest` in,
:class:`RunResult` out — behind three interchangeable execution strategies:
inline, fanned out over a process pool (bit-identical to serial), or
replayed from a content-addressed on-disk cache.  See ``docs/MIGRATION.md``
for the mapping from the legacy ``platform.run(...)`` entry points.
"""

from repro.exec.api import (
    MODE_REAL,
    MODE_SIMULATED,
    RunRequest,
    RunResult,
    build_pipeline,
    pipeline_factories,
    reset_legacy_warnings,
    warn_legacy,
)
from repro.exec.cache import QUARANTINE_DIRNAME, DiskCache, default_code_version
from repro.exec.engine import ExecutionEngine, execute_request
from repro.exec.supervise import (
    FAIL_POLICIES,
    JOURNAL_FILENAME,
    SupervisedExecutor,
    SweepJournal,
    TaskPolicy,
)
from repro.exec.history import (
    DEFAULT_HISTORY_PATH,
    DriftCheck,
    append_record,
    check_drift,
    drift_problems,
    history_record,
    host_fingerprint,
    load_history,
    render_history,
)

__all__ = [
    "DEFAULT_HISTORY_PATH",
    "FAIL_POLICIES",
    "JOURNAL_FILENAME",
    "MODE_REAL",
    "MODE_SIMULATED",
    "QUARANTINE_DIRNAME",
    "DiskCache",
    "DriftCheck",
    "ExecutionEngine",
    "RunRequest",
    "RunResult",
    "SupervisedExecutor",
    "SweepJournal",
    "TaskPolicy",
    "append_record",
    "build_pipeline",
    "check_drift",
    "default_code_version",
    "drift_problems",
    "execute_request",
    "history_record",
    "host_fingerprint",
    "load_history",
    "pipeline_factories",
    "render_history",
    "reset_legacy_warnings",
    "warn_legacy",
]
