"""The ``repro bench`` runner: the fig3/fig9/fig10 sweep set, metered.

Executes the paper's characterization grid plus the Fig. 9/Fig. 10 cadence
axes through the :class:`~repro.exec.engine.ExecutionEngine` three times —
serial, parallel, cached — verifies the three produce bit-identical
measurements, and emits a machine-readable ``BENCH_exec.json`` (wall times,
speedups, cache stats) next to a human-readable summary.  A committed
baseline JSON turns the report into a CI gate:
:func:`compare_to_baseline` fails the run on a >20 % speedup regression.

Speedup numbers are machine-dependent, so the parallel gate only applies
when the host has at least the baseline's ``min_cpus`` cores — a laptop or
a single-core container still runs the bench (and the bit-identity checks)
without failing on hardware it doesn't have.
"""

from __future__ import annotations

import os
import time
from typing import Optional, Sequence

from repro import obs
from repro.core.characterization import run_characterization
from repro.core.metrics import IN_SITU, POST_PROCESSING
from repro.errors import ConfigurationError
from repro.exec.api import RunRequest
from repro.exec.cache import DiskCache
from repro.exec.engine import ExecutionEngine
from repro.obs.manifest import SCHEMA_VERSION
from repro.pipelines.base import PipelineSpec
from repro.pipelines.sampling import SamplingPolicy

__all__ = [
    "FULL_INTERVALS",
    "QUICK_INTERVALS",
    "compare_to_baseline",
    "run_bench",
    "sweep_requests",
    "write_report",
]

#: The fig3 grid (8/24/72) plus nearby fig9/fig10 cadences — small enough
#: for a CI quick gate, large enough to amortize pool start-up.
QUICK_INTERVALS: tuple = (4.0, 8.0, 12.0, 24.0, 48.0, 72.0)

#: The union of the fig3 grid and the full Fig. 9 (1,4,8,24,72,192,384) and
#: Fig. 10 (1,2,4,8,12,24,48,96) sweep axes.
FULL_INTERVALS: tuple = (1.0, 2.0, 4.0, 8.0, 12.0, 24.0, 48.0, 72.0, 96.0, 192.0, 384.0)

#: Default regression tolerance: fail CI when a speedup drops more than
#: 20 % below the committed baseline.
DEFAULT_TOLERANCE = 0.2


def sweep_requests(intervals_hours: Sequence[float]) -> list:
    """Both pipelines at every cadence, as engine-ready requests."""
    base = PipelineSpec()
    return [
        RunRequest(pipeline=name, spec=base.with_sampling(SamplingPolicy(hours)))
        for hours in intervals_hours
        for name in (IN_SITU, POST_PROCESSING)
    ]


def _identical(a: Sequence, b: Sequence) -> bool:
    """Bit-identity of two result batches (deterministic payloads only)."""
    if len(a) != len(b):
        return False
    return all(x.identity_dict() == y.identity_dict() for x, y in zip(a, b))


def run_bench(
    quick: bool = False,
    workers: Optional[int] = None,
    cache_dir: Optional[str] = None,
    output_dir: str = os.path.join("benchmarks", "results"),
) -> dict:
    """Run the sweep set serial → parallel → cached and report.

    ``cache_dir=None`` puts the cache inside ``output_dir`` (wiped first so
    the "parallel" phase is a genuine cold run and "cached" a warm one).
    """
    intervals = QUICK_INTERVALS if quick else FULL_INTERVALS
    requests = sweep_requests(intervals)
    n_workers = workers if workers is not None else min(8, os.cpu_count() or 1)
    if n_workers < 1:
        raise ConfigurationError(f"workers must be >= 1: {n_workers}")
    if cache_dir is None:
        cache_dir = os.path.join(output_dir, "exec-cache")
    cache = DiskCache(cache_dir)
    cache.clear()

    serial_engine = ExecutionEngine(max_workers=1)
    t0 = time.perf_counter()
    serial = serial_engine.map(requests)
    serial_seconds = time.perf_counter() - t0
    obs.observe("repro_exec_bench_seconds", serial_seconds, stage="serial")

    parallel_engine = ExecutionEngine(max_workers=n_workers, cache=cache)
    t0 = time.perf_counter()
    parallel = parallel_engine.map(requests)
    parallel_seconds = time.perf_counter() - t0
    obs.observe("repro_exec_bench_seconds", parallel_seconds, stage="parallel")

    t0 = time.perf_counter()
    cached = parallel_engine.map(requests)
    cached_seconds = time.perf_counter() - t0
    obs.observe("repro_exec_bench_seconds", cached_seconds, stage="cached")

    # The paper's derived analyses on top of the (now warm) grid: the fig3
    # characterization study and the fig9/fig10 model sweeps.
    study = run_characterization(
        engine=ExecutionEngine(max_workers=1, cache=cache)
    )
    analyzer = study.analyzer()
    duration = study.spec.ocean.duration_seconds
    fig9 = analyzer.storage_vs_rate(
        intervals_hours=(1.0, 4.0, 8.0, 24.0, 72.0, 192.0, 384.0),
        duration_seconds=duration,
    )
    fig10 = analyzer.energy_vs_rate(
        intervals_hours=(1.0, 2.0, 4.0, 8.0, 12.0, 24.0, 48.0, 96.0),
        duration_seconds=duration,
    )

    report = {
        "schema_version": SCHEMA_VERSION,
        "name": "exec",
        "quick": quick,
        "workload": {
            "n_tasks": len(requests),
            "intervals_hours": list(intervals),
            "pipelines": [IN_SITU, POST_PROCESSING],
        },
        "workers": n_workers,
        "cpus": os.cpu_count() or 1,
        "serial_seconds": serial_seconds,
        "parallel_seconds": parallel_seconds,
        "cached_seconds": cached_seconds,
        "speedup_parallel": serial_seconds / parallel_seconds,
        "speedup_cached": serial_seconds / cached_seconds,
        "identical": {
            "parallel_vs_serial": _identical(parallel, serial),
            "cached_vs_serial": _identical(cached, serial),
        },
        "cache": {
            "entries": len(cache),
            "hits": parallel_engine.cache_hits,
            "misses": parallel_engine.cache_misses,
            "code_version": cache.code_version,
        },
        "fig9_storage_gb": [list(row) for row in fig9],
        "fig10_energy_savings_24h": analyzer.energy_savings(
            interval_hours=24.0, duration_seconds=duration
        ),
        "fig10_rows": [list(row) for row in fig10],
    }
    return report


def write_report(report: dict, output_dir: str) -> str:
    """Write ``BENCH_exec.json`` (and a text summary) atomically."""
    from repro.atomicio import atomic_write_json, atomic_write_text

    os.makedirs(output_dir, exist_ok=True)
    path = os.path.join(output_dir, "BENCH_exec.json")
    atomic_write_json(path, report)
    atomic_write_text(os.path.join(output_dir, "BENCH_exec.txt"), summary(report) + "\n")
    return path


def summary(report: dict) -> str:
    """Human-readable one-screen bench summary."""
    ident = report["identical"]
    cache = report["cache"]
    return "\n".join(
        [
            f"repro bench ({'quick' if report['quick'] else 'full'}): "
            f"{report['workload']['n_tasks']} tasks, "
            f"{report['workers']} worker(s) on {report['cpus']} cpu(s)",
            f"  serial    {report['serial_seconds']:8.2f} s",
            f"  parallel  {report['parallel_seconds']:8.2f} s  "
            f"({report['speedup_parallel']:.2f}x)",
            f"  cached    {report['cached_seconds']:8.2f} s  "
            f"({report['speedup_cached']:.2f}x)",
            f"  identical: parallel={ident['parallel_vs_serial']} "
            f"cached={ident['cached_vs_serial']}",
            f"  cache: {cache['entries']} entries, "
            f"{cache['hits']} hit(s), {cache['misses']} miss(es)",
        ]
    )


def compare_to_baseline(
    report: dict, baseline: dict, tolerance: float = DEFAULT_TOLERANCE
) -> list:
    """Regression messages vs a committed baseline (empty = pass).

    Bit-identity must always hold.  Speedup floors apply with ``tolerance``
    slack; the parallel floor is skipped on hosts with fewer than the
    baseline's ``min_cpus`` cores (a speedup a 1-core runner cannot show is
    not a regression).
    """
    problems = []
    for check, ok in report["identical"].items():
        if not ok:
            problems.append(f"bit-identity violated: {check}")
    min_cpus = baseline.get("min_cpus", 2)
    floor = baseline.get("speedup_parallel")
    if floor is not None and report["cpus"] >= min_cpus:
        allowed = floor * (1.0 - tolerance)
        if report["speedup_parallel"] < allowed:
            problems.append(
                f"parallel speedup regressed: {report['speedup_parallel']:.2f}x "
                f"< {allowed:.2f}x (baseline {floor:.2f}x - {tolerance:.0%})"
            )
    floor = baseline.get("speedup_cached")
    if floor is not None:
        allowed = floor * (1.0 - tolerance)
        if report["speedup_cached"] < allowed:
            problems.append(
                f"cached speedup regressed: {report['speedup_cached']:.2f}x "
                f"< {allowed:.2f}x (baseline {floor:.2f}x - {tolerance:.0%})"
            )
    return problems
