"""RGB image buffers with a real PNG encoder/decoder.

The encoder writes standards-compliant 8-bit RGB PNG (signature, IHDR, IDAT
with zlib-compressed filtered scanlines, IEND) using per-row filter selection
between None(0) and Up(2) by the minimum-sum-of-absolute-differences
heuristic.  The decoder reads back any non-interlaced 8-bit RGB/RGBA PNG with
the full set of filter types (0–4), which covers everything this library and
most external writers produce.

Real image bytes matter here: in-situ storage volumes (the "<1 GB" of the
paper's Fig. 7) come from actually encoding the rendered frames.
"""

from __future__ import annotations

import struct
import zlib
from typing import Iterable

import numpy as np

from repro.errors import ConfigurationError, FileFormatError

__all__ = ["Image", "png_encode", "png_decode"]

_PNG_SIGNATURE = b"\x89PNG\r\n\x1a\n"


def _chunk(tag: bytes, payload: bytes) -> bytes:
    return (
        struct.pack(">I", len(payload))
        + tag
        + payload
        + struct.pack(">I", zlib.crc32(tag + payload) & 0xFFFFFFFF)
    )


def png_encode(pixels: np.ndarray, compress_level: int = 6) -> bytes:
    """Encode an ``(H, W, 3) uint8`` array as a PNG byte string."""
    pixels = np.asarray(pixels)
    if pixels.ndim != 3 or pixels.shape[2] != 3 or pixels.dtype != np.uint8:
        raise ConfigurationError(
            f"png_encode needs (H, W, 3) uint8, got {pixels.shape} {pixels.dtype}"
        )
    h, w, _ = pixels.shape
    if h < 1 or w < 1:
        raise ConfigurationError(f"degenerate image {w}x{h}")
    ihdr = struct.pack(">IIBBBBB", w, h, 8, 2, 0, 0, 0)  # 8-bit, color type 2 (RGB)
    # Filter selection per row: None (0) vs Up (2), by minimum absolute sum.
    raw = pixels.reshape(h, w * 3).astype(np.int16)
    up = raw - np.vstack([np.zeros((1, w * 3), dtype=np.int16), raw[:-1]])
    none_cost = np.abs(((raw + 128) % 256) - 128).sum(axis=1)
    up_cost = np.abs(((up + 128) % 256) - 128).sum(axis=1)
    rows = bytearray()
    for y in range(h):
        if up_cost[y] < none_cost[y]:
            rows.append(2)
            rows.extend((up[y] % 256).astype(np.uint8).tobytes())
        else:
            rows.append(0)
            rows.extend((raw[y] % 256).astype(np.uint8).tobytes())
    idat = zlib.compress(bytes(rows), compress_level)
    return (
        _PNG_SIGNATURE
        + _chunk(b"IHDR", ihdr)
        + _chunk(b"IDAT", idat)
        + _chunk(b"IEND", b"")
    )


def _iter_chunks(data: bytes) -> Iterable[tuple[bytes, bytes]]:
    pos = len(_PNG_SIGNATURE)
    while pos < len(data):
        if pos + 8 > len(data):
            raise FileFormatError("truncated PNG chunk header")
        (length,) = struct.unpack(">I", data[pos : pos + 4])
        tag = data[pos + 4 : pos + 8]
        payload = data[pos + 8 : pos + 8 + length]
        if len(payload) != length:
            raise FileFormatError(f"truncated PNG chunk {tag!r}")
        crc = struct.unpack(">I", data[pos + 8 + length : pos + 12 + length])[0]
        if crc != (zlib.crc32(tag + payload) & 0xFFFFFFFF):
            raise FileFormatError(f"bad CRC in PNG chunk {tag!r}")
        yield tag, payload
        pos += 12 + length


def _unfilter(rows: np.ndarray, filters: np.ndarray, bpp: int) -> np.ndarray:
    """Undo PNG per-row filtering in place on an int16 working copy."""
    h, stride = rows.shape
    out = np.zeros((h, stride), dtype=np.uint8)
    for y in range(h):
        line = rows[y].astype(np.int32)
        ftype = int(filters[y])
        prev = out[y - 1].astype(np.int32) if y > 0 else np.zeros(stride, dtype=np.int32)
        if ftype == 0:
            out[y] = line % 256
        elif ftype == 2:  # Up
            out[y] = (line + prev) % 256
        elif ftype in (1, 3, 4):  # Sub / Average / Paeth need a left-to-right scan
            cur = np.zeros(stride, dtype=np.int32)
            for x in range(stride):
                a = cur[x - bpp] if x >= bpp else 0
                b = prev[x]
                c = prev[x - bpp] if x >= bpp else 0
                if ftype == 1:
                    pred = a
                elif ftype == 3:
                    pred = (a + b) // 2
                else:
                    p = a + b - c
                    pa, pb, pc = abs(p - a), abs(p - b), abs(p - c)
                    pred = a if pa <= pb and pa <= pc else (b if pb <= pc else c)
                cur[x] = (line[x] + pred) % 256
            out[y] = cur
        else:
            raise FileFormatError(f"unsupported PNG filter type {ftype}")
    return out


def png_decode(data: bytes) -> np.ndarray:
    """Decode a non-interlaced 8-bit RGB/RGBA PNG into ``(H, W, 3) uint8``."""
    if not data.startswith(_PNG_SIGNATURE):
        raise FileFormatError("not a PNG stream (bad signature)")
    width = height = None
    channels = 3
    idat = bytearray()
    for tag, payload in _iter_chunks(data):
        if tag == b"IHDR":
            width, height, depth, ctype, _comp, _filt, interlace = struct.unpack(
                ">IIBBBBB", payload
            )
            if depth != 8 or ctype not in (2, 6) or interlace != 0:
                raise FileFormatError(
                    f"unsupported PNG: depth={depth} colortype={ctype} interlace={interlace}"
                )
            channels = 3 if ctype == 2 else 4
        elif tag == b"IDAT":
            idat.extend(payload)
        elif tag == b"IEND":
            break
    if width is None:
        raise FileFormatError("PNG missing IHDR")
    decompressed = zlib.decompress(bytes(idat))
    stride = width * channels
    expected = height * (stride + 1)
    if len(decompressed) != expected:
        raise FileFormatError(
            f"PNG pixel data length {len(decompressed)} != expected {expected}"
        )
    flat = np.frombuffer(decompressed, dtype=np.uint8).reshape(height, stride + 1)
    filters = flat[:, 0]
    rows = flat[:, 1:]
    pixels = _unfilter(rows, filters, channels).reshape(height, width, channels)
    return np.ascontiguousarray(pixels[:, :, :3])


class Image:
    """An ``(H, W, 3) uint8`` RGB image with drawing and PNG I/O helpers."""

    def __init__(self, pixels: np.ndarray) -> None:
        pixels = np.asarray(pixels)
        if pixels.ndim != 3 or pixels.shape[2] != 3:
            raise ConfigurationError(f"Image needs (H, W, 3), got {pixels.shape}")
        self.pixels = pixels.astype(np.uint8, copy=False)

    @classmethod
    def blank(cls, width: int, height: int, color: tuple[int, int, int] = (0, 0, 0)) -> "Image":
        """A solid-color image."""
        if width < 1 or height < 1:
            raise ConfigurationError(f"degenerate image {width}x{height}")
        px = np.empty((height, width, 3), dtype=np.uint8)
        px[:] = color
        return cls(px)

    @property
    def width(self) -> int:
        """Image width in pixels."""
        return self.pixels.shape[1]

    @property
    def height(self) -> int:
        """Image height in pixels."""
        return self.pixels.shape[0]

    def draw_polyline(
        self, points: np.ndarray, color: tuple[int, int, int] = (0, 0, 0)
    ) -> None:
        """Rasterize a polyline of ``(row, col)`` float vertices (Bresenham-ish)."""
        pts = np.asarray(points, dtype=float)
        if pts.ndim != 2 or pts.shape[1] != 2 or pts.shape[0] < 2:
            return
        for (r0, c0), (r1, c1) in zip(pts[:-1], pts[1:]):
            n = int(max(abs(r1 - r0), abs(c1 - c0), 1)) + 1
            rr = np.linspace(r0, r1, n).round().astype(int)
            cc = np.linspace(c0, c1, n).round().astype(int)
            ok = (rr >= 0) & (rr < self.height) & (cc >= 0) & (cc < self.width)
            self.pixels[rr[ok], cc[ok]] = color

    def encode_png(self, compress_level: int = 6) -> bytes:
        """PNG byte string of this image."""
        return png_encode(self.pixels, compress_level)

    @classmethod
    def decode_png(cls, data: bytes) -> "Image":
        """Image from a PNG byte string."""
        return cls(png_decode(data))

    def save(self, path: str) -> int:
        """Write the image as PNG; returns the byte count written."""
        data = self.encode_png()
        with open(path, "wb") as fh:
            fh.write(data)
        return len(data)

    @classmethod
    def load(cls, path: str) -> "Image":
        """Read a PNG from disk."""
        with open(path, "rb") as fh:
            return cls.decode_png(fh.read())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Image):
            return NotImplemented
        return self.pixels.shape == other.pixels.shape and bool(
            np.array_equal(self.pixels, other.pixels)
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Image {self.width}x{self.height}>"
