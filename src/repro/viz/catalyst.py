"""Catalyst-style in-situ adaptor.

In the paper, ParaView *Catalyst adaptors* "seamlessly copy simulation data
structures to ParaView data structures.  While this incurs additional memory
operations, it also avoids large data transfers to the storage system."

:class:`CatalystAdaptor` reproduces that contract: at every co-processing
step it *deep-copies* the simulation's field arrays (never aliasing live
solver memory — the simulation continues mutating its state while the
visualization pipeline runs), hands the copies to the registered
co-processing pipelines, and accounts the copied bytes so the memory-traffic
overhead is measurable.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping

import numpy as np

from repro.errors import ConfigurationError, PipelineError

__all__ = ["CatalystAdaptor"]

#: A co-processing hook: f(step_index, simulated_time, fields) -> Any.
CoProcessor = Callable[[int, float, Mapping[str, np.ndarray]], Any]


class CatalystAdaptor:
    """Bridges a running simulation to in-situ co-processing pipelines."""

    def __init__(self) -> None:
        self._pipelines: dict[str, CoProcessor] = {}
        self._bytes_copied = 0
        self._n_coprocess = 0
        self._finalized = False

    # ----------------------------------------------------------- registration

    def register_pipeline(self, name: str, pipeline: CoProcessor) -> None:
        """Register a named co-processing hook."""
        if not name:
            raise ConfigurationError("pipeline name must be non-empty")
        if name in self._pipelines:
            raise ConfigurationError(f"pipeline {name!r} already registered")
        if not callable(pipeline):
            raise ConfigurationError(f"pipeline {name!r} is not callable")
        self._pipelines[name] = pipeline

    def unregister_pipeline(self, name: str) -> None:
        """Remove a previously registered hook."""
        try:
            del self._pipelines[name]
        except KeyError:
            raise ConfigurationError(f"no pipeline named {name!r}") from None

    @property
    def pipeline_names(self) -> list[str]:
        """Registered hook names, in registration order."""
        return list(self._pipelines)

    # ------------------------------------------------------------- accounting

    @property
    def bytes_copied(self) -> int:
        """Total bytes deep-copied from simulation to visualization memory."""
        return self._bytes_copied

    @property
    def coprocess_count(self) -> int:
        """Number of co-processing invocations."""
        return self._n_coprocess

    # ---------------------------------------------------------------- driving

    def coprocess(
        self, step: int, time: float, fields: Mapping[str, np.ndarray]
    ) -> dict[str, Any]:
        """Run all registered pipelines on a deep copy of ``fields``.

        Returns ``{pipeline_name: pipeline_result}``.
        """
        if self._finalized:
            raise PipelineError("coprocess() after finalize()")
        if not self._pipelines:
            raise PipelineError("coprocess() with no registered pipelines")
        copied: dict[str, np.ndarray] = {}
        for name, array in fields.items():
            arr = np.ascontiguousarray(array)
            copy = arr.copy()
            self._bytes_copied += copy.nbytes
            copied[name] = copy
        self._n_coprocess += 1
        results = {}
        for name, pipeline in self._pipelines.items():
            results[name] = pipeline(step, time, copied)
        return results

    def finalize(self) -> None:
        """Mark the adaptor closed; further co-processing is an error."""
        self._finalized = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<CatalystAdaptor {len(self._pipelines)} pipeline(s), "
            f"{self._n_coprocess} invocations, {self._bytes_copied} B copied>"
        )
