"""Scalar-field rasterization and the cluster-scale render cost model.

:func:`render_field` produces a real RGB image from a scalar field through a
camera (pan/zoom viewport) with bilinear resampling and optional contour
overlays — the "one set of images per timestep" of the paper's pipelines.

:class:`RenderCostModel` estimates what the same render costs at campaign
scale on a simulated cluster: per-cell rasterization work, binary-swap
compositing over the interconnect, and image encoding.  Its defaults are
calibrated so one 1920×1080 frame of the 60 km mesh on 150 nodes costs
≈1.2 s — the paper's measured β.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.viz.colormap import Colormap, okubo_weiss_colormap
from repro.viz.contour import marching_squares
from repro.viz.image import Image

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.topology import Interconnect

__all__ = ["Camera", "render_field", "render_okubo_weiss", "RenderCostModel", "ImageSpec"]


@dataclass(frozen=True)
class Camera:
    """A 2-D pan/zoom viewport onto a field.

    ``center`` is in normalized field coordinates (0..1 in each axis) and
    ``zoom`` is the magnification: the viewport covers ``1/zoom`` of the
    field in each axis.  Cinema databases sweep these parameters.
    """

    center: tuple[float, float] = (0.5, 0.5)
    zoom: float = 1.0

    def __post_init__(self) -> None:
        if self.zoom <= 0:
            raise ConfigurationError(f"zoom must be positive: {self.zoom}")
        cy, cx = self.center
        if not (0.0 <= cy <= 1.0 and 0.0 <= cx <= 1.0):
            raise ConfigurationError(f"camera center outside [0,1]²: {self.center}")

    def sample_coordinates(
        self, field_shape: tuple[int, int], width: int, height: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Fractional field coordinates sampled by each output pixel."""
        ny, nx = field_shape
        cy, cx = self.center
        half_y = 0.5 / self.zoom
        half_x = 0.5 / self.zoom
        rows = (cy - half_y + (np.arange(height) + 0.5) / height / self.zoom) * ny - 0.5
        cols = (cx - half_x + (np.arange(width) + 0.5) / width / self.zoom) * nx - 0.5
        return np.meshgrid(rows, cols, indexing="ij")


@dataclass(frozen=True)
class ImageSpec:
    """Output image parameters for a pipeline."""

    width: int = 1920
    height: int = 1080
    cameras: tuple[Camera, ...] = (Camera(),)

    def __post_init__(self) -> None:
        if self.width < 8 or self.height < 8:
            raise ConfigurationError(f"image too small: {self.width}x{self.height}")
        if not self.cameras:
            raise ConfigurationError("need at least one camera")

    @property
    def pixels(self) -> int:
        """Pixels per frame."""
        return self.width * self.height

    @property
    def images_per_sample(self) -> int:
        """Frames rendered per output timestep (one per camera)."""
        return len(self.cameras)


def _bilinear(field: np.ndarray, rows: np.ndarray, cols: np.ndarray, periodic: bool) -> np.ndarray:
    ny, nx = field.shape
    if periodic:
        r0 = np.floor(rows).astype(int)
        c0 = np.floor(cols).astype(int)
        fr = rows - r0
        fc = cols - c0
        r0 %= ny
        c0 %= nx
        r1 = (r0 + 1) % ny
        c1 = (c0 + 1) % nx
    else:
        rows = np.clip(rows, 0, ny - 1)
        cols = np.clip(cols, 0, nx - 1)
        r0 = np.floor(rows).astype(int)
        c0 = np.floor(cols).astype(int)
        fr = rows - r0
        fc = cols - c0
        r1 = np.minimum(r0 + 1, ny - 1)
        c1 = np.minimum(c0 + 1, nx - 1)
    top = field[r0, c0] * (1 - fc) + field[r0, c1] * fc
    bot = field[r1, c0] * (1 - fc) + field[r1, c1] * fc
    return top * (1 - fr) + bot * fr


def render_field(
    field: np.ndarray,
    colormap: Colormap,
    width: int = 640,
    height: int = 360,
    camera: Optional[Camera] = None,
    vmin: Optional[float] = None,
    vmax: Optional[float] = None,
    contour_levels: Sequence[float] = (),
    contour_color: tuple[int, int, int] = (30, 30, 30),
    periodic: bool = True,
) -> Image:
    """Rasterize ``field`` into a ``width x height`` RGB image.

    The field is resampled bilinearly through ``camera``, colored through
    ``colormap``, and optionally overlaid with marching-squares contours.
    """
    field = np.asarray(field, dtype=float)
    if field.ndim != 2:
        raise ConfigurationError(f"field must be 2-D, got {field.shape}")
    cam = camera if camera is not None else Camera()
    rows, cols = cam.sample_coordinates(field.shape, width, height)
    resampled = _bilinear(field, rows, cols, periodic)
    image = Image(colormap.apply(resampled, vmin=vmin, vmax=vmax))
    for level in contour_levels:
        for line in marching_squares(resampled, level):
            image.draw_polyline(line, color=contour_color)
    return image


def render_okubo_weiss(
    w: np.ndarray,
    width: int = 640,
    height: int = 360,
    camera: Optional[Camera] = None,
    outline_eddies: bool = True,
) -> Image:
    """Fig. 2-style rendering of an Okubo-Weiss field.

    Symmetric normalization around zero with the green/blue diverging map;
    optionally outlines eddy cores at the ``-0.2 σ_W`` level.
    """
    w = np.asarray(w, dtype=float)
    scale = 2.0 * float(np.std(w)) + 1e-30
    levels = (-0.2 * float(np.std(w)),) if outline_eddies else ()
    return render_field(
        w,
        okubo_weiss_colormap(),
        width=width,
        height=height,
        camera=camera,
        vmin=-scale,
        vmax=scale,
        contour_levels=levels,
    )


@dataclass(frozen=True)
class RenderCostModel:
    """Wall-time model of one campaign-scale render on a cluster.

    ``time = raster_ns_per_cell * n_cells / n_nodes        (data-parallel)
           + binary-swap composite over the interconnect   (image-sized)
           + encode_ns_per_pixel * pixels                  (root only)
           + fixed per-frame overhead``

    Defaults are calibrated so the paper's configuration (163,842 cells,
    1920×1080 frame, 150 nodes, QDR IB) costs ≈1.2 s — the measured β.
    """

    raster_ns_per_cell: float = 630_000.0
    encode_ns_per_pixel: float = 220.0
    fixed_overhead_s: float = 0.05

    def __post_init__(self) -> None:
        if min(self.raster_ns_per_cell, self.encode_ns_per_pixel) < 0:
            raise ConfigurationError("negative render cost coefficient")
        if self.fixed_overhead_s < 0:
            raise ConfigurationError("negative fixed overhead")

    def seconds_per_image(
        self,
        n_cells: int,
        spec: ImageSpec,
        n_nodes: int,
        interconnect: "Interconnect",
    ) -> float:
        """Wall seconds to render + composite + encode one frame."""
        if n_cells < 1 or n_nodes < 1:
            raise ConfigurationError("n_cells and n_nodes must be >= 1")
        raster = self.raster_ns_per_cell * 1e-9 * n_cells / n_nodes
        composite = interconnect.binary_swap_composite_time(spec.pixels * 3.0, n_nodes)
        encode = self.encode_ns_per_pixel * 1e-9 * spec.pixels
        return raster + composite + encode + self.fixed_overhead_s

    def seconds_per_sample(
        self,
        n_cells: int,
        spec: ImageSpec,
        n_nodes: int,
        interconnect: "Interconnect",
    ) -> float:
        """Wall seconds for the full image *set* of one output timestep."""
        return spec.images_per_sample * self.seconds_per_image(
            n_cells, spec, n_nodes, interconnect
        )
