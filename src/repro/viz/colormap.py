"""Colormaps for scalar-field rendering.

A :class:`Colormap` is a set of ``(position, rgb)`` control points expanded
into a 256-entry lookup table; application to a field is a single vectorized
LUT gather.  :func:`okubo_weiss_colormap` reproduces the palette of the
paper's Fig. 2: green for rotation-dominated regions (negative W), blue for
shear/strain-dominated regions (positive W), near-white background.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["Colormap", "okubo_weiss_colormap", "grayscale_colormap", "ocean_speed_colormap"]


class Colormap:
    """A 1-D colormap defined by interpolated control points."""

    LUT_SIZE = 256

    def __init__(self, points: Sequence[tuple[float, tuple[int, int, int]]], name: str = "") -> None:
        if len(points) < 2:
            raise ConfigurationError("a colormap needs at least two control points")
        positions = [p for p, _ in points]
        if positions != sorted(positions):
            raise ConfigurationError("control points must be sorted by position")
        if abs(positions[0]) > 1e-12 or abs(positions[-1] - 1.0) > 1e-12:
            raise ConfigurationError("control points must span [0, 1]")
        for _, rgb in points:
            if len(rgb) != 3 or not all(0 <= c <= 255 for c in rgb):
                raise ConfigurationError(f"invalid RGB triple: {rgb}")
        self.name = name
        pos = np.array(positions)
        channels = np.array([rgb for _, rgb in points], dtype=float)
        grid = np.linspace(0.0, 1.0, self.LUT_SIZE)
        self.lut = np.stack(
            [np.interp(grid, pos, channels[:, c]) for c in range(3)], axis=1
        ).round().astype(np.uint8)

    def apply(
        self,
        field: np.ndarray,
        vmin: Optional[float] = None,
        vmax: Optional[float] = None,
    ) -> np.ndarray:
        """Map ``field`` to an RGB ``uint8`` array of shape ``field.shape + (3,)``."""
        field = np.asarray(field, dtype=float)
        lo = float(np.nanmin(field)) if vmin is None else float(vmin)
        hi = float(np.nanmax(field)) if vmax is None else float(vmax)
        if hi <= lo:
            hi = lo + 1.0  # constant field: render with the low-end color
        norm = np.clip((field - lo) / (hi - lo), 0.0, 1.0)
        idx = np.nan_to_num(norm * (self.LUT_SIZE - 1)).astype(np.intp)
        return self.lut[idx]

    def color_at(self, position: float) -> tuple[int, int, int]:
        """The RGB color at normalized ``position`` in [0, 1]."""
        if not 0.0 <= position <= 1.0:
            raise ConfigurationError(f"position outside [0, 1]: {position}")
        rgb = self.lut[int(round(position * (self.LUT_SIZE - 1)))]
        return (int(rgb[0]), int(rgb[1]), int(rgb[2]))


def okubo_weiss_colormap() -> Colormap:
    """The Fig. 2 palette: green = rotation (W < 0), blue = shear (W > 0).

    Intended for a *symmetric* normalization around W = 0 (pass
    ``vmin=-a, vmax=+a``), so 0.5 is the neutral background.
    """
    return Colormap(
        [
            (0.00, (0, 96, 24)),      # strong rotation: deep green
            (0.30, (60, 180, 90)),    # rotation: green
            (0.47, (225, 238, 225)),  # background
            (0.50, (240, 240, 235)),  # neutral
            (0.53, (222, 230, 240)),  # background
            (0.70, (80, 140, 210)),   # shear: blue
            (1.00, (10, 40, 140)),    # strong shear: deep blue
        ],
        name="okubo-weiss",
    )


def grayscale_colormap() -> Colormap:
    """Plain linear grayscale."""
    return Colormap([(0.0, (0, 0, 0)), (1.0, (255, 255, 255))], name="gray")


def ocean_speed_colormap() -> Colormap:
    """Sequential dark-blue → cyan → white map for current speed."""
    return Colormap(
        [
            (0.0, (8, 16, 60)),
            (0.4, (20, 90, 160)),
            (0.75, (80, 190, 210)),
            (1.0, (245, 252, 255)),
        ],
        name="ocean-speed",
    )
