"""Marching-squares iso-contour extraction.

Used to outline eddy cores (the ``W = -0.2 σ_W`` level) on rendered frames.
Returns open/closed polylines in fractional grid coordinates ``(row, col)``.

The implementation walks cell edges with linear interpolation and then chains
the resulting segments into polylines.  Saddle cells (cases 5 and 10) are
disambiguated by the cell-center average, the standard approach.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["marching_squares"]

# For each of the 16 corner-sign cases, the pairs of cell edges the contour
# crosses.  Corner bits: 1 = top-left, 2 = top-right, 4 = bottom-right,
# 8 = bottom-left ("above" corners).  Edges: 0 = top, 1 = right, 2 = bottom,
# 3 = left.  A case and its complement cross the same edges.
_CASES: dict[int, tuple[tuple[int, int], ...]] = {
    0: (),
    1: ((3, 0),),          # TL isolated
    2: ((0, 1),),          # TR isolated
    3: ((3, 1),),          # top half above
    4: ((1, 2),),          # BR isolated
    5: ((3, 0), (1, 2)),   # saddle; resolved at runtime by cell center
    6: ((0, 2),),          # right half above
    7: ((3, 2),),          # all but BL
    8: ((3, 2),),          # BL isolated
    9: ((0, 2),),          # left half above
    10: ((0, 1), (3, 2)),  # saddle; resolved at runtime by cell center
    11: ((1, 2),),         # all but BR
    12: ((3, 1),),         # bottom half above
    13: ((0, 1),),         # all but TR
    14: ((3, 0),),         # all but TL
    15: (),
}


def _edge_point(edge: int, r: int, c: int, f: np.ndarray, level: float) -> tuple[float, float]:
    """Interpolated crossing point of ``edge`` of cell ``(r, c)``."""
    if edge == 0:  # top: (r, c) -> (r, c+1)
        a, b = f[r, c], f[r, c + 1]
        t = (level - a) / (b - a)
        return (float(r), c + float(t))
    if edge == 1:  # right: (r, c+1) -> (r+1, c+1)
        a, b = f[r, c + 1], f[r + 1, c + 1]
        t = (level - a) / (b - a)
        return (r + float(t), float(c + 1))
    if edge == 2:  # bottom: (r+1, c) -> (r+1, c+1)
        a, b = f[r + 1, c], f[r + 1, c + 1]
        t = (level - a) / (b - a)
        return (float(r + 1), c + float(t))
    # left: (r, c) -> (r+1, c)
    a, b = f[r, c], f[r + 1, c]
    t = (level - a) / (b - a)
    return (r + float(t), float(c))


def marching_squares(field: np.ndarray, level: float) -> list[np.ndarray]:
    """Extract iso-contour polylines of ``field`` at ``level``.

    Returns a list of ``(n, 2)`` float arrays of ``(row, col)`` vertices.
    Cells where a corner equals ``level`` exactly are nudged by a tiny
    epsilon to avoid degenerate intersections.
    """
    f = np.asarray(field, dtype=float)
    if f.ndim != 2 or f.shape[0] < 2 or f.shape[1] < 2:
        raise ConfigurationError(f"field must be at least 2x2, got {f.shape}")
    # Nudge exact hits off the level so interpolation is well defined.
    eps = 1e-12 * (np.abs(f).max() + 1.0)
    f = np.where(f == level, f + eps, f)
    above = f > level
    segments: list[tuple[tuple[float, float], tuple[float, float]]] = []
    nrows, ncols = f.shape
    for r in range(nrows - 1):
        for c in range(ncols - 1):
            case = (
                (1 if above[r, c] else 0)
                | (2 if above[r, c + 1] else 0)
                | (4 if above[r + 1, c + 1] else 0)
                | (8 if above[r + 1, c] else 0)
            )
            pairs = _CASES[case]
            if case in (5, 10):
                center = 0.25 * (f[r, c] + f[r, c + 1] + f[r + 1, c] + f[r + 1, c + 1])
                if case == 5 and center > level:
                    # Above-region connects TL-BR: isolate TR and BL instead.
                    pairs = ((0, 1), (3, 2))
                elif case == 10 and center > level:
                    # Above-region connects TR-BL: isolate TL and BR instead.
                    pairs = ((3, 0), (1, 2))
            for e0, e1 in pairs:
                segments.append(
                    (_edge_point(e0, r, c, f, level), _edge_point(e1, r, c, f, level))
                )
    return _chain_segments(segments)


def _chain_segments(
    segments: list[tuple[tuple[float, float], tuple[float, float]]]
) -> list[np.ndarray]:
    """Join shared-endpoint segments into polylines."""
    if not segments:
        return []

    def key(p: tuple[float, float]) -> tuple[int, int]:
        return (round(p[0] * 1e6), round(p[1] * 1e6))

    # endpoint -> list of (segment index, which end)
    endpoints: dict[tuple[int, int], list[tuple[int, int]]] = {}
    for i, (a, b) in enumerate(segments):
        endpoints.setdefault(key(a), []).append((i, 0))
        endpoints.setdefault(key(b), []).append((i, 1))
    used = [False] * len(segments)
    polylines: list[np.ndarray] = []
    for start in range(len(segments)):
        if used[start]:
            continue
        used[start] = True
        a, b = segments[start]
        chain: list[tuple[float, float]] = [a, b]
        # Extend forward from the tail, then backward from the head.
        for grow_tail in (True, False):
            while True:
                tip = chain[-1] if grow_tail else chain[0]
                options = [
                    (i, end) for i, end in endpoints.get(key(tip), []) if not used[i]
                ]
                if not options:
                    break
                i, end = options[0]
                used[i] = True
                nxt = segments[i][1 - end]
                if grow_tail:
                    chain.append(nxt)
                else:
                    chain.insert(0, nxt)
        polylines.append(np.array(chain))
    return polylines
