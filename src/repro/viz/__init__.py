"""Software visualization stack (the ParaView / Catalyst / Cinema stand-in).

Pure-NumPy rendering of scalar fields to real PNG images:

* :mod:`repro.viz.colormap` — diverging colormaps (Fig. 2's blue/green
  Okubo-Weiss palette) applied as vectorized LUT lookups;
* :mod:`repro.viz.image` — RGB image buffers with a real PNG encoder/decoder;
* :mod:`repro.viz.contour` — marching-squares iso-contours (eddy outlines);
* :mod:`repro.viz.render` — field rasterizer with camera pan/zoom, plus the
  cluster-scale render cost model (calibrated to the paper's β ≈ 1.2 s/image);
* :mod:`repro.viz.catalyst` — the in-situ adaptor that deep-copies simulation
  arrays into visualization structures and runs co-processing hooks;
* :mod:`repro.viz.cinema` — a Cinema-style image database with a JSON index.
"""

from repro.viz.catalyst import CatalystAdaptor
from repro.viz.cinema import CinemaDatabase
from repro.viz.colormap import Colormap, okubo_weiss_colormap
from repro.viz.contour import marching_squares
from repro.viz.image import Image
from repro.viz.render import Camera, RenderCostModel, render_field

__all__ = [
    "Camera",
    "CatalystAdaptor",
    "CinemaDatabase",
    "Colormap",
    "Image",
    "RenderCostModel",
    "marching_squares",
    "okubo_weiss_colormap",
    "render_field",
]
