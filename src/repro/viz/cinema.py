"""Cinema-style image database.

The paper's in-situ pipeline writes its output through *ParaView Cinema*
(Ahrens et al., SC'14): instead of raw fields, a database of pre-rendered
images parameterized by (time, camera, ...) is committed to disk, orders of
magnitude smaller than the raw data.

:class:`CinemaDatabase` implements the same artifact: a directory of PNG
files plus a JSON index (``info.json``) mapping parameter tuples to files.
It can also run *unbacked* (no directory), accounting sizes only — that mode
backs the simulated platform, where the byte counts are what matters.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Iterator, Mapping, Optional

from repro.errors import ConfigurationError, PipelineError
from repro.viz.image import Image

__all__ = ["CinemaDatabase", "CinemaEntry"]

_INDEX_NAME = "info.json"


@dataclass(frozen=True)
class CinemaEntry:
    """One image in the database."""

    parameters: tuple[tuple[str, object], ...]
    filename: str
    nbytes: int

    def parameter_dict(self) -> dict[str, object]:
        """Parameters as a dict."""
        return dict(self.parameters)


class CinemaDatabase:
    """An image database parameterized by arbitrary key/value coordinates."""

    def __init__(self, directory: Optional[str] = None, name: str = "cinema") -> None:
        self.name = name
        self.directory = directory
        if directory is not None:
            os.makedirs(directory, exist_ok=True)
        self._entries: list[CinemaEntry] = []
        self._closed = False

    # ----------------------------------------------------------------- write

    @staticmethod
    def _key(parameters: Mapping[str, object]) -> tuple[tuple[str, object], ...]:
        if not parameters:
            raise ConfigurationError("a Cinema entry needs at least one parameter")
        return tuple(sorted(parameters.items()))

    def _filename(self, parameters: Mapping[str, object]) -> str:
        parts = [f"{k}={v}" for k, v in sorted(parameters.items())]
        return "_".join(parts).replace("/", "-").replace(" ", "") + ".png"

    def add_image(self, parameters: Mapping[str, object], image: Image) -> CinemaEntry:
        """Render ``image`` into the database under ``parameters``.

        Encodes to real PNG bytes; writes the file when the database is
        directory-backed.
        """
        if self._closed:
            raise PipelineError("add_image() on a closed Cinema database")
        key = self._key(parameters)
        if any(e.parameters == key for e in self._entries):
            raise ConfigurationError(f"duplicate Cinema entry for {dict(key)!r}")
        data = image.encode_png()
        filename = self._filename(parameters)
        if self.directory is not None:
            with open(os.path.join(self.directory, filename), "wb") as fh:
                fh.write(data)
        entry = CinemaEntry(parameters=key, filename=filename, nbytes=len(data))
        self._entries.append(entry)
        return entry

    def add_accounted(self, parameters: Mapping[str, object], nbytes: int) -> CinemaEntry:
        """Account an image of ``nbytes`` without rendering (simulated mode)."""
        if self._closed:
            raise PipelineError("add_accounted() on a closed Cinema database")
        if nbytes < 0:
            raise ConfigurationError(f"negative image size: {nbytes}")
        key = self._key(parameters)
        entry = CinemaEntry(parameters=key, filename=self._filename(parameters), nbytes=int(nbytes))
        self._entries.append(entry)
        return entry

    def close(self) -> None:
        """Write the JSON index (if backed) and seal the database."""
        if self._closed:
            return
        if self.directory is not None:
            index = {
                "type": "cinema-database",
                "name": self.name,
                "entries": [
                    {
                        "parameters": {str(k): v for k, v in e.parameters},
                        "file": e.filename,
                        "bytes": e.nbytes,
                    }
                    for e in self._entries
                ],
            }
            with open(os.path.join(self.directory, _INDEX_NAME), "w") as fh:
                json.dump(index, fh, indent=1, default=str)
        self._closed = True

    # ----------------------------------------------------------------- read

    @classmethod
    def open(cls, directory: str) -> "CinemaDatabase":
        """Load an existing directory-backed database via its index."""
        path = os.path.join(directory, _INDEX_NAME)
        if not os.path.exists(path):
            raise PipelineError(f"no Cinema index at {path!r}")
        with open(path) as fh:
            index = json.load(fh)
        db = cls(directory=None, name=index.get("name", "cinema"))
        db.directory = directory  # already-populated directory; do not mkdir
        for rec in index["entries"]:
            db._entries.append(
                CinemaEntry(
                    parameters=tuple(sorted(rec["parameters"].items())),
                    filename=rec["file"],
                    nbytes=int(rec["bytes"]),
                )
            )
        db._closed = True
        return db

    def load_image(self, parameters: Mapping[str, object]) -> Image:
        """Read back the PNG stored under ``parameters``."""
        if self.directory is None:
            raise PipelineError("database is not directory-backed")
        key = self._key(parameters)
        for e in self._entries:
            if e.parameters == key:
                return Image.load(os.path.join(self.directory, e.filename))
        raise PipelineError(f"no entry for parameters {dict(key)!r}")

    # ------------------------------------------------------------- accounting

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[CinemaEntry]:
        return iter(self._entries)

    @property
    def total_bytes(self) -> int:
        """Total encoded image bytes in the database."""
        return sum(e.nbytes for e in self._entries)

    def select(self, **criteria: object) -> list[CinemaEntry]:
        """Entries whose parameters include all of ``criteria``."""
        out = []
        for e in self._entries:
            params = e.parameter_dict()
            if all(params.get(k) == v for k, v in criteria.items()):
                out.append(e)
        return out

    def parameter_values(self, key: str) -> list[object]:
        """Sorted distinct values of one parameter across the database."""
        values = {e.parameter_dict().get(key) for e in self._entries}
        values.discard(None)
        return sorted(values, key=repr)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        backing = self.directory or "(unbacked)"
        return f"<CinemaDatabase {self.name!r} {len(self._entries)} entries @ {backing}>"
