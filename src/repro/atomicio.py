"""Crash-safe file writes shared by every durable artifact writer.

A mid-write kill (worker ``os._exit``, OOM, power loss) must never leave a
torn JSON file that a later run loads: manifests, Prometheus expositions,
bench reports and cache sidecars are all *whole-file* artifacts, so they get
the classic write-to-temp + :func:`os.replace` treatment — the new content
becomes visible atomically or not at all.  Append-only JSONL streams
(journals, ledgers) instead use a single ``O_APPEND`` write per record, so a
crash can at worst truncate the final line — exactly the damage
:func:`repro.obs.exporters.read_jsonl` already tolerates and counts.
"""

from __future__ import annotations

import json
import os
from typing import Any

__all__ = ["append_jsonl_line", "atomic_write_json", "atomic_write_text"]


def _ensure_parent(path: str) -> None:
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)


def atomic_write_text(path: str, text: str) -> str:
    """Write ``text`` to ``path`` atomically (temp file + rename).

    The temp file lives in the destination directory (``os.replace`` must
    not cross filesystems) and is fsynced before the rename, so after a
    crash the path holds either the old content or the complete new content
    — never a prefix.  Returns ``path``.
    """
    _ensure_parent(path)
    tmp = f"{path}.tmp.{os.getpid()}"
    fd = os.open(tmp, os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o644)
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            fh.write(text)
            fh.flush()
            os.fsync(fh.fileno())
    except BaseException:
        try:
            os.remove(tmp)
        except OSError:
            pass
        raise
    os.replace(tmp, path)
    return path


def atomic_write_json(path: str, payload: Any, indent: int = 2) -> str:
    """Serialize ``payload`` (sorted keys) and write it atomically."""
    text = json.dumps(payload, indent=indent, sort_keys=True, default=str)
    return atomic_write_text(path, text + "\n")


def append_jsonl_line(path: str, record: dict, fsync: bool = False) -> str:
    """Append one JSON record to ``path`` as a single ``O_APPEND`` write.

    One ``os.write`` of a complete line to an append-mode descriptor cannot
    interleave with other appenders, and a crash mid-write leaves at most a
    torn *final* line, which the JSONL readers drop (with a warning and a
    ``repro_obs_truncated_records_total`` count) instead of failing the
    load.  ``fsync=True`` additionally makes the record durable before
    returning — journals that gate resume decisions want that; high-rate
    telemetry streams do not.  Returns ``path``.
    """
    _ensure_parent(path)
    line = json.dumps(record, sort_keys=True, default=str) + "\n"
    fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
    try:
        os.write(fd, line.encode("utf-8"))
        if fsync:
            os.fsync(fd)
    finally:
        os.close(fd)
    return path
