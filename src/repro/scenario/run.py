"""Execute a :class:`Scenario`: ``repro run`` and the legacy flag paths.

:func:`run_scenario` is the single dispatcher behind ``repro run`` *and*
the legacy ``characterize`` / ``whatif`` / ``faults`` commands (which now
build their scenario via
:func:`~repro.scenario.build.scenario_from_args`).  Output — stdout
tables/JSON, stderr progress lines, telemetry event streams — is the
historical handler behaviour verbatim, so a scenario file and its
equivalent flag invocation produce byte-identical artifacts.

Telemetry sessions open with ``label=experiment.kind`` (never ``"run"``):
the trace id is derived from the label, and trace parity with the legacy
commands is part of the byte-identity contract.
"""

from __future__ import annotations

import json
import sys
from typing import Optional, Sequence

from repro import obs
from repro.core.metrics import POST_PROCESSING
from repro.scenario.build import (
    build_engine,
    build_pipelines,
    build_platform_factory,
    build_spec,
)
from repro.scenario.schema import Scenario
from repro.units import years

__all__ = ["run_scenario"]


def _stamp_session(scenario: Scenario) -> None:
    """Record the scenario identity on the active telemetry session."""
    session = obs.active()
    if session is not None:
        session.config["scenario"] = {
            "name": scenario.name,
            "digest": scenario.content_digest(),
        }


def _characterize(scenario: Scenario, pipelines=None):
    """Run the characterization grid exactly as the scenario describes it."""
    from repro import run_characterization

    kwargs: dict = {}
    spec = build_spec(scenario)
    if spec is not None:
        kwargs["spec"] = spec
    factory = build_platform_factory(scenario)
    if factory is not None:
        kwargs["platform_factory"] = factory
    else:
        engine = build_engine(scenario)
        if engine is not None:
            kwargs["engine"] = engine
    if pipelines is not None:
        kwargs["pipelines"] = pipelines
    return run_characterization(
        intervals_hours=scenario.sampling.intervals_hours, **kwargs
    )


def _run_characterize(scenario: Scenario, json_output: bool) -> int:
    pipelines = build_pipelines(scenario)
    n_pipelines = 2 if pipelines is None else len(pipelines)
    n = n_pipelines * len(scenario.sampling.intervals_hours)
    print("running the characterization grid "
          f"({n} campaign-scale simulations)...", file=sys.stderr)
    study = _characterize(scenario, pipelines=pipelines)
    if json_output:
        print(json.dumps(study.to_dict(), indent=2, sort_keys=True))
        return 0
    print(study.table())
    print()
    print(study.findings())
    return 0


def _run_whatif(scenario: Scenario, json_output: bool) -> int:
    experiment = scenario.experiment
    n = 2 * len(scenario.sampling.intervals_hours)
    print("running the characterization grid "
          f"({n} campaign-scale simulations)...", file=sys.stderr)
    study = _characterize(scenario)
    analyzer = study.analyzer()
    duration = years(experiment.years)
    sweep_intervals = list(experiment.sweep_intervals_hours)
    rows = analyzer.sweep(
        intervals_hours=sweep_intervals, duration_seconds=duration
    )
    limit = analyzer.finest_interval_for_storage(POST_PROCESSING, 2_000.0, duration)
    failure_rows = None
    if experiment.mtbf_hours is not None:
        failure_rows = analyzer.failure_aware_sweep(
            intervals_hours=sweep_intervals,
            duration_seconds=duration,
            mtbf_hours=experiment.mtbf_hours,
            checkpoint_write_seconds=experiment.checkpoint_write_seconds,
            restart_seconds=experiment.restart_seconds,
        )
    if json_output:
        report = {
            "years": experiment.years,
            "sweep": rows.to_dict(),
            "storage_limited_interval_hours": limit,
            "failure_aware": (
                None if failure_rows is None else failure_rows.to_dict()
            ),
        }
        print(json.dumps(report, indent=2, sort_keys=True))
        return 0
    print(f"campaign: {experiment.years:g} simulated years\n")
    print(f"{'cadence':>10s} {'post GB':>12s} {'in-situ GB':>11s} "
          f"{'energy saving':>14s}")
    for row in rows:
        print(
            f"{row.interval_hours:>8.0f} h {row.post.s_io_gb:>12.1f} "
            f"{row.insitu.s_io_gb:>11.2f} {100 * row.energy_savings():>13.1f}%"
        )
    print(f"\n2 TB budget forces post-processing to every {limit / 24:.1f} days")
    if failure_rows is not None:
        tau = failure_rows[0].checkpoint_interval_seconds
        print(f"\nwith failures (MTBF {experiment.mtbf_hours:g} h, "
              f"optimal checkpoint every {tau / 3_600:.2f} h):")
        print(f"{'cadence':>10s} {'post +%':>9s} {'in-situ +%':>11s} "
              f"{'energy saving':>14s}")
        for frow in failure_rows:
            print(
                f"{frow.interval_hours:>8.0f} h "
                f"{100 * frow.post_overhead_ratio():>8.1f}% "
                f"{100 * frow.insitu_overhead_ratio():>10.1f}% "
                f"{100 * frow.energy_savings():>13.1f}%"
            )
    return 0


def _run_faults(scenario: Scenario, json_output: bool) -> int:
    from repro.faults.campaign import run_fault_campaign

    spec = build_spec(scenario)
    campaign = scenario.faults
    print(
        "running the fault campaign (fault-free baselines, protected and "
        "unprotected runs for both pipelines)...",
        file=sys.stderr,
    )
    kwargs: dict = {}
    factory = build_platform_factory(scenario)
    if factory is not None:
        kwargs["platform_factory"] = factory
    else:
        kwargs["engine"] = build_engine(scenario)
    pipelines = build_pipelines(scenario)
    if pipelines is not None:
        kwargs["pipelines"] = pipelines
    result = run_fault_campaign(
        spec,
        seed=campaign.seed,
        mtbf_hours=campaign.mtbf_hours,
        checkpoint_every=campaign.checkpoint_every,
        restart_penalty_seconds=campaign.restart_penalty_seconds,
        brownout_rate_per_hour=campaign.brownout_rate_per_hour,
        io_error_rate_per_hour=campaign.io_error_rate_per_hour,
        include_unprotected=campaign.include_unprotected,
        **kwargs,
    )
    if json_output:
        print(json.dumps(result.to_dict(), indent=2, sort_keys=True))
        return 0
    print(result.table())
    return 0


_DISPATCH = {
    "characterize": _run_characterize,
    "whatif": _run_whatif,
    "faults": _run_faults,
}


def run_scenario(
    scenario: Scenario,
    json_output: bool = False,
    argv: Optional[Sequence[str]] = None,
) -> int:
    """Execute a scenario; returns the process exit code.

    When a telemetry session is already active (the legacy CLI wrapper
    opened one), the scenario identity is stamped onto it and dispatch
    happens inside it.  Otherwise, when the scenario's ``telemetry``
    section names a directory, a session opens here with
    ``label=experiment.kind`` — trace-identical to the legacy command.
    """
    handler = _DISPATCH[scenario.experiment.kind]
    if obs.active() is not None:
        _stamp_session(scenario)
        return handler(scenario, json_output)
    telemetry = scenario.telemetry
    if telemetry.directory is None:
        return handler(scenario, json_output)
    timeline = None
    if telemetry.timeline:
        timeline = obs.TimelineConfig(
            interval_seconds=telemetry.interval_seconds,
            power_cap_watts=scenario.power.cap_watts,
        )
    with obs.session(
        telemetry.directory,
        label=scenario.experiment.kind,
        argv=list(argv) if argv is not None else sys.argv[1:],
        config={"scenario_config": scenario.to_dict()},
        timeline=timeline,
    ):
        _stamp_session(scenario)
        code = handler(scenario, json_output)
    if telemetry.store is not None:
        # Only after the session closed: ingestion reads the manifest the
        # session just wrote, and the stamp rewrites it with the verdict.
        from repro.obs.store.core import RunStore

        result = RunStore(telemetry.store).ingest(telemetry.directory)
        print(f"store: {result.describe()}", file=sys.stderr)
    return code
