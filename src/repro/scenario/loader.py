"""Parse YAML/JSON scenario files into frozen :class:`Scenario` objects.

The loader is strict: unknown keys, wrong types, bad units and unsupported
schema versions all raise :class:`ScenarioError` with the dotted path of
the offending key and a hint, never a bare stack trace.  Quantities accept
either canonical numbers (seconds, bytes, bytes/s) or human-readable
strings: ``"6 months"``, ``"7.7 TB"``, ``"160 MB/s"``, ``"1 ms"``.

YAML support comes from PyYAML and is imported lazily — JSON scenarios
work without it.
"""

from __future__ import annotations

import difflib
import json
import os
import re
from typing import Callable, Dict, Iterable, Optional, Sequence, Tuple

from repro.scenario.schema import (
    SCENARIO_SCHEMA_VERSION,
    ClusterConfig,
    ExecutionConfig,
    ExperimentConfig,
    FaultsCampaignConfig,
    ImagesConfig,
    OceanConfig,
    PipelineConfig,
    PowerConfig,
    SamplingConfig,
    Scenario,
    ScenarioError,
    StorageConfig,
    TelemetryConfig,
)
from repro.units import DAY, HOUR, MB, MINUTE, MONTH, YEAR

__all__ = [
    "load_scenario",
    "parse_scenario",
    "apply_overrides",
    "scenario_text",
    "write_scenario",
    "parse_duration",
    "parse_bytes",
    "parse_bandwidth",
]

_QUANTITY_RE = re.compile(
    r"^\s*([-+]?[0-9]*\.?[0-9]+(?:[eE][-+]?[0-9]+)?)\s*([a-zA-Z/]+)\s*$"
)

_DURATION_UNITS = {
    "ms": 1e-3,
    "s": 1.0,
    "sec": 1.0,
    "second": 1.0,
    "seconds": 1.0,
    "min": MINUTE,
    "minute": MINUTE,
    "minutes": MINUTE,
    "h": HOUR,
    "hr": HOUR,
    "hour": HOUR,
    "hours": HOUR,
    "d": DAY,
    "day": DAY,
    "days": DAY,
    "month": MONTH,
    "months": MONTH,
    "y": YEAR,
    "yr": YEAR,
    "year": YEAR,
    "years": YEAR,
}

_BYTE_UNITS = {
    "B": 1.0,
    "KB": 1e3,
    "MB": 1e6,
    "GB": 1e9,
    "TB": 1e12,
    "PB": 1e15,
}


def _yaml_module(path: str):
    try:
        import yaml
    except ImportError:  # pragma: no cover - pyyaml is in the dev image
        raise ScenarioError(
            "",
            f"cannot read {path!r}: PyYAML is not installed",
            "use a .json scenario file instead",
        )
    return yaml


def _parse_quantity(
    value,
    path: str,
    units: Dict[str, float],
    what: str,
) -> float:
    if isinstance(value, bool):
        raise ScenarioError(path, f"expected a {what}, got a boolean")
    if isinstance(value, (int, float)):
        return float(value)
    if isinstance(value, str):
        match = _QUANTITY_RE.match(value)
        if match:
            magnitude, unit = match.groups()
            if unit in units:
                return float(magnitude) * units[unit]
            raise ScenarioError(
                path,
                f"unknown {what} unit {unit!r} in {value!r}",
                f"expected one of {', '.join(sorted(units))}",
            )
        raise ScenarioError(
            path,
            f"cannot parse {what} {value!r}",
            'expected a number or "<magnitude> <unit>"',
        )
    raise ScenarioError(
        path, f"expected a {what}, got {type(value).__name__}"
    )


def parse_duration(value, path: str = "duration") -> float:
    """Parse a duration into seconds (numbers pass through as seconds)."""
    return _parse_quantity(value, path, _DURATION_UNITS, "duration")


def parse_bytes(value, path: str = "bytes") -> float:
    """Parse a size into bytes (numbers pass through as bytes)."""
    return _parse_quantity(value, path, _BYTE_UNITS, "size")


def parse_bandwidth(value, path: str = "bandwidth") -> float:
    """Parse a bandwidth into bytes/s (``"160 MB/s"`` or a raw number)."""
    if isinstance(value, str) and value.rstrip().endswith("/s"):
        return parse_bytes(value.rstrip()[: -len("/s")], path)
    return _parse_quantity(value, path, _BYTE_UNITS, "bandwidth")


# ---------------------------------------------------------- scalar converters


def _int(value, path: str) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise ScenarioError(
            path, f"expected an integer, got {type(value).__name__}"
        )
    return value


def _float(value, path: str) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ScenarioError(
            path, f"expected a number, got {type(value).__name__}"
        )
    return float(value)


def _str(value, path: str) -> str:
    if not isinstance(value, str):
        raise ScenarioError(
            path, f"expected a string, got {type(value).__name__}"
        )
    return value


def _bool(value, path: str) -> bool:
    if not isinstance(value, bool):
        raise ScenarioError(
            path, f"expected true/false, got {type(value).__name__}"
        )
    return value


def _optional(convert: Callable) -> Callable:
    def wrapped(value, path: str):
        if value is None:
            return None
        return convert(value, path)

    return wrapped


def _hours_list(value, path: str) -> Tuple[float, ...]:
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return (float(value),)
    if not isinstance(value, (list, tuple)):
        raise ScenarioError(
            path,
            f"expected a list of cadences in hours, got {type(value).__name__}",
        )
    return tuple(
        _float(item, f"{path}[{i}]") for i, item in enumerate(value)
    )


# ----------------------------------------------------------- section walkers

#: yaml key -> (dataclass field, converter) per section.
_SECTION_SPECS: Dict[str, Dict[str, Tuple[str, Callable]]] = {
    "experiment": {
        "kind": ("kind", _str),
        "years": ("years", _float),
        "sweep_intervals_hours": ("sweep_intervals_hours", _hours_list),
        "mtbf_hours": ("mtbf_hours", _optional(_float)),
        "checkpoint_write_seconds": ("checkpoint_write_seconds", parse_duration),
        "restart_seconds": ("restart_seconds", parse_duration),
    },
    "sampling": {
        "intervals_hours": ("intervals_hours", _hours_list),
    },
    "cluster": {
        "name": ("name", _str),
        "nodes": ("nodes", _int),
        "cores_per_socket": ("cores_per_socket", _int),
        "nodes_per_cage": ("nodes_per_cage", _int),
    },
    "storage": {
        "capacity": ("capacity_bytes", parse_bytes),
        "write_bandwidth": ("write_bandwidth", parse_bandwidth),
        "read_bandwidth": ("read_bandwidth", parse_bandwidth),
        "mds": ("mds", _int),
        "ost": ("ost", _int),
        "metadata_latency": ("metadata_latency_seconds", parse_duration),
        "io_aggregators": ("io_aggregators", _int),
    },
    "ocean": {
        "resolution_km": ("resolution_km", _float),
        "vertical_levels": ("vertical_levels", _int),
        "timestep": ("timestep_seconds", parse_duration),
        "duration": ("duration_seconds", parse_duration),
        "bytes_per_value": ("bytes_per_value", _int),
    },
    "images": {
        "width": ("width", _int),
        "height": ("height", _int),
    },
    "faults": {
        "seed": ("seed", _int),
        "mtbf_hours": ("mtbf_hours", _optional(_float)),
        "checkpoint_every": ("checkpoint_every", _int),
        "restart_penalty": ("restart_penalty_seconds", parse_duration),
        "brownout_rate_per_hour": ("brownout_rate_per_hour", _float),
        "io_error_rate_per_hour": ("io_error_rate_per_hour", _float),
        "include_unprotected": ("include_unprotected", _bool),
    },
    "power": {
        "cap_watts": ("cap_watts", _optional(_float)),
    },
    "execution": {
        "workers": ("workers", _optional(_int)),
        "cache": ("cache", _optional(_str)),
        "supervise": ("supervise", _bool),
        "deadline": ("deadline_seconds", _optional(parse_duration)),
        "task_retries": ("task_retries", _optional(_int)),
        "max_worker_crashes": ("max_worker_crashes", _optional(_int)),
        "fail_policy": ("fail_policy", _optional(_str)),
        "journal": ("journal", _optional(_str)),
        "resume": ("resume", _bool),
    },
    "telemetry": {
        "directory": ("directory", _optional(_str)),
        "timeline": ("timeline", _bool),
        "timeline_interval": ("interval_seconds", _optional(parse_duration)),
        "store": ("store", _optional(_str)),
    },
    "pipeline": {  # one entry of the pipelines list
        "kind": ("kind", _str),
        "staging_nodes": ("staging_nodes", _optional(_int)),
    },
}

_SECTION_TYPES = {
    "experiment": ExperimentConfig,
    "sampling": SamplingConfig,
    "cluster": ClusterConfig,
    "storage": StorageConfig,
    "ocean": OceanConfig,
    "images": ImagesConfig,
    "faults": FaultsCampaignConfig,
    "power": PowerConfig,
    "execution": ExecutionConfig,
    "telemetry": TelemetryConfig,
}

_TOP_LEVEL_KEYS = (
    "schema_version",
    "name",
    "description",
    "experiment",
    "sampling",
    "cluster",
    "storage",
    "ocean",
    "pipelines",
    "images",
    "faults",
    "power",
    "execution",
    "telemetry",
)

#: Keys of the experiment section that only the what-if analyzer reads.
_WHATIF_ONLY_KEYS = (
    "years",
    "sweep_intervals_hours",
    "mtbf_hours",
    "checkpoint_write_seconds",
    "restart_seconds",
)


def _unknown_key(key: str, path: str, known: Iterable[str]) -> ScenarioError:
    matches = difflib.get_close_matches(key, list(known), n=1)
    hint = f"did you mean {matches[0]!r}?" if matches else (
        f"known keys: {', '.join(sorted(known))}"
    )
    return ScenarioError(f"{path}.{key}" if path else key, "unknown key", hint)


def _walk_section(raw, path: str, spec: Dict[str, Tuple[str, Callable]]) -> dict:
    if raw is None:
        return {}
    if not isinstance(raw, dict):
        raise ScenarioError(
            path, f"expected a mapping, got {type(raw).__name__}"
        )
    kwargs = {}
    for key, value in raw.items():
        if key not in spec:
            raise _unknown_key(str(key), path, spec)
        field_name, convert = spec[key]
        kwargs[field_name] = convert(value, f"{path}.{key}")
    return kwargs


def _parse_pipelines(raw, path: str) -> Optional[Tuple[PipelineConfig, ...]]:
    if raw is None:
        return None
    if not isinstance(raw, (list, tuple)):
        raise ScenarioError(
            path,
            f"expected a list of pipeline mappings, got {type(raw).__name__}",
        )
    entries = []
    for i, entry in enumerate(raw):
        entry_path = f"{path}[{i}]"
        if isinstance(entry, str):
            entry = {"kind": entry}
        kwargs = _walk_section(entry, entry_path, _SECTION_SPECS["pipeline"])
        entries.append(PipelineConfig(**kwargs))
    return tuple(entries)


def parse_scenario(data, default_name: str = "scenario") -> Scenario:
    """Validate a parsed YAML/JSON mapping into a frozen :class:`Scenario`."""
    if not isinstance(data, dict):
        raise ScenarioError(
            "", f"expected a mapping at top level, got {type(data).__name__}"
        )
    for key in data:
        if key not in _TOP_LEVEL_KEYS:
            raise _unknown_key(str(key), "", _TOP_LEVEL_KEYS)
    if "schema_version" not in data:
        raise ScenarioError(
            "schema_version",
            "missing required key",
            f"add schema_version: {SCENARIO_SCHEMA_VERSION}",
        )
    version = data["schema_version"]
    if isinstance(version, bool) or not isinstance(version, int):
        raise ScenarioError(
            "schema_version",
            f"expected an integer, got {version!r}",
            f"this build reads version {SCENARIO_SCHEMA_VERSION}",
        )

    experiment_raw = data.get("experiment")
    experiment_kwargs = _walk_section(
        experiment_raw, "experiment", _SECTION_SPECS["experiment"]
    )
    kind = experiment_kwargs.get("kind", "characterize")
    if kind != "whatif" and isinstance(experiment_raw, dict):
        for key in _WHATIF_ONLY_KEYS:
            if key in experiment_raw:
                raise ScenarioError(
                    f"experiment.{key}",
                    f"only experiment.kind: whatif reads this key "
                    f"(this scenario is {kind!r})",
                )

    kwargs: dict = {
        "name": _str(data.get("name", default_name), "name"),
        "description": _str(data.get("description", ""), "description"),
        "schema_version": version,
        "experiment": ExperimentConfig(**experiment_kwargs),
        "pipelines": _parse_pipelines(data.get("pipelines"), "pipelines"),
    }
    for section in (
        "sampling",
        "cluster",
        "storage",
        "ocean",
        "images",
        "power",
        "execution",
        "telemetry",
    ):
        section_kwargs = _walk_section(
            data.get(section), section, _SECTION_SPECS[section]
        )
        kwargs[section] = _SECTION_TYPES[section](**section_kwargs)
    if data.get("faults") is not None:
        kwargs["faults"] = FaultsCampaignConfig(
            **_walk_section(data["faults"], "faults", _SECTION_SPECS["faults"])
        )
    return Scenario(**kwargs)


# -------------------------------------------------------------- --set overrides


def _parse_override_value(text: str):
    try:
        import yaml
    except ImportError:
        try:
            return json.loads(text)
        except ValueError:
            return text
    try:
        return yaml.safe_load(text)
    except yaml.YAMLError:
        return text


def apply_overrides(data: dict, overrides: Sequence[str]) -> dict:
    """Apply ``--set key.path=value`` overrides to a raw scenario mapping."""
    for override in overrides:
        if "=" not in override:
            raise ScenarioError(
                "",
                f"malformed override {override!r}",
                "expected key.path=value",
            )
        dotted, text = override.split("=", 1)
        dotted = dotted.strip()
        if not dotted:
            raise ScenarioError(
                "", f"malformed override {override!r}", "empty key path"
            )
        segments = dotted.split(".")
        node = data
        for i, segment in enumerate(segments[:-1]):
            here = ".".join(segments[: i + 1])
            if isinstance(node, list):
                node = _index_into(node, segment, here)
                continue
            if not isinstance(node, dict):
                raise ScenarioError(
                    here,
                    f"cannot override below a {type(node).__name__}",
                )
            node = node.setdefault(segment, {})
        leaf = segments[-1]
        value = _parse_override_value(text)
        if isinstance(node, list):
            index = _index_check(node, leaf, dotted)
            node[index] = value
        elif isinstance(node, dict):
            node[leaf] = value
        else:
            raise ScenarioError(
                dotted, f"cannot override below a {type(node).__name__}"
            )
    return data


def _index_check(node: list, segment: str, path: str) -> int:
    try:
        index = int(segment)
    except ValueError:
        raise ScenarioError(
            path, f"expected a list index, got {segment!r}"
        )
    if not -len(node) <= index < len(node):
        raise ScenarioError(
            path, f"index {index} out of range (list has {len(node)} items)"
        )
    return index


def _index_into(node: list, segment: str, path: str):
    return node[_index_check(node, segment, path)]


# --------------------------------------------------------------- file loading


def load_scenario(
    path: str,
    overrides: Sequence[str] = (),
    name: Optional[str] = None,
) -> Scenario:
    """Load, override and validate a scenario file (YAML or JSON)."""
    if not os.path.exists(path):
        raise ScenarioError("", f"no such scenario file: {path}")
    with open(path, "r", encoding="utf-8") as fh:
        text = fh.read()
    if path.endswith(".json"):
        try:
            data = json.loads(text)
        except ValueError as exc:
            raise ScenarioError("", f"invalid JSON in {path}: {exc}")
    else:
        yaml = _yaml_module(path)
        try:
            data = yaml.safe_load(text)
        except yaml.YAMLError as exc:
            raise ScenarioError("", f"invalid YAML in {path}: {exc}")
    if data is None:
        data = {}
    if overrides:
        if not isinstance(data, dict):
            raise ScenarioError(
                "",
                f"expected a mapping at top level, got {type(data).__name__}",
            )
        data = apply_overrides(data, overrides)
    stem = os.path.splitext(os.path.basename(path))[0]
    return parse_scenario(data, default_name=name or stem)


def scenario_text(scenario: Scenario, fmt: str = "yaml") -> str:
    """Serialize a scenario's resolved canonical form to YAML or JSON text."""
    resolved = scenario.to_dict()
    if fmt == "json":
        return json.dumps(resolved, indent=2, sort_keys=True) + "\n"
    yaml = _yaml_module("<scenario>")
    return yaml.safe_dump(resolved, sort_keys=False, default_flow_style=False)


def write_scenario(scenario: Scenario, path: str) -> None:
    """Write a scenario's resolved form to ``path`` (format by extension)."""
    fmt = "json" if path.endswith(".json") else "yaml"
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(scenario_text(scenario, fmt=fmt))
