"""Build the runtime objects a :class:`Scenario` describes.

This is the single place where declarative scenario data turns into the
live Platform / Pipeline / engine objects the experiments run on.  The
flag-driven CLI path goes through :func:`scenario_from_args`, so both
spellings construct the *same* scenario and therefore the same objects —
the byte-identical-telemetry guarantee holds by construction.

Builders return ``None`` whenever the scenario asks for the library
default, so the default code path (and its cache keys, event streams and
request lists) stays exactly what it was before scenarios existed.
"""

from __future__ import annotations

import argparse
from typing import Callable, Optional, Tuple

from repro.scenario.schema import (
    ExecutionConfig,
    ExperimentConfig,
    FaultsCampaignConfig,
    ImagesConfig,
    OceanConfig,
    PowerConfig,
    SamplingConfig,
    Scenario,
    ScenarioError,
    TelemetryConfig,
)
from repro.units import MONTH

__all__ = [
    "build_ocean",
    "build_images",
    "build_spec",
    "build_pipelines",
    "build_platform_factory",
    "build_engine",
    "scenario_from_args",
]


def build_ocean(config: OceanConfig):
    """The :class:`~repro.ocean.driver.MPASOceanConfig` a scenario describes."""
    from repro.ocean.driver import MPASOceanConfig

    return MPASOceanConfig(
        resolution_km=config.resolution_km,
        n_vertical_levels=config.vertical_levels,
        timestep_seconds=config.timestep_seconds,
        duration_seconds=config.duration_seconds,
        bytes_per_value=config.bytes_per_value,
    )


def build_images(config: ImagesConfig):
    """The :class:`~repro.viz.render.ImageSpec` a scenario describes."""
    from repro.viz.render import ImageSpec

    return ImageSpec(width=config.width, height=config.height)


def build_spec(scenario: Scenario):
    """The :class:`~repro.pipelines.base.PipelineSpec` for this scenario.

    Returns ``None`` when every field resolves to the library default so
    the historical ``spec=None`` code path (and its request hashes) is
    taken verbatim.  Fault campaigns always materialize a spec: their
    cadence and campaign length live in it.
    """
    from repro.pipelines.base import PipelineSpec
    from repro.pipelines.sampling import SamplingPolicy

    if scenario.experiment.kind == "faults":
        return PipelineSpec(
            ocean=build_ocean(scenario.ocean),
            sampling=SamplingPolicy(scenario.sampling.intervals_hours[0]),
            images=build_images(scenario.images),
        )
    if scenario.ocean == OceanConfig() and scenario.images == ImagesConfig():
        return None
    return PipelineSpec(
        ocean=build_ocean(scenario.ocean), images=build_images(scenario.images)
    )


def build_pipelines(scenario: Scenario) -> Optional[Tuple]:
    """Pipeline instances for a non-default grid (``None`` = default pair)."""
    if scenario.pipelines is None:
        return None
    from repro.pipelines.insitu import InSituPipeline
    from repro.pipelines.intransit import InTransitPipeline
    from repro.pipelines.postprocessing import PostProcessingPipeline

    instances = []
    for entry in scenario.pipelines:
        if entry.kind == "in-transit":
            if entry.staging_nodes is not None:
                instances.append(InTransitPipeline(config=entry))
            else:
                instances.append(InTransitPipeline())
        elif entry.kind == "in-situ":
            instances.append(InSituPipeline())
        else:
            instances.append(PostProcessingPipeline())
    return tuple(instances)


def build_platform_factory(scenario: Scenario) -> Optional[Callable]:
    """A fresh-platform factory for non-default topologies (``None`` = default).

    Bespoke platform objects cannot cross the engine's process/cache
    boundary, so a non-``None`` factory forces the inline execution path —
    scenario validation already rejects combining it with ``execution``.
    """
    if not scenario.needs_custom_platform:
        return None
    cluster_config = scenario.cluster
    storage_config = scenario.storage

    def factory():
        from repro.events.engine import Simulator
        from repro.cluster.machine import ComputeCluster
        from repro.pipelines.platform import SimulatedPlatform
        from repro.storage.lustre import StorageCluster

        sim = Simulator()
        cluster = ComputeCluster(sim, config=cluster_config)
        storage = StorageCluster(sim, config=storage_config)
        return SimulatedPlatform(
            cluster=cluster,
            storage=storage,
            n_io_aggregators=storage_config.io_aggregators,
        )

    return factory


def build_engine(scenario: Scenario):
    """The execution engine a scenario's ``execution`` section asks for.

    Mirrors the historical flag handling exactly, with one addition: the
    on-disk cache's code version and the sweep journal's label are
    namespaced by the scenario content digest, so artifacts key on the
    exact configuration that produced them.
    """
    config = scenario.execution
    if not config.wants_engine:
        return None
    from repro.exec.cache import DiskCache, default_code_version

    stamp = f"scenario-{scenario.content_digest()[:12]}"
    cache = None
    if config.cache is not None:
        cache = DiskCache(
            config.cache, code_version=f"{default_code_version()}+{stamp}"
        )
    if not config.supervised:
        from repro.exec.engine import ExecutionEngine

        return ExecutionEngine(max_workers=config.workers, cache=cache)
    from repro.exec.supervise import SupervisedExecutor, SweepJournal, TaskPolicy
    from repro.faults.retry import RetryPolicy

    defaults = TaskPolicy()
    retry = defaults.retry
    if config.task_retries is not None:
        retry = RetryPolicy(
            max_attempts=config.task_retries,
            base_delay_seconds=retry.base_delay_seconds,
            backoff_factor=retry.backoff_factor,
            max_delay_seconds=retry.max_delay_seconds,
            jitter=retry.jitter,
        )
    policy = TaskPolicy(
        deadline_seconds=config.deadline_seconds,
        retry=retry,
        max_worker_crashes=(
            config.max_worker_crashes
            if config.max_worker_crashes is not None
            else defaults.max_worker_crashes
        ),
        fail_policy=(
            config.fail_policy
            if config.fail_policy is not None
            else defaults.fail_policy
        ),
    )
    journal = None
    if config.journal is not None:
        journal = SweepJournal(config.journal, label=stamp)
    return SupervisedExecutor(
        max_workers=config.workers,
        cache=cache,
        policy=policy,
        journal=journal,
        resume=config.resume,
    )


# ------------------------------------------------------------ flags → scenario


def _execution_from_args(args: argparse.Namespace) -> ExecutionConfig:
    return ExecutionConfig(
        workers=getattr(args, "workers", None),
        cache=getattr(args, "cache", None),
        supervise=bool(getattr(args, "supervise", False)),
        deadline_seconds=getattr(args, "deadline", None),
        task_retries=getattr(args, "task_retries", None),
        max_worker_crashes=getattr(args, "max_worker_crashes", None),
        fail_policy=getattr(args, "fail_policy", None),
        journal=getattr(args, "journal", None),
        resume=bool(getattr(args, "resume", False)),
    )


def _telemetry_from_args(args: argparse.Namespace) -> TelemetryConfig:
    return TelemetryConfig(
        directory=getattr(args, "telemetry", None),
        timeline=not getattr(args, "no_timeline", False),
        interval_seconds=getattr(args, "timeline_interval", None),
        store=getattr(args, "store", None),
    )


def scenario_from_args(command: str, args: argparse.Namespace) -> Scenario:
    """The scenario equivalent to a legacy flag invocation, exactly."""
    common = {
        "power": PowerConfig(cap_watts=getattr(args, "power_cap", None)),
        "execution": _execution_from_args(args),
        "telemetry": _telemetry_from_args(args),
    }
    if command == "characterize":
        return Scenario(
            name="characterize",
            experiment=ExperimentConfig(kind="characterize"),
            sampling=SamplingConfig(intervals_hours=tuple(args.intervals)),
            **common,
        )
    if command == "whatif":
        return Scenario(
            name="whatif",
            experiment=ExperimentConfig(
                kind="whatif",
                years=args.years,
                sweep_intervals_hours=tuple(args.intervals),
                mtbf_hours=args.mtbf_hours,
                checkpoint_write_seconds=args.checkpoint_write_seconds,
                restart_seconds=args.restart_seconds,
            ),
            **common,
        )
    if command == "faults":
        return Scenario(
            name="faults",
            experiment=ExperimentConfig(kind="faults"),
            sampling=SamplingConfig(intervals_hours=(args.interval,)),
            ocean=OceanConfig(duration_seconds=args.months * MONTH),
            faults=FaultsCampaignConfig(
                seed=args.seed,
                mtbf_hours=args.mtbf_hours,
                checkpoint_every=args.checkpoint_every,
                restart_penalty_seconds=args.restart_penalty,
                brownout_rate_per_hour=args.brownout_rate,
                io_error_rate_per_hour=args.io_error_rate,
                include_unprotected=not args.no_unprotected,
            ),
            **common,
        )
    raise ScenarioError(
        "experiment.kind", f"no scenario mapping for command {command!r}"
    )
