"""The versioned, frozen scenario schema.

A :class:`Scenario` is the declarative description of one experiment —
every knob the CLI exposes, as pure data: cluster topology, storage rack,
ocean-model configuration, pipeline choice, sampling policy, fault
campaign, power cap, and the supervision/telemetry options.  Scenarios are

* **versioned** — ``schema_version`` is checked on parse, so a file written
  against a future schema fails with a structured error instead of
  misbehaving silently;
* **frozen** — every section is an immutable dataclass, safe to share and
  to use as a dict key;
* **canonically serializable** — :meth:`Scenario.to_dict` resolves every
  quantity to its canonical unit (seconds, bytes, bytes/s) and every
  default to its value, so two files that *mean* the same experiment
  serialize identically;
* **content-hashable** — :meth:`Scenario.content_digest` is the sha256 of
  the canonical JSON of the *identity* sections (experiment, sampling,
  cluster, storage, ocean, pipelines, images, faults, power).  Transport
  concerns (``name``, ``description``, ``execution``, ``telemetry``) are
  excluded, so renaming a template or moving its cache directory never
  changes its digest.  The digest namespaces the
  :class:`~repro.exec.cache.DiskCache` code version and labels the sweep
  journal, so any artifact traces back to its exact configuration.

Validation failures raise :class:`ScenarioError` — a
:class:`~repro.errors.ConfigurationError` carrying the dotted path of the
offending key, what was expected, and (where possible) a hint.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.errors import ConfigurationError
from repro.paper import (
    CADDY_NODES,
    GRID_RESOLUTION_KM,
    SAMPLING_INTERVALS_HOURS,
    STORAGE_CAPACITY_BYTES,
    STORAGE_BANDWIDTH_BYTES_PER_S,
    TIMESTEP_SECONDS,
    WHATIF_YEARS,
)
from repro.units import MB, MONTH

__all__ = [
    "SCENARIO_SCHEMA_VERSION",
    "EXPERIMENT_KINDS",
    "PIPELINE_KINDS",
    "ScenarioError",
    "ExperimentConfig",
    "SamplingConfig",
    "ClusterConfig",
    "StorageConfig",
    "OceanConfig",
    "PipelineConfig",
    "ImagesConfig",
    "FaultsConfig",
    "PowerConfig",
    "ExecutionConfig",
    "TelemetryConfig",
    "Scenario",
]

#: The scenario schema version this build reads and writes.
SCENARIO_SCHEMA_VERSION = 1

#: Experiment kinds ``repro run`` can dispatch.
EXPERIMENT_KINDS = ("characterize", "whatif", "faults")

#: Pipeline kinds a scenario may select.
PIPELINE_KINDS = ("in-situ", "post-processing", "in-transit")

#: Cadences the Eq. 5 calibration trains on — a what-if scenario's grid
#: must cover them (see :data:`repro.core.characterization.TRAINING_CONFIGS`).
_CALIBRATION_INTERVALS = frozenset(SAMPLING_INTERVALS_HOURS)


class ScenarioError(ConfigurationError):
    """A structured scenario validation failure: path + message + hint."""

    def __init__(self, path: str, message: str, hint: Optional[str] = None) -> None:
        self.path = path
        self.hint = hint
        where = f"scenario.{path}" if path else "scenario"
        full = f"{where}: {message}"
        if hint:
            full += f" (hint: {hint})"
        super().__init__(full)


def _require(condition: bool, path: str, message: str, hint: Optional[str] = None) -> None:
    if not condition:
        raise ScenarioError(path, message, hint)


def _canonical_numbers(value):
    """Collapse integral floats to ints, recursively, for digesting."""
    if isinstance(value, bool):
        return value
    if isinstance(value, float) and value.is_integer():
        return int(value)
    if isinstance(value, dict):
        return {key: _canonical_numbers(item) for key, item in value.items()}
    if isinstance(value, list):
        return [_canonical_numbers(item) for item in value]
    return value


@dataclass(frozen=True)
class ExperimentConfig:
    """Which experiment to run, plus the what-if-only knobs."""

    kind: str = "characterize"
    #: What-if only: campaign length in simulated years.
    years: float = WHATIF_YEARS
    #: What-if only: the cadence axis of the Figs. 9/10 sweeps.
    sweep_intervals_hours: Tuple[float, ...] = (1.0, 8.0, 24.0, 72.0, 192.0)
    #: What-if only: also print the failure-aware sweep at this node MTBF.
    mtbf_hours: Optional[float] = None
    #: What-if only: checkpoint write cost for the failure-aware sweep.
    checkpoint_write_seconds: float = 60.0
    #: What-if only: recovery cost for the failure-aware sweep.
    restart_seconds: float = 30.0

    def __post_init__(self) -> None:
        _require(
            self.kind in EXPERIMENT_KINDS,
            "experiment.kind",
            f"unknown experiment kind {self.kind!r}",
            f"expected one of {', '.join(EXPERIMENT_KINDS)}",
        )
        _require(self.years > 0, "experiment.years", f"must be positive, got {self.years}")
        _require(
            bool(self.sweep_intervals_hours),
            "experiment.sweep_intervals_hours",
            "must list at least one cadence",
        )

    def to_dict(self) -> dict:
        out: dict = {"kind": self.kind}
        if self.kind == "whatif":
            out.update(
                {
                    "years": self.years,
                    "sweep_intervals_hours": list(self.sweep_intervals_hours),
                    "mtbf_hours": self.mtbf_hours,
                    "checkpoint_write_seconds": self.checkpoint_write_seconds,
                    "restart_seconds": self.restart_seconds,
                }
            )
        return out


@dataclass(frozen=True)
class SamplingConfig:
    """The characterization grid's sampling cadences (simulated hours)."""

    intervals_hours: Tuple[float, ...] = SAMPLING_INTERVALS_HOURS

    def __post_init__(self) -> None:
        _require(
            bool(self.intervals_hours),
            "sampling.intervals_hours",
            "must list at least one cadence",
        )
        for h in self.intervals_hours:
            _require(
                h > 0,
                "sampling.intervals_hours",
                f"cadences must be positive simulated hours, got {h}",
            )

    def to_dict(self) -> dict:
        return {"intervals_hours": list(self.intervals_hours)}


@dataclass(frozen=True)
class ClusterConfig:
    """Compute-cluster topology (defaults: the paper's 150-node Caddy)."""

    name: str = "caddy"
    nodes: int = CADDY_NODES
    cores_per_socket: int = 8
    nodes_per_cage: int = 10

    def __post_init__(self) -> None:
        _require(self.nodes >= 1, "cluster.nodes", f"need >= 1 node, got {self.nodes}")
        _require(
            self.cores_per_socket >= 1,
            "cluster.cores_per_socket",
            f"need >= 1 core per socket, got {self.cores_per_socket}",
        )
        _require(
            self.nodes_per_cage >= 1,
            "cluster.nodes_per_cage",
            f"need >= 1 node per cage, got {self.nodes_per_cage}",
        )
        _require(bool(self.name), "cluster.name", "must be non-empty")

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "nodes": self.nodes,
            "cores_per_socket": self.cores_per_socket,
            "nodes_per_cage": self.nodes_per_cage,
        }


@dataclass(frozen=True)
class StorageConfig:
    """Storage-rack configuration (defaults: the paper's Lustre rack).

    Quantities are stored in canonical units (bytes, bytes/s, seconds);
    the loader also accepts human-readable strings (``"7.7 TB"``,
    ``"160 MB/s"``, ``"1 ms"``).
    """

    capacity_bytes: float = STORAGE_CAPACITY_BYTES
    write_bandwidth: float = STORAGE_BANDWIDTH_BYTES_PER_S  # repro-unit: bytes_per_s
    read_bandwidth: float = 1_000 * MB  # repro-unit: bytes_per_s
    mds: int = 2
    ost: int = 8
    metadata_latency_seconds: float = 1e-3
    #: PIO aggregator count on the compute side of the I/O path.
    io_aggregators: int = 8

    def __post_init__(self) -> None:
        _require(
            self.capacity_bytes > 0,
            "storage.capacity",
            f"must be positive bytes, got {self.capacity_bytes}",
        )
        _require(
            self.write_bandwidth > 0 and self.read_bandwidth > 0,
            "storage.write_bandwidth",
            "bandwidths must be positive",
        )
        _require(self.mds >= 1, "storage.mds", f"need >= 1 MDS, got {self.mds}")
        _require(self.ost >= 1, "storage.ost", f"need >= 1 OST, got {self.ost}")
        _require(
            self.metadata_latency_seconds >= 0,
            "storage.metadata_latency",
            f"must be non-negative seconds, got {self.metadata_latency_seconds}",
        )
        _require(
            self.io_aggregators >= 1,
            "storage.io_aggregators",
            f"need >= 1 aggregator, got {self.io_aggregators}",
        )

    def to_dict(self) -> dict:
        return {
            "capacity": self.capacity_bytes,
            "write_bandwidth": self.write_bandwidth,
            "read_bandwidth": self.read_bandwidth,
            "mds": self.mds,
            "ost": self.ost,
            "metadata_latency": self.metadata_latency_seconds,
            "io_aggregators": self.io_aggregators,
        }


@dataclass(frozen=True)
class OceanConfig:
    """MPAS-Ocean campaign configuration (mirrors ``MPASOceanConfig``)."""

    resolution_km: float = GRID_RESOLUTION_KM
    vertical_levels: int = 60
    timestep_seconds: float = TIMESTEP_SECONDS
    duration_seconds: float = 6 * MONTH
    bytes_per_value: int = 8

    def __post_init__(self) -> None:
        _require(
            self.resolution_km > 0,
            "ocean.resolution_km",
            f"must be positive, got {self.resolution_km}",
        )
        _require(
            self.vertical_levels >= 1,
            "ocean.vertical_levels",
            f"need >= 1 level, got {self.vertical_levels}",
        )
        _require(
            self.timestep_seconds > 0,
            "ocean.timestep",
            f"must be positive seconds, got {self.timestep_seconds}",
        )
        _require(
            self.duration_seconds > 0,
            "ocean.duration",
            f"must be positive seconds, got {self.duration_seconds}",
        )
        _require(
            self.bytes_per_value in (4, 8),
            "ocean.bytes_per_value",
            f"expected 4 or 8, got {self.bytes_per_value}",
        )

    def to_dict(self) -> dict:
        return {
            "resolution_km": self.resolution_km,
            "vertical_levels": self.vertical_levels,
            "timestep": self.timestep_seconds,
            "duration": self.duration_seconds,
            "bytes_per_value": self.bytes_per_value,
        }


@dataclass(frozen=True)
class PipelineConfig:
    """One pipeline selection in the grid."""

    kind: str = "in-situ"
    #: In-transit only: staging-partition size (``None`` = builder default).
    staging_nodes: Optional[int] = None

    def __post_init__(self) -> None:
        _require(
            self.kind in PIPELINE_KINDS,
            "pipelines.kind",
            f"unknown pipeline kind {self.kind!r}",
            f"expected one of {', '.join(PIPELINE_KINDS)}",
        )
        if self.staging_nodes is not None:
            _require(
                self.kind == "in-transit",
                "pipelines.staging_nodes",
                f"only the in-transit pipeline stages; {self.kind!r} does not",
            )
            _require(
                self.staging_nodes >= 1,
                "pipelines.staging_nodes",
                f"need >= 1 staging node, got {self.staging_nodes}",
            )

    def to_dict(self) -> dict:
        out: dict = {"kind": self.kind}
        if self.staging_nodes is not None:
            out["staging_nodes"] = self.staging_nodes
        return out


@dataclass(frozen=True)
class ImagesConfig:
    """Output image parameters (mirrors ``ImageSpec``; default cameras)."""

    width: int = 1920
    height: int = 1080

    def __post_init__(self) -> None:
        _require(
            self.width >= 8 and self.height >= 8,
            "images.width",
            f"image too small: {self.width}x{self.height}",
        )

    def to_dict(self) -> dict:
        return {"width": self.width, "height": self.height}


@dataclass(frozen=True)
class FaultsCampaignConfig:
    """The seeded fault campaign (``experiment.kind: faults`` only)."""

    seed: int = 57
    mtbf_hours: Optional[float] = 6.0
    checkpoint_every: int = 8
    restart_penalty_seconds: float = 30.0
    brownout_rate_per_hour: float = 0.0
    io_error_rate_per_hour: float = 0.0
    include_unprotected: bool = True

    def __post_init__(self) -> None:
        if self.mtbf_hours is not None:
            _require(
                self.mtbf_hours > 0,
                "faults.mtbf_hours",
                f"must be positive hours, got {self.mtbf_hours}",
            )
        _require(
            self.checkpoint_every >= 1,
            "faults.checkpoint_every",
            f"checkpoint cadence must be >= 1, got {self.checkpoint_every}",
        )
        _require(
            self.restart_penalty_seconds >= 0,
            "faults.restart_penalty",
            f"must be non-negative seconds, got {self.restart_penalty_seconds}",
        )
        for name, rate in (
            ("brownout_rate_per_hour", self.brownout_rate_per_hour),
            ("io_error_rate_per_hour", self.io_error_rate_per_hour),
        ):
            _require(
                rate >= 0, f"faults.{name}", f"must be non-negative, got {rate}"
            )

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "mtbf_hours": self.mtbf_hours,
            "checkpoint_every": self.checkpoint_every,
            "restart_penalty": self.restart_penalty_seconds,
            "brownout_rate_per_hour": self.brownout_rate_per_hour,
            "io_error_rate_per_hour": self.io_error_rate_per_hour,
            "include_unprotected": self.include_unprotected,
        }


#: Back-compat alias used throughout the loader/tests.
FaultsConfig = FaultsCampaignConfig


@dataclass(frozen=True)
class PowerConfig:
    """Power-watchdog configuration."""

    cap_watts: Optional[float] = None

    def __post_init__(self) -> None:
        if self.cap_watts is not None:
            _require(
                self.cap_watts > 0,
                "power.cap_watts",
                f"must be positive watts, got {self.cap_watts}",
            )

    def to_dict(self) -> dict:
        return {"cap_watts": self.cap_watts}


@dataclass(frozen=True)
class ExecutionConfig:
    """Engine/supervision options (mirrors the ``--workers`` flag family)."""

    workers: Optional[int] = None
    cache: Optional[str] = None
    supervise: bool = False
    deadline_seconds: Optional[float] = None
    task_retries: Optional[int] = None
    max_worker_crashes: Optional[int] = None
    fail_policy: Optional[str] = None
    journal: Optional[str] = None
    resume: bool = False

    def __post_init__(self) -> None:
        if self.workers is not None:
            _require(
                self.workers >= 1,
                "execution.workers",
                f"need >= 1 worker, got {self.workers}",
            )
        if self.fail_policy is not None:
            _require(
                self.fail_policy in ("abort", "skip", "serial-fallback"),
                "execution.fail_policy",
                f"unknown fail policy {self.fail_policy!r}",
                "expected abort, skip or serial-fallback",
            )

    @property
    def supervised(self) -> bool:
        """Whether any option upgrades the engine to supervised execution."""
        return (
            self.supervise
            or self.resume
            or any(
                v is not None
                for v in (
                    self.deadline_seconds,
                    self.task_retries,
                    self.max_worker_crashes,
                    self.fail_policy,
                    self.journal,
                )
            )
        )

    @property
    def wants_engine(self) -> bool:
        """Whether this config asks for anything beyond the inline default."""
        return self.workers is not None or self.cache is not None or self.supervised

    def to_dict(self) -> dict:
        return {
            "workers": self.workers,
            "cache": self.cache,
            "supervise": self.supervise,
            "deadline": self.deadline_seconds,
            "task_retries": self.task_retries,
            "max_worker_crashes": self.max_worker_crashes,
            "fail_policy": self.fail_policy,
            "journal": self.journal,
            "resume": self.resume,
        }


@dataclass(frozen=True)
class TelemetryConfig:
    """Where (and whether) to record spans/metrics/timeline."""

    directory: Optional[str] = None
    timeline: bool = True
    interval_seconds: Optional[float] = None
    #: Run-registry root to ingest the finished run into (needs a directory).
    store: Optional[str] = None

    def __post_init__(self) -> None:
        if self.interval_seconds is not None:
            _require(
                self.interval_seconds > 0,
                "telemetry.timeline_interval",
                f"must be positive seconds, got {self.interval_seconds}",
            )
        if self.store is not None:
            _require(
                self.directory is not None,
                "telemetry.store",
                "needs telemetry.directory: only recorded runs can be "
                "ingested into the run registry",
            )

    def to_dict(self) -> dict:
        out = {
            "directory": self.directory,
            "timeline": self.timeline,
            "timeline_interval": self.interval_seconds,
        }
        # Emitted only when set: scenarios (and the manifests embedding
        # them) written before the run registry existed stay byte-identical.
        if self.store is not None:
            out["store"] = self.store
        return out


#: Scenario sections that are part of run identity (digested), in order.
_IDENTITY_SECTIONS = (
    "experiment",
    "sampling",
    "cluster",
    "storage",
    "ocean",
    "pipelines",
    "images",
    "faults",
    "power",
)


@dataclass(frozen=True)
class Scenario:
    """One fully-resolved, validated experiment description."""

    name: str
    description: str = ""
    schema_version: int = SCENARIO_SCHEMA_VERSION
    experiment: ExperimentConfig = field(default_factory=ExperimentConfig)
    sampling: SamplingConfig = field(default_factory=SamplingConfig)
    cluster: ClusterConfig = field(default_factory=ClusterConfig)
    storage: StorageConfig = field(default_factory=StorageConfig)
    ocean: OceanConfig = field(default_factory=OceanConfig)
    #: ``None`` means the experiment's default pipeline pair.
    pipelines: Optional[Tuple[PipelineConfig, ...]] = None
    images: ImagesConfig = field(default_factory=ImagesConfig)
    #: Present iff ``experiment.kind == "faults"``.
    faults: Optional[FaultsCampaignConfig] = None
    power: PowerConfig = field(default_factory=PowerConfig)
    execution: ExecutionConfig = field(default_factory=ExecutionConfig)
    telemetry: TelemetryConfig = field(default_factory=TelemetryConfig)

    def __post_init__(self) -> None:
        _require(bool(self.name), "name", "must be non-empty")
        _require(
            self.schema_version == SCENARIO_SCHEMA_VERSION,
            "schema_version",
            f"unsupported scenario schema version {self.schema_version!r}",
            f"this build reads version {SCENARIO_SCHEMA_VERSION}",
        )
        kind = self.experiment.kind
        if kind == "faults":
            _require(
                len(self.sampling.intervals_hours) == 1,
                "sampling.intervals_hours",
                "a fault campaign runs one cadence; give exactly one interval",
            )
            if self.faults is None:
                object.__setattr__(self, "faults", FaultsCampaignConfig())
        else:
            _require(
                self.faults is None,
                "faults",
                f"a fault campaign section needs experiment.kind: faults "
                f"(this scenario is {kind!r})",
            )
        if kind == "whatif":
            _require(
                self.pipelines is None,
                "pipelines",
                "the what-if analyzer calibrates on the in-situ / "
                "post-processing pair; drop the pipelines section",
            )
            missing = _CALIBRATION_INTERVALS - set(self.sampling.intervals_hours)
            _require(
                not missing,
                "sampling.intervals_hours",
                "the what-if calibration grid must cover the training "
                f"cadences; missing {sorted(missing)}",
                f"include {sorted(_CALIBRATION_INTERVALS)}",
            )
        if self.pipelines is not None:
            _require(
                bool(self.pipelines),
                "pipelines",
                "must list at least one pipeline",
            )
            kinds = [p.kind for p in self.pipelines]
            _require(
                len(kinds) == len(set(kinds)),
                "pipelines",
                "each pipeline kind may appear once",
            )
            if kind == "characterize":
                for required in ("in-situ", "post-processing"):
                    _require(
                        required in kinds,
                        "pipelines",
                        f"the characterization comparisons need the "
                        f"{required!r} pipeline in the grid",
                    )
        if self.execution.resume:
            _require(
                self.execution.journal is not None
                and self.execution.cache is not None,
                "execution.resume",
                "resume needs both execution.journal and execution.cache",
            )
        if self.needs_custom_platform and self.execution.wants_engine:
            raise ScenarioError(
                "execution",
                "a non-default cluster/storage topology runs inline on a "
                "bespoke platform; workers/cache/supervision are only "
                "available on the default platform",
                "drop the execution section or the custom topology",
            )

    # ------------------------------------------------------------- properties

    @property
    def needs_custom_platform(self) -> bool:
        """Whether this scenario needs a bespoke (inline-only) platform.

        Non-default image parameters do *not* force one: they travel inside
        the :class:`~repro.pipelines.base.PipelineSpec`, which crosses the
        engine's process/cache boundary as pure data.
        """
        return self.cluster != ClusterConfig() or self.storage != StorageConfig()

    # ---------------------------------------------------------- serialization

    def to_dict(self) -> dict:
        """Fully-resolved canonical representation (defaults materialized)."""
        return {
            "schema_version": self.schema_version,
            "name": self.name,
            "description": self.description,
            "experiment": self.experiment.to_dict(),
            "sampling": self.sampling.to_dict(),
            "cluster": self.cluster.to_dict(),
            "storage": self.storage.to_dict(),
            "ocean": self.ocean.to_dict(),
            "pipelines": (
                None
                if self.pipelines is None
                else [p.to_dict() for p in self.pipelines]
            ),
            "images": self.images.to_dict(),
            "faults": None if self.faults is None else self.faults.to_dict(),
            "power": self.power.to_dict(),
            "execution": self.execution.to_dict(),
            "telemetry": self.telemetry.to_dict(),
        }

    def identity_dict(self) -> dict:
        """The digested subset of :meth:`to_dict` — run identity only."""
        full = self.to_dict()
        return {
            "schema_version": full["schema_version"],
            **{section: full[section] for section in _IDENTITY_SECTIONS},
        }

    def canonical_json(self) -> str:
        """Canonical JSON of the identity sections (sorted keys, no spaces).

        Integral floats are digested as ints so the hash is invariant to
        YAML's int/float ambiguity (``160e6`` vs ``160000000``).
        """
        return json.dumps(
            _canonical_numbers(self.identity_dict()),
            sort_keys=True,
            separators=(",", ":"),
        )

    def content_digest(self) -> str:
        """sha256 hex digest of :meth:`canonical_json` — the scenario's id."""
        return hashlib.sha256(self.canonical_json().encode("utf-8")).hexdigest()
