"""The template gallery: validate shipped scenarios and gate on hash drift.

``scenarios/`` holds the curated templates (paper grid, CI smoke config,
in-transit sweep, MTBF campaign, power-cap stress) plus a committed digest
manifest (``TEMPLATES.json``).  :func:`check_gallery` re-validates every
template and compares content digests against the manifest, so CI fails
when a template edit forgets to refresh the manifest — digest drift means
every cached result keyed on that scenario silently went stale.
"""

from __future__ import annotations

import json
import os
from typing import List, Optional, Tuple

from repro.scenario.loader import load_scenario
from repro.scenario.schema import SCENARIO_SCHEMA_VERSION, Scenario, ScenarioError

__all__ = [
    "DEFAULT_GALLERY_DIR",
    "DEFAULT_MANIFEST",
    "gallery_paths",
    "load_gallery",
    "check_gallery",
    "write_manifest",
]

DEFAULT_GALLERY_DIR = "scenarios"
DEFAULT_MANIFEST = os.path.join("scenarios", "TEMPLATES.json")

_SCENARIO_SUFFIXES = (".yaml", ".yml", ".json")


def gallery_paths(directory: str = DEFAULT_GALLERY_DIR) -> List[str]:
    """Template files in the gallery, sorted by name."""
    if not os.path.isdir(directory):
        raise ScenarioError("", f"no such gallery directory: {directory}")
    return sorted(
        os.path.join(directory, entry)
        for entry in os.listdir(directory)
        if entry.endswith(_SCENARIO_SUFFIXES)
        and entry != os.path.basename(DEFAULT_MANIFEST)
    )


def load_gallery(
    directory: str = DEFAULT_GALLERY_DIR,
) -> List[Tuple[str, Scenario]]:
    """Parse every template; raises :class:`ScenarioError` on the first bad one."""
    return [(path, load_scenario(path)) for path in gallery_paths(directory)]


def _manifest_payload(templates: List[Tuple[str, Scenario]]) -> dict:
    return {
        "schema_version": SCENARIO_SCHEMA_VERSION,
        "templates": {
            os.path.basename(path): scenario.content_digest()
            for path, scenario in templates
        },
    }


def write_manifest(
    directory: str = DEFAULT_GALLERY_DIR,
    manifest_path: str = DEFAULT_MANIFEST,
) -> dict:
    """Validate the gallery and (re)write the committed digest manifest."""
    payload = _manifest_payload(load_gallery(directory))
    with open(manifest_path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return payload


def check_gallery(
    directory: str = DEFAULT_GALLERY_DIR,
    manifest_path: Optional[str] = DEFAULT_MANIFEST,
) -> List[str]:
    """Validate every template and diff digests against the manifest.

    Returns a list of problems (empty = the gallery is healthy).  Schema
    violations surface as :class:`ScenarioError` from the loader instead —
    a malformed template is a hard error, not a drift report.
    """
    templates = load_gallery(directory)
    problems: List[str] = []
    if manifest_path is None:
        return problems
    if not os.path.exists(manifest_path):
        problems.append(
            f"missing digest manifest {manifest_path} "
            "(run `repro scenario gallery --update`)"
        )
        return problems
    with open(manifest_path, "r", encoding="utf-8") as fh:
        committed = json.load(fh)
    recorded = committed.get("templates", {})
    current = _manifest_payload(templates)["templates"]
    for name in sorted(set(recorded) | set(current)):
        if name not in current:
            problems.append(
                f"{name}: recorded in {manifest_path} but missing from "
                f"{directory}/"
            )
        elif name not in recorded:
            problems.append(
                f"{name}: present in {directory}/ but not recorded in "
                f"{manifest_path} (run `repro scenario gallery --update`)"
            )
        elif recorded[name] != current[name]:
            problems.append(
                f"{name}: content digest drifted "
                f"({recorded[name][:12]} -> {current[name][:12]}; run "
                "`repro scenario gallery --update` if the change is intended)"
            )
    return problems
