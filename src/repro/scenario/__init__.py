"""Declarative scenarios: versioned schema, loader, builders and runner.

One :class:`Scenario` describes a whole experiment — cluster topology,
storage rack, ocean campaign, pipeline grid, sampling policy, fault
campaign, power cap, execution engine and telemetry — as frozen, validated
pure data.  Scenarios serialize canonically (``to_dict`` resolves every
unit and default) and hash stably (``content_digest`` over the identity
sections), so caches, sweep journals and run manifests all key on the
exact configuration that produced an artifact.

Entry points:

* :func:`load_scenario` — YAML/JSON file → validated :class:`Scenario`
  (with ``--set`` override support);
* :func:`run_scenario` — execute one, byte-identical to the legacy flags;
* :func:`scenario_from_args` — the legacy CLI's argparse namespace →
  the equivalent scenario (how byte-identity holds by construction);
* :mod:`repro.scenario.gallery` — validate the shipped template gallery
  and gate on content-digest drift.
"""

from repro.scenario.build import (
    build_engine,
    build_pipelines,
    build_platform_factory,
    build_spec,
    scenario_from_args,
)
from repro.scenario.loader import (
    apply_overrides,
    load_scenario,
    parse_bandwidth,
    parse_bytes,
    parse_duration,
    parse_scenario,
    scenario_text,
    write_scenario,
)
from repro.scenario.run import run_scenario
from repro.scenario.schema import (
    SCENARIO_SCHEMA_VERSION,
    ClusterConfig,
    ExecutionConfig,
    ExperimentConfig,
    FaultsCampaignConfig,
    ImagesConfig,
    OceanConfig,
    PipelineConfig,
    PowerConfig,
    SamplingConfig,
    Scenario,
    ScenarioError,
    StorageConfig,
    TelemetryConfig,
)

__all__ = [
    "SCENARIO_SCHEMA_VERSION",
    "Scenario",
    "ScenarioError",
    "ClusterConfig",
    "ExecutionConfig",
    "ExperimentConfig",
    "FaultsCampaignConfig",
    "ImagesConfig",
    "OceanConfig",
    "PipelineConfig",
    "PowerConfig",
    "SamplingConfig",
    "StorageConfig",
    "TelemetryConfig",
    "apply_overrides",
    "build_engine",
    "build_pipelines",
    "build_platform_factory",
    "build_spec",
    "load_scenario",
    "parse_bandwidth",
    "parse_bytes",
    "parse_duration",
    "parse_scenario",
    "run_scenario",
    "scenario_from_args",
    "scenario_text",
    "write_scenario",
]
