"""Seeded fault campaigns: both pipelines under identical fault loads.

A campaign answers the PR's headline question — *what do faults cost, in
seconds and joules, and which pipeline degrades more gracefully?* — with a
controlled experiment:

1. run each pipeline fault-free on a fresh platform (the baseline);
2. build **one** seeded :class:`~repro.faults.spec.FaultSpec` whose horizon
   covers the slowest baseline, so every pipeline faces the *identical*
   fault load;
3. re-run each pipeline under that spec with checkpoint/restart protection
   (and optionally once unprotected, to demonstrate the abort);
4. report time/energy recovery overhead per pipeline, alongside the
   analytic :class:`~repro.faults.model.FailureModel` prediction.

Every run uses a fresh platform from ``platform_factory`` so measurements
never share simulator state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro import obs
from repro.core.metrics import Measurement
from repro.errors import ConfigurationError, FaultError, ReproError
from repro.faults.model import FailureModel
from repro.faults.resilience import CheckpointPolicy
from repro.faults.spec import FaultSpec
from repro.pipelines.base import Pipeline, PipelineSpec
from repro.pipelines.insitu import InSituPipeline
from repro.pipelines.postprocessing import PostProcessingPipeline
from repro.units import HOUR, format_energy, format_seconds

__all__ = ["PipelineFaultReport", "FaultCampaignResult", "run_fault_campaign"]

#: Fault horizon as a multiple of the slowest fault-free run — leaves room
#: for the recovery-inflated runtime while keeping the load comparable.
HORIZON_SAFETY_FACTOR = 3.0


@dataclass
class PipelineFaultReport:
    """One pipeline's baseline vs faulted comparison."""

    pipeline: str
    baseline: Measurement
    protected: Optional[Measurement]
    fault_summary: dict = field(default_factory=dict)
    #: What happened without checkpointing under the same fault load:
    #: ``"completed"``, ``"aborted: <error>"`` or ``"skipped"``.
    unprotected_outcome: str = "skipped"
    #: Analytic Daly-model prediction of the time-inflation ratio.
    model_overhead_ratio: Optional[float] = None

    @property
    def time_overhead_seconds(self) -> float:
        """Extra execution time paid to faults + resilience."""
        if self.protected is None:
            return float("nan")
        return self.protected.execution_time - self.baseline.execution_time

    @property
    def energy_overhead_joules(self) -> float:
        """Extra energy paid to faults + resilience (Eq. 1 on both runs)."""
        if self.protected is None or self.protected.energy is None or self.baseline.energy is None:
            return float("nan")
        return self.protected.energy - self.baseline.energy

    @property
    def overhead_ratio(self) -> float:
        """Fractional runtime inflation over the fault-free baseline."""
        if self.protected is None:
            return float("nan")
        return self.protected.execution_time / self.baseline.execution_time - 1.0

    def to_dict(self) -> dict:
        """JSON-safe report (CLI ``--json``, manifests)."""
        return {
            "pipeline": self.pipeline,
            "baseline": self.baseline.to_dict(),
            "protected": self.protected.to_dict() if self.protected is not None else None,
            "fault_summary": self.fault_summary,
            "unprotected_outcome": self.unprotected_outcome,
            "time_overhead_seconds": self.time_overhead_seconds,
            "energy_overhead_joules": self.energy_overhead_joules,
            "overhead_ratio": self.overhead_ratio,
            "model_overhead_ratio": self.model_overhead_ratio,
        }


@dataclass
class FaultCampaignResult:
    """Everything one seeded campaign measured."""

    spec: FaultSpec
    mtbf_hours: Optional[float]
    checkpoint_every: int
    reports: List[PipelineFaultReport] = field(default_factory=list)

    def report_for(self, pipeline: str) -> PipelineFaultReport:
        """The report for one pipeline by name."""
        for report in self.reports:
            if report.pipeline == pipeline:
                return report
        raise ConfigurationError(f"no campaign report for pipeline {pipeline!r}")

    def to_dict(self) -> dict:
        """JSON-safe result for the CLI and the determinism gate."""
        return {
            "fault_spec": self.spec.to_dict(),
            "mtbf_hours": self.mtbf_hours,
            "checkpoint_every": self.checkpoint_every,
            "reports": [r.to_dict() for r in self.reports],
        }

    def table(self) -> str:
        """Human-readable campaign summary."""
        lines = [
            f"fault campaign: seed={self.spec.seed} "
            f"({len(self.spec)} scheduled fault(s): "
            f"{', '.join(self.spec.kinds()) if len(self.spec) else 'none'})",
        ]
        for r in self.reports:
            lines.append(f"  {r.pipeline}:")
            lines.append(
                f"    fault-free   time {format_seconds(r.baseline.execution_time):>10s}"
                f"   energy {format_energy(r.baseline.energy or 0.0):>10s}"
            )
            if r.protected is not None:
                phases = r.protected.timeline.by_phase()
                lines.append(
                    f"    with faults  time {format_seconds(r.protected.execution_time):>10s}"
                    f"   energy {format_energy(r.protected.energy or 0.0):>10s}"
                    f"   (+{100.0 * r.overhead_ratio:.1f}%)"
                )
                lines.append(
                    "    recovery     "
                    f"crashes={r.fault_summary.get('injected', {}).get('node-crash', 0)} "
                    f"recoveries={r.fault_summary.get('recoveries', 0)} "
                    f"checkpoint={format_seconds(phases.get('checkpoint', 0.0))} "
                    f"rewind={format_seconds(phases.get('recovery', 0.0))}"
                )
            if r.model_overhead_ratio is not None:
                lines.append(
                    f"    Daly model predicts +{100.0 * r.model_overhead_ratio:.1f}% inflation"
                )
            lines.append(f"    without checkpoints: {r.unprotected_outcome}")
        return "\n".join(lines)


def _default_pipelines() -> Sequence[Pipeline]:
    return (InSituPipeline(), PostProcessingPipeline())


def run_fault_campaign(
    spec: PipelineSpec,
    platform_factory: Optional[Callable[[], object]] = None,
    seed: int = 0,
    mtbf_hours: Optional[float] = 6.0,
    checkpoint_every: int = 8,
    restart_penalty_seconds: float = 30.0,
    brownout_rate_per_hour: float = 0.0,
    io_error_rate_per_hour: float = 0.0,
    pipelines: Optional[Sequence[Pipeline]] = None,
    include_unprotected: bool = True,
    engine: Optional["ExecutionEngine"] = None,
) -> FaultCampaignResult:
    """Run the full controlled campaign described in the module docstring.

    Runs route through the execution engine by default (pass ``engine`` to
    fan the per-pipeline runs out or memoize them); ``platform_factory``
    — a callable returning a *fresh* simulated platform per call — forces
    every run onto those bespoke platforms, inline.  Deterministic either
    way: the same arguments produce bit-identical measurements.
    """
    if checkpoint_every < 1:
        raise ConfigurationError(f"checkpoint cadence must be >= 1: {checkpoint_every}")
    workloads = list(pipelines) if pipelines is not None else list(_default_pipelines())
    if not workloads:
        raise ConfigurationError("campaign needs at least one pipeline")
    # Imported here, not at module top: repro.exec.api itself imports the
    # fault config objects, so a top-level import would be circular.
    from repro.exec.api import RunRequest, pipeline_factories
    from repro.exec.engine import ExecutionEngine

    registry = pipeline_factories()
    runner: Optional[ExecutionEngine] = None
    if platform_factory is None and all(p.name in registry for p in workloads):
        runner = engine if engine is not None else ExecutionEngine()

    def _run(pipeline: Pipeline, request: RunRequest):
        """One run: through the engine when possible, else a fresh platform."""
        if runner is not None:
            return runner.run(request.bound_to(pipeline))
        platform = platform_factory() if platform_factory is not None else None
        return pipeline.execute(request, platform=platform)

    baselines: Dict[str, Measurement] = {}
    for pipeline in workloads:
        result = _run(pipeline, RunRequest(spec=spec))
        baselines[pipeline.name] = result.measurement

    horizon = HORIZON_SAFETY_FACTOR * max(m.execution_time for m in baselines.values())
    fault_spec = FaultSpec.campaign(
        seed=seed,
        horizon_seconds=horizon,
        mtbf_hours=mtbf_hours,
        brownout_rate_per_hour=brownout_rate_per_hour,
        io_error_rate_per_hour=io_error_rate_per_hour,
    )
    policy = CheckpointPolicy(
        every_n_outputs=checkpoint_every,
        restart_penalty_seconds=restart_penalty_seconds,
    )
    obs.event(
        "fault_campaign",
        seed=seed,
        horizon_seconds=horizon,
        n_faults=len(fault_spec),
        mtbf_hours=mtbf_hours,
        checkpoint_every=checkpoint_every,
    )

    result = FaultCampaignResult(
        spec=fault_spec, mtbf_hours=mtbf_hours, checkpoint_every=checkpoint_every
    )
    for pipeline in workloads:
        baseline = baselines[pipeline.name]
        run = _run(
            pipeline,
            RunRequest(spec=spec, faults=fault_spec, checkpoints=policy),
        )
        protected = run.measurement
        summary = dict(run.fault_summary or {})
        report = PipelineFaultReport(
            pipeline=pipeline.name,
            baseline=baseline,
            protected=protected,
            fault_summary=summary,
            model_overhead_ratio=_model_overhead(
                baseline, protected, policy, mtbf_hours
            ),
        )
        if include_unprotected:
            report.unprotected_outcome = _unprotected_outcome(
                platform_factory, pipeline, spec, fault_spec
            )
        result.reports.append(report)
    return result


def _model_overhead(
    baseline: Measurement,
    protected: Measurement,
    policy: CheckpointPolicy,
    mtbf_hours: Optional[float],
) -> Optional[float]:
    """Daly-model inflation prediction from campaign-measured parameters."""
    if mtbf_hours is None or baseline.n_outputs <= 0:
        return None
    interval = policy.every_n_outputs * baseline.execution_time / baseline.n_outputs
    checkpoint_phase = protected.timeline.by_phase().get("checkpoint", 0.0)
    n_checkpoints = max(1, baseline.n_outputs // policy.every_n_outputs)
    delta = checkpoint_phase / n_checkpoints if checkpoint_phase > 0 else 0.0
    model = FailureModel(
        mtbf_seconds=mtbf_hours * HOUR,
        checkpoint_write_seconds=delta,
        restart_seconds=policy.restart_penalty_seconds,
    )
    try:
        return model.overhead_ratio(baseline.execution_time, interval)
    except ReproError:
        return None


def _unprotected_outcome(
    platform_factory: Optional[Callable[[], object]],
    pipeline: Pipeline,
    spec: PipelineSpec,
    fault_spec: FaultSpec,
) -> str:
    """What the same fault load does to a run with no checkpoint policy.

    Always inline and uncached: the interesting outcome is the *exception*,
    which a cache entry could never replay.
    """
    from repro.exec.api import RunRequest

    platform = platform_factory() if platform_factory is not None else None
    try:
        pipeline.execute(RunRequest(spec=spec, faults=fault_spec), platform=platform)
    except FaultError as exc:
        return f"aborted: {type(exc).__name__}: {exc}"
    return "completed (no crash landed inside its shorter exposure window)"
