"""Schedules a :class:`~repro.faults.spec.FaultSpec` onto a live simulation.

The injector translates declarative fault events into ordinary DES timeout
callbacks against the storage model and the supervised pipeline process:

* capacity faults (``ost-dropout``, ``write-brownout``) multiply the
  affected :class:`~repro.events.resources.BandwidthPipe` capacity down for
  the fault's duration, then restore it — concurrent faults compose
  multiplicatively and the nominal capacity is recovered *exactly* once all
  of them lift (the scale is recomputed as a product over active factors,
  never by dividing back out);
* ``mds-stall`` scales the filesystem's metadata latency the same way;
* ``io-error`` arms the filesystem's :class:`~repro.faults.gate.FaultGate`;
* ``node-crash`` interrupts the process registered via :meth:`watch` with
  :class:`~repro.errors.NodeCrashError`.

Everything is driven by the simulated clock through the normal FIFO event
queue, so a fault run is bit-identical for a given ``(seed, FaultSpec)``.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro import obs
from repro.errors import ConfigurationError, NodeCrashError
from repro.events.engine import Event, Process, Simulator
from repro.events.resources import BandwidthPipe
from repro.faults.gate import FaultGate
from repro.faults.spec import (
    IO_ERROR,
    MDS_STALL,
    NODE_CRASH,
    OST_DROPOUT,
    WRITE_BROWNOUT,
    FaultEvent,
    FaultSpec,
)
from repro.storage.lustre import LustreFileSystem

__all__ = ["FaultInjector"]


class _ScaledQuantity:
    """A nominal value degraded by the product of active fault factors."""

    def __init__(self, nominal: float) -> None:
        self.nominal = nominal
        self._factors: List[float] = []

    def push(self, factor: float) -> float:
        self._factors.append(factor)
        return self.value

    def pop(self, factor: float) -> float:
        self._factors.remove(factor)
        return self.value

    @property
    def value(self) -> float:
        scaled = self.nominal
        for f in self._factors:
            scaled *= f
        return scaled


class FaultInjector:
    """Applies a :class:`FaultSpec` to a filesystem and a watched process."""

    def __init__(self, sim: Simulator, fs: LustreFileSystem, spec: FaultSpec) -> None:
        if fs.sim is not sim:
            raise ConfigurationError("filesystem belongs to a different Simulator")
        self.sim = sim
        self.fs = fs
        self.spec = spec
        self.gate = self._ensure_gate(fs)
        self._write_capacity = _ScaledQuantity(fs.write_pipe.capacity)
        self._read_capacity = _ScaledQuantity(fs.read_pipe.capacity)
        self._mds_latency = _ScaledQuantity(fs.metadata_latency)
        self._watched: Optional[Process] = None
        self._armed = False
        self._disarmed = False
        #: Injection tally per fault kind (``node-crash`` counts deliveries,
        #: not scheduled events a finished run never reached).
        self.counts: Dict[str, int] = {}
        #: Crash events that fired with no live process to kill.
        self.missed_crashes = 0

    @staticmethod
    def _ensure_gate(fs: LustreFileSystem) -> FaultGate:
        gate = getattr(fs, "fault_gate", None)
        if gate is None:
            gate = FaultGate()
            fs.fault_gate = gate
        return gate

    # ------------------------------------------------------------------ wiring

    def watch(self, process: Process) -> None:
        """Aim subsequent node-crash faults at ``process``."""
        if process.sim is not self.sim:
            raise ConfigurationError("watched process belongs to a different Simulator")
        self._watched = process

    def arm(self) -> None:
        """Schedule every fault in the spec relative to the current time."""
        if self._armed:
            raise ConfigurationError("injector already armed")
        self._armed = True
        for event in self.spec.events:
            wake = self.sim.timeout(event.at_seconds)
            wake.callbacks.append(lambda _ev, ev=event: self._strike(ev))

    def disarm(self) -> None:
        """Neutralize faults not yet delivered and lift active degradations.

        Called when the supervised run finishes: timeouts already in the
        heap become no-ops, and pipe/MDS scaling is restored to nominal so a
        platform can host further (fault-free) runs.
        """
        self._disarmed = True
        self._write_capacity._factors.clear()
        self._read_capacity._factors.clear()
        self._mds_latency._factors.clear()
        if self.fs.write_pipe.capacity != self._write_capacity.nominal:
            self.fs.write_pipe.set_capacity(self._write_capacity.nominal)
        if self.fs.read_pipe.capacity != self._read_capacity.nominal:
            self.fs.read_pipe.set_capacity(self._read_capacity.nominal)
        self.fs.metadata_latency = self._mds_latency.nominal

    # ------------------------------------------------------------------ faults

    def _strike(self, event: FaultEvent) -> None:
        if self._disarmed:
            return
        self.counts[event.kind] = self.counts.get(event.kind, 0) + 1
        obs.counter("repro_faults_injected_total", kind=event.kind)
        obs.event(
            "fault",
            kind=event.kind,
            t=self.sim.now,
            severity=event.severity,
            duration_seconds=event.duration_seconds,
            target=event.target,
        )
        if event.kind == WRITE_BROWNOUT:
            self._degrade_pipes(event, write_factor=event.severity, read_factor=None)
        elif event.kind == OST_DROPOUT:
            n_ost = len(self.fs.osts)
            lost = min(int(event.severity), n_ost - 1)
            factor = (n_ost - lost) / n_ost
            self._degrade_pipes(event, write_factor=factor, read_factor=factor)
        elif event.kind == MDS_STALL:
            self.fs.metadata_latency = self._mds_latency.push(event.severity)
            self._schedule_revert(event, self._lift_mds_stall)
        elif event.kind == IO_ERROR:
            self.gate.arm(event.target, int(event.severity))
        elif event.kind == NODE_CRASH:
            self._crash()

    def _degrade_pipes(
        self,
        event: FaultEvent,
        write_factor: Optional[float],
        read_factor: Optional[float],
    ) -> None:
        if write_factor is not None:
            self.fs.write_pipe.set_capacity(self._write_capacity.push(write_factor))
        if read_factor is not None:
            self.fs.read_pipe.set_capacity(self._read_capacity.push(read_factor))
        self._schedule_revert(
            event,
            lambda ev: self._lift_pipes(ev, write_factor, read_factor),
        )

    def _schedule_revert(self, event: FaultEvent, lift) -> None:
        wake = self.sim.timeout(event.duration_seconds)
        wake.callbacks.append(lambda _ev, ev=event: None if self._disarmed else lift(ev))

    def _lift_pipes(
        self,
        event: FaultEvent,
        write_factor: Optional[float],
        read_factor: Optional[float],
    ) -> None:
        if write_factor is not None:
            self.fs.write_pipe.set_capacity(self._write_capacity.pop(write_factor))
        if read_factor is not None:
            self.fs.read_pipe.set_capacity(self._read_capacity.pop(read_factor))

    def _lift_mds_stall(self, event: FaultEvent) -> None:
        self.fs.metadata_latency = self._mds_latency.pop(event.severity)

    def _crash(self) -> None:
        proc = self._watched
        if proc is None or proc.triggered:
            self.missed_crashes += 1
            return
        obs.counter("repro_faults_crashes_total")
        proc.interrupt(NodeCrashError(f"node crash at t={self.sim.now:.1f}s"))

    # ----------------------------------------------------------------- queries

    @property
    def total_injected(self) -> int:
        """Faults actually delivered so far."""
        return sum(self.counts.values())

    def summary(self) -> dict:
        """JSON-safe injection tally for manifests and reports."""
        return {
            "seed": self.spec.seed,
            "scheduled": len(self.spec),
            "injected": dict(sorted(self.counts.items())),
            "missed_crashes": self.missed_crashes,
            "io_errors_tripped": self.gate.tripped,
        }
