"""Checkpoint/restart policy objects shared by the pipelines and platform.

:class:`CheckpointPolicy` says *when* a pipeline checkpoints and what a
restart costs; :class:`ResumeState` is the tiny restart token the platform
hands a pipeline when re-spawning it after a crash.  Both are pure data —
the mechanics live in :mod:`repro.pipelines` (the checkpoint write is costed
through the simulated storage model like any other I/O) and in the platform's
supervised run loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigurationError

__all__ = ["CheckpointPolicy", "ResumeState"]


@dataclass(frozen=True)
class CheckpointPolicy:
    """Periodic checkpointing cadence and restart cost model."""

    #: Checkpoint after every N pipeline outputs (cinema samples or raw
    #: dumps).  The cadence knob the failure-aware model optimizes.
    every_n_outputs: int = 8
    #: Fixed restart overhead (job relaunch, reschedule) in simulated
    #: seconds, paid on every recovery *in addition* to reading the
    #: checkpoint back from storage.
    restart_penalty_seconds: float = 30.0
    #: Checkpoint state size in bytes; ``None`` means "one simulation
    #: sample" — the platform substitutes ``ocean.bytes_per_sample``.
    state_bytes: Optional[float] = None
    #: Maximum recoveries before the run is declared lost (guards against
    #: a crash storm thrashing forever).
    max_restarts: int = 100

    def __post_init__(self) -> None:
        if self.every_n_outputs < 1:
            raise ConfigurationError(
                f"checkpoint cadence must be >= 1 output: {self.every_n_outputs}"
            )
        if self.restart_penalty_seconds < 0:
            raise ConfigurationError(
                f"negative restart penalty: {self.restart_penalty_seconds}"
            )
        if self.state_bytes is not None and self.state_bytes <= 0:
            raise ConfigurationError(f"checkpoint size must be positive: {self.state_bytes}")
        if self.max_restarts < 1:
            raise ConfigurationError(f"max_restarts must be >= 1: {self.max_restarts}")

    def to_dict(self) -> dict:
        """JSON-safe representation for manifests."""
        return {
            "every_n_outputs": self.every_n_outputs,
            "restart_penalty_seconds": self.restart_penalty_seconds,
            "state_bytes": self.state_bytes,
            "max_restarts": self.max_restarts,
        }


@dataclass(frozen=True)
class ResumeState:
    """Progress token handed to a pipeline re-spawned after a crash."""

    #: Simulation outputs already durably produced (and checkpointed).
    outputs_done: int = 0
    #: Images already rendered (post-processing phase 2 progress).
    renders_done: int = 0

    def __post_init__(self) -> None:
        if self.outputs_done < 0 or self.renders_done < 0:
            raise ConfigurationError(f"negative resume progress: {self}")

    def to_dict(self) -> dict:
        """JSON-safe representation for manifests."""
        return {"outputs_done": self.outputs_done, "renders_done": self.renders_done}
