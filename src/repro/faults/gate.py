"""Transient-error arming point between the injector and the storage layer.

The storage layer cannot import :mod:`repro.faults.injector` (it would be a
circular dependency: the injector drives storage), so faults reach it through
this tiny intermediary.  The injector *arms* the gate with a count of
operations that must fail; the filesystem *checks* the gate at the top of
each write/read, and an armed gate raises
:class:`~repro.errors.TransientIOError` while decrementing its count.

A gate with nothing armed is free: ``check`` is two dict lookups, and a
filesystem constructed without a gate skips the call entirely, keeping the
fault-free path bit-identical to the pre-fault code.
"""

from __future__ import annotations

from typing import Dict

from repro.errors import ConfigurationError, TransientIOError
from repro import obs

__all__ = ["FaultGate"]


class FaultGate:
    """Holds armed transient-error counts per operation class."""

    def __init__(self) -> None:
        self._armed: Dict[str, int] = {}
        self.tripped = 0

    def arm(self, op: str, count: int = 1) -> None:
        """Make the next ``count`` operations of class ``op`` fail."""
        if count < 1:
            raise ConfigurationError(f"armed error count must be >= 1: {count}")
        self._armed[op] = self._armed.get(op, 0) + int(count)

    def armed(self, op: str) -> int:
        """How many failures are pending for ``op``."""
        return self._armed.get(op, 0)

    def check(self, op: str, path: str = "") -> None:
        """Raise :class:`TransientIOError` if a failure is armed for ``op``."""
        pending = self._armed.get(op, 0)
        if pending <= 0:
            return
        if pending == 1:
            del self._armed[op]
        else:
            self._armed[op] = pending - 1
        self.tripped += 1
        obs.counter("repro_faults_io_errors_total", op=op)
        raise TransientIOError(f"injected transient {op} failure on {path!r}")
