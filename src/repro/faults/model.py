"""Analytic failure-aware extension of the paper's time model.

The paper's Eq. 4 predicts execution time on a dedicated, fault-free
allocation.  At extreme scale the machine MTBF drops to hours, and the
expected runtime must include rework (progress lost since the last
checkpoint), recovery (restart + checkpoint read-back) and the checkpointing
overhead itself.  We use the classic first-order model (Daly 2006, building
on Young 1974): for a fault-free runtime :math:`T_0`, checkpoint interval
:math:`\\tau`, checkpoint write cost :math:`\\delta`, restart cost :math:`R`
and MTBF :math:`M`,

.. math::

    T \\;=\\; T_0 \\; \\frac{1 + \\delta/\\tau}{1 - (R + \\tau/2)/M}

with the well-known optimum cadence :math:`\\tau^\\ast = \\sqrt{2\\delta M}`
(valid while :math:`\\tau^\\ast \\ll M`).  Because the paper's energy model
is :math:`E = P\\,t` (Eq. 1), the same inflation factor applies directly to
energy at the run's average power.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError, ModelError

__all__ = ["FailureModel"]


@dataclass(frozen=True)
class FailureModel:
    """First-order checkpoint/restart runtime model."""

    #: Machine mean time between failures, seconds.
    mtbf_seconds: float
    #: Cost of writing one checkpoint, seconds.
    checkpoint_write_seconds: float
    #: Cost of one recovery (restart penalty + checkpoint read), seconds.
    restart_seconds: float

    def __post_init__(self) -> None:
        if self.mtbf_seconds <= 0:
            raise ConfigurationError(f"MTBF must be positive: {self.mtbf_seconds}")
        if self.checkpoint_write_seconds < 0:
            raise ConfigurationError(
                f"negative checkpoint cost: {self.checkpoint_write_seconds}"
            )
        if self.restart_seconds < 0:
            raise ConfigurationError(f"negative restart cost: {self.restart_seconds}")

    def expected_time(self, base_seconds: float, interval_seconds: float) -> float:  # repro-unit: seconds
        """Expected runtime for fault-free time ``base_seconds`` at cadence
        ``interval_seconds`` (Daly's first-order formula)."""
        if base_seconds < 0:
            raise ModelError(f"negative base time: {base_seconds}")
        if interval_seconds <= 0:
            raise ModelError(f"checkpoint interval must be positive: {interval_seconds}")
        loss = (self.restart_seconds + interval_seconds / 2.0) / self.mtbf_seconds
        if loss >= 1.0:
            raise ModelError(
                "no forward progress: expected per-interval loss "
                f"{loss:.2f} of MTBF >= 1 (interval {interval_seconds:.0f}s, "
                f"MTBF {self.mtbf_seconds:.0f}s)"
            )
        overhead = 1.0 + self.checkpoint_write_seconds / interval_seconds
        return base_seconds * overhead / (1.0 - loss)

    def optimal_interval(self) -> float:  # repro-unit: seconds
        """Young's optimum checkpoint cadence :math:`\\sqrt{2\\delta M}`."""
        if self.checkpoint_write_seconds == 0.0:
            raise ModelError("optimal interval undefined for zero checkpoint cost")
        return math.sqrt(2.0 * self.checkpoint_write_seconds * self.mtbf_seconds)

    def expected_faults(self, base_seconds: float, interval_seconds: float) -> float:
        """Expected number of failures over the (inflated) run."""
        return self.expected_time(base_seconds, interval_seconds) / self.mtbf_seconds

    def expected_energy(
        self, base_seconds: float, interval_seconds: float, average_power_watts: float
    ) -> float:  # repro-unit: joules
        """Eq. 1 applied to the failure-inflated runtime: ``E = P * T``."""
        if average_power_watts < 0:
            raise ModelError(f"negative power: {average_power_watts}")
        return average_power_watts * self.expected_time(base_seconds, interval_seconds)

    def overhead_ratio(self, base_seconds: float, interval_seconds: float) -> float:
        """Fractional time (= energy) inflation over the fault-free run."""
        if base_seconds <= 0:
            raise ModelError(f"base time must be positive: {base_seconds}")
        return self.expected_time(base_seconds, interval_seconds) / base_seconds - 1.0
