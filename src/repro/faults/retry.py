"""Bounded retry with exponential backoff, deterministic jitter and timeouts.

:class:`RetryPolicy` is the only sanctioned way to retry a simulated
operation (the ``fault-retry`` lint rule flags ad-hoc retry loops).  It is
deliberately a *bounded* ``for`` loop — never ``while True`` — and every
source of randomness is the caller-supplied seeded ``random.Random``, so a
retried run is a pure function of ``(seed, FaultSpec)``.

The policy is a plain frozen dataclass; :meth:`RetryPolicy.run` is a DES
generator meant to be delegated to from inside a process::

    result = yield from policy.run(sim, lambda: fs_write_op(), rng)
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Generator, Optional, Tuple, Type

from repro import obs
from repro.errors import (
    ConfigurationError,
    Interrupt,
    OperationTimeoutError,
    RetryExhaustedError,
    TransientIOError,
)
from repro.events.engine import Simulator

__all__ = ["RetryPolicy", "DEFAULT_RETRYABLE"]

#: Exception types a :class:`RetryPolicy` re-attempts by default.  Permanent
#: failures (``StorageFullError``, programming errors...) always propagate.
DEFAULT_RETRYABLE: Tuple[Type[BaseException], ...] = (
    TransientIOError,
    OperationTimeoutError,
)


@dataclass(frozen=True)
class RetryPolicy:
    """How to re-attempt a failed simulated operation."""

    #: Total attempts, including the first (so 1 disables retrying).
    max_attempts: int = 4
    #: Backoff before the second attempt, in simulated seconds.
    base_delay_seconds: float = 0.5
    #: Multiplier applied per subsequent retry.
    backoff_factor: float = 2.0
    #: Upper bound on a single backoff delay.
    max_delay_seconds: float = 30.0
    #: Fractional jitter: the delay is scaled by ``1 ± jitter`` using the
    #: caller's seeded rng (0 disables jitter).
    jitter: float = 0.25
    #: Per-attempt wall limit in simulated seconds; ``None`` disables it.
    op_timeout_seconds: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError(f"max_attempts must be >= 1: {self.max_attempts}")
        if self.base_delay_seconds < 0:
            raise ConfigurationError(f"negative base delay: {self.base_delay_seconds}")
        if self.backoff_factor < 1.0:
            raise ConfigurationError(f"backoff factor must be >= 1: {self.backoff_factor}")
        if self.max_delay_seconds < self.base_delay_seconds:
            raise ConfigurationError(
                f"max delay {self.max_delay_seconds} < base delay {self.base_delay_seconds}"
            )
        if not 0.0 <= self.jitter < 1.0:
            raise ConfigurationError(f"jitter must be in [0, 1): {self.jitter}")
        if self.op_timeout_seconds is not None and self.op_timeout_seconds <= 0:
            raise ConfigurationError(
                f"op timeout must be positive: {self.op_timeout_seconds}"
            )

    def backoff_delay(self, attempt: int, rng: random.Random) -> float:  # repro-unit: seconds
        """Delay before retry number ``attempt`` (0-based), jittered.

        Always consumes exactly one draw from ``rng`` when jitter is enabled,
        so the random stream stays aligned regardless of delay magnitudes.
        """
        delay = min(
            self.base_delay_seconds * self.backoff_factor**attempt,
            self.max_delay_seconds,
        )
        if self.jitter > 0.0:
            delay *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return delay

    def run(
        self,
        sim: Simulator,
        factory: Callable[[], Generator],
        rng: random.Random,
        retryable: Tuple[Type[BaseException], ...] = DEFAULT_RETRYABLE,
        op: str = "op",
    ) -> Generator:
        """Attempt ``factory()`` (a fresh generator per attempt) with retries.

        Delegate to this from inside a DES process with ``yield from``.  A
        retryable failure backs off and re-attempts, a non-retryable one
        propagates immediately, and exhausting ``max_attempts`` raises
        :class:`~repro.errors.RetryExhaustedError` chained to the last
        failure.
        """
        last_exc: Optional[BaseException] = None
        # Bounded by construction: RetryPolicy is the one place retry loops
        # are allowed, and even here the loop has a hard attempt ceiling.
        for attempt in range(self.max_attempts):
            try:
                if self.op_timeout_seconds is None:
                    result = yield from factory()
                else:
                    result = yield from self._timed_attempt(sim, factory)
                return result
            except retryable as exc:
                last_exc = exc
                obs.counter("repro_faults_retries_total", op=op)
                if attempt + 1 >= self.max_attempts:
                    break
                delay = self.backoff_delay(attempt, rng)
                if delay > 0.0:
                    yield sim.timeout(delay)
        obs.counter("repro_faults_retry_exhausted_total", op=op)
        raise RetryExhaustedError(
            f"{op} failed after {self.max_attempts} attempts"
        ) from last_exc

    def _timed_attempt(self, sim: Simulator, factory: Callable[[], Generator]) -> Generator:
        """One attempt raced against the per-op deadline."""
        proc = sim.process(factory(), name="retry-attempt")
        deadline = sim.timeout(self.op_timeout_seconds)
        try:
            # A failure inside the attempt propagates straight through the
            # AnyOf (it fails fast), which is exactly what we want.
            yield sim.any_of([proc, deadline])
            if not proc.triggered:
                proc.interrupt(
                    OperationTimeoutError(
                        f"operation exceeded {self.op_timeout_seconds}s timeout"
                    )
                )
            # Wait out the attempt either way: on timeout this absorbs the
            # interrupted process's failure (after its cleanup ran);
            # otherwise it yields the completed attempt's return value
            # immediately.
            result = yield proc
            return result
        except BaseException:
            if not proc.triggered:
                # We are being torn down from outside (e.g. a node-crash
                # interrupt while waiting): kill the orphaned attempt too,
                # and mark its failure handled so it cannot crash the run.
                proc.callbacks.append(_defuse)
                proc.interrupt(Interrupt("attempt supervisor torn down"))
            raise


def _defuse(event: object) -> None:
    event.defused = True
