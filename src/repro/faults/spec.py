"""Declarative fault specifications.

A :class:`FaultSpec` is a *plan*: a seed plus an ordered tuple of
:class:`FaultEvent` records, each naming a fault kind, when it strikes
(simulated seconds after the run starts), how long it lasts and how severe
it is.  The spec is pure data — JSON-round-trippable so it lands in the
:class:`~repro.obs.manifest.RunManifest` — and building one from a seed is
deterministic: the same ``(seed, parameters)`` always yields the same
schedule, which is what makes chaos campaigns reproducible bit-for-bit.

Fault kinds
-----------

=================  ==========================================================
``ost-dropout``    ``severity`` OSTs fall out: both data paths lose the
                   proportional share of their aggregate bandwidth for
                   ``duration_seconds``.
``mds-stall``      metadata latency is multiplied by ``severity`` for
                   ``duration_seconds`` (an overloaded/failing-over MDS).
``write-brownout`` the write path is throttled to the ``severity`` fraction
                   of nominal bandwidth for ``duration_seconds``.
``io-error``       the next ``severity`` operations on ``target``
                   (``"write"`` or ``"read"``) fail with
                   :class:`~repro.errors.TransientIOError` — retryable.
``node-crash``     a compute node dies: the in-flight pipeline attempt is
                   interrupted with :class:`~repro.errors.NodeCrashError`.
=================  ==========================================================
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.errors import ConfigurationError
from repro.units import HOUR

__all__ = [
    "FAULT_KINDS",
    "IO_ERROR",
    "MDS_STALL",
    "NODE_CRASH",
    "OST_DROPOUT",
    "WRITE_BROWNOUT",
    "FaultEvent",
    "FaultSpec",
]

OST_DROPOUT = "ost-dropout"
MDS_STALL = "mds-stall"
WRITE_BROWNOUT = "write-brownout"
IO_ERROR = "io-error"
NODE_CRASH = "node-crash"

#: Every fault kind the injector understands.
FAULT_KINDS = (OST_DROPOUT, MDS_STALL, WRITE_BROWNOUT, IO_ERROR, NODE_CRASH)

#: Fault kinds that describe a condition lasting ``duration_seconds``.
_TIMED_KINDS = (OST_DROPOUT, MDS_STALL, WRITE_BROWNOUT)

#: Valid ``target`` values for ``io-error`` events.
_IO_TARGETS = ("write", "read")


@dataclass(frozen=True, order=True)
class FaultEvent:
    """One scheduled fault."""

    #: Simulated seconds after the run starts.
    at_seconds: float
    #: One of :data:`FAULT_KINDS`.
    kind: str
    #: How long a timed condition lasts (dropout / stall / brownout).
    duration_seconds: float = 0.0
    #: Kind-specific magnitude — see the module docstring table.
    severity: float = 1.0
    #: ``io-error`` only: which operation class fails (``write``/``read``).
    target: str = ""

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ConfigurationError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )
        if self.at_seconds < 0:
            raise ConfigurationError(f"fault scheduled in the past: {self.at_seconds}")
        if self.kind in _TIMED_KINDS and self.duration_seconds <= 0:
            raise ConfigurationError(
                f"{self.kind} needs a positive duration, got {self.duration_seconds}"
            )
        if self.kind == WRITE_BROWNOUT and not 0.0 < self.severity < 1.0:
            raise ConfigurationError(
                f"brownout severity is the *remaining* bandwidth fraction, "
                f"must be in (0, 1): {self.severity}"
            )
        if self.kind == MDS_STALL and self.severity <= 1.0:
            raise ConfigurationError(
                f"mds-stall severity is a latency multiplier > 1: {self.severity}"
            )
        if self.kind == OST_DROPOUT and not self.severity >= 1:
            raise ConfigurationError(
                f"ost-dropout severity is the number of lost OSTs (>= 1): {self.severity}"
            )
        if self.kind == IO_ERROR:
            if self.target not in _IO_TARGETS:
                raise ConfigurationError(
                    f"io-error target must be one of {_IO_TARGETS}, got {self.target!r}"
                )
            if self.severity < 1:
                raise ConfigurationError(
                    f"io-error severity is the number of failing ops (>= 1): {self.severity}"
                )

    def to_dict(self) -> dict:
        """JSON-safe representation (manifest / ``--json`` output)."""
        return {
            "kind": self.kind,
            "at_seconds": self.at_seconds,
            "duration_seconds": self.duration_seconds,
            "severity": self.severity,
            "target": self.target,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultEvent":
        """Inverse of :meth:`to_dict`."""
        return cls(
            at_seconds=float(data["at_seconds"]),
            kind=str(data["kind"]),
            duration_seconds=float(data.get("duration_seconds", 0.0)),
            severity=float(data.get("severity", 1.0)),
            target=str(data.get("target", "")),
        )


@dataclass(frozen=True)
class FaultSpec:
    """A seed plus the full, ordered fault schedule for one run."""

    seed: int
    events: tuple = field(default_factory=tuple)

    def __post_init__(self) -> None:
        ordered = tuple(sorted(self.events))
        object.__setattr__(self, "events", ordered)
        for event in ordered:
            if not isinstance(event, FaultEvent):
                raise ConfigurationError(f"not a FaultEvent: {event!r}")

    def __len__(self) -> int:
        return len(self.events)

    def kinds(self) -> list:
        """Distinct fault kinds present, in schedule order."""
        seen: list = []
        for event in self.events:
            if event.kind not in seen:
                seen.append(event.kind)
        return seen

    def crashes(self) -> tuple:
        """The node-crash events only."""
        return tuple(e for e in self.events if e.kind == NODE_CRASH)

    def to_dict(self) -> dict:
        """JSON-safe representation (manifest / ``--json`` output)."""
        return {"seed": self.seed, "events": [e.to_dict() for e in self.events]}

    @classmethod
    def from_dict(cls, data: dict) -> "FaultSpec":
        """Inverse of :meth:`to_dict`."""
        return cls(
            seed=int(data["seed"]),
            events=tuple(FaultEvent.from_dict(e) for e in data.get("events", ())),
        )

    # ----------------------------------------------------------- generation

    @classmethod
    def campaign(
        cls,
        seed: int,
        horizon_seconds: float,
        mtbf_hours: Optional[float] = None,
        brownout_rate_per_hour: float = 0.0,
        brownout_duration_seconds: float = 60.0,
        brownout_severity: float = 0.5,
        io_error_rate_per_hour: float = 0.0,
        mds_stall_rate_per_hour: float = 0.0,
        mds_stall_duration_seconds: float = 10.0,
        mds_stall_factor: float = 20.0,
    ) -> "FaultSpec":
        """A seeded, Poisson-arrival chaos schedule over ``horizon_seconds``.

        ``mtbf_hours`` drives node crashes (exponential inter-arrival, the
        standard failure model behind Eq. 4's rework extension); the other
        rates independently sprinkle brownouts, transient I/O errors and MDS
        stalls.  Every stream draws from one seeded ``random.Random`` in a
        fixed order, so the schedule is a pure function of the arguments.
        """
        if horizon_seconds <= 0:
            raise ConfigurationError(f"horizon must be positive: {horizon_seconds}")
        rng = random.Random(seed)
        events: list = []

        def _arrivals(rate_per_hour: float) -> Iterable[float]:
            if rate_per_hour <= 0:
                return []
            times = []
            t = rng.expovariate(rate_per_hour) * HOUR
            while t < horizon_seconds:
                times.append(t)
                t += rng.expovariate(rate_per_hour) * HOUR
            return times

        if mtbf_hours is not None:
            if mtbf_hours <= 0:
                raise ConfigurationError(f"MTBF must be positive: {mtbf_hours}")
            for t in _arrivals(1.0 / mtbf_hours):
                events.append(FaultEvent(at_seconds=t, kind=NODE_CRASH))
        for t in _arrivals(brownout_rate_per_hour):
            events.append(
                FaultEvent(
                    at_seconds=t,
                    kind=WRITE_BROWNOUT,
                    duration_seconds=brownout_duration_seconds,
                    severity=brownout_severity,
                )
            )
        for t in _arrivals(io_error_rate_per_hour):
            events.append(
                FaultEvent(
                    at_seconds=t,
                    kind=IO_ERROR,
                    severity=1.0,
                    target="write" if rng.random() < 0.5 else "read",
                )
            )
        for t in _arrivals(mds_stall_rate_per_hour):
            events.append(
                FaultEvent(
                    at_seconds=t,
                    kind=MDS_STALL,
                    duration_seconds=mds_stall_duration_seconds,
                    severity=mds_stall_factor,
                )
            )
        return cls(seed=seed, events=tuple(events))
