"""repro.faults — seeded fault injection and resilience.

The deterministic chaos layer for the reproduction: declarative
:class:`FaultSpec` schedules (OST dropout, MDS stall, write brownout,
transient I/O errors, node crashes) delivered by a :class:`FaultInjector`
as ordinary DES events; :class:`RetryPolicy` backoff on the storage paths;
:class:`CheckpointPolicy` periodic checkpoint/restart in the pipelines; and
the analytic :class:`FailureModel` (Daly/Young) that extends the paper's
Eq. 4 with expected rework and recovery.  Everything is a pure function of
``(seed, spec)`` — same inputs, bit-identical run.

See the README's "Fault injection & resilience" section for the spec format
and CLI examples.
"""

from __future__ import annotations

from repro.faults.campaign import (
    FaultCampaignResult,
    PipelineFaultReport,
    run_fault_campaign,
)
from repro.faults.gate import FaultGate
from repro.faults.injector import FaultInjector
from repro.faults.model import FailureModel
from repro.faults.resilience import CheckpointPolicy, ResumeState
from repro.faults.retry import DEFAULT_RETRYABLE, RetryPolicy
from repro.faults.spec import (
    FAULT_KINDS,
    IO_ERROR,
    MDS_STALL,
    NODE_CRASH,
    OST_DROPOUT,
    WRITE_BROWNOUT,
    FaultEvent,
    FaultSpec,
)

__all__ = [
    "CheckpointPolicy",
    "DEFAULT_RETRYABLE",
    "FAULT_KINDS",
    "FailureModel",
    "FaultCampaignResult",
    "FaultEvent",
    "FaultGate",
    "FaultInjector",
    "FaultSpec",
    "IO_ERROR",
    "MDS_STALL",
    "NODE_CRASH",
    "OST_DROPOUT",
    "PipelineFaultReport",
    "ResumeState",
    "RetryPolicy",
    "WRITE_BROWNOUT",
    "run_fault_campaign",
]
