"""Power capping: running the pipelines on a power-limited machine.

The paper's opening problem: "Future supercomputers are expected to be
power-limited... it is important to utilize the allocated power
effectively."  This module models a machine-level power cap enforced by
DVFS (RAPL-style): given a cap below the cluster's natural draw, the
enforcer finds the highest frequency ratio whose power fits, and compute
phases slow down accordingly (I/O phases do not — the storage bottleneck is
frequency-independent).

Combined with the calibrated model this answers: *what does a 20 MW-class
power constraint do to each pipeline's time and energy?*  In-situ spends a
larger fraction of its runtime in compute phases, so caps hurt it more in
relative time — but it still wins absolutely, and the cap barely changes
its energy (frequency-scaling trades power for time).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.power import NodePowerModel
from repro.core.model import PipelinePredictor, Prediction
from repro.errors import ConfigurationError, ModelError
from repro.paper import STORAGE_IDLE_W

__all__ = ["PowerCapEnforcer", "CappedPrediction", "headroom_watts"]


def headroom_watts(cap_watts: float, draw_watts: float) -> float:
    # repro-unit: watts, cap_watts=watts, draw_watts=watts
    """Margin between an enforced cap and the instantaneous draw.

    Negative when the draw exceeds the cap — exactly the condition the
    ``power_cap_exceeded`` watch rule alerts on (the timeline layer samples
    this as ``repro_timeline_power_headroom_watts``).
    """
    if cap_watts <= 0:
        raise ConfigurationError(f"power cap must be positive, got {cap_watts}")
    return cap_watts - draw_watts


@dataclass(frozen=True)
class CappedPrediction:
    """A model prediction adjusted for a machine power cap."""

    base: Prediction
    cap_watts: float  # repro-unit: execution_time=seconds, energy=joules
    frequency_ratio: float
    execution_time: float
    energy: float

    @property
    def slowdown(self) -> float:
        """Capped time / uncapped time."""
        return self.execution_time / self.base.execution_time


class PowerCapEnforcer:
    """DVFS-based enforcement of a whole-cluster power cap."""

    def __init__(
        self,
        node_model: NodePowerModel,
        n_nodes: int,
        compute_utilization: float = 0.95,
        overhead_watts: float = STORAGE_IDLE_W,
    ) -> None:
        """``overhead_watts`` is uncappable draw (the storage rack)."""
        if n_nodes < 1:
            raise ConfigurationError(f"need >= 1 node, got {n_nodes}")
        if not 0.0 < compute_utilization <= 1.0:
            raise ConfigurationError(
                f"utilization outside (0, 1]: {compute_utilization}"
            )
        if overhead_watts < 0:
            raise ConfigurationError(f"negative overhead: {overhead_watts}")
        self.node_model = node_model
        self.n_nodes = n_nodes
        self.compute_utilization = compute_utilization
        self.overhead_watts = overhead_watts

    def uncapped_watts(self) -> float:  # repro-unit: watts
        """Machine draw (compute + overhead) with no cap."""
        return (
            self.n_nodes * self.node_model.power(self.compute_utilization)
            + self.overhead_watts
        )

    def floor_watts(self) -> float:  # repro-unit: watts
        """The lowest enforceable draw (slowest P-state, busy)."""
        f_min = self.node_model.cpu.slowest_pstate().frequency_ghz
        return (
            self.n_nodes * self.node_model.power(self.compute_utilization, f_min)
            + self.overhead_watts
        )

    def frequency_for_cap(self, cap_watts: float) -> float:
        """Highest frequency ratio whose busy power fits under ``cap_watts``.

        Solved in closed form from the node model's cubic frequency term.
        """
        if cap_watts <= 0:
            raise ModelError(f"cap must be positive: {cap_watts}")
        if cap_watts >= self.uncapped_watts():
            return 1.0
        if cap_watts < self.floor_watts():
            raise ModelError(
                f"cap {cap_watts:.3e} W below the machine floor "
                f"{self.floor_watts():.3e} W — infeasible even at f_min"
            )
        # Node power = static + dynamic * (f/f0)^3 at fixed utilization.
        model = self.node_model
        util = self.compute_utilization
        static = model.power(util, 1e-12)  # cubic term ~0 at f→0
        dynamic = model.power(util) - static
        budget_per_node = (cap_watts - self.overhead_watts) / self.n_nodes
        ratio_cubed = (budget_per_node - static) / dynamic
        if ratio_cubed <= 0:
            raise ModelError("cap leaves no dynamic power budget")
        f0 = model.cpu.base_frequency_ghz
        f_min = model.cpu.slowest_pstate().frequency_ghz / f0
        return max(min(ratio_cubed ** (1.0 / 3.0), 1.0), f_min)

    def apply(
        self,
        predictor: PipelinePredictor,
        interval_hours: float,  # repro-unit: interval_hours=hours, cap_watts=watts
        cap_watts: float,
        iterations: float | None = None,
    ) -> CappedPrediction:
        """Predict a pipeline's capped time and energy at a cadence.

        Compute-bound terms (simulation + rendering) stretch by ``1/f``;
        the I/O term (storage-bandwidth-bound) is unchanged.  Power while
        computing equals the cap; power during I/O equals the capped node
        draw at the I/O utilization plus overhead.
        """
        base = predictor.predict(interval_hours, iterations)
        f = self.frequency_for_cap(cap_watts)
        model = predictor.model
        iters = base.iterations
        compute_time = (model.simulation_time(iters) + model.beta * base.n_viz) / f
        io_time = model.alpha * base.s_io_gb
        time = compute_time + io_time
        f_ghz = f * self.node_model.cpu.base_frequency_ghz
        compute_watts = (
            self.n_nodes * self.node_model.power(self.compute_utilization, f_ghz)
            + self.overhead_watts
        )
        io_watts = (
            self.n_nodes * self.node_model.power(0.85, f_ghz) + self.overhead_watts
        )
        energy = compute_watts * compute_time + io_watts * io_time
        return CappedPrediction(
            base=base,
            cap_watts=cap_watts,
            frequency_ratio=f,
            execution_time=time,
            energy=energy,
        )
