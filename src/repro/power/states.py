"""Idle-period power management (Section VIII of the paper).

"I/O-bound applications such as scientific visualization introduce a lot of
I/O wait time... These I/O wait times are typically of short duration...
Current idle period management techniques in HPC systems target only
prolonged periods of idleness.  With several techniques that operate at the
millisecond level... it may be possible to manage idle periods during a
simulation by putting the CPUs in a low-power state."

This module quantifies that opportunity.  A :class:`LowPowerState` is a
package C-state-like mode with a residency floor and a transition cost; the
:class:`IdlePeriodManager` walks a measured run's phase timeline, decides
which wait intervals each state can profitably cover, and reports the energy
saved and the time penalty incurred — per state and per minimum-manageable-
interval technology level.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Sequence

from repro.cluster.power import NodePowerModel
from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - avoids a circular import at runtime
    from repro.core.metrics import PhaseTimeline

__all__ = ["LowPowerState", "IdleSavings", "IdlePeriodManager", "default_states"]

#: Phases whose intervals are candidate wait periods on the compute side.
WAIT_PHASES = ("io", "stall", "drain")


@dataclass(frozen=True)
class LowPowerState:
    """A package low-power state the compute nodes can enter while waiting."""

    name: str
    #: Node power while resident, as a fraction of the node's idle power.
    power_fraction: float
    #: Total entry + exit time, during which no useful work happens and the
    #: node draws its full idle power.
    transition_seconds: float
    #: Smallest wait interval this state is allowed to target (the
    #: "technology level": classic job-level techniques manage only seconds
    #: to minutes; the architecture-community proposals reach milliseconds).
    min_interval_seconds: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.power_fraction <= 1.0:
            raise ConfigurationError(
                f"power fraction outside [0, 1]: {self.power_fraction}"
            )
        if self.transition_seconds < 0:
            raise ConfigurationError(f"negative transition time: {self.transition_seconds}")
        if self.min_interval_seconds < 0:
            raise ConfigurationError(f"negative residency floor: {self.min_interval_seconds}")

    def applicable(self, interval_seconds: float) -> bool:
        """Can this state profitably cover a wait of this length?"""
        return interval_seconds >= max(
            self.min_interval_seconds, 2.0 * self.transition_seconds
        )


def default_states() -> tuple[LowPowerState, ...]:
    """Three technology levels, shallow to deep.

    ``cc6-fast`` is the millisecond-scale technique Section VIII points to;
    ``pkg-sleep`` is a deep package state with a long residency floor
    (today's "prolonged idleness only" management); ``clock-gate`` is a
    near-free shallow state.
    """
    return (
        LowPowerState("clock-gate", power_fraction=0.85, transition_seconds=1e-4,
                      min_interval_seconds=1e-3),
        LowPowerState("cc6-fast", power_fraction=0.45, transition_seconds=5e-3,
                      min_interval_seconds=0.05),
        LowPowerState("pkg-sleep", power_fraction=0.20, transition_seconds=2.0,
                      min_interval_seconds=30.0),
    )


@dataclass(frozen=True)
class IdleSavings:
    """Outcome of applying one low-power state to a measured run."""

    state: LowPowerState
    n_intervals: int
    n_managed: int
    wait_seconds: float
    managed_seconds: float
    baseline_energy_joules: float
    managed_energy_joules: float
    time_penalty_seconds: float

    @property
    def energy_saved_joules(self) -> float:
        """Energy removed from the wait intervals."""
        return self.baseline_energy_joules - self.managed_energy_joules

    @property
    def coverage(self) -> float:
        """Fraction of total wait time the state could manage."""
        return self.managed_seconds / self.wait_seconds if self.wait_seconds else 0.0

    def savings_fraction(self, run_energy_joules: float) -> float:
        """Energy saved relative to the whole run's energy."""
        if run_energy_joules <= 0:
            raise ConfigurationError(f"non-positive run energy: {run_energy_joules}")
        return self.energy_saved_joules / run_energy_joules


class IdlePeriodManager:
    """Applies low-power states to the wait intervals of a measured run."""

    def __init__(
        self,
        node_model: NodePowerModel,
        n_nodes: int,
        wait_utilization: float = 0.85,
        states: Optional[Sequence[LowPowerState]] = None,
    ) -> None:
        if n_nodes < 1:
            raise ConfigurationError(f"need >= 1 node, got {n_nodes}")
        if not 0.0 <= wait_utilization <= 1.0:
            raise ConfigurationError(
                f"wait utilization outside [0, 1]: {wait_utilization}"
            )
        self.node_model = node_model
        self.n_nodes = n_nodes
        self.wait_utilization = wait_utilization
        self.states = tuple(states if states is not None else default_states())
        if not self.states:
            raise ConfigurationError("need at least one low-power state")

    def wait_intervals(self, timeline: "PhaseTimeline") -> list[float]:
        """Durations of the wait-phase intervals of a run."""
        return [
            t1 - t0
            for phase, t0, t1 in timeline.records
            if phase in WAIT_PHASES and t1 > t0
        ]

    def analyze_state(self, timeline: "PhaseTimeline", state: LowPowerState) -> IdleSavings:
        """Savings from covering the run's waits with one state."""
        intervals = self.wait_intervals(timeline)
        # Baseline: nodes busy-poll at the wait utilization for every wait.
        poll_watts = self.n_nodes * self.node_model.power(self.wait_utilization)
        idle_watts = self.n_nodes * self.node_model.idle_watts
        sleep_watts = idle_watts * state.power_fraction
        wait_seconds = sum(intervals)
        baseline = poll_watts * wait_seconds
        managed_energy = 0.0
        managed_seconds = 0.0
        penalty = 0.0
        n_managed = 0
        for length in intervals:
            if state.applicable(length):
                resident = length - state.transition_seconds
                managed_energy += (
                    sleep_watts * resident + idle_watts * state.transition_seconds
                )
                managed_seconds += length
                penalty += state.transition_seconds
                n_managed += 1
            else:
                managed_energy += poll_watts * length
        return IdleSavings(
            state=state,
            n_intervals=len(intervals),
            n_managed=n_managed,
            wait_seconds=wait_seconds,
            managed_seconds=managed_seconds,
            baseline_energy_joules=baseline,
            managed_energy_joules=managed_energy,
            time_penalty_seconds=penalty,
        )

    def analyze(self, timeline: "PhaseTimeline") -> list[IdleSavings]:
        """Savings per state, shallowest first."""
        return [self.analyze_state(timeline, s) for s in self.states]

    def best_state(self, timeline: "PhaseTimeline") -> IdleSavings:
        """The state saving the most energy on this run."""
        return max(self.analyze(timeline), key=lambda s: s.energy_saved_joules)
