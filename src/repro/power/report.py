"""Per-run power/energy summaries.

:class:`PowerReport` combines the compute-side and storage-side traces of a
run into the quantities the paper reports: average power (Fig. 5), energy
(Fig. 6), and the profile itself (Fig. 4), plus derived diagnostics such as
power utilization ("trapped capacity") relative to a budget.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import MeterError
from repro.power.trace import PowerTrace
from repro.units import format_energy, format_power, format_seconds

__all__ = ["PowerReport"]


@dataclass(frozen=True)
class PowerReport:
    """Aggregated power/energy view of one pipeline run."""

    compute: PowerTrace
    storage: PowerTrace
    label: str = ""
    #: Optional machine power budget in watts, for utilization metrics.
    budget_watts: Optional[float] = None
    total: PowerTrace = field(init=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "total", self.compute + self.storage)

    # ----------------------------------------------------------------- facts

    @property
    def duration(self) -> float:
        """Run duration covered by the traces, in seconds."""
        return self.total.duration

    @property
    def average_power(self) -> float:
        """Mean total (compute + storage) power in watts."""
        return self.total.average_power()

    @property
    def average_compute_power(self) -> float:
        """Mean compute-cluster power in watts."""
        return self.compute.average_power()

    @property
    def average_storage_power(self) -> float:
        """Mean storage-cluster power in watts."""
        return self.storage.average_power()

    @property
    def energy(self) -> float:
        """Total energy of the run in joules."""
        return self.total.energy()

    @property
    def compute_energy(self) -> float:
        """Compute-side energy in joules."""
        return self.compute.energy()

    @property
    def storage_energy(self) -> float:
        """Storage-side energy in joules."""
        return self.storage.energy()

    def power_utilization(self) -> float:
        """Fraction of the machine's power budget actually drawn.

        The complement of this is the paper's "trapped capacity".
        """
        if self.budget_watts is None or self.budget_watts <= 0:
            raise MeterError("power_utilization() requires a positive budget_watts")
        return self.average_power / self.budget_watts

    def trapped_capacity(self) -> float:
        """Unused fraction of the power budget (see Section I of the paper)."""
        return 1.0 - self.power_utilization()

    # ------------------------------------------------------------- rendering

    def summary(self) -> str:
        """Multi-line human-readable summary table."""
        lines = [
            f"PowerReport: {self.label or '(unlabelled run)'}",
            f"  duration        : {format_seconds(self.duration)}",
            f"  avg power total : {format_power(self.average_power)}",
            f"    compute       : {format_power(self.average_compute_power)}",
            f"    storage       : {format_power(self.average_storage_power)}",
            f"  energy total    : {format_energy(self.energy)}",
            f"    compute       : {format_energy(self.compute_energy)}",
            f"    storage       : {format_energy(self.storage_energy)}",
        ]
        if self.budget_watts:
            lines.append(
                f"  power utilization: {100 * self.power_utilization():.1f}% "
                f"(trapped {100 * self.trapped_capacity():.1f}%)"
            )
        return "\n".join(lines)
