"""Meter models: how the paper's instruments observe true power.

Two instruments are modelled after Section IV-B of the paper:

* :class:`MeteredPDU` — the Raritan intelligent rack feeding the Lustre
  storage cluster.  Reports one averaged power value per minute, measured at
  the power inlet (so an efficiency loss factor can be applied).
* :class:`CageMonitor` — the Appro GreenBlade monitoring interface on the
  compute side.  One monitor covers a *cage* of ten nodes; fifteen monitors
  cover all 150 nodes.  Also one averaged value per minute.

Both specialize :class:`PowerMeter`, which turns a set of attached
:class:`~repro.power.signal.PowerSignal` objects into a
:class:`~repro.power.trace.PowerTrace` over a measurement window.  Within
each interval the meter averages the signal exactly — the limit of the real
hardware's "multiple measurements per interval, report the mean".
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro import obs
from repro.errors import ConfigurationError, MeterError
from repro.power.signal import PowerSignal
from repro.power.trace import PowerTrace
from repro.units import MINUTE

__all__ = ["PowerMeter", "MeteredPDU", "CageMonitor"]


class PowerMeter:
    """Base meter: interval-averaged sampling of attached power signals.

    Parameters
    ----------
    interval:
        Averaging window width in seconds (default one minute, the maximum
        rate of both instruments in the paper).
    loss_factor:
        Multiplier applied to the measured power, modelling inlet-side
        overhead (PSU inefficiency); 1.0 means the meter reads true power.
    """

    def __init__(
        self,
        name: str,
        interval: float = MINUTE,  # repro-unit: interval=seconds
        loss_factor: float = 1.0,
    ) -> None:
        if interval <= 0:
            raise ConfigurationError(f"meter interval must be positive, got {interval}")
        if loss_factor < 1.0:
            raise ConfigurationError(
                f"loss factor below 1.0 would create energy, got {loss_factor}"
            )
        self.name = name
        self.interval = float(interval)
        self.loss_factor = float(loss_factor)
        self._signals: list[PowerSignal] = []

    def attach(self, signal: PowerSignal) -> None:
        """Put ``signal`` behind this meter's inlet."""
        self._signals.append(signal)

    def attach_all(self, signals: Iterable[PowerSignal]) -> None:
        """Attach several signals at once."""
        for s in signals:
            self.attach(s)

    @property
    def n_signals(self) -> int:
        """Number of attached component signals."""
        return len(self._signals)

    def read(self, t0: float, t1: float, interval: Optional[float] = None) -> PowerTrace:
        # repro-unit: t0=seconds, t1=seconds, interval=seconds
        """Produce the meter's trace for the window ``[t0, t1]``."""
        if not self._signals:
            raise MeterError(f"meter {self.name!r} has no attached signals")
        combined = PowerSignal.total(self._signals, name=self.name)
        trace = PowerTrace.from_signal(
            combined, t0, t1, interval if interval is not None else self.interval, name=self.name
        )
        if self.loss_factor != 1.0:
            trace = PowerTrace(
                trace.start, trace.dt, trace.watts * self.loss_factor, name=self.name
            )
        obs.counter("repro_power_meter_reads_total", meter=self.name)
        obs.counter(
            "repro_power_samples_total", len(trace.watts), meter=self.name
        )
        return trace

    def instantaneous(self, time: float) -> float:  # repro-unit: watts, time=seconds
        """True total power behind the inlet at ``time`` (watts)."""
        obs.counter("repro_power_instantaneous_reads_total", meter=self.name)
        return self.total_watts(time)

    def total_watts(self, time: float) -> float:  # repro-unit: watts, time=seconds
        """Like :meth:`instantaneous`, but without touching the read
        counters — the passive variant timeline probes poll, so sampling
        does not perturb the instrument-read metrics."""
        if not self._signals:
            raise MeterError(f"meter {self.name!r} has no attached signals")
        return self.loss_factor * sum(s.value_at(time) for s in self._signals)


class MeteredPDU(PowerMeter):
    """The Raritan rack PDU feeding the storage cluster."""

    def __init__(self, name: str = "storage-pdu", interval: float = MINUTE) -> None:
        super().__init__(name, interval=interval)


class CageMonitor(PowerMeter):
    """An Appro cage-level monitor covering a group of ten compute nodes."""

    #: Nodes per cage on the paper's Appro GreenBlade system.
    NODES_PER_CAGE = 10

    def __init__(self, cage_index: int, interval: float = MINUTE) -> None:
        if cage_index < 0:
            raise ConfigurationError(f"negative cage index: {cage_index}")
        super().__init__(f"cage-{cage_index:02d}", interval=interval)
        self.cage_index = cage_index

    def attach(self, signal: PowerSignal) -> None:
        if self.n_signals >= self.NODES_PER_CAGE:
            raise ConfigurationError(
                f"cage {self.cage_index} already monitors {self.NODES_PER_CAGE} nodes"
            )
        super().attach(signal)
