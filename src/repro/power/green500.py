"""Green500-style energy-efficiency reporting.

The paper notes (Section IV-B) that "only 3 out of 500 supercomputers report
the power consumed by the storage system to Green500" — i.e. the standard
methodology under-scopes the measurement.  This module implements both
scopes so the difference is visible:

* **Level 1** (common practice): compute subsystem only;
* **Level 3** (the paper's discipline): compute *and* storage, whole system,
  whole run.

Efficiency is reported in useful-work terms for this workload: simulated
cell-steps per joule (FLOP counting on a simulator would be fiction; the
cell-step is the honest unit the cost model is calibrated in).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.metrics import Measurement
from repro.errors import ConfigurationError
from repro.ocean.driver import MPASOceanConfig

__all__ = ["EfficiencyReport", "efficiency_report"]


@dataclass(frozen=True)
class EfficiencyReport:
    """Energy-efficiency numbers for one measured run, at both scopes."""

    pipeline: str
    cell_steps: float
    level1_energy_joules: float
    level3_energy_joules: float

    @property
    def level1_efficiency(self) -> float:
        """Cell-steps per joule, compute-only scope."""
        return self.cell_steps / self.level1_energy_joules

    @property
    def level3_efficiency(self) -> float:
        """Cell-steps per joule, compute + storage scope."""
        return self.cell_steps / self.level3_energy_joules

    @property
    def storage_scope_penalty(self) -> float:
        """How much the honest scope lowers the reported efficiency."""
        return 1.0 - self.level3_efficiency / self.level1_efficiency

    def summary(self) -> str:
        """One-line report."""
        return (
            f"{self.pipeline}: L1 {self.level1_efficiency:.3e} cell-steps/J, "
            f"L3 {self.level3_efficiency:.3e} cell-steps/J "
            f"(storage scope costs {100 * self.storage_scope_penalty:.1f}%)"
        )


def efficiency_report(
    measurement: Measurement, config: MPASOceanConfig
) -> EfficiencyReport:
    """Build the two-scope efficiency report for a metered run."""
    if measurement.power_report is None:
        raise ConfigurationError(
            "efficiency_report needs a metered run (power_report missing)"
        )
    report = measurement.power_report
    duration = measurement.execution_time
    level1 = report.average_compute_power * duration
    level3 = report.average_power * duration
    cell_steps = float(config.n_cells) * config.n_vertical_levels * measurement.n_timesteps
    return EfficiencyReport(
        pipeline=measurement.pipeline,
        cell_steps=cell_steps,
        level1_energy_joules=level1,
        level3_energy_joules=level3,
    )
