"""Piecewise-constant power signals.

A :class:`PowerSignal` records the *true* instantaneous power of a simulated
component as a sequence of ``(time, watts)`` breakpoints: the component draws
``watts[i]`` from ``time[i]`` until ``time[i+1]``.  Components append a new
breakpoint whenever their state changes (a node going busy, the storage pipe
changing throughput), so the signal is exact — no polling, no aliasing.

Meters then *sample* these signals with their own (coarse) averaging windows;
see :mod:`repro.power.meter`.
"""

from __future__ import annotations

import bisect
from typing import Iterable, Sequence

import numpy as np

from repro.errors import ConfigurationError, MeterError

__all__ = ["PowerSignal"]


class PowerSignal:
    """An append-only piecewise-constant function of time (seconds → watts)."""

    def __init__(self, initial_watts: float = 0.0, start_time: float = 0.0, name: str = "") -> None:
        # repro-unit: initial_watts=watts, start_time=seconds
        if initial_watts < 0:
            raise ConfigurationError(f"negative power: {initial_watts}")
        self.name = name
        self._times: list[float] = [float(start_time)]
        self._watts: list[float] = [float(initial_watts)]

    # ------------------------------------------------------------- recording

    def set(self, time: float, watts: float) -> None:
        # repro-unit: time=seconds, watts=watts
        """Record that the component draws ``watts`` from ``time`` onwards.

        ``time`` must be >= the last recorded breakpoint (simulated time only
        moves forward).  Setting the same value twice is a no-op; setting a
        new value at exactly the last breakpoint's time overwrites it.
        """
        if watts < 0:
            raise ConfigurationError(f"negative power: {watts}")
        last_t = self._times[-1]
        if time < last_t:
            raise MeterError(f"power signal updated in the past ({time} < {last_t})")
        if watts == self._watts[-1]:
            return
        if time == last_t:
            self._watts[-1] = float(watts)
            # collapse with the previous segment if the overwrite made it equal
            if len(self._watts) >= 2 and self._watts[-2] == self._watts[-1]:
                self._times.pop()
                self._watts.pop()
        else:
            self._times.append(float(time))
            self._watts.append(float(watts))

    # --------------------------------------------------------------- queries

    @property
    def start_time(self) -> float:
        """Time of the first breakpoint."""
        return self._times[0]

    @property
    def last_time(self) -> float:
        """Time of the most recent breakpoint."""
        return self._times[-1]

    @property
    def breakpoints(self) -> list[tuple[float, float]]:
        """A copy of the ``(time, watts)`` breakpoint list."""
        return list(zip(self._times, self._watts))

    def value_at(self, time: float) -> float:  # repro-unit: watts, time=seconds
        """Instantaneous power at ``time`` (right-continuous)."""
        if time < self._times[0]:
            raise MeterError(f"query at {time} precedes signal start {self._times[0]}")
        idx = bisect.bisect_right(self._times, time) - 1
        return self._watts[idx]

    def integrate(self, t0: float, t1: float) -> float:
        # repro-unit: joules, t0=seconds, t1=seconds
        """Energy in joules over the window ``[t0, t1]``.

        The last breakpoint's power is extrapolated forward (a component
        holds its state until it changes it), so ``t1`` may exceed
        :attr:`last_time`.
        """
        if t1 < t0:
            raise MeterError(f"reversed integration window [{t0}, {t1}]")
        if t0 < self._times[0]:
            raise MeterError(f"window starts at {t0}, before signal start {self._times[0]}")
        if t1 == t0:
            return 0.0
        times = np.asarray(self._times)
        watts = np.asarray(self._watts)
        # Segment i covers [times[i], times[i+1]) with power watts[i]; the
        # final segment extends to t1.
        edges = np.append(times, max(t1, times[-1]))
        lo = np.clip(edges[:-1], t0, t1)
        hi = np.clip(edges[1:], t0, t1)
        return float(np.sum((hi - lo) * watts))

    def mean(self, t0: float, t1: float) -> float:
        # repro-unit: watts, t0=seconds, t1=seconds
        """Time-averaged power over ``[t0, t1]`` in watts."""
        if t1 <= t0:
            raise MeterError(f"degenerate averaging window [{t0}, {t1}]")
        return self.integrate(t0, t1) / (t1 - t0)

    def max_over(self, t0: float, t1: float) -> float:
        # repro-unit: watts, t0=seconds, t1=seconds
        """Peak instantaneous power over ``[t0, t1]``."""
        if t1 < t0:
            raise MeterError(f"reversed window [{t0}, {t1}]")
        i0 = bisect.bisect_right(self._times, t0) - 1
        i1 = bisect.bisect_right(self._times, t1) - 1
        return float(max(self._watts[max(i0, 0) : i1 + 1]))

    # ------------------------------------------------------------ arithmetic

    @staticmethod
    def total(signals: Iterable["PowerSignal"], name: str = "total") -> "PowerSignal":
        """Sum of several signals as a new signal.

        The result starts at the latest of the inputs' start times (before
        that, at least one component's power is undefined).
        """
        signals = list(signals)
        if not signals:
            raise ConfigurationError("total() of zero signals")
        start = max(s.start_time for s in signals)
        merged = np.unique(
            np.concatenate(
                [np.asarray(s._times)[np.asarray(s._times) >= start] for s in signals]
                + [np.array([start])]
            )
        )
        # Vectorized sum: sample every signal at every merged breakpoint.
        total_watts = np.zeros(merged.size)
        for s in signals:
            total_watts += s.samples(merged)
        out = PowerSignal(float(total_watts[0]), start_time=float(merged[0]), name=name)
        for t, w in zip(merged[1:], total_watts[1:]):
            out.set(float(t), float(w))
        return out

    def samples(self, times: Sequence[float]) -> np.ndarray:
        """Vectorized :meth:`value_at` for plotting/benchmark output."""
        times_arr = np.asarray(times, dtype=float)
        if times_arr.size and times_arr.min() < self._times[0]:
            raise MeterError("sample precedes signal start")
        idx = np.searchsorted(self._times, times_arr, side="right") - 1
        return np.asarray(self._watts)[idx]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<PowerSignal {self.name!r} {len(self._times)} breakpoints, "
            f"last {self._watts[-1]:.0f} W @ {self._times[-1]:.1f}s>"
        )
