"""Power instrumentation: the measurement methodology of the paper.

The *true* power draw of each simulated component is a piecewise-constant
:class:`~repro.power.signal.PowerSignal`.  Meters — the Raritan metered PDU
on the storage rack and the Appro cage-level monitors on the compute
cluster — observe those signals and report one *averaged* sample per minute,
exactly as in the paper.  :class:`~repro.power.trace.PowerTrace` holds the
sampled result and provides energy integration, alignment and summing.
"""

from repro.power.meter import CageMonitor, MeteredPDU, PowerMeter
from repro.power.report import PowerReport
from repro.power.signal import PowerSignal
from repro.power.states import IdlePeriodManager, IdleSavings, LowPowerState, default_states
from repro.power.trace import PowerTrace

__all__ = [
    "CageMonitor",
    "IdlePeriodManager",
    "IdleSavings",
    "LowPowerState",
    "MeteredPDU",
    "PowerMeter",
    "PowerReport",
    "PowerSignal",
    "PowerTrace",
    "default_states",
]
