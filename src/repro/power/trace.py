"""Sampled power traces.

A :class:`PowerTrace` is what a meter reports: a uniform grid of averaging
intervals of width ``dt`` starting at ``start``, where ``watts[i]`` is the
*average* power over interval ``i``.  This matches the paper's instruments,
which report one averaged value per minute.

A run rarely ends exactly on a minute boundary, so the *final* interval may
be shorter than ``dt``; the trace records its true width (``final_dt``) so
that energy integration is exact: ``energy = dt * sum(watts[:-1]) +
final_dt * watts[-1]``.  No quadrature error is ever introduced by the trace
itself.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Optional, Sequence

import numpy as np

from repro import obs
from repro.errors import ConfigurationError, MeterError

if TYPE_CHECKING:  # pragma: no cover
    from repro.power.signal import PowerSignal

__all__ = ["PowerTrace"]


class PowerTrace:
    """A uniformly sampled, interval-averaged power trace."""

    def __init__(
        self,
        start: float,  # repro-unit: start=seconds, dt=seconds, final_dt=seconds
        dt: float,
        watts: Sequence[float],
        name: str = "",
        final_dt: Optional[float] = None,
    ) -> None:
        if dt <= 0:
            raise ConfigurationError(f"trace interval must be positive, got {dt}")
        self.start = float(start)
        self.dt = float(dt)
        self.watts = np.asarray(watts, dtype=float)
        if self.watts.ndim != 1:
            raise ConfigurationError("trace samples must be a 1-D sequence")
        if self.watts.size and self.watts.min() < 0:
            raise ConfigurationError("trace contains negative power samples")
        self.final_dt = float(dt if final_dt is None else final_dt)
        if not 0.0 < self.final_dt <= self.dt + 1e-12:
            raise ConfigurationError(
                f"final interval width {self.final_dt} outside (0, dt={self.dt}]"
            )
        if self.watts.size == 0:
            self.final_dt = self.dt
        self.name = name

    # ----------------------------------------------------------- constructors

    @classmethod
    def from_signal(
        cls, signal: "PowerSignal", t0: float, t1: float, dt: float, name: str = ""
        # repro-unit: t0=seconds, t1=seconds, dt=seconds
    ) -> "PowerTrace":
        """Sample ``signal`` over ``[t0, t1]`` with averaging windows of ``dt``.

        The final window (if ``t1 - t0`` is not a multiple of ``dt``) is
        averaged over its actual extent and its true width is recorded, as
        real meters do when a run ends mid-interval.
        """
        if t1 <= t0:
            raise MeterError(f"empty sampling window [{t0}, {t1}]")
        edges = np.arange(t0, t1, dt)
        edges = np.append(edges, t1)
        watts = [signal.mean(a, b) for a, b in zip(edges[:-1], edges[1:])]
        obs.counter(
            "repro_power_trace_intervals_total", len(watts), signal=name or signal.name
        )
        return cls(
            t0, dt, watts, name=name or signal.name, final_dt=float(edges[-1] - edges[-2])
        )

    # ---------------------------------------------------------------- queries

    @property
    def n_samples(self) -> int:
        """Number of averaging intervals."""
        return int(self.watts.size)

    @property
    def end(self) -> float:
        """End time of the last interval."""
        if self.n_samples == 0:
            return self.start
        return self.start + self.dt * (self.n_samples - 1) + self.final_dt

    @property
    def duration(self) -> float:
        """Total covered duration in seconds."""
        return self.end - self.start

    @property
    def widths(self) -> np.ndarray:
        """Per-interval widths (all ``dt`` except possibly the last)."""
        w = np.full(self.n_samples, self.dt)
        if self.n_samples:
            w[-1] = self.final_dt
        return w

    @property
    def times(self) -> np.ndarray:
        """Midpoints of the averaging intervals (for plotting)."""
        lefts = self.start + self.dt * np.arange(self.n_samples)
        return lefts + self.widths / 2.0

    def energy(self) -> float:  # repro-unit: joules
        """Total energy in joules (exact, including the partial tail)."""
        return float(np.dot(self.watts, self.widths))

    def energy_between(self, t0: float, t1: float) -> float:
        # repro-unit: joules, t0=seconds, t1=seconds
        """Energy in joules over ``[t0, t1]`` (exact piecewise integral).

        The window is clipped to the trace extent.  Because the trace is
        piecewise-constant, the integral is additive: windows that partition
        the trace sum exactly to :meth:`energy` — the invariant the span
        profiler's conservation check leans on.
        """
        if t1 < t0:
            raise ConfigurationError(f"empty attribution window [{t0}, {t1}]")
        if self.n_samples == 0:
            return 0.0
        lefts = self.start + self.dt * np.arange(self.n_samples)
        rights = lefts + self.widths
        overlap = np.clip(np.minimum(rights, t1) - np.maximum(lefts, t0), 0.0, None)
        return float(np.dot(self.watts, overlap))

    def average_power(self) -> float:  # repro-unit: watts
        """Duration-weighted mean power in watts."""
        if self.n_samples == 0:
            raise MeterError("average of an empty trace")
        return self.energy() / self.duration

    def peak_power(self) -> float:  # repro-unit: watts
        """Largest interval-average sample in watts."""
        if self.n_samples == 0:
            raise MeterError("peak of an empty trace")
        return float(self.watts.max())

    # ----------------------------------------------------------- serialization

    def to_dict(self) -> dict:
        """JSON-safe representation (telemetry ``power_trace`` events)."""
        return {
            "start": self.start,
            "dt": self.dt,
            "final_dt": self.final_dt,
            "watts": [float(w) for w in self.watts],
            "name": self.name,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "PowerTrace":
        """Inverse of :meth:`to_dict`."""
        return cls(
            start=float(data["start"]),
            dt=float(data["dt"]),
            watts=data.get("watts", ()),
            name=str(data.get("name", "")),
            final_dt=(
                None if data.get("final_dt") is None else float(data["final_dt"])
            ),
        )

    # ------------------------------------------------------------- transforms

    def resample(self, dt: float) -> "PowerTrace":  # repro-unit: dt=seconds
        """Re-average onto a coarser or finer uniform grid of width ``dt``.

        ``dt`` must tile the trace's *uniform* portion; the trailing partial
        interval keeps its energy exactly.  Energy is conserved.
        """
        if dt <= 0:
            raise ConfigurationError(f"resample interval must be positive, got {dt}")
        n_new = self.duration / dt
        if n_new < 1:
            raise ConfigurationError(
                f"resample dt={dt} exceeds the trace duration {self.duration}"
            )
        old_edges = np.append(
            self.start + self.dt * np.arange(self.n_samples), self.end
        )
        new_edges = np.arange(self.start, self.end, dt)
        new_edges = np.append(new_edges, self.end)
        out = np.empty(new_edges.size - 1)
        for i, (a, b) in enumerate(zip(new_edges[:-1], new_edges[1:])):
            lo = np.clip(old_edges[:-1], a, b)
            hi = np.clip(old_edges[1:], a, b)
            out[i] = np.sum((hi - lo) * self.watts) / (b - a)
        return PowerTrace(
            self.start, dt, out, name=self.name,
            final_dt=float(new_edges[-1] - new_edges[-2]),
        )

    def shifted(self, offset: float) -> "PowerTrace":  # repro-unit: offset=seconds
        """The same trace translated in time by ``offset`` seconds."""
        return PowerTrace(
            self.start + offset, self.dt, self.watts.copy(), name=self.name,
            final_dt=self.final_dt,
        )

    def __add__(self, other: "PowerTrace") -> "PowerTrace":
        """Sample-wise sum of two aligned traces (e.g. compute + storage).

        Both traces must share ``start`` and ``dt``; the shorter one is
        zero-extended, modelling a component that was powered off (or not
        attributed to this run) outside its recorded window.  The longer
        trace's final width wins.
        """
        if not isinstance(other, PowerTrace):
            return NotImplemented
        if abs(self.start - other.start) > 1e-9 or abs(self.dt - other.dt) > 1e-12:
            raise MeterError(
                "cannot add misaligned traces "
                f"(start {self.start} vs {other.start}, dt {self.dt} vs {other.dt})"
            )
        longer = self if (self.n_samples, self.final_dt) >= (other.n_samples, other.final_dt) else other
        n = max(self.n_samples, other.n_samples)
        a = np.zeros(n)
        b = np.zeros(n)
        a[: self.n_samples] = self.watts
        b[: other.n_samples] = other.watts
        return PowerTrace(
            self.start, self.dt, a + b, name=f"{self.name}+{other.name}",
            final_dt=longer.final_dt if n else None,
        )

    @staticmethod
    def aligned_sum(traces: Iterable["PowerTrace"], name: str = "total") -> "PowerTrace":
        """Sum several aligned traces (see :meth:`__add__`)."""
        traces = list(traces)
        if not traces:
            raise MeterError("aligned_sum of zero traces")
        acc = traces[0]
        for t in traces[1:]:
            acc = acc + t
        acc.name = name
        return acc

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.n_samples:
            return (
                f"<PowerTrace {self.name!r} {self.n_samples} x {self.dt:.0f}s, "
                f"avg {self.average_power():.0f} W>"
            )
        return f"<PowerTrace {self.name!r} empty>"
