"""Eddy-tracking fidelity vs temporal sampling rate.

"Understanding the simulation becomes difficult when the sampling frequency
gets too low" (Section II-B); "to effectively track their movement in the
ocean, the output has to be written once per simulated day (or even hour)"
(Section VII).  This module measures exactly that on the runnable mini
ocean: it advances the model once at full temporal resolution, detects eddy
cores at every timestep, then evaluates tracking at coarser strides of the
*same* detections, reporting

* the **link rate** — the probability that an eddy present in one output
  frame is re-identified in the next (the quantity that collapses when
  eddies move farther than the matching radius between outputs), and
* the **mean track lifetime** in simulated hours.

The result is the empirical version of Fig. 9's premise: the science
constraint that forces fine sampling in the first place.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from repro.errors import ConfigurationError
from repro.ocean.driver import MiniOceanDriver
from repro.ocean.eddies import Eddy, detect_eddies, track_eddies

__all__ = ["SamplingQuality", "evaluate_sampling_quality", "quality_table"]


@dataclass(frozen=True)
class SamplingQuality:
    """Tracking fidelity at one output cadence."""

    #: Timesteps between outputs.
    stride: int
    #: Simulated hours between outputs.
    interval_hours: float
    #: Output frames evaluated.
    n_frames: int
    #: Mean eddies per frame.
    eddies_per_frame: float
    #: Fraction of eddies successfully linked frame-to-frame.
    link_rate: float
    #: Mean track lifetime in simulated hours.
    mean_lifetime_hours: float
    #: Number of tracks produced.
    n_tracks: int

    def __post_init__(self) -> None:
        if self.stride < 1:
            raise ConfigurationError(f"stride must be >= 1, got {self.stride}")
        if not 0.0 <= self.link_rate <= 1.0:
            raise ConfigurationError(f"link rate outside [0, 1]: {self.link_rate}")


def _tracking_stats(
    frames: Sequence[list[Eddy]], shape: tuple[int, int], max_distance: float
) -> tuple[float, float, int]:
    """(link rate, mean lifetime in frames, n_tracks) for a frame sequence."""
    tracks = track_eddies(frames, max_distance_cells=max_distance, shape=shape)
    links = sum(len(t.eddies) - 1 for t in tracks)
    possible = sum(min(len(a), len(b)) for a, b in zip(frames[:-1], frames[1:]))
    link_rate = links / possible if possible else 0.0
    mean_life = (
        sum(t.lifetime_frames for t in tracks) / len(tracks) if tracks else 0.0
    )
    return link_rate, mean_life, len(tracks)


def evaluate_sampling_quality(
    strides: Sequence[int] = (1, 2, 4, 8, 16, 32),
    n_steps: int = 96,
    driver_factory: Optional[Callable[[], MiniOceanDriver]] = None,
    max_distance_cells: float = 6.0,
    min_cells: int = 4,
) -> list[SamplingQuality]:
    """Measure tracking fidelity at several output cadences.

    The ocean is advanced **once**; all cadences see subsets of the same
    per-timestep detections, so differences are purely due to sampling.
    ``max_distance_cells`` is the frame-to-frame matching radius — held
    fixed across cadences, as a tracker consuming stored outputs would.
    """
    if not strides or min(strides) < 1:
        raise ConfigurationError(f"invalid strides: {strides}")
    if n_steps < max(strides) * 2:
        raise ConfigurationError(
            f"n_steps={n_steps} gives fewer than two frames at stride {max(strides)}"
        )
    driver = (
        driver_factory()
        if driver_factory is not None
        else _default_driver()
    )
    shape = driver.grid.shape
    step_hours = driver.timestep_seconds / 3_600.0
    detections: list[list[Eddy]] = []
    for step in range(n_steps):
        driver.advance(1)
        w = driver.okubo_weiss_field()
        detections.append(
            detect_eddies(
                w,
                vorticity=driver.solver.vorticity(),
                frame=step,
                min_cells=min_cells,
            )
        )
    results = []
    for stride in sorted(set(strides)):
        frames = detections[::stride]
        link_rate, mean_life_frames, n_tracks = _tracking_stats(
            frames, shape, max_distance_cells
        )
        results.append(
            SamplingQuality(
                stride=stride,
                interval_hours=stride * step_hours,
                n_frames=len(frames),
                eddies_per_frame=sum(len(f) for f in frames) / len(frames),
                link_rate=link_rate,
                mean_lifetime_hours=mean_life_frames * stride * step_hours,
                n_tracks=n_tracks,
            )
        )
    return results


def _default_driver() -> MiniOceanDriver:
    driver = MiniOceanDriver(nx=96, ny=48, seed=12)
    driver.advance(30)  # spin up past the initial adjustment
    return driver


def quality_table(results: Sequence[SamplingQuality]) -> str:
    """Render the fidelity sweep as an aligned text table."""
    lines = [
        f"{'stride':>7s} {'cadence':>9s} {'frames':>7s} {'eddies/frm':>11s} "
        f"{'link rate':>10s} {'track life':>11s}"
    ]
    for q in results:
        lines.append(
            f"{q.stride:>7d} {q.interval_hours:>7.1f} h {q.n_frames:>7d} "
            f"{q.eddies_per_frame:>11.1f} {100 * q.link_rate:>9.1f}% "
            f"{q.mean_lifetime_hours:>9.1f} h"
        )
    return "\n".join(lines)
