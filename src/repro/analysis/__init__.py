"""Analysis extensions: quantifying what sampling rate buys scientifically.

The paper's what-if layer treats the required sampling rate as an input
("assume that the climate scientists need to track the eddies by the hour").
This package closes the loop: :mod:`repro.analysis.quality` measures, on the
*real* mini ocean model, how eddy-tracking fidelity actually degrades as the
output cadence coarsens — the "cognitive fidelity" the abstract promises to
maintain.
"""

from repro.analysis.quality import (
    SamplingQuality,
    evaluate_sampling_quality,
    quality_table,
)

__all__ = ["SamplingQuality", "evaluate_sampling_quality", "quality_table"]
