"""The cross-run HTML trend dashboard: ``repro obs report --store``.

Where :mod:`repro.obs.report` renders one run in depth, this renders the
*registry*: a run index table plus one sparkline strip per trended metric
— x axis is ingest order, one dot per run, with the MAD gate's band edge
and a red marker on the latest point when it regressed.  Same constraints
as the per-run report: one static file, inline CSS + SVG, zero external
assets, safe to attach as a CI artifact.
"""

from __future__ import annotations

import os
import time
from typing import List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.obs.report import _STYLE, _esc
from repro.obs.store.core import RunRow, RunStore
from repro.obs.store.trend import MetricTrend, compute_trends

__all__ = [
    "DEFAULT_STORE_REPORT_FILENAME",
    "default_trend_metrics",
    "render_store_html",
    "write_store_report",
]

DEFAULT_STORE_REPORT_FILENAME = "trends.html"

#: Cap on auto-selected metrics so a big store still renders quickly.
_MAX_AUTO_METRICS = 24


def default_trend_metrics(store: RunStore, runs: Sequence[RunRow]) -> List[str]:
    """Metrics worth trending when none were named: everything that appears
    in at least two runs (registry metrics and timeline series), name order,
    capped at :data:`_MAX_AUTO_METRICS`."""
    seen_in: dict = {}
    for row in runs:
        names = set()
        for record in store.records(row):
            if record.get("kind") == "metric":
                names.add(str(record.get("name")))
            elif record.get("kind") == "sample":
                names.add(str(record.get("series")))
        for name in names:
            seen_in[name] = seen_in.get(name, 0) + 1
    shared = sorted(name for name, n in seen_in.items() if n >= 2)
    return shared[:_MAX_AUTO_METRICS]


def _run_table(runs: Sequence[RunRow]) -> str:
    out = [
        "<table><tr><th>#</th><th>run</th><th>label</th><th>scenario</th>"
        "<th>digest</th><th class=num>rows</th><th>ingested from</th>"
        "<th>created (UTC)</th></tr>"
    ]
    for row in runs:
        created = (
            time.strftime("%Y-%m-%d %H:%M:%S", time.gmtime(row.created_unix))
            if row.created_unix
            else "—"
        )
        out.append(
            f"<tr><td class=num>{row.seq}</td>"
            f"<td><code>{_esc(row.run_key[:12])}</code></td>"
            f"<td>{_esc(row.label)}</td>"
            f"<td>{_esc(row.scenario_name or '—')}</td>"
            f"<td><code>{_esc((row.scenario_digest or '—')[:12])}</code></td>"
            f"<td class=num>{row.n_rows}</td>"
            f"<td>{_esc(row.source or '—')}</td>"
            f"<td class=meta>{created}</td></tr>"
        )
    out.append("</table>")
    return "".join(out)


def _trend_svg(trend: MetricTrend, width: int = 920, height: int = 48) -> str:
    """One metric trajectory: dots per run, band edge, red drift marker."""
    values = [p.value for p in trend.points]
    vmin, vmax = min(values), max(values)
    check = trend.check
    if check is not None:
        edge_hi = check.median + check.halfwidth
        edge_lo = check.median - check.halfwidth
        vmin = min(vmin, edge_lo)
        vmax = max(vmax, edge_hi)
    v_span = (vmax - vmin) or 1.0
    pad = 5.0
    n = len(values)

    def x_of(i: int) -> float:
        if n == 1:
            return width / 2.0
        return pad + (width - 2 * pad) * i / (n - 1)

    def y_of(v: float) -> float:
        return pad + (height - 2 * pad) * (1.0 - (v - vmin) / v_span)

    parts = [
        f'<svg viewBox="0 0 {width} {height}" width="100%" height="{height}" '
        f'role="img" aria-label="trend {_esc(trend.metric)}">',
        f'<rect x="0" y="0" width="{width}" height="{height}" fill="#f6f6f8"/>',
    ]
    if check is not None:
        for edge, dash in (
            (check.median + check.halfwidth, "4 3"),
            (check.median - check.halfwidth, "4 3"),
        ):
            parts.append(
                f'<line x1="0" y1="{y_of(edge):.1f}" x2="{width}" '
                f'y2="{y_of(edge):.1f}" stroke="#b0b0c0" stroke-width="1" '
                f'stroke-dasharray="{dash}"/>'
            )
        parts.append(
            f'<line x1="0" y1="{y_of(check.median):.1f}" x2="{width}" '
            f'y2="{y_of(check.median):.1f}" stroke="#9aa5b1" stroke-width="1"/>'
        )
    poly = " ".join(
        f"{x_of(i):.1f},{y_of(v):.1f}" for i, v in enumerate(values)
    )
    if n > 1:
        parts.append(
            f'<polyline points="{poly}" fill="none" stroke="#4e79a7" '
            f'stroke-width="1.2"/>'
        )
    for i, point in enumerate(trend.points):
        last = i == n - 1
        color = "#c0392b" if (last and trend.failed) else "#4e79a7"
        radius = 3.5 if last else 2.5
        title = (
            f"{point.label} · run {point.run_key[:12]} · "
            f"{trend.metric} = {point.value:g}"
        )
        parts.append(
            f'<circle cx="{x_of(i):.1f}" cy="{y_of(point.value):.1f}" '
            f'r="{radius}" fill="{color}">'
            f"<title>{_esc(title)}</title></circle>"
        )
    parts.append("</svg>")
    if check is None:
        verdict = '<span class=meta>no gate (not enough prior points)</span>'
    elif check.failed:
        verdict = (
            f'<span class=bad>DRIFT: {check.value:g} beyond '
            f"{check.direction}-edge of median {check.median:g} "
            f"&plusmn; {check.halfwidth:g} (n={check.n})</span>"
        )
    else:
        verdict = (
            f'<span class=ok>ok: {check.value:g} within median '
            f"{check.median:g} &plusmn; {check.halfwidth:g} (n={check.n})</span>"
        )
    label = (
        f'<div class=sparklabel>{_esc(trend.metric)} '
        f'<span class=meta>[{_esc(trend.stat)}] · {n} run(s) · '
        f"last {values[-1]:g}</span> · {verdict}</div>"
    )
    return f'<div class=spark>{label}{"".join(parts)}</div>'


def render_store_html(
    store: RunStore,
    runs: Optional[Sequence[RunRow]] = None,
    metrics: Optional[Sequence[str]] = None,
    **trend_kwargs,
) -> str:
    """The full dashboard document for a store (optionally pre-filtered)."""
    rows = store.runs() if runs is None else list(runs)
    if not rows:
        raise ConfigurationError(
            f"store {store.root!r} holds no ingested runs to report on"
        )
    names = list(metrics) if metrics else default_trend_metrics(store, rows)
    trends = [
        t
        for t in compute_trends(store, names, runs=rows, **trend_kwargs)
        if t.points
    ]
    failures = [t for t in trends if t.failed]
    body = [
        f"<h1>repro run registry — {len(rows)} run(s)</h1>",
        f'<p class=meta>store {_esc(store.root)} · '
        f"{sum(r.n_rows for r in rows)} record(s) · "
        f"{len(trends)} trended metric(s)</p>",
    ]
    if failures:
        body.append(
            '<p class=bad>'
            + f"{len(failures)} metric(s) regressed on the latest run:<br>"
            + "<br>".join(_esc(t.check.describe()) for t in failures)
            + "</p>"
        )
    else:
        body.append('<p class=ok>No metric regressions on the latest run.</p>')
    body.append("<h2>Runs</h2>")
    body.append(_run_table(rows))
    body.append("<h2>Trends</h2>")
    if trends:
        body.extend(_trend_svg(t) for t in trends)
    else:
        body.append('<p class=meta>No metric appears in two or more runs yet.</p>')
    return (
        "<!doctype html><html><head><meta charset='utf-8'>"
        "<title>repro run registry</title>"
        f"<style>{_STYLE}</style></head><body>"
        + "".join(body)
        + "</body></html>\n"
    )


def write_store_report(
    store: RunStore,
    output: Optional[str] = None,
    runs: Optional[Sequence[RunRow]] = None,
    metrics: Optional[Sequence[str]] = None,
    **trend_kwargs,
) -> str:
    """Render and write the dashboard; returns the output path."""
    path = output or os.path.join(store.root, DEFAULT_STORE_REPORT_FILENAME)
    doc = render_store_html(store, runs=runs, metrics=metrics, **trend_kwargs)
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(doc)
    return path
