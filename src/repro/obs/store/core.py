"""The content-addressed run registry: ingest + durable layout.

A :class:`RunStore` turns ad-hoc telemetry directories into a queryable,
append-only archive under one root (``.repro/store`` by default)::

    .repro/store/
      index.jsonl            # one RunRow per ingested run, append-only
      segments/<key>.jsonl   # that run's normalized records, write-once
      quarantine/            # segments that failed to parse, moved aside

Ingestion parses a run's ``manifest.json`` + ``events.jsonl`` +
``timeline.jsonl`` (plus any ``BENCH_exec.json`` beside them) into flat,
self-describing *records* — spans, metric samples with p50/p95/p99
columns, timeline points, watchdog alerts, bench rows — and addresses the
whole batch by content: the **run key** is the sha256 of the normalized
records plus the run's identity (trace id, label, scenario digest).  Two
seeded runs that produced byte-identical telemetry therefore collapse to
one key, and re-ingesting any run is a no-op — the registry is idempotent
by construction, never deduplicated by mtime or path.

Durability follows :mod:`repro.atomicio`: segments land whole via
write-to-temp + ``os.replace`` *before* their index row is appended as a
single ``O_APPEND`` write, so a crash can at worst leave an unreferenced
segment or a torn final index line — both tolerated on read.  A segment
that later fails to parse mid-file (damage, not truncation) is moved to
``quarantine/`` and its run skipped, instead of poisoning every query.
"""

from __future__ import annotations

import hashlib
import json
import os
import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.atomicio import append_jsonl_line, atomic_write_text
from repro.errors import ConfigurationError
from repro.obs.exporters import read_jsonl
from repro.obs.manifest import (
    EVENTS_FILENAME,
    MANIFEST_FILENAME,
    TIMELINE_FILENAME,
    RunManifest,
)
from repro.obs.registry import bucket_quantile

__all__ = [
    "BENCH_FILENAME",
    "DEFAULT_STORE_DIR",
    "INDEX_FILENAME",
    "IngestResult",
    "QUARANTINE_DIRNAME",
    "RECORD_KINDS",
    "RunRow",
    "RunStore",
    "SEGMENTS_DIRNAME",
    "STORE_SCHEMA_VERSION",
]

#: Default registry root, relative to the working directory.
DEFAULT_STORE_DIR = os.path.join(".repro", "store")

#: Bump when the normalized record layout changes incompatibly.
STORE_SCHEMA_VERSION = 1

INDEX_FILENAME = "index.jsonl"
SEGMENTS_DIRNAME = "segments"
QUARANTINE_DIRNAME = "quarantine"

#: A bench report ingested standalone or found beside a run's telemetry.
BENCH_FILENAME = "BENCH_exec.json"

#: Normalized record kinds a segment may contain.
RECORD_KINDS = ("span", "metric", "sample", "alert", "event", "bench")

#: Quantile columns stamped onto every normalized histogram record.
_QUANTILES = (("p50", 0.50), ("p95", 0.95), ("p99", 0.99))

_SCALARS = (bool, int, float, str)


@dataclass(frozen=True)
class RunRow:
    """One ingested run as the index records it."""

    run_key: str
    label: str
    trace_id: Optional[str] = None
    scenario_name: Optional[str] = None
    scenario_digest: Optional[str] = None
    created_unix: float = 0.0
    git_commit: Optional[str] = None
    repro_version: Optional[str] = None
    counts: Dict[str, int] = field(default_factory=dict)
    n_rows: int = 0
    segment: str = ""
    source: str = ""
    schema_version: int = STORE_SCHEMA_VERSION
    #: Ingest order within the store (assigned on load, not persisted).
    seq: int = 0

    def to_dict(self) -> dict:
        """The persisted index row (``seq`` is derived, not stored)."""
        return {
            "schema_version": self.schema_version,
            "run_key": self.run_key,
            "label": self.label,
            "trace_id": self.trace_id,
            "scenario_name": self.scenario_name,
            "scenario_digest": self.scenario_digest,
            "created_unix": self.created_unix,
            "git_commit": self.git_commit,
            "repro_version": self.repro_version,
            "counts": dict(self.counts),
            "n_rows": self.n_rows,
            "segment": self.segment,
            "source": self.source,
        }

    @classmethod
    def from_dict(cls, data: dict, seq: int = 0) -> "RunRow":
        """Rebuild an index row; raises on a structurally broken one."""
        try:
            return cls(
                run_key=str(data["run_key"]),
                label=str(data.get("label", "")),
                trace_id=data.get("trace_id"),
                scenario_name=data.get("scenario_name"),
                scenario_digest=data.get("scenario_digest"),
                created_unix=float(data.get("created_unix", 0.0)),
                git_commit=data.get("git_commit"),
                repro_version=data.get("repro_version"),
                counts={
                    str(k): int(v) for k, v in (data.get("counts") or {}).items()
                },
                n_rows=int(data.get("n_rows", 0)),
                segment=str(data.get("segment", "")),
                source=str(data.get("source", "")),
                schema_version=int(data.get("schema_version", STORE_SCHEMA_VERSION)),
                seq=seq,
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ConfigurationError(f"malformed store index row: {exc}") from exc


@dataclass(frozen=True)
class IngestResult:
    """What one :meth:`RunStore.ingest` call did."""

    run_key: str
    created: bool
    n_rows: int
    counts: Dict[str, int]

    def describe(self) -> str:
        """One human-readable line."""
        verb = "ingested" if self.created else "already present"
        per_kind = " ".join(
            f"{kind}={self.counts[kind]}" for kind in sorted(self.counts)
        )
        return f"{verb} {self.run_key[:12]} ({self.n_rows} record(s): {per_kind})"


# ------------------------------------------------------------- normalization


def _scalar_fields(fields: dict) -> dict:
    """Only the JSON-scalar fields (arrays etc. stay in the raw stream)."""
    return {
        str(k): v for k, v in fields.items() if isinstance(v, _SCALARS)
    }


def _normalize_events(events: Sequence[dict]) -> List[dict]:
    rows: List[dict] = []
    for record in events:
        kind = record.get("type")
        if kind in ("span", "phase"):
            row = {
                "kind": "span",
                "name": str(record.get("name", "")),
                "domain": str(record.get("domain", "")),
                "t0": float(record.get("t0", 0.0)),
                "t1": float(record.get("t1", 0.0)),
                "dur": float(record.get("dur", 0.0)),
            }
            attrs = _scalar_fields(record.get("attrs") or {})
            if attrs:
                row["attrs"] = attrs
            rows.append(row)
        elif kind == "event" and record.get("name") == "obs.alert":
            fields = dict(record.get("fields") or {})
            rows.append(
                {
                    "kind": "alert",
                    "rule": str(fields.get("rule", "")),
                    "severity": str(fields.get("severity", "warning")),
                    "series": str(fields.get("series", "")),
                    "t": float(fields.get("t", 0.0)),
                    "value": float(fields.get("value", 0.0)),
                    "threshold": float(fields.get("threshold", 0.0)),
                }
            )
        elif kind == "event":
            row = {"kind": "event", "name": str(record.get("name", ""))}
            fields = _scalar_fields(record.get("fields") or {})
            if fields:
                row["fields"] = fields
            rows.append(row)
    return rows


def _normalize_metrics(snapshot: dict) -> List[dict]:
    rows: List[dict] = []
    for name in sorted(snapshot):
        family = snapshot[name] or {}
        metric_type = str(family.get("kind", ""))
        for series in family.get("series", []):
            labels = {
                str(k): str(v) for k, v in (series.get("labels") or {}).items()
            }
            row: dict = {
                "kind": "metric",
                "name": str(name),
                "metric_type": metric_type,
                "labels": labels,
            }
            if metric_type == "histogram":
                pairs = [
                    (
                        float("inf") if le == "+Inf" else float(le),
                        int(cumulative),
                    )
                    for le, cumulative in (series.get("buckets") or [])
                ]
                row["count"] = int(series.get("count", 0))
                row["sum"] = float(series.get("sum", 0.0))
                for column, q in _QUANTILES:
                    value = bucket_quantile(pairs, q)
                    # NaN is not valid JSON; an empty histogram simply has
                    # no quantile columns.
                    if value == value:
                        row[column] = value
            else:
                row["value"] = float(series.get("value", 0.0))
            rows.append(row)
    return rows


def _normalize_timeline(samples: Sequence[dict]) -> List[dict]:
    rows: List[dict] = []
    for record in samples:
        if record.get("type") != "sample":
            continue
        t = float(record.get("t", 0.0))
        for name, value in sorted((record.get("values") or {}).items()):
            rows.append(
                {
                    "kind": "sample",
                    "series": str(name),
                    "t": t,
                    "value": float(value),
                }
            )
    return rows


#: Bench report keys worth trending (the ledger's metric set plus totals).
_BENCH_KEYS = (
    "serial_seconds",
    "parallel_seconds",
    "cached_seconds",
    "speedup_parallel",
    "speedup_cached",
)


def _normalize_bench(report: dict) -> List[dict]:
    rows: List[dict] = []
    for key in _BENCH_KEYS:
        if key in report:
            rows.append(
                {"kind": "bench", "name": key, "value": float(report[key])}
            )
    cache = report.get("cache") or {}
    for key in ("entries", "hits", "misses"):
        if key in cache and cache[key] is not None:
            rows.append(
                {
                    "kind": "bench",
                    "name": f"cache_{key}",
                    "value": float(cache[key]),
                }
            )
    return rows


def _read_optional_jsonl(path: str) -> List[dict]:
    if not os.path.exists(path):
        return []
    return list(read_jsonl(path))


def normalize_run(path: str) -> Tuple[dict, List[dict]]:
    """``(meta, records)`` for a telemetry directory or a bench report file.

    ``meta`` carries the identity the index row needs (label, trace id,
    scenario name/digest, created_unix, provenance); ``records`` is the
    flat normalized row list a segment persists.
    """
    if os.path.isfile(path) and path.endswith(".json"):
        with open(path, "r", encoding="utf-8") as fh:
            report = json.load(fh)
        rows = _normalize_bench(report)
        if not rows:
            raise ConfigurationError(
                f"{path!r} carries none of the bench metrics {_BENCH_KEYS}"
            )
        meta = {
            "label": "bench",
            "trace_id": None,
            "scenario_name": None,
            "scenario_digest": None,
            "created_unix": float(report.get("created_unix", 0.0)),
            "git_commit": None,
            "repro_version": report.get("repro_version"),
        }
        return meta, rows
    if not os.path.isdir(path):
        raise ConfigurationError(
            f"{path!r} is neither a telemetry directory nor a bench JSON report"
        )
    manifest = RunManifest.load(path)
    rows = _normalize_events(
        _read_optional_jsonl(os.path.join(path, EVENTS_FILENAME))
    )
    rows.extend(_normalize_metrics(manifest.metrics))
    rows.extend(
        _normalize_timeline(
            _read_optional_jsonl(os.path.join(path, TIMELINE_FILENAME))
        )
    )
    bench_path = os.path.join(path, BENCH_FILENAME)
    if os.path.exists(bench_path):
        with open(bench_path, "r", encoding="utf-8") as fh:
            rows.extend(_normalize_bench(json.load(fh)))
    scenario = manifest.config.get("scenario")
    scenario = scenario if isinstance(scenario, dict) else {}
    meta = {
        "label": manifest.label,
        "trace_id": manifest.trace_id,
        "scenario_name": scenario.get("name"),
        "scenario_digest": scenario.get("digest"),
        "created_unix": manifest.created_unix,
        "git_commit": manifest.provenance.get("git_commit"),
        "repro_version": manifest.provenance.get("repro_version"),
    }
    return meta, rows


def _run_key(meta: dict, rows: Sequence[dict]) -> str:
    """Content address of a normalized run.

    Deliberately excludes volatile identity (``created_unix``, pids, argv):
    two seeded runs with byte-identical telemetry hash to the same key.
    """
    payload = {
        "store_schema": STORE_SCHEMA_VERSION,
        "label": meta.get("label"),
        "trace_id": meta.get("trace_id"),
        "scenario_digest": meta.get("scenario_digest"),
        "rows": list(rows),
    }
    canonical = json.dumps(
        payload, sort_keys=True, separators=(",", ":"), default=str
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _count_kinds(rows: Sequence[dict]) -> Dict[str, int]:
    counts: Dict[str, int] = {}
    for row in rows:
        kind = str(row.get("kind", "?"))
        counts[kind] = counts.get(kind, 0) + 1
    return counts


# --------------------------------------------------------------------- store


class RunStore:
    """The append-only, content-addressed registry of ingested runs."""

    def __init__(self, root: str = DEFAULT_STORE_DIR) -> None:
        self.root = root

    # ---------------------------------------------------------------- paths

    @property
    def index_path(self) -> str:
        """The append-only run index."""
        return os.path.join(self.root, INDEX_FILENAME)

    def segment_path(self, row: RunRow) -> str:
        """Absolute path of a run's segment file."""
        return os.path.join(self.root, row.segment)

    # --------------------------------------------------------------- ingest

    def ingest(self, path: str, stamp_manifest: bool = True) -> IngestResult:
        """Ingest one run directory (or bench JSON); idempotent by content.

        The segment is written atomically before its index row is appended,
        so a crash between the two leaves an unreferenced segment — garbage,
        never corruption.  With ``stamp_manifest`` (telemetry runs only) the
        run's ``manifest.json`` is rewritten with the store verdict (run
        key + per-kind row counts), so the run itself records where it is
        registered.
        """
        meta, rows = normalize_run(path)
        run_key = _run_key(meta, rows)
        counts = _count_kinds(rows)
        existing = {row.run_key for row in self.runs()}
        created = run_key not in existing
        if created:
            segment_rel = os.path.join(SEGMENTS_DIRNAME, f"{run_key}.jsonl")
            text = "".join(
                json.dumps(row, sort_keys=True, default=str) + "\n"
                for row in rows
            )
            atomic_write_text(os.path.join(self.root, segment_rel), text)
            index_row = RunRow(
                run_key=run_key,
                label=str(meta.get("label", "")),
                trace_id=meta.get("trace_id"),
                scenario_name=meta.get("scenario_name"),
                scenario_digest=meta.get("scenario_digest"),
                created_unix=float(meta.get("created_unix") or 0.0),
                git_commit=meta.get("git_commit"),
                repro_version=meta.get("repro_version"),
                counts=counts,
                n_rows=len(rows),
                segment=segment_rel,
                source=os.path.basename(os.path.normpath(path)),
            )
            append_jsonl_line(self.index_path, index_row.to_dict())
        result = IngestResult(
            run_key=run_key, created=created, n_rows=len(rows), counts=counts
        )
        from repro import obs as _obs

        _obs.counter(
            "repro_store_ingested_runs_total",
            outcome="created" if created else "skipped",
        )
        if stamp_manifest and os.path.isdir(path):
            self._stamp_manifest(path, result)
        return result

    def _stamp_manifest(self, run_dir: str, result: IngestResult) -> None:
        """Record the store verdict inside the run's own manifest."""
        manifest = RunManifest.load(run_dir)
        manifest.config["store"] = {
            "root": self.root,
            "run_key": result.run_key,
            "n_rows": result.n_rows,
            "counts": dict(result.counts),
        }
        manifest.write(run_dir)

    # -------------------------------------------------------------- reading

    def runs(self) -> List[RunRow]:
        """Index rows in ingest order, deduplicated by run key (first wins)."""
        if not os.path.exists(self.index_path):
            return []
        rows: List[RunRow] = []
        seen = set()
        for record in read_jsonl(self.index_path):
            key = record.get("run_key")
            if not key or key in seen:
                continue
            seen.add(key)
            rows.append(RunRow.from_dict(record, seq=len(rows)))
        return rows

    def records(self, row: RunRow) -> List[dict]:
        """A run's normalized records, or ``[]`` after quarantining damage.

        A torn *final* line (crash during ingest) is dropped by
        :func:`~repro.obs.exporters.read_jsonl` as usual; corruption
        anywhere else moves the whole segment into ``quarantine/`` so one
        damaged file cannot poison every later query.
        """
        path = self.segment_path(row)
        if not os.path.exists(path):
            warnings.warn(
                f"store segment missing for run {row.run_key[:12]}: {path!r}",
                RuntimeWarning,
                stacklevel=2,
            )
            return []
        try:
            return list(read_jsonl(path))
        except ValueError:
            self._quarantine(path)
            return []

    def _quarantine(self, path: str) -> None:
        from repro.obs.registry import default_registry

        destination = os.path.join(
            self.root, QUARANTINE_DIRNAME, os.path.basename(path)
        )
        os.makedirs(os.path.dirname(destination), exist_ok=True)
        os.replace(path, destination)
        warnings.warn(
            f"quarantined corrupt store segment {path!r} -> {destination!r}",
            RuntimeWarning,
            stacklevel=3,
        )
        # Straight to the default registry (the summarize idiom): quarantine
        # usually happens outside any telemetry session.
        default_registry().counter(
            "repro_store_quarantined_segments_total"
        ).inc()

    def describe(self) -> str:
        """One-line store summary."""
        rows = self.runs()
        n_rows = sum(r.n_rows for r in rows)
        return (
            f"store {self.root}: {len(rows)} run(s), {n_rows} record(s)"
        )
