"""Cross-run selection: the engine behind ``repro obs query``.

A query walks the store's index (run-level filters), then each surviving
run's segment (record-level filters), and yields ``(RunRow, record)``
pairs in a fully deterministic order: runs by ingest sequence, records by
segment position.  Two invocations over the same store are byte-identical
— no timestamps, no hash-order leaks.

Record filters use a tiny conjunctive grammar, ``--where 'k=v[,k=v...]'``
(repeatable; all clauses must hold):

* keys: ``kind``, ``name``, ``series``, ``rule``, ``severity``,
  ``domain``, ``metric_type``, or ``label.<label-name>`` for metric labels
* ``name`` matches a record's name, series, *or* rule — "the thing it is
  about" — so ``name=repro_timeline_power_node_w`` finds both the samples
  and the alerts on that series
* a trailing ``*`` makes the value a prefix match:
  ``name=repro_power_*``
"""

from __future__ import annotations

import calendar
import json
import time
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.obs.store.core import RunRow, RunStore

__all__ = [
    "WHERE_KEYS",
    "WhereClause",
    "parse_since",
    "parse_where",
    "record_to_dict",
    "render_records",
    "render_records_json",
    "render_runs",
    "run_query",
    "select_runs",
]

#: Record-level filter keys (plus the ``label.<name>`` family).
WHERE_KEYS = (
    "kind",
    "name",
    "series",
    "rule",
    "severity",
    "domain",
    "metric_type",
)


@dataclass(frozen=True)
class WhereClause:
    """One ``key=value`` conjunct (``prefix`` for a trailing ``*``)."""

    key: str
    value: str
    prefix: bool = False

    def matches(self, record: dict) -> bool:
        """Whether ``record`` satisfies this clause."""
        if self.key.startswith("label."):
            value = (record.get("labels") or {}).get(self.key[len("label."):])
        elif self.key == "name":
            value = (
                record.get("name")
                or record.get("series")
                or record.get("rule")
            )
        else:
            value = record.get(self.key)
        if value is None:
            return False
        text = str(value)
        if self.prefix:
            return text.startswith(self.value)
        return text == self.value


def parse_where(expressions: Sequence[str]) -> List[WhereClause]:
    """Parse repeatable ``k=v[,k=v...]`` expressions into clauses."""
    clauses: List[WhereClause] = []
    for expression in expressions:
        for part in expression.split(","):
            part = part.strip()
            if not part:
                continue
            if "=" not in part:
                raise ConfigurationError(
                    f"bad --where clause {part!r}: expected key=value"
                )
            key, _, value = part.partition("=")
            key = key.strip()
            value = value.strip()
            if key not in WHERE_KEYS and not key.startswith("label."):
                raise ConfigurationError(
                    f"unknown --where key {key!r}; expected one of "
                    f"{WHERE_KEYS} or label.<name>"
                )
            if not value:
                raise ConfigurationError(f"empty value in --where clause {part!r}")
            if value.endswith("*"):
                clauses.append(WhereClause(key, value[:-1], prefix=True))
            else:
                clauses.append(WhereClause(key, value))
    return clauses


def parse_since(text: str) -> float:
    """``--since`` as a unix timestamp.

    Accepts a raw unix timestamp, ``YYYY-MM-DD``, or
    ``YYYY-MM-DDTHH:MM:SS`` — the date forms are interpreted as UTC so the
    cut is host-timezone independent.
    """
    try:
        return float(text)
    except ValueError:
        pass
    for fmt in ("%Y-%m-%dT%H:%M:%S", "%Y-%m-%d"):
        try:
            return float(calendar.timegm(time.strptime(text, fmt)))
        except ValueError:
            continue
    raise ConfigurationError(
        f"bad --since value {text!r}: expected unix seconds, YYYY-MM-DD, "
        "or YYYY-MM-DDTHH:MM:SS (UTC)"
    )


def select_runs(
    store: RunStore,
    scenario_digest: Optional[str] = None,
    label: Optional[str] = None,
    trace: Optional[str] = None,
    run_key: Optional[str] = None,
    since: Optional[float] = None,
) -> List[RunRow]:
    """Index rows passing the run-level filters, in ingest order.

    ``scenario_digest``, ``trace`` and ``run_key`` match on prefix (any
    unambiguous abbreviation of a hex digest works, as with git).
    """
    rows = store.runs()
    if scenario_digest is not None:
        rows = [
            r
            for r in rows
            if r.scenario_digest and r.scenario_digest.startswith(scenario_digest)
        ]
    if label is not None:
        rows = [r for r in rows if r.label == label]
    if trace is not None:
        rows = [r for r in rows if r.trace_id and r.trace_id.startswith(trace)]
    if run_key is not None:
        rows = [r for r in rows if r.run_key.startswith(run_key)]
    if since is not None:
        rows = [r for r in rows if r.created_unix >= since]
    return rows


def run_query(
    store: RunStore,
    where: Sequence[WhereClause] = (),
    scenario_digest: Optional[str] = None,
    label: Optional[str] = None,
    trace: Optional[str] = None,
    run_key: Optional[str] = None,
    since: Optional[float] = None,
    limit: Optional[int] = None,
) -> List[Tuple[RunRow, dict]]:
    """Matching ``(run, record)`` pairs in deterministic store order."""
    if limit is not None and limit < 1:
        raise ConfigurationError(f"limit must be >= 1: {limit}")
    out: List[Tuple[RunRow, dict]] = []
    for row in select_runs(
        store,
        scenario_digest=scenario_digest,
        label=label,
        trace=trace,
        run_key=run_key,
        since=since,
    ):
        for record in store.records(row):
            if all(clause.matches(record) for clause in where):
                out.append((row, record))
                if limit is not None and len(out) >= limit:
                    return out
    return out


# ----------------------------------------------------------------- rendering


def _format_labels(labels: dict) -> str:
    if not labels:
        return ""
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return "{" + inner + "}"


def _record_name(record: dict) -> str:
    name = str(
        record.get("name") or record.get("series") or record.get("rule") or "?"
    )
    return name + _format_labels(record.get("labels") or {})


def _record_value(record: dict) -> str:
    kind = record.get("kind")
    if kind == "span":
        return (
            f"dur={record.get('dur', 0.0):g} t0={record.get('t0', 0.0):g} "
            f"domain={record.get('domain', '')}"
        )
    if kind == "metric":
        if record.get("metric_type") == "histogram":
            parts = [
                f"count={record.get('count', 0)}",
                f"sum={record.get('sum', 0.0):g}",
            ]
            for column in ("p50", "p95", "p99"):
                if column in record:
                    parts.append(f"{column}={record[column]:g}")
            return " ".join(parts)
        return f"value={record.get('value', 0.0):g}"
    if kind == "sample":
        return f"t={record.get('t', 0.0):g} value={record.get('value', 0.0):g}"
    if kind == "alert":
        return (
            f"severity={record.get('severity', '')} t={record.get('t', 0.0):g} "
            f"value={record.get('value', 0.0):g} "
            f"threshold={record.get('threshold', 0.0):g}"
        )
    if kind == "bench":
        return f"value={record.get('value', 0.0):g}"
    fields = record.get("fields") or {}
    return " ".join(f"{k}={fields[k]}" for k in sorted(fields))


def record_to_dict(row: RunRow, record: dict) -> dict:
    """One JSON-lines output record: the record plus its run context."""
    out = dict(record)
    out["run_key"] = row.run_key
    out["run_label"] = row.label
    if row.scenario_digest:
        out["run_scenario_digest"] = row.scenario_digest
    return out


def render_records(results: Sequence[Tuple[RunRow, dict]]) -> str:
    """Matching records as an aligned, deterministic text table."""
    if not results:
        return "query: no matching records"
    triples = [
        (row.run_key[:12], str(record.get("kind", "?")), _record_name(record),
         _record_value(record))
        for row, record in results
    ]
    name_width = max(len(t[2]) for t in triples)
    name_width = min(max(name_width, 4), 60)
    lines = [f"  {'run':12s} {'kind':7s} {'name':{name_width}s} value"]
    for run, kind, name, value in triples:
        lines.append(f"  {run:12s} {kind:7s} {name:{name_width}s} {value}")
    lines.append(f"query: {len(results)} matching record(s)")
    return "\n".join(lines)


def render_runs(rows: Sequence[RunRow]) -> str:
    """The run index as an aligned text table (``repro obs query --runs``)."""
    if not rows:
        return "store: no ingested runs"
    lines = [
        f"  {'run':12s} {'trace':9s} {'scenario':20s} {'digest':9s} "
        f"{'rows':>6s} label"
    ]
    for row in rows:
        lines.append(
            f"  {row.run_key[:12]:12s} "
            f"{(row.trace_id or '-')[:9]:9s} "
            f"{(row.scenario_name or '-')[:20]:20s} "
            f"{(row.scenario_digest or '-')[:9]:9s} "
            f"{row.n_rows:>6d} {row.label}"
        )
    lines.append(f"store: {len(rows)} run(s)")
    return "\n".join(lines)


def render_records_json(results: Sequence[Tuple[RunRow, dict]]) -> str:
    """Matching records as JSON lines (sorted keys, one record per line)."""
    return "\n".join(
        json.dumps(record_to_dict(row, record), sort_keys=True, default=str)
        for row, record in results
    )
